#!/usr/bin/env python3
"""Capacity forecasting: predict next-half-hour CPU per VM (§4.4).

Trains Holt-Winters and the 24-unit LSTM on individual VM series from
the edge and cloud traces, then prints per-VM RMSE and the seasonality
strengths that explain the gap — the paper's "edge VMs are easier to
predict" result, usable as an actual capacity-planning tool.

Run:  python examples/capacity_forecaster.py
"""

import numpy as np

from repro import EdgeStudy, Scenario
from repro.core import format_table
from repro.prediction import (
    ExperimentSpec,
    evaluate_holt_winters,
    evaluate_lstm,
    seasonality_strength,
)

VMS_PER_PLATFORM = 4


def main() -> None:
    study = EdgeStudy(Scenario.smoke_scale())
    spec = ExperimentSpec(
        cpu_interval_minutes=study.scenario.cpu_interval_minutes,
        window_minutes=60,
        train_days=5, test_days=2,
    )

    rows = []
    for label, dataset in (("edge", study.nep.dataset),
                           ("cloud", study.azure.dataset)):
        vm_ids = [v for v in dataset.vm_ids()
                  if dataset.mean_cpu(v) > 0.03][:VMS_PER_PLATFORM]
        for index, vm_id in enumerate(vm_ids):
            series = dataset.cpu_series[vm_id].astype(float)
            hw = evaluate_holt_winters(vm_id, series, "max", spec)
            lstm = evaluate_lstm(vm_id, series, "max", spec, epochs=12,
                                 seed=index)
            strength = seasonality_strength(series,
                                            dataset.cpu_points_per_day)
            rows.append((label, vm_id, strength, hw.rmse_percent,
                         lstm.rmse_percent))

    print(format_table(
        ["platform", "VM", "seasonality", "Holt-Winters RMSE %",
         "LSTM RMSE %"],
        rows, title="Next-hour max-CPU forecasting per VM (Figure 14)"))

    edge_err = np.mean([r[3] for r in rows if r[0] == "edge"])
    cloud_err = np.mean([r[3] for r in rows if r[0] == "cloud"])
    print(f"\nMean Holt-Winters RMSE: edge {edge_err:.1f}% vs cloud "
          f"{cloud_err:.1f}% — stronger seasonality makes edge capacity "
          f"plannable, the paper's opportunity for 'more fine-grained, "
          f"intelligent resource management'.")


if __name__ == "__main__":
    main()
