#!/usr/bin/env python3
"""Monthly-bill planner: should a video startup deploy on edge or cloud?

Takes the synthetic NEP trace, picks the heaviest video apps, and prices
each one on NEP and on the two virtual clouds under all three network
billing models — the §4.5 decision a real customer faces.  Also shows
the paper's counter-example: a bursty online-education app that the
cloud's per-minute billing treats better than NEP's daily-peak billing.

Run:  python examples/cost_planner.py
"""

from repro import EdgeStudy, Scenario
from repro.billing.cloud import NetworkModel
from repro.core import format_table
from repro.core.cost_analysis import (
    build_app_usage,
    cluster_usage_to_cloud,
    heaviest_apps,
    site_locations,
)


def main() -> None:
    study = EdgeStudy(Scenario.smoke_scale())
    dataset = study.nep.dataset
    locations = site_locations(dataset)

    rows = []
    for app_id in heaviest_apps(dataset, count=5):
        usage = build_app_usage(dataset, app_id)
        clustered = cluster_usage_to_cloud(usage, locations,
                                           study.vcloud_regions)
        nep_bill = study.nep_billing.bill(usage)
        cloud_bills = {
            model: study.vcloud1.bill(clustered, model).total_rmb
            for model in NetworkModel
        }
        best_cloud = min(cloud_bills.values())
        rows.append((
            app_id,
            dataset.apps[app_id].category,
            len(usage.hardware),
            nep_bill.total_rmb,
            best_cloud,
            best_cloud / nep_bill.total_rmb,
            f"{nep_bill.network_share:.0%}",
        ))

    print(format_table(
        ["app", "category", "VMs", "NEP bill (RMB/mo)",
         "best cloud bill", "cloud/NEP", "network share"],
        rows, title="Monthly cost of the heaviest apps (Table 3 view)"))

    # The paper's exception case: peaky traffic + NEP's coarse billing.
    education = [app_id for app_id in dataset.app_ids_with_vms()
                 if dataset.apps[app_id].category == "online_education"]
    if education:
        app_id = max(
            education,
            key=lambda a: float(dataset.app_bandwidth(a).max())
            / max(float(dataset.app_bandwidth(a).mean()), 1e-9),
        )
        usage = build_app_usage(dataset, app_id)
        clustered = cluster_usage_to_cloud(usage, locations,
                                           study.vcloud_regions)
        nep_bill = study.nep_billing.bill(usage).total_rmb
        cloud_bill = study.vcloud1.bill(
            clustered, NetworkModel.ON_DEMAND_BANDWIDTH).total_rmb
        series = dataset.app_bandwidth(app_id)
        print(f"\nBursty education app {app_id}: peak/mean bandwidth = "
              f"{float(series.max()) / float(series.mean()):.1f}x")
        print(f"  NEP (daily-peak billing):      {nep_bill:10.0f} RMB/mo")
        print(f"  vCloud-1 (per-hour billing):   {cloud_bill:10.0f} RMB/mo")
        if cloud_bill < nep_bill:
            print("  -> the cloud wins here, as §4.5 predicts for apps "
                  "with high temporal network variance.")
        else:
            print("  -> NEP still wins for this app; sharper bursts would "
                  "flip it (§4.5).")


if __name__ == "__main__":
    main()
