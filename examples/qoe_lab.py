#!/usr/bin/env python3
"""QoE lab: rerun the paper's §3.3 testbeds and its what-if knobs.

Measures cloud-gaming response delay and live-streaming delay against
the 4-VM testbed (one edge + three clouds), then explores the paper's
optimisation hints: GPU rendering on the game server, ffplay instead of
MPlayer, and the jitter-buffer trade-off.

Run:  python examples/qoe_lab.py
"""

import numpy as np

from repro import Scenario
from repro.core import format_table
from repro.core.qoe_analysis import GamingExperiment, StreamingExperiment
from repro.measurement.qoe import QoETestbed
from repro.measurement.qoe.streaming import Player
from repro.netsim.access import AccessType


def main() -> None:
    scenario = Scenario.smoke_scale()
    testbed = QoETestbed(scenario.random.stream("qoe-lab"))
    rng = scenario.random.stream("qoe-lab-trials")

    gaming = GamingExperiment(testbed, rng, trials=50)
    streaming = StreamingExperiment(testbed, rng, trials=50)

    # --- gaming: backend distance and the GPU knob -----------------------
    rows = []
    for vm in testbed.vms:
        base = gaming.run_config(vm.label, AccessType.WIFI)
        gpu = gaming.run_config(vm.label, AccessType.WIFI,
                                gpu_rendering=True)
        rows.append((vm.label, base.mean_ms, gpu.mean_ms,
                     base.mean_ms - gpu.mean_ms))
    print(format_table(
        ["backend", "response delay (ms)", "with GPU render", "saving"],
        rows, title="Cloud gaming (WiFi): distance + GPU rendering"))
    print("The network stops being the bottleneck on the edge; the "
          "~15 ms GPU saving matches the paper's 10-20 ms estimate.\n")

    # --- streaming: player software and the jitter buffer ----------------
    rows = []
    for player in (Player.MPLAYER, Player.FFPLAY):
        for buffer_mb in (0.0, 2.0):
            result = streaming.run_config("Edge", AccessType.WIFI,
                                          player=player,
                                          jitter_buffer_mb=buffer_mb)
            rows.append((player.value, buffer_mb, result.mean_ms,
                         float(np.std(result.delays_ms))))
    print(format_table(
        ["player", "buffer (MB)", "streaming delay (ms)", "std (ms)"],
        rows, title="Live streaming (edge backend)"))
    print("ffplay shaves ~90 ms off MPlayer; a 2 MB jitter buffer costs "
          "seconds — 'the software matters' (§3.3.2).")


if __name__ == "__main__":
    main()
