#!/usr/bin/env python3
"""Trace export: materialise the synthetic NEP dataset to disk.

Writes the full trace (VM/app/site/server tables as CSV, usage series as
NPZ) in the layout §2.1.2 describes, reloads it, and verifies the round
trip — the workflow for anyone who wants to analyse the dataset with
their own tools instead of this library.

Run:  python examples/trace_export.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import EdgeStudy, Scenario
from repro.trace import load_dataset, save_dataset


def main() -> None:
    output = (Path(sys.argv[1]) if len(sys.argv) > 1
              else Path(tempfile.mkdtemp()) / "nep-trace")
    study = EdgeStudy(Scenario.smoke_scale())
    dataset = study.nep.dataset

    root = save_dataset(dataset, output)
    size_mb = sum(f.stat().st_size for f in root.iterdir()) / 1e6
    print(f"Wrote {len(dataset.vms)} VMs / {len(dataset.apps)} apps / "
          f"{len(dataset.sites)} sites to {root} ({size_mb:.1f} MB)")
    for name in sorted(p.name for p in root.iterdir()):
        print(f"  {name}")

    reloaded = load_dataset(root)
    vm_id = dataset.vm_ids()[0]
    assert np.array_equal(reloaded.cpu_series[vm_id],
                          dataset.cpu_series[vm_id])
    assert reloaded.vms[vm_id] == dataset.vms[vm_id]
    print(f"\nRound trip verified on {vm_id}: "
          f"{reloaded.cpu_points} CPU readings at "
          f"{reloaded.cpu_interval_minutes}-minute resolution over "
          f"{reloaded.trace_days} days.")


if __name__ == "__main__":
    main()
