#!/usr/bin/env python3
"""Quickstart: run a reduced-scale copy of the paper's whole study.

Builds the NEP edge platform and an AliCloud-like baseline, runs the
crowd-sourced latency campaign, generates the workload traces, and prints
the headline numbers of the paper's two halves (performance + workloads).

Run:  python examples/quickstart.py
"""

from repro import EdgeStudy, Scenario
from repro.core import (
    cpu_utilization_summary,
    format_table,
    rtt_cdfs,
    vm_size_summary,
)
from repro.netsim.access import AccessType


def main() -> None:
    study = EdgeStudy(Scenario.smoke_scale())

    print(f"NEP platform: {len(study.nep.platform.sites)} sites, "
          f"{study.nep.platform.server_count} servers, "
          f"{len(study.nep.platform.vms)} VMs")
    print(f"Campaign: {len(study.participants)} participants, "
          f"{len(study.latency_results.latency)} ping tests\n")

    # --- end users' view (paper §3.1) -----------------------------------
    rows = []
    for access in (AccessType.WIFI, AccessType.LTE):
        cdfs = rtt_cdfs(study.per_user, access)
        rows.append((
            access.value,
            cdfs["nearest_edge"].median,
            cdfs["nearest_cloud"].median,
            cdfs["all_cloud"].median,
            cdfs["nearest_cloud"].median / cdfs["nearest_edge"].median,
        ))
    print(format_table(
        ["access", "nearest edge (ms)", "nearest cloud (ms)",
         "all clouds (ms)", "edge speedup"],
        rows, title="Median RTT per baseline (Figure 2(a))"))

    # --- edge operator's view (paper §4) ---------------------------------
    nep_sizes = vm_size_summary(study.nep.dataset)
    azure_sizes = vm_size_summary(study.azure.dataset)
    nep_util = cpu_utilization_summary(study.nep.dataset)
    azure_util = cpu_utilization_summary(study.azure.dataset)
    print()
    print(format_table(
        ["metric", "NEP", "Azure-like"],
        [
            ("median VM cores", nep_sizes.median_cpu,
             azure_sizes.median_cpu),
            ("median VM memory (GB)", nep_sizes.median_memory_gb,
             azure_sizes.median_memory_gb),
            ("VMs under 10% mean CPU", nep_util.fraction_mean_below_10pct,
             azure_util.fraction_mean_below_10pct),
            ("median usage CV across time", nep_util.median_cv,
             azure_util.median_cv),
        ],
        title="Workload comparison (Figures 8 & 10)"))

    print("\nEdge VMs are bigger, idler, and swingier — exactly the "
          "paper's Finding 4.")


if __name__ == "__main__":
    main()
