#!/usr/bin/env python3
"""Build-out planner: watching growth create the §4.3 imbalance.

Replays NEP's expansion (new sites opening while geo-scoped
subscriptions keep arriving) against a what-if where every site existed
from day one, then shows where an operator should intervene: the young
sites that sell nothing while day-one sites fill up.

Run:  python examples/buildout_planner.py
"""

from repro import Scenario
from repro.core import format_table
from repro.platform import simulate_growth


def main() -> None:
    scenario = Scenario.smoke_scale()
    grown = simulate_growth(scenario, epochs=6, initial_fraction=0.2,
                            requests_per_epoch=12)
    static = simulate_growth(scenario, epochs=6, initial_fraction=1.0,
                             requests_per_epoch=12)

    rows = [(e.index, e.active_sites, e.placed_vms, e.skew,
             static.epochs[e.index].skew)
            for e in grown.epochs]
    print(format_table(
        ["epoch", "active sites", "VMs placed", "skew (build-out)",
         "skew (static what-if)"], rows,
        title="Across-site sales-rate skew while NEP builds out"))

    print()
    by_age = grown.rate_by_activation_epoch()
    print(format_table(
        ["site cohort (activation epoch)", "mean final sales rate"],
        list(by_age.items()),
        title="Who actually sold capacity"))

    first, last = by_age[0], by_age[max(by_age)]
    print(f"\nDay-one sites sold {first / max(last, 1e-6):.0f}x more than "
          f"the newest cohort — §4.3's growth-driven skew. An operator "
          f"can counter it with demand-aware activation (open sites where "
          f"subscriptions queue) or cross-site migration "
          f"(see examples/rebalancer_demo.py).")


if __name__ == "__main__":
    main()
