#!/usr/bin/env python3
"""Site selection for a latency-sensitive app (cloud gaming backend).

A gaming company wants sub-25 ms RTT for players in five target cities.
This script probes each candidate city against the nearest NEP edge
sites and AliCloud regions, then reports where the edge is mandatory and
where a cloud region would do.

Run:  python examples/site_selection.py
"""

from repro import EdgeStudy, Scenario
from repro.core import format_table
from repro.geo import city
from repro.measurement.ping import run_ping_test
from repro.netsim.access import AccessType
from repro.netsim.routing import TargetSiteSpec, UESpec, build_route

TARGET_CITIES = ("Beijing", "Chengdu", "Guangzhou", "Harbin", "Urumqi")
RTT_BUDGET_MS = 25.0


def probe(study: EdgeStudy, city_name: str) -> tuple[float, float]:
    """(best edge RTT, best cloud RTT) for WiFi users in one city."""
    rng = study.scenario.random.stream(f"site-selection-{city_name}")
    ue = UESpec(label=city_name, location=city(city_name).location,
                access=AccessType.WIFI)

    def best_rtt(sites, is_edge: bool) -> float:
        rtts = []
        for site in sites:
            route = build_route(
                ue, TargetSiteSpec(site.site_id, site.location, is_edge),
                rng)
            rtts.append(run_ping_test(route, 30, rng).mean_ms)
        return min(rtts)

    edge_sites = study.nep.platform.nearest_sites(ue.location, count=5)
    return (best_rtt(edge_sites, True),
            best_rtt(study.alicloud.sites, False))


def main() -> None:
    study = EdgeStudy(Scenario.smoke_scale())
    rows = []
    for name in TARGET_CITIES:
        edge_rtt, cloud_rtt = probe(study, name)
        verdict = ("cloud is fine" if cloud_rtt <= RTT_BUDGET_MS
                   else "edge required" if edge_rtt <= RTT_BUDGET_MS
                   else "needs denser deployment")
        rows.append((name, edge_rtt, cloud_rtt, verdict))
    print(format_table(
        ["city", "best edge RTT (ms)", "best cloud RTT (ms)", "verdict"],
        rows, title=f"Backend placement for a {RTT_BUDGET_MS:.0f} ms budget"))
    print("\nCities far from cloud regions (Harbin, Urumqi) are exactly "
          "where the paper's dense edge deployment pays off.")


if __name__ == "__main__":
    main()
