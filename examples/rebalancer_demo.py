#!/usr/bin/env python3
"""Rebalancer demo: fixing the §4.3 imbalance with the §5 machinery.

The paper measures badly skewed per-server load and argues for dynamic
VM migration and load-aware request scheduling.  This script builds the
NEP workload, finds the most unbalanced loaded site, runs the greedy
usage rebalancer over it, and contrasts nearest-site scheduling with
load-aware GSLB for the site's busiest app.

Run:  python examples/rebalancer_demo.py
"""

import numpy as np

from repro import EdgeStudy, Scenario
from repro.core import format_table
from repro.platform import LoadAwareScheduler, NearestSiteScheduler, UsageRebalancer


def main() -> None:
    study = EdgeStudy(Scenario.smoke_scale())
    platform, dataset = study.nep.platform, study.nep.dataset

    def vm_usage(vm_id: str) -> float:
        return dataset.mean_cpu(vm_id)

    rebalancer = UsageRebalancer(usage=vm_usage, target_spread=0.05)

    # Most unbalanced site with at least 3 VMs on >= 2 servers.
    def spread(site_id: str) -> float:
        servers = {vm.server_id for vm in dataset.vms_on_site(site_id)}
        if len(servers) < 2:
            return -1.0
        loads = [rebalancer.server_load(platform, s) for s in servers]
        return max(loads) - min(loads)

    site_id = max((s for s in dataset.sites), key=spread)
    site = platform.site(site_id)
    before = [rebalancer.server_load(platform, s.server_id)
              for s in site.servers]
    moves = rebalancer.rebalance_site(platform, site_id)
    after = [rebalancer.server_load(platform, s.server_id)
             for s in site.servers]

    print(f"Site {site_id} ({site.city}): {len(site.servers)} servers, "
          f"{len(dataset.vms_on_site(site_id))} VMs")
    print(format_table(
        ["metric", "before", "after"],
        [
            ("max server load", max(before), max(after)),
            ("load spread (max-min)", max(before) - min(before),
             max(after) - min(after)),
            ("migrations", "-", len(moves)),
            ("total migration downtime (s)", "-",
             sum(m.cost.downtime_seconds for m in moves)),
        ],
        title="Greedy usage rebalancing (§5 'sites as a cluster')"))

    # Load-aware scheduling for the busiest app on the platform.
    app_id = max(dataset.app_ids_with_vms(),
                 key=lambda a: len(dataset.vms_of_app(a)))
    nearest = NearestSiteScheduler()
    load_state: dict[str, float] = {
        vm.vm_id: 0.0 for vm in platform.vms_of_app(app_id)}
    gslb = LoadAwareScheduler(load=lambda v: load_state[v],
                              detour_km=300.0, overload=0.8)
    rng = np.random.default_rng(7)
    nearest_hits: dict[str, int] = {}
    gslb_hits: dict[str, int] = {}
    for _ in range(200):
        from repro.geo import CHINA_CITIES
        user = CHINA_CITIES[rng.integers(0, len(CHINA_CITIES))].location
        n = nearest.schedule(platform, app_id, user)
        nearest_hits[n.vm_id] = nearest_hits.get(n.vm_id, 0) + 1
        g = gslb.schedule(platform, app_id, user)
        gslb_hits[g.vm_id] = gslb_hits.get(g.vm_id, 0) + 1
        load_state[g.vm_id] += 0.02

    print(f"\nApp {app_id} ({len(load_state)} VMs), 200 user requests:")
    print(f"  nearest-site scheduling: hottest VM serves "
          f"{max(nearest_hits.values())} requests "
          f"across {len(nearest_hits)} VMs")
    print(f"  load-aware GSLB:         hottest VM serves "
          f"{max(gslb_hits.values())} requests "
          f"across {len(gslb_hits)} VMs")
    print("Load-aware scheduling trades a bounded detour for the flatter "
          "hotspot the paper finds missing in production (§4.3).")


if __name__ == "__main__":
    main()
