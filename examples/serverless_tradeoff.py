#!/usr/bin/env python3
"""Serverless trade-off: should an edge app leave its reserved VMs?

§5 of the paper argues future edge platforms should embrace serverless
for elasticity and fine-grained billing, but warns that cold starts
undercut ultra-low-delay apps.  This script takes real (synthetic) NEP
apps, derives their request-rate shape from the CPU trace, and compares
a reserved VM against a function pool on cost and tail latency.

Run:  python examples/serverless_tradeoff.py
"""

import numpy as np

from repro import EdgeStudy, Scenario
from repro.billing.models import NEP_HARDWARE
from repro.core import format_table
from repro.platform.serverless import FunctionSpec, compare_vm_vs_faas

PEAK_RPS = 30.0


def main() -> None:
    study = EdgeStudy(Scenario.smoke_scale())
    dataset = study.nep.dataset
    rng = study.scenario.random.stream("serverless-example")
    spec = FunctionSpec(name="request-handler", memory_mb=512,
                        exec_ms=60.0, cold_start_ms=450.0)

    # One representative app per category, its diurnal shape taken from
    # the generated trace (one day of CPU usage as a request-rate proxy).
    seen: dict[str, str] = {}
    for app_id in dataset.app_ids_with_vms():
        category = dataset.apps[app_id].category
        seen.setdefault(category, app_id)

    rows = []
    for category, app_id in sorted(seen.items()):
        vm = dataset.vms_of_app(app_id)[0]
        day = dataset.cpu_series[vm.vm_id][: dataset.cpu_points_per_day]
        shape = day / max(float(day.max()), 1e-6)
        rate = PEAK_RPS * shape.astype(float)
        vm_monthly = NEP_HARDWARE.monthly_cost(vm.cpu_cores, vm.memory_gb,
                                               vm.disk_gb)
        result = compare_vm_vs_faas(
            rate, window_s=float(dataset.cpu_interval_minutes * 60),
            spec=spec, vm_monthly_rmb=vm_monthly,
            vm_capacity_rps=PEAK_RPS / 0.8, rng=rng)
        rows.append((
            category,
            vm_monthly,
            result.faas_monthly_rmb,
            "FaaS" if result.faas_cheaper else "VM",
            f"{result.faas_cold_start_fraction:.2%}",
            result.faas_p95_latency_ms,
        ))

    print(format_table(
        ["category", "VM (RMB/mo)", "FaaS (RMB/mo)", "cheaper",
         "cold starts", "FaaS p95 (ms)"],
        rows, title="Reserved VM vs serverless per app category"))
    print("\nThe paper's §5 trade-off in numbers: elasticity wins on "
          "idle-heavy apps, but the cold-start tail is what a 100 ms "
          "gaming budget cannot absorb.")


if __name__ == "__main__":
    main()
