"""Setup shim for environments without the `wheel` package (offline installs).

All real metadata lives in pyproject.toml; this file only enables
`pip install -e . --no-use-pep517` / `setup.py develop` code paths.
"""

from setuptools import setup

setup()
