"""Tests for virtual-cloud baseline clustering."""

import numpy as np
import pytest

from repro.billing.baseline import (
    CloudRegion,
    cluster_usage_to_cloud,
    nearest_region,
)
from repro.billing.usage import AppUsage, HardwareSubscription
from repro.errors import BillingError
from repro.geo.coords import GeoPoint

REGIONS = [
    CloudRegion("r-bj", "Beijing", GeoPoint(39.9, 116.4)),
    CloudRegion("r-gz", "Guangzhou", GeoPoint(23.1, 113.3)),
]

SITES = {
    "s-tianjin": GeoPoint(39.1, 117.2),    # near Beijing
    "s-shenzhen": GeoPoint(22.5, 114.1),   # near Guangzhou
    "s-dongguan": GeoPoint(23.0, 113.8),   # near Guangzhou
}


def _usage():
    usage = AppUsage(app_id="a0", trace_days=1, interval_minutes=30)
    usage.hardware.append(HardwareSubscription(8, 32, 100))
    points = 48
    usage.add_location_series("s-tianjin", "Tianjin",
                              np.full(points, 5.0))
    usage.add_location_series("s-shenzhen", "Shenzhen",
                              np.full(points, 3.0))
    usage.add_location_series("s-dongguan", "Dongguan",
                              np.full(points, 2.0))
    return usage


class TestNearestRegion:
    def test_picks_closest(self):
        assert nearest_region(GeoPoint(39.0, 117.0), REGIONS).region_id == "r-bj"
        assert nearest_region(GeoPoint(23.0, 113.0), REGIONS).region_id == "r-gz"

    def test_empty_rejected(self):
        with pytest.raises(BillingError):
            nearest_region(GeoPoint(0, 0), [])


class TestClustering:
    def test_traffic_merges_to_nearest_regions(self):
        clustered = cluster_usage_to_cloud(_usage(), SITES, REGIONS)
        assert set(clustered.location_series) == {"r-bj", "r-gz"}
        # Shenzhen 3 + Dongguan 2 merge onto the Guangzhou region.
        assert clustered.location_series["r-gz"].mean() == pytest.approx(5.0)
        assert clustered.location_series["r-bj"].mean() == pytest.approx(5.0)

    def test_total_traffic_conserved(self):
        usage = _usage()
        clustered = cluster_usage_to_cloud(usage, SITES, REGIONS)
        assert clustered.total_traffic_gb() == pytest.approx(
            usage.total_traffic_gb())

    def test_hardware_carries_over(self):
        clustered = cluster_usage_to_cloud(_usage(), SITES, REGIONS)
        assert clustered.hardware == _usage().hardware

    def test_region_city_recorded(self):
        clustered = cluster_usage_to_cloud(_usage(), SITES, REGIONS)
        assert clustered.location_city["r-gz"] == "Guangzhou"

    def test_unknown_site_rejected(self):
        usage = _usage()
        with pytest.raises(BillingError):
            cluster_usage_to_cloud(usage, {"s-tianjin": SITES["s-tianjin"]},
                                   REGIONS)
