"""Tests for the cloud billing engines (vCloud-1 / vCloud-2)."""

import numpy as np
import pytest

from repro.billing.cloud import (
    NetworkModel,
    alicloud_billing,
    huawei_billing,
)
from repro.billing.usage import AppUsage, HardwareSubscription


def _usage(series, interval=30, days=2, city="Beijing"):
    usage = AppUsage(app_id="a0", trace_days=days,
                     interval_minutes=interval)
    usage.hardware.append(HardwareSubscription(4, 16, 50))
    usage.add_location_series("r0", city, np.asarray(series, dtype=float))
    return usage


def _flat(level, days=2, interval=30):
    return np.full(days * 24 * 60 // interval, level)


def _bursty(peak, days=2, interval=30):
    """Near-zero traffic with one short burst per day."""
    points_per_day = 24 * 60 // interval
    series = np.full(days * points_per_day, 0.5)
    for day in range(days):
        series[day * points_per_day + 20] = peak
    return series


class TestNetworkModels:
    def test_quantity_model_scales_with_traffic(self):
        billing = alicloud_billing()
        small = billing.network_cost(_usage(_flat(10.0)),
                                     NetworkModel.ON_DEMAND_QUANTITY)
        large = billing.network_cost(_usage(_flat(20.0)),
                                     NetworkModel.ON_DEMAND_QUANTITY)
        assert large == pytest.approx(2 * small)

    def test_quantity_model_known_value(self):
        # 8 Mbps flat for a 30-day month = 2592 GB * 0.8 = 2073.6 RMB.
        usage = _usage(_flat(8.0, days=30), days=30)
        billing = alicloud_billing()
        cost = billing.network_cost(usage, NetworkModel.ON_DEMAND_QUANTITY)
        assert cost == pytest.approx(2592 * 0.8, rel=0.01)

    def test_prereserved_charges_monthly_max(self):
        billing = alicloud_billing()
        flat = billing.network_cost(_usage(_flat(10.0)),
                                    NetworkModel.PRE_RESERVED)
        bursty = billing.network_cost(_usage(_bursty(10.0)),
                                      NetworkModel.PRE_RESERVED)
        # Same peak -> same pre-reserved cost despite tiny average usage.
        assert bursty == pytest.approx(flat)

    def test_on_demand_bandwidth_rewards_burstiness(self):
        # Hourly billing only charges the burst hour at the peak rate.
        billing = alicloud_billing()
        flat = billing.network_cost(_usage(_flat(10.0)),
                                    NetworkModel.ON_DEMAND_BANDWIDTH)
        bursty = billing.network_cost(_usage(_bursty(10.0)),
                                      NetworkModel.ON_DEMAND_BANDWIDTH)
        assert bursty < 0.5 * flat

    def test_on_demand_bandwidth_cheapest_for_diurnal_traffic(self):
        # Table 3: "on-demand by bandwidth often costs less" than the
        # other two models for NEP-style traffic.
        points_per_day = 48
        t = np.arange(2 * points_per_day)
        diurnal = 20.0 * np.clip(np.sin(2 * np.pi * t / points_per_day),
                                 0.05, None)
        usage = _usage(diurnal)
        billing = alicloud_billing()
        costs = {model: billing.network_cost(usage, model)
                 for model in NetworkModel}
        assert (costs[NetworkModel.ON_DEMAND_BANDWIDTH]
                <= costs[NetworkModel.ON_DEMAND_QUANTITY])
        assert (costs[NetworkModel.ON_DEMAND_BANDWIDTH]
                <= costs[NetworkModel.PRE_RESERVED])

    def test_month_normalisation(self):
        # A 15-day trace bills like the same traffic over 30 days.
        billing = alicloud_billing()
        half = billing.network_cost(_usage(_flat(10.0, days=15), days=15),
                                    NetworkModel.ON_DEMAND_QUANTITY)
        full = billing.network_cost(_usage(_flat(10.0, days=30), days=30),
                                    NetworkModel.ON_DEMAND_QUANTITY)
        assert half == pytest.approx(full, rel=0.01)


class TestProviders:
    def test_provider_names(self):
        assert alicloud_billing().provider == "vCloud-1"
        assert huawei_billing().provider == "vCloud-2"

    def test_bill_breakdown_consistent(self):
        usage = _usage(_flat(10.0))
        breakdown = alicloud_billing().bill(
            usage, NetworkModel.ON_DEMAND_BANDWIDTH)
        assert breakdown.total_rmb == pytest.approx(
            breakdown.hardware_rmb + breakdown.network_rmb)
        assert 0.0 <= breakdown.network_share <= 1.0

    def test_huawei_and_alicloud_differ_on_hardware(self):
        usage = _usage(_flat(10.0))
        ali = alicloud_billing().hardware_cost(usage)
        hw = huawei_billing().hardware_cost(usage)
        assert ali != hw

    def test_hardware_cost_per_vm_additive(self):
        usage = _usage(_flat(10.0))
        single = alicloud_billing().hardware_cost(usage)
        usage.hardware.append(HardwareSubscription(4, 16, 50))
        assert alicloud_billing().hardware_cost(usage) == pytest.approx(
            2 * single)
