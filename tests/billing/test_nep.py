"""Tests for the NEP billing engine."""

import numpy as np
import pytest

from repro.billing.nep import CityPriceBook, NepBilling
from repro.billing.usage import AppUsage, HardwareSubscription
from repro.errors import BillingError


def _price_book(seed=0):
    return CityPriceBook(np.random.default_rng(seed))


def _usage(series_by_site, interval=30, days=2):
    usage = AppUsage(app_id="a0", trace_days=days,
                     interval_minutes=interval)
    usage.hardware.append(HardwareSubscription(8, 32, 100))
    for site_id, (city, series) in series_by_site.items():
        usage.add_location_series(site_id, city, np.asarray(series,
                                                            dtype=float))
    return usage


def _flat_series(level, days=2, interval=30):
    return np.full(days * 24 * 60 // interval, level)


class TestCityPriceBook:
    def test_prices_within_published_range(self):
        book = _price_book()
        for city in ("Beijing", "Chengdu", "Guangzhou", "Wuhan"):
            assert 15.0 <= book.unit_price(city) <= 50.0

    def test_price_stable_per_city(self):
        book = _price_book()
        assert book.unit_price("Beijing") == book.unit_price("Beijing")

    def test_cities_differ(self):
        book = _price_book()
        prices = {book.unit_price(c) for c in
                  ("Beijing", "Chengdu", "Guangzhou", "Wuhan", "Xian")}
        assert len(prices) > 1

    def test_empty_city_rejected(self):
        with pytest.raises(BillingError):
            _price_book().unit_price("")


class TestNepBilling:
    def test_hardware_cost(self):
        billing = NepBilling(_price_book())
        usage = _usage({"s0": ("Beijing", _flat_series(10.0))})
        assert billing.hardware_cost(usage) == pytest.approx(
            8 * 65 + 32 * 20 + 100 * 0.35)

    def test_network_cost_uses_daily_peak_p95(self):
        billing = NepBilling(_price_book())
        # Flat 10 Mbps: daily peaks are all 10, p95 = 10.
        usage = _usage({"s0": ("Beijing", _flat_series(10.0))})
        unit = _price_book().unit_price("Beijing")
        assert billing.network_cost(usage) == pytest.approx(10.0 * unit)

    def test_single_spike_day_barely_charged(self):
        # NEP bills p95 of daily peaks: one crazy day out of 30 doesn't
        # set the bill (Appendix D: the 4th-highest daily peak is used).
        points_per_day = 48
        series = np.full(30 * points_per_day, 10.0)
        series[5 * points_per_day] = 500.0  # one spike on day 5
        usage = _usage({"s0": ("Beijing", series)}, days=30)
        billing = NepBilling(_price_book())
        unit = _price_book().unit_price("Beijing")
        assert billing.network_cost(usage) < 20.0 * unit

    def test_sites_billed_separately(self):
        billing = NepBilling(_price_book())
        one_site = _usage({"s0": ("Beijing", _flat_series(20.0))})
        two_sites = _usage({
            "s0": ("Beijing", _flat_series(10.0)),
            "s1": ("Beijing", _flat_series(10.0)),
        })
        # Same total traffic, same city: same cost (peaks add linearly
        # for flat series).
        assert billing.network_cost(two_sites) == pytest.approx(
            billing.network_cost(one_site))

    def test_same_site_traffic_combined(self):
        # VMs on one site share a bill: two 5 Mbps VMs = one 10 Mbps bill.
        usage = _usage({"s0": ("Beijing", _flat_series(5.0))})
        usage.add_location_series("s0", "Beijing", _flat_series(5.0))
        billing = NepBilling(_price_book())
        unit = _price_book().unit_price("Beijing")
        assert billing.network_cost(usage) == pytest.approx(10.0 * unit)

    def test_bill_combines_hardware_and_network(self):
        billing = NepBilling(_price_book())
        usage = _usage({"s0": ("Beijing", _flat_series(10.0))})
        breakdown = billing.bill(usage)
        assert breakdown.total_rmb == pytest.approx(
            breakdown.hardware_rmb + breakdown.network_rmb)
        assert breakdown.provider == "NEP"

    def test_series_length_validated(self):
        usage = AppUsage(app_id="a0", trace_days=2, interval_minutes=30)
        with pytest.raises(BillingError):
            usage.add_location_series("s0", "Beijing", np.zeros(7))
