"""Tests for pricing primitives (Table 5)."""

import numpy as np
import pytest

from repro.billing.models import (
    ALICLOUD_HARDWARE,
    ALICLOUD_ON_DEMAND_HOURLY,
    CLOUD_PRERESERVED_MONTHLY,
    NEP_HARDWARE,
    TieredRate,
    series_to_daily_peaks,
    series_to_hourly_peaks,
    traffic_gb,
)
from repro.errors import BillingError


class TestHardwareRates:
    def test_nep_rates_match_table5(self):
        # Table 5: NEP charges 65/CPU/month, 20/GB/month, 0.35/GB storage.
        cost = NEP_HARDWARE.monthly_cost(8, 32, 100)
        assert cost == pytest.approx(8 * 65 + 32 * 20 + 100 * 0.35)

    def test_alicloud_fit_reproduces_published_bundles(self):
        # 2C+8G = 240/month and 2C+16G = 318/month in Table 5.
        assert ALICLOUD_HARDWARE.monthly_cost(2, 8, 0) == pytest.approx(
            240, rel=0.02)
        assert ALICLOUD_HARDWARE.monthly_cost(2, 16, 0) == pytest.approx(
            318, rel=0.02)

    def test_nep_hardware_pricier_than_alicloud(self):
        # §4.5: NEP charges 3%-20% more for hardware.
        nep = NEP_HARDWARE.monthly_cost(8, 32, 0)
        ali = ALICLOUD_HARDWARE.monthly_cost(8, 32, 0)
        assert 1.0 < nep / ali < 1.35

    def test_negative_subscription_rejected(self):
        with pytest.raises(BillingError):
            NEP_HARDWARE.monthly_cost(-1, 4, 0)


class TestTieredRate:
    def test_below_knee(self):
        rate = TieredRate(knee_mbps=5, below_rate=23, above_rate=80)
        assert rate.cost(2.0) == pytest.approx(46.0)  # Table 5 example

    def test_above_knee(self):
        # Table 5: 7 Mbps pre-reserved = 23*5 + 2*80 = 275.
        assert CLOUD_PRERESERVED_MONTHLY.cost(7.0) == pytest.approx(275.0)

    def test_hourly_example_from_table5(self):
        # 2 Mbps on-demand: (24*30) * (2*0.063) = 90.72/month.
        monthly = 24 * 30 * ALICLOUD_ON_DEMAND_HOURLY.cost(2.0)
        assert monthly == pytest.approx(90.72)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(BillingError):
            CLOUD_PRERESERVED_MONTHLY.cost(-1.0)


class TestSeriesReductions:
    def test_hourly_peaks(self):
        series = np.array([1, 9, 2, 3], dtype=float)
        assert series_to_hourly_peaks(series, 2).tolist() == [9, 3]

    def test_daily_peaks(self):
        series = np.arange(8, dtype=float)
        assert series_to_daily_peaks(series, 4).tolist() == [3, 7]

    def test_partial_hour_rejected(self):
        with pytest.raises(BillingError):
            series_to_hourly_peaks(np.zeros(5), 2)

    def test_partial_day_rejected(self):
        with pytest.raises(BillingError):
            series_to_daily_peaks(np.zeros(5), 2)

    def test_traffic_gb_known_value(self):
        # 8 Mbps sustained for one hour = 3.6 GB.
        series = np.full(12, 8.0)  # 12 x 5-minute readings
        assert traffic_gb(series, 5) == pytest.approx(3.6)

    def test_traffic_bad_interval_rejected(self):
        with pytest.raises(BillingError):
            traffic_gb(np.zeros(4), 0)
