"""Property-based invariants of the billing engines.

Bills must behave like bills: non-negative, monotone in usage, additive
across independent hardware, and consistent across the tier knee.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.billing.cloud import NetworkModel, alicloud_billing
from repro.billing.models import (
    CLOUD_PRERESERVED_MONTHLY,
    NEP_HARDWARE,
    TieredRate,
)
from repro.billing.nep import CityPriceBook, NepBilling
from repro.billing.usage import AppUsage, HardwareSubscription

POINTS = 48  # one day at 30-minute readings

bandwidth_series = st.lists(
    st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    min_size=POINTS, max_size=POINTS,
)


def _usage(series):
    usage = AppUsage(app_id="a", trace_days=1, interval_minutes=30)
    usage.hardware.append(HardwareSubscription(4, 16, 50))
    usage.add_location_series("s0", "Beijing", np.asarray(series))
    return usage


def _nep_billing():
    return NepBilling(CityPriceBook(np.random.default_rng(0)))


class TestTieredRateInvariants:
    @given(st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_non_negative(self, mbps):
        assert CLOUD_PRERESERVED_MONTHLY.cost(mbps) >= 0.0

    @given(st.floats(min_value=0.0, max_value=5_000.0, allow_nan=False),
           st.floats(min_value=0.0, max_value=5_000.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_monotone(self, a, b):
        low, high = sorted((a, b))
        assert (CLOUD_PRERESERVED_MONTHLY.cost(low)
                <= CLOUD_PRERESERVED_MONTHLY.cost(high) + 1e-9)

    @given(st.floats(min_value=0.1, max_value=100.0, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_continuous_at_knee(self, epsilon):
        rate = TieredRate(knee_mbps=5.0, below_rate=23.0, above_rate=80.0)
        just_below = rate.cost(5.0)
        just_above = rate.cost(5.0 + 1e-9)
        assert just_above == pytest.approx(just_below, abs=1e-5)


class TestNepBillingInvariants:
    @given(bandwidth_series)
    @settings(max_examples=30, deadline=None)
    def test_bill_non_negative(self, series):
        breakdown = _nep_billing().bill(_usage(series))
        assert breakdown.network_rmb >= 0.0
        assert breakdown.hardware_rmb > 0.0

    @given(bandwidth_series,
           st.floats(min_value=1.0, max_value=5.0, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_network_bill_scales_with_traffic(self, series, factor):
        billing = _nep_billing()
        base = billing.network_cost(_usage(series))
        scaled = billing.network_cost(
            _usage([v * factor for v in series]))
        assert scaled == pytest.approx(base * factor, rel=1e-6)

    @given(bandwidth_series)
    @settings(max_examples=30, deadline=None)
    def test_zero_traffic_zero_network_bill(self, series):
        billing = _nep_billing()
        zero = billing.network_cost(_usage([0.0] * POINTS))
        assert zero == 0.0


class TestCloudBillingInvariants:
    @given(bandwidth_series)
    @settings(max_examples=30, deadline=None)
    def test_all_models_non_negative(self, series):
        billing = alicloud_billing()
        usage = _usage(series)
        for model in NetworkModel:
            assert billing.network_cost(usage, model) >= 0.0

    @given(bandwidth_series)
    @settings(max_examples=30, deadline=None)
    def test_on_demand_bounded_by_peak_rental(self, series):
        # Paying hourly for each hour's actual peak can never exceed
        # renting the monthly peak for every hour of the month.  (The
        # reverse does NOT hold: Table 5's own example prices constant
        # 7 Mbps at 447.84/month on-demand vs 285 pre-reserved.)
        from repro.billing.models import ALICLOUD_ON_DEMAND_HOURLY

        billing = alicloud_billing()
        usage = _usage(series)
        hourly = billing.network_cost(usage,
                                      NetworkModel.ON_DEMAND_BANDWIDTH)
        peak = float(np.asarray(series).max())
        peak_rental = 720.0 * ALICLOUD_ON_DEMAND_HOURLY.cost(peak)
        assert hourly <= peak_rental + 1e-6

    @given(bandwidth_series)
    @settings(max_examples=30, deadline=None)
    def test_hardware_independent_of_traffic(self, series):
        billing = alicloud_billing()
        assert billing.hardware_cost(_usage(series)) == pytest.approx(
            billing.hardware_cost(_usage([0.0] * POINTS)))

    def test_hardware_rates_all_positive(self):
        for cores, mem, disk in ((1, 1, 0), (8, 32, 100), (32, 128, 2000)):
            assert NEP_HARDWARE.monthly_cost(cores, mem, disk) > 0
