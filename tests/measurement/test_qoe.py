"""Tests for the QoE testbeds: devices, gaming, streaming, 4-VM testbed."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measurement.qoe.devices import (
    ALL_DEVICES,
    GAMING_DEVICES,
    SAMSUNG_NOTE10,
    NEXUS6,
    device_by_name,
)
from repro.measurement.qoe.gaming import (
    CloudGamingSession,
    FLARE,
    PINGUS,
    GamingConfig,
)
from repro.measurement.qoe.gaming import mean_breakdown as gaming_breakdown
from repro.measurement.qoe.streaming import (
    LiveStreamingSession,
    Player,
    Resolution,
    StreamingConfig,
)
from repro.measurement.qoe.streaming import mean_breakdown as stream_breakdown
from repro.measurement.qoe.testbed import (
    PAPER_TABLE6_RTT_MS,
    QoETestbed,
    VM_PLACEMENTS,
)
from repro.netsim.access import AccessType


def _gaming_config(rtt=12.0, device=SAMSUNG_NOTE10, game=FLARE, **kw):
    return GamingConfig(device=device, game=game, rtt_ms=rtt,
                        downlink_mbps=80.0, uplink_mbps=40.0, **kw)


class TestDevices:
    def test_lookup(self):
        assert device_by_name("Nexus 6") is NEXUS6

    def test_unknown_rejected(self):
        with pytest.raises(MeasurementError):
            device_by_name("iPhone 99")

    def test_qualcomm_phones_for_gaming(self):
        # §2.1.1: GamingAnywhere needs Qualcomm hardware codecs.
        assert all("Snapdragon" in d.chipset for d in GAMING_DEVICES)

    def test_decode_under_10ms_everywhere(self):
        # §3.3.1: hardware decode <10 ms on every tested device.
        assert all(d.decode_ms < 10 for d in ALL_DEVICES)

    def test_display_wait_is_half_refresh(self):
        assert SAMSUNG_NOTE10.display_wait_ms == pytest.approx(1000 / 60 / 2)


class TestGamingPipeline:
    def test_breakdown_sums_to_total(self, rng):
        session = CloudGamingSession(_gaming_config(), rng)
        trial = session.sample_trial()
        parts = (trial.input_ms + trial.uplink_ms + trial.server_ms
                 + trial.downlink_ms + trial.decode_ms + trial.display_ms)
        assert trial.response_delay_ms == pytest.approx(parts)

    def test_edge_under_100ms(self, rng):
        # Figure 6: edge + WiFi achieves <100 ms response delay.
        session = CloudGamingSession(_gaming_config(rtt=12.0), rng)
        delays = [t.response_delay_ms for t in session.run(50)]
        assert np.mean(delays) < 105

    def test_server_side_dominates(self, rng):
        # §3.3.1 breakdown: ~70 ms of the delay is server-side.
        session = CloudGamingSession(_gaming_config(rtt=12.0), rng)
        breakdown = gaming_breakdown(session.run(50))
        assert breakdown["server_ms"] > 0.5 * breakdown["response_delay_ms"]

    def test_rtt_increases_delay(self, rng):
        near = CloudGamingSession(_gaming_config(rtt=12.0),
                                  np.random.default_rng(1)).run(50)
        far = CloudGamingSession(_gaming_config(rtt=55.0),
                                 np.random.default_rng(1)).run(50)
        gap = (np.mean([t.response_delay_ms for t in far])
               - np.mean([t.response_delay_ms for t in near]))
        assert 30 <= gap <= 60  # "remote cloud VMs lengthen ... up to 60ms"

    def test_gpu_rendering_saves_10_to_20ms(self, rng):
        cpu = CloudGamingSession(_gaming_config(),
                                 np.random.default_rng(2)).run(50)
        gpu = CloudGamingSession(_gaming_config(gpu_rendering=True),
                                 np.random.default_rng(2)).run(50)
        saving = (np.mean([t.response_delay_ms for t in cpu])
                  - np.mean([t.response_delay_ms for t in gpu]))
        assert 8 <= saving <= 22

    def test_extra_cores_do_not_help(self, rng):
        # §3.3.1: "increasing CPU cores won't help".
        few = CloudGamingSession(_gaming_config(server_cores=2),
                                 np.random.default_rng(3)).run(50)
        many = CloudGamingSession(_gaming_config(server_cores=16),
                                  np.random.default_rng(3)).run(50)
        assert (np.mean([t.response_delay_ms for t in few])
                == pytest.approx(np.mean([t.response_delay_ms for t in many]),
                                 rel=0.05))

    def test_pingus_slower_and_jitterier_than_flare(self):
        flare = CloudGamingSession(_gaming_config(game=FLARE),
                                   np.random.default_rng(4)).run(80)
        pingus = CloudGamingSession(_gaming_config(game=PINGUS),
                                    np.random.default_rng(4)).run(80)
        assert (np.mean([t.response_delay_ms for t in pingus])
                > np.mean([t.response_delay_ms for t in flare]))
        assert (np.std([t.server_ms for t in pingus])
                > np.std([t.server_ms for t in flare]))

    def test_invalid_config_rejected(self):
        with pytest.raises(MeasurementError):
            _gaming_config(rtt=0.0)

    def test_zero_trials_rejected(self, rng):
        with pytest.raises(MeasurementError):
            CloudGamingSession(_gaming_config(), rng).run(0)


def _stream_config(rtt=12.0, **kw):
    return StreamingConfig(rtt_ms=rtt, uplink_mbps=40.0,
                           downlink_mbps=80.0, **kw)


class TestStreamingPipeline:
    def test_breakdown_sums_to_total(self, rng):
        trial = LiveStreamingSession(_stream_config(), rng).sample_trial()
        parts = (trial.capture_ms + trial.encode_ms + trial.network_ms
                 + trial.server_ms + trial.decode_ms + trial.render_ms
                 + trial.buffer_ms)
        assert trial.streaming_delay_ms == pytest.approx(parts)

    def test_base_delay_near_400ms(self, rng):
        # §3.3.2: ~400 ms without jitter buffer or transcoding.
        trials = LiveStreamingSession(_stream_config(), rng).run(50)
        assert np.mean([t.streaming_delay_ms for t in trials]) == \
            pytest.approx(400, abs=80)

    def test_network_is_not_the_bottleneck(self, rng):
        # §3.3.2 breakdown: network ~50 ms of ~400 ms.
        breakdown = stream_breakdown(
            LiveStreamingSession(_stream_config(), rng).run(50))
        assert breakdown["network_ms"] < 0.3 * breakdown["streaming_delay_ms"]
        assert breakdown["capture_ms"] > breakdown["network_ms"]

    def test_transcoding_roughly_doubles_delay(self, rng):
        base = LiveStreamingSession(_stream_config(),
                                    np.random.default_rng(5)).run(50)
        trans = LiveStreamingSession(_stream_config(transcode=True),
                                     np.random.default_rng(5)).run(50)
        ratio = (np.mean([t.streaming_delay_ms for t in trans])
                 / np.mean([t.streaming_delay_ms for t in base]))
        assert 1.6 <= ratio <= 2.6  # "around 400ms (2x)"

    def test_720p_faster_than_1080p(self, rng):
        hi = LiveStreamingSession(_stream_config(resolution=Resolution.P1080),
                                  np.random.default_rng(6)).run(50)
        lo = LiveStreamingSession(_stream_config(resolution=Resolution.P720),
                                  np.random.default_rng(6)).run(50)
        saving = (np.mean([t.streaming_delay_ms for t in hi])
                  - np.mean([t.streaming_delay_ms for t in lo]))
        assert saving > 15  # reduced transmission + rendering

    def test_ffplay_90ms_faster_than_mplayer(self, rng):
        mplayer = LiveStreamingSession(
            _stream_config(player=Player.MPLAYER),
            np.random.default_rng(7)).run(50)
        ffplay = LiveStreamingSession(
            _stream_config(player=Player.FFPLAY),
            np.random.default_rng(7)).run(50)
        saving = (np.mean([t.streaming_delay_ms for t in mplayer])
                  - np.mean([t.streaming_delay_ms for t in ffplay]))
        assert saving == pytest.approx(90, abs=25)

    def test_jitter_buffer_pushes_toward_2s(self, rng):
        # §3.3.2: with a 2 MB buffer the delay reaches ~2 seconds.
        trials = LiveStreamingSession(
            _stream_config(jitter_buffer_mb=2.0), rng).run(50)
        assert np.mean([t.streaming_delay_ms for t in trials]) > 1500

    def test_buffer_washes_out_edge_advantage(self, rng):
        def mean_delay(rtt, buffer_mb):
            trials = LiveStreamingSession(
                _stream_config(rtt=rtt, jitter_buffer_mb=buffer_mb),
                np.random.default_rng(8)).run(50)
            return np.mean([t.streaming_delay_ms for t in trials])

        no_buffer_gap = mean_delay(55, 0.0) - mean_delay(12, 0.0)
        buffer_gap = abs(mean_delay(55, 2.0) - mean_delay(12, 2.0))
        assert buffer_gap < no_buffer_gap * 3  # relative difference shrinks
        assert no_buffer_gap / mean_delay(12, 0.0) > \
            buffer_gap / mean_delay(12, 2.0)

    def test_invalid_config_rejected(self):
        with pytest.raises(MeasurementError):
            _stream_config(rtt=-1.0)
        with pytest.raises(MeasurementError):
            _stream_config(jitter_buffer_mb=-0.1)


class TestQoETestbed:
    def test_four_vms_at_paper_distances(self, rng):
        testbed = QoETestbed(rng)
        assert [vm.label for vm in testbed.vms] == \
            [label for label, _, _ in VM_PLACEMENTS]
        for vm, (_, distance, _) in zip(testbed.vms, VM_PLACEMENTS):
            origin_distance = testbed.vm(vm.label).location
            # distances approximate the flat-earth displacement
            assert vm.distance_km == distance

    def test_rtt_increases_with_distance(self, rng):
        testbed = QoETestbed(rng)
        rtts = [testbed.measure_rtt_ms(AccessType.WIFI, vm.label, pings=10)
                for vm in testbed.vms]
        assert rtts == sorted(rtts)

    def test_rtt_table_covers_paper_table6(self, rng):
        table = QoETestbed(rng).rtt_table(pings=5)
        assert set(table) == set(PAPER_TABLE6_RTT_MS)
        for access, row in table.items():
            assert set(row) == set(PAPER_TABLE6_RTT_MS[access])

    def test_unknown_vm_rejected(self, rng):
        with pytest.raises(MeasurementError):
            QoETestbed(rng).vm("Cloud-9")

    def test_link_capacities_positive(self, rng):
        down, up = QoETestbed(rng).link_capacities_mbps(AccessType.FIVE_G)
        assert down > 0 and up > 0
