"""Tests for ping and iperf probe runners."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.geo.coords import GeoPoint
from repro.measurement.iperf import EDGE_VM_PORT_MBPS, run_iperf_test
from repro.measurement.ping import run_ping_test
from repro.netsim.access import AccessType, access_profile
from repro.netsim.routing import TargetSiteSpec, UESpec, build_route

BEIJING = GeoPoint(39.90, 116.40)
NEARBY = GeoPoint(39.95, 116.50)


@pytest.fixture()
def route(rng):
    return build_route(UESpec("u", BEIJING, AccessType.WIFI),
                       TargetSiteSpec("edge-vm", NEARBY, True), rng)


class TestPing:
    def test_samples_dropped_by_default(self, route, rng):
        # Campaigns keep only the summary stats; raw samples cost memory.
        result = run_ping_test(route, 30, rng)
        assert result.samples_ms is None

    def test_thirty_pings_when_keeping_samples(self, route, rng):
        result = run_ping_test(route, 30, rng, keep_samples=True)
        assert len(result.samples_ms) == 30

    def test_summary_statistics(self, route, rng):
        result = run_ping_test(route, 30, rng, keep_samples=True)
        assert result.mean_ms > 0
        assert result.std_ms >= 0
        assert result.cv == pytest.approx(result.std_ms / result.mean_ms)
        samples = np.asarray(result.samples_ms)
        assert result.mean_ms == pytest.approx(samples.mean())
        assert result.std_ms == pytest.approx(samples.std())

    def test_traceroute_attached(self, route, rng):
        result = run_ping_test(route, 10, rng)
        assert result.hop_count == route.hop_count
        assert result.target_label == "edge-vm"

    def test_zero_repetitions_rejected(self, route, rng):
        with pytest.raises(MeasurementError):
            run_ping_test(route, 0, rng)


class TestIperf:
    def test_bidirectional_results(self, route, rng):
        profile = access_profile(AccessType.WIFI)
        result = run_iperf_test(route, profile, 15, rng)
        assert result.downlink_mbps > 0
        assert result.uplink_mbps > 0
        assert result.distance_km == pytest.approx(route.distance_km)

    def test_vm_port_caps_throughput(self, route, rng):
        profile = access_profile(AccessType.WIRED)
        result = run_iperf_test(route, profile, 15, rng, vm_port_mbps=10.0)
        assert result.downlink_mbps <= 10.0
        assert result.uplink_mbps <= 10.0

    def test_default_port_is_1gbps(self):
        # §2.1.1: each throughput VM has 1 Gbps capacity.
        assert EDGE_VM_PORT_MBPS == 1000.0
