"""Tests for ping and iperf probe runners."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.geo.coords import GeoPoint
from repro.measurement.iperf import EDGE_VM_PORT_MBPS, run_iperf_test
from repro.measurement.ping import PingResult, run_ping_test, run_ping_tests
from repro.netsim.traceroute import TracerouteResult
from repro.netsim.access import AccessType, access_profile
from repro.netsim.routing import TargetSiteSpec, UESpec, build_route

BEIJING = GeoPoint(39.90, 116.40)
NEARBY = GeoPoint(39.95, 116.50)


@pytest.fixture()
def route(rng):
    return build_route(UESpec("u", BEIJING, AccessType.WIFI),
                       TargetSiteSpec("edge-vm", NEARBY, True), rng)


class TestPing:
    def test_samples_dropped_by_default(self, route, rng):
        # Campaigns keep only the summary stats; raw samples cost memory.
        result = run_ping_test(route, 30, rng)
        assert result.samples_ms is None

    def test_thirty_pings_when_keeping_samples(self, route, rng):
        result = run_ping_test(route, 30, rng, keep_samples=True)
        assert len(result.samples_ms) == 30

    def test_summary_statistics(self, route, rng):
        result = run_ping_test(route, 30, rng, keep_samples=True)
        assert result.mean_ms > 0
        assert result.std_ms >= 0
        assert result.cv == pytest.approx(result.std_ms / result.mean_ms)
        samples = np.asarray(result.samples_ms)
        assert result.mean_ms == pytest.approx(samples.mean())
        assert result.std_ms == pytest.approx(samples.std())

    def test_traceroute_attached(self, route, rng):
        result = run_ping_test(route, 10, rng)
        assert result.hop_count == route.hop_count
        assert result.target_label == "edge-vm"

    def test_zero_repetitions_rejected(self, route, rng):
        with pytest.raises(MeasurementError):
            run_ping_test(route, 0, rng)


class TestPingLoss:
    """Regression guard: lost probes must never produce NaN statistics."""

    def test_all_pings_lost_yields_failed_result(self, route, rng):
        result, = run_ping_tests([route], 10, rng,
                                 loss_probability=[1.0])
        assert result.failed
        assert result.sent == 10 and result.lost == 10
        assert result.loss_rate == 1.0
        assert result.mean_ms == 0.0
        assert result.std_ms == 0.0
        assert result.cv == 0.0
        assert not np.isnan(result.mean_ms)

    def test_all_lost_with_samples_kept_is_empty(self, route, rng):
        result, = run_ping_tests([route], 10, rng, keep_samples=True,
                                 loss_probability=[1.0])
        assert result.samples_ms == ()

    def test_no_loss_params_means_no_loss(self, route, rng):
        result, = run_ping_tests([route], 10, rng)
        assert result.sent == 10 and result.lost == 0
        assert not result.failed
        assert result.loss_rate == 0.0

    def test_partial_loss_uses_surviving_pings(self, route, rng):
        result, = run_ping_tests([route], 30, rng, keep_samples=True,
                                 loss_probability=[0.5])
        assert 0 < result.lost < result.sent
        assert len(result.samples_ms) == result.sent - result.lost
        assert result.mean_ms == pytest.approx(
            np.mean(result.samples_ms))

    def test_zero_loss_matches_fault_free_path(self, route):
        baseline, = run_ping_tests([route], 20,
                                   np.random.default_rng(7))
        guarded, = run_ping_tests([route], 20, np.random.default_rng(7),
                                  loss_probability=[0.0],
                                  loss_rng=np.random.default_rng(99))
        assert guarded.mean_ms == baseline.mean_ms
        assert guarded.std_ms == baseline.std_ms

    def test_extra_latency_shifts_mean(self, route):
        baseline, = run_ping_tests([route], 20,
                                   np.random.default_rng(7))
        slowed, = run_ping_tests([route], 20, np.random.default_rng(7),
                                 extra_latency_ms=[50.0])
        assert slowed.mean_ms == pytest.approx(baseline.mean_ms + 50.0)

    def test_bad_fault_vectors_rejected(self, route, rng):
        with pytest.raises(MeasurementError):
            run_ping_tests([route], 10, rng, loss_probability=[0.5, 0.5])
        with pytest.raises(MeasurementError):
            run_ping_tests([route], 10, rng, loss_probability=[1.5])
        with pytest.raises(MeasurementError):
            run_ping_tests([route], 10, rng, extra_latency_ms=[-1.0])

    def test_synthetic_all_lost_result_properties(self):
        trace = TracerouteResult("t", 0.0, (), (), ())
        result = PingResult(target_label="t", mean_ms=0.0, std_ms=0.0,
                            traceroute=trace, sent=30, lost=30)
        assert result.failed and result.loss_rate == 1.0
        unsent = PingResult(target_label="t", mean_ms=0.0, std_ms=0.0,
                            traceroute=trace)
        assert not unsent.failed and unsent.loss_rate == 0.0


class TestIperf:
    def test_bidirectional_results(self, route, rng):
        profile = access_profile(AccessType.WIFI)
        result = run_iperf_test(route, profile, 15, rng)
        assert result.downlink_mbps > 0
        assert result.uplink_mbps > 0
        assert result.distance_km == pytest.approx(route.distance_km)

    def test_vm_port_caps_throughput(self, route, rng):
        profile = access_profile(AccessType.WIRED)
        result = run_iperf_test(route, profile, 15, rng, vm_port_mbps=10.0)
        assert result.downlink_mbps <= 10.0
        assert result.uplink_mbps <= 10.0

    def test_default_port_is_1gbps(self):
        # §2.1.1: each throughput VM has 1 Gbps capacity.
        assert EDGE_VM_PORT_MBPS == 1000.0
