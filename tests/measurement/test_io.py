"""Tests for the campaign (performance dataset) disk round-trip."""

import pytest

from repro.errors import MeasurementError
from repro.measurement.io import load_campaign, save_campaign


@pytest.fixture()
def full_results(study):
    from repro.measurement.campaign import CampaignResults

    return CampaignResults(
        latency=list(study.latency_results.latency),
        throughput=list(study.throughput_results.throughput),
    )


class TestRoundTrip:
    def test_latency_preserved(self, full_results, tmp_path):
        root = save_campaign(full_results, tmp_path / "c")
        loaded = load_campaign(root)
        assert len(loaded.latency) == len(full_results.latency)
        assert loaded.latency[0].participant_id == \
            full_results.latency[0].participant_id
        assert loaded.latency[0].mean_rtt_ms == pytest.approx(
            full_results.latency[0].mean_rtt_ms, rel=1e-5)

    def test_throughput_preserved(self, full_results, tmp_path):
        root = save_campaign(full_results, tmp_path / "c")
        loaded = load_campaign(root)
        assert len(loaded.throughput) == len(full_results.throughput)
        assert loaded.throughput[0].result.downlink_mbps == pytest.approx(
            full_results.throughput[0].result.downlink_mbps, rel=1e-5)

    def test_hidden_hop_shares_survive(self, full_results, tmp_path):
        from repro.netsim.access import AccessType

        five_g = [o for o in full_results.latency
                  if o.access is AccessType.FIVE_G]
        root = save_campaign(full_results, tmp_path / "c")
        loaded = load_campaign(root)
        loaded_5g = [o for o in loaded.latency
                     if o.access is AccessType.FIVE_G]
        if five_g:  # smoke panels can lack 5G users
            assert loaded_5g[0].hop_shares[0] is None
            # Shares serialise at 6 decimal places.
            for loaded_share, original in zip(loaded_5g[0].hop_shares,
                                              five_g[0].hop_shares):
                if original is None:
                    assert loaded_share is None
                else:
                    assert loaded_share == pytest.approx(original,
                                                         abs=1e-6)

    def test_analyses_run_on_reloaded_campaign(self, full_results,
                                               tmp_path):
        from repro.core.latency_analysis import per_user_latency

        root = save_campaign(full_results, tmp_path / "c")
        loaded = load_campaign(root)
        records = per_user_latency(loaded.latency)
        baseline = per_user_latency(full_results.latency)
        assert len(records) == len(baseline)
        assert records[0].nearest_edge_rtt == pytest.approx(
            baseline[0].nearest_edge_rtt, rel=1e-5)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(MeasurementError):
            load_campaign(tmp_path / "nope")

    def test_malformed_row_rejected(self, full_results, tmp_path):
        root = save_campaign(full_results, tmp_path / "c")
        lines = (root / "latency.csv").read_text().splitlines()
        fields = lines[1].split(",")
        fields[7] = "not-a-number"  # mean_rtt_ms column
        lines[1] = ",".join(fields)
        (root / "latency.csv").write_text("\n".join(lines) + "\n")
        with pytest.raises(MeasurementError):
            load_campaign(root)
