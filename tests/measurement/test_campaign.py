"""Tests for the crowd-sourced campaign orchestration."""

import numpy as np
import pytest

from repro.measurement.campaign import ACCESS_SHARES, FIVE_G_CITY
from repro.netsim.access import AccessType


class TestRecruitment:
    def test_panel_size(self, study, scenario):
        assert len(study.participants) == scenario.participant_count

    def test_access_shares_roughly_match_paper(self, study):
        # §2.1.1: 59%/34%/7% of tests on WiFi/LTE/5G.
        participants = study.participants
        shares = {
            access: np.mean([p.access is access for p in participants])
            for access in AccessType.wireless()
        }
        for access, target in ACCESS_SHARES.items():
            assert shares[access] == pytest.approx(target, abs=0.2)

    def test_5g_users_concentrated_in_beijing(self, study):
        # §3.1: "almost all our 5G testing results are from Beijing".
        # Re-recruit a full-size panel so the statistic is stable.
        from repro.config import Scenario
        from repro.measurement.campaign import CrowdCampaign

        campaign = CrowdCampaign(
            Scenario(), study.nep.platform, study.alicloud)
        five_g = [p for p in campaign.recruit()
                  if p.access is AccessType.FIVE_G]
        assert len(five_g) >= 3
        in_beijing = np.mean([p.city == FIVE_G_CITY for p in five_g])
        assert in_beijing >= 0.6

    def test_participants_have_distinct_ids(self, study):
        ids = [p.participant_id for p in study.participants]
        assert len(ids) == len(set(ids))


class TestLatencyCampaign:
    def test_every_participant_probed(self, study, latency_results):
        probed = {o.participant_id for o in latency_results.latency}
        assert probed == {p.participant_id for p in study.participants}

    def test_both_target_kinds_present(self, latency_results):
        kinds = {o.target_kind for o in latency_results.latency}
        assert kinds == {"edge", "cloud"}

    def test_all_cloud_regions_probed(self, study, latency_results):
        cloud_targets = {o.target_id for o in latency_results.latency
                         if o.target_kind == "cloud"}
        assert cloud_targets == {s.site_id for s in study.alicloud.sites}

    def test_edge_targets_are_nearby(self, latency_results):
        # Each participant probes its nearest edge sites only.
        edge = [o for o in latency_results.latency
                if o.target_kind == "edge"]
        assert np.median([o.distance_km for o in edge]) < 1500

    def test_observations_have_positive_rtt(self, latency_results):
        assert all(o.mean_rtt_ms > 0 for o in latency_results.latency)

    def test_hop_shares_recorded(self, latency_results):
        obs = latency_results.latency[0]
        assert len(obs.hop_shares) == obs.hop_count


class TestThroughputCampaign:
    def test_tester_subset_size(self, study, throughput_results, scenario):
        testers = {o.participant_id for o in throughput_results.throughput}
        assert len(testers) == scenario.throughput_participants

    def test_each_tester_hits_every_vm(self, throughput_results, scenario):
        by_tester = {}
        for obs in throughput_results.throughput:
            by_tester.setdefault(obs.participant_id, set()).add(
                obs.result.target_label)
        for targets in by_tester.values():
            assert len(targets) == scenario.throughput_edge_vms

    def test_wired_testers_included(self, throughput_results):
        # Figure 5 includes a wired-access panel.
        accesses = {o.access for o in throughput_results.throughput}
        assert AccessType.WIRED in accesses

    def test_results_positive(self, throughput_results):
        for obs in throughput_results.throughput:
            assert obs.result.downlink_mbps > 0
            assert obs.result.uplink_mbps > 0
