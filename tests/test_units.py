"""Tests for unit conversions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units


class TestConversions:
    def test_ms_seconds_round_trip(self):
        assert units.ms_to_seconds(1500.0) == 1.5
        assert units.seconds_to_ms(1.5) == 1500.0

    def test_mbps_to_bytes_per_second(self):
        # 8 Mbps = 1 MB/s.
        assert units.mbps_to_bytes_per_second(8.0) == pytest.approx(1e6)

    def test_gb_round_trip(self):
        assert units.bytes_to_gb(units.gb_to_bytes(2.5)) == pytest.approx(2.5)

    def test_traffic_volume(self):
        # 8 Mbps for 1000 s moves 1 GB.
        assert units.mbps_for_seconds_to_gb(8.0, 1000.0) == pytest.approx(1.0)

    @given(st.floats(min_value=0.001, max_value=1e6, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_time_round_trip_property(self, value):
        assert units.ms_to_seconds(units.seconds_to_ms(value)) == \
            pytest.approx(value)


class TestTransmissionDelay:
    def test_known_value(self):
        # 1500 bytes at 12 Mbps = 1 ms.
        assert units.transmission_delay_ms(1500.0, 12.0) == pytest.approx(1.0)

    def test_faster_link_is_faster(self):
        slow = units.transmission_delay_ms(1e6, 10.0)
        fast = units.transmission_delay_ms(1e6, 100.0)
        assert fast == pytest.approx(slow / 10)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            units.transmission_delay_ms(100.0, 0.0)


class TestPropagationDelay:
    def test_fiber_rule_of_thumb(self):
        # 200 km of fibre ~ 1 ms one way (without inflation).
        assert units.propagation_delay_ms(200.0, inflation=1.0) == \
            pytest.approx(1.0)

    def test_inflation_scales(self):
        base = units.propagation_delay_ms(1000.0, inflation=1.0)
        inflated = units.propagation_delay_ms(1000.0, inflation=1.6)
        assert inflated == pytest.approx(1.6 * base)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            units.propagation_delay_ms(-1.0)
