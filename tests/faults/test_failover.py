"""Tests for health-aware scheduling and crash evacuation."""

import pytest

from repro.errors import SchedulingError
from repro.faults.failover import HealthAwareScheduler, simulate_failover
from repro.faults.schedule import FaultSchedule, OutageWindow, ServerCrash
from repro.geo.coords import GeoPoint
from repro.platform.cluster import Platform
from repro.platform.entities import (
    App,
    Customer,
    PlatformKind,
    ResourceVector,
    Server,
    Site,
    VM,
    VMSpec,
)
from repro.platform.scheduling import NearestSiteScheduler


def _tiny_platform(second_server: bool = True) -> Platform:
    """One or two servers on one site, with one placed VM on srv-a."""
    platform = Platform(name="tiny", kind=PlatformKind.EDGE)
    servers = [Server("srv-a", "site-1",
                      ResourceVector(16.0, 32.0, 500.0))]
    if second_server:
        servers.append(Server("srv-b", "site-1",
                              ResourceVector(16.0, 32.0, 500.0)))
    platform.add_site(Site("site-1", "Site 1", "cityville", "prov",
                           GeoPoint(30.0, 110.0), servers=servers))
    platform.register_customer(Customer("cust-1", "Cust"))
    platform.register_app(App("app-1", "cust-1", "video", "img-1"))
    vm = VM("vm-1", VMSpec(4, 8, disk_gb=40), "cust-1", "app-1", "img-1")
    platform.register_vm(vm)
    platform.server("srv-a").attach(vm)
    return platform


def _schedule(outages=(), crashes=()) -> FaultSchedule:
    return FaultSchedule(
        profile_name="paper", horizon_minutes=10_000.0,
        outages=list(outages), crashes=list(crashes), episodes=[],
        edge_site_ids=("site-1",), cloud_site_ids=())


class TestSimulateFailover:
    def test_evacuates_to_healthy_sibling(self):
        platform = _tiny_platform()
        report = simulate_failover(
            platform,
            _schedule(crashes=[ServerCrash("srv-a", "site-1",
                                           100.0, 400.0)]))
        assert report.crashes == 1
        assert report.crashes_with_vms == 1
        assert report.evacuated_vms == 1
        assert report.stranded_vms == 0
        record = report.records[0]
        assert record.to_server == "srv-b"
        assert not record.stranded
        assert record.downtime_seconds > 0
        assert report.total_data_moved_gb > 0

    def test_original_platform_untouched(self):
        platform = _tiny_platform()
        simulate_failover(
            platform,
            _schedule(crashes=[ServerCrash("srv-a", "site-1",
                                           100.0, 400.0)]))
        assert platform.vms["vm-1"].server_id == "srv-a"
        assert "vm-1" in platform.server("srv-a").vm_ids
        platform.validate()

    def test_no_feasible_target_strands_vm(self):
        platform = _tiny_platform(second_server=False)
        crash = ServerCrash("srv-a", "site-1", 100.0, 400.0)
        report = simulate_failover(platform, _schedule(crashes=[crash]))
        assert report.evacuated_vms == 0
        assert report.stranded_vms == 1
        record = report.records[0]
        assert record.stranded and record.to_server is None
        # A stranded VM eats the full recovery window as downtime.
        assert record.downtime_seconds == pytest.approx(
            crash.duration_min * 60.0)

    def test_empty_schedule_is_noop(self):
        report = simulate_failover(_tiny_platform(), _schedule())
        assert report.crashes == 0
        assert report.affected_vms == 0
        assert report.mean_vm_downtime_seconds == 0.0

    def test_smoke_study_failover_is_consistent(self, faulty_study):
        report = faulty_study.failover
        assert report.crashes == len(faulty_study.faults.server_crashes)
        assert report.affected_vms == len(report.records)
        # The shared study platform must survive the replay untouched.
        faulty_study.nep.platform.validate()


class TestHealthAwareScheduler:
    def test_passthrough_when_healthy(self):
        platform = _tiny_platform()
        scheduler = HealthAwareScheduler(NearestSiteScheduler(), _schedule())
        decision = scheduler.schedule(platform, "app-1",
                                      GeoPoint(30.0, 110.0))
        assert decision.vm_id == "vm-1"
        assert scheduler.fallbacks == 0

    def test_falls_back_from_dead_server(self):
        platform = _tiny_platform()
        vm2 = VM("vm-2", VMSpec(4, 8, disk_gb=40), "cust-1", "app-1",
                 "img-1")
        platform.register_vm(vm2)
        platform.server("srv-b").attach(vm2)
        schedule = _schedule(crashes=[ServerCrash("srv-a", "site-1",
                                                  0.0, 500.0)])
        scheduler = HealthAwareScheduler(NearestSiteScheduler(), schedule,
                                         at_minute=100.0)
        decision = scheduler.schedule(platform, "app-1",
                                      GeoPoint(30.0, 110.0))
        assert decision.vm_id == "vm-2"
        assert scheduler.fallbacks == 1

    def test_no_healthy_vm_raises(self):
        platform = _tiny_platform()
        schedule = _schedule(outages=[OutageWindow("site-1", 0.0, 500.0)])
        scheduler = HealthAwareScheduler(NearestSiteScheduler(), schedule,
                                         at_minute=100.0)
        with pytest.raises(SchedulingError):
            scheduler.schedule(platform, "app-1", GeoPoint(30.0, 110.0))

    def test_healthy_again_after_recovery(self):
        platform = _tiny_platform()
        schedule = _schedule(crashes=[ServerCrash("srv-a", "site-1",
                                                  0.0, 500.0)])
        scheduler = HealthAwareScheduler(NearestSiteScheduler(), schedule,
                                         at_minute=600.0)
        decision = scheduler.schedule(platform, "app-1",
                                      GeoPoint(30.0, 110.0))
        assert decision.vm_id == "vm-1"
        assert scheduler.fallbacks == 0
