"""Tests for the deterministic fault schedule."""

import dataclasses

import pytest

from repro import Scenario
from repro.errors import FaultError
from repro.faults.schedule import (
    FaultProfile,
    FaultSchedule,
    OutageWindow,
    ServerCrash,
    build_fault_schedule,
    fault_profile,
)


def _zero_rate_profile() -> FaultProfile:
    return dataclasses.replace(
        fault_profile("paper"),
        name="calm",
        edge_outages_per_site_30d=0.0,
        cloud_outages_per_region_30d=0.0,
        server_crashes_per_server_30d=0.0,
        degradation_episodes_per_city_30d=0.0,
    )


class TestProfiles:
    def test_off_is_none(self):
        assert fault_profile("off") is None

    def test_paper_and_harsh_exist(self):
        assert fault_profile("paper").name == "paper"
        assert fault_profile("harsh").name == "harsh"

    def test_unknown_profile_raises(self):
        with pytest.raises(FaultError):
            fault_profile("storm")

    def test_harsh_is_harsher_than_paper(self):
        paper, harsh = fault_profile("paper"), fault_profile("harsh")
        assert harsh.edge_outages_per_site_30d > \
            paper.edge_outages_per_site_30d
        assert harsh.server_crashes_per_server_30d > \
            paper.server_crashes_per_server_30d

    def test_invalid_loss_range_rejected(self):
        with pytest.raises(FaultError):
            dataclasses.replace(fault_profile("paper"),
                                degradation_loss_min=0.9,
                                degradation_loss_max=0.1)


class TestBuild:
    def test_off_scenario_yields_none(self, study):
        schedule = build_fault_schedule(
            study.scenario, study.nep.platform, study.alicloud)
        assert schedule is None

    def test_same_seed_bit_identical(self, study):
        scenario = study.scenario.with_overrides(fault_profile="paper")
        one = build_fault_schedule(scenario, study.nep.platform,
                                   study.alicloud)
        two = build_fault_schedule(scenario, study.nep.platform,
                                   study.alicloud)
        assert one.outages == two.outages
        assert one.server_crashes == two.server_crashes
        assert one.episodes == two.episodes

    def test_different_seed_differs(self, study):
        base = study.scenario.with_overrides(fault_profile="paper")
        one = build_fault_schedule(base, study.nep.platform, study.alicloud)
        other = build_fault_schedule(base.with_overrides(seed=99),
                                     study.nep.platform, study.alicloud)
        assert one.outages != other.outages

    def test_zero_rates_yield_empty_schedule(self, study):
        scenario = study.scenario.with_overrides(fault_profile="paper")
        schedule = build_fault_schedule(scenario, study.nep.platform,
                                        study.alicloud,
                                        profile=_zero_rate_profile())
        assert schedule.outages == []
        assert schedule.server_crashes == []
        assert schedule.episodes == []
        assert schedule.mttr_minutes() == 0.0
        assert schedule.mean_degradation_loss() == 0.0
        site = schedule.edge_site_ids[0]
        assert schedule.site_availability(site) == 1.0

    def test_events_lie_inside_horizon(self, faulty_study):
        schedule = faulty_study.faults
        horizon = schedule.horizon_minutes
        for window in schedule.outages:
            assert 0.0 <= window.start_min < window.end_min <= horizon


class TestQueries:
    def _schedule(self, **kwargs) -> FaultSchedule:
        defaults = dict(profile_name="paper", horizon_minutes=1000.0,
                        outages=[], crashes=[], episodes=[],
                        edge_site_ids=("s1",), cloud_site_ids=("c1",))
        defaults.update(kwargs)
        return FaultSchedule(**defaults)

    def test_site_down_boundaries(self):
        schedule = self._schedule(
            outages=[OutageWindow("s1", 100.0, 200.0)])
        assert schedule.site_down("s1", 100.0)       # inclusive start
        assert schedule.site_down("s1", 199.9)
        assert not schedule.site_down("s1", 200.0)   # exclusive end
        assert not schedule.site_down("s1", 99.9)
        assert not schedule.site_down("other", 150.0)

    def test_server_down(self):
        schedule = self._schedule(
            crashes=[ServerCrash("srv", "s1", 10.0, 20.0)])
        assert schedule.server_down("srv", 15.0)
        assert not schedule.server_down("srv", 25.0)

    def test_full_horizon_outage_gives_zero_availability(self):
        schedule = self._schedule(
            outages=[OutageWindow("s1", 0.0, 1000.0)])
        assert schedule.site_availability("s1") == 0.0

    def test_overlapping_outages_merge(self):
        schedule = self._schedule(outages=[
            OutageWindow("s1", 100.0, 300.0),
            OutageWindow("s1", 200.0, 400.0),
        ])
        assert schedule.site_downtime_minutes("s1") == pytest.approx(300.0)
        assert schedule.site_availability("s1") == pytest.approx(0.7)

    def test_mttr_averages_outages_and_crashes(self):
        schedule = self._schedule(
            outages=[OutageWindow("s1", 0.0, 100.0)],
            crashes=[ServerCrash("srv", "s1", 0.0, 300.0)])
        assert schedule.mttr_minutes() == pytest.approx(200.0)

    def test_nonpositive_horizon_rejected(self):
        with pytest.raises(FaultError):
            self._schedule(horizon_minutes=0.0)


class TestScenarioKnob:
    def test_unknown_profile_rejected_by_scenario(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            Scenario(fault_profile="storm")
