"""Tests for retry policy, probe accounting, and campaign fault wiring."""

import pytest

from repro.errors import FaultError
from repro.faults.injection import (
    DEFAULT_RETRY_POLICY,
    ProbeStats,
    RetryPolicy,
    degraded_throughput_factor,
)


class TestRetryPolicy:
    def test_cumulative_exponential_backoff(self):
        policy = RetryPolicy(max_retries=4, backoff_base_minutes=15.0,
                             backoff_factor=2.0)
        assert policy.delay_minutes(0) == 0.0
        assert policy.delay_minutes(1) == 15.0
        assert policy.delay_minutes(2) == 45.0
        assert policy.delay_minutes(3) == 105.0
        assert policy.delay_minutes(4) == 225.0

    def test_default_window_outlasts_mean_outage(self):
        from repro.faults.schedule import fault_profile
        total = DEFAULT_RETRY_POLICY.delay_minutes(
            DEFAULT_RETRY_POLICY.max_retries)
        assert total > fault_profile("paper").edge_outage_mean_minutes

    def test_invalid_parameters_rejected(self):
        with pytest.raises(FaultError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(FaultError):
            RetryPolicy(backoff_base_minutes=0.0)
        with pytest.raises(FaultError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(FaultError):
            DEFAULT_RETRY_POLICY.delay_minutes(-1)


class TestProbeStats:
    def test_zero_denominators_are_safe(self):
        stats = ProbeStats()
        assert stats.timeout_rate == 0.0
        assert stats.recovery_rate == 0.0
        assert stats.unreachable_rate == 0.0
        assert stats.ping_loss_rate == 0.0

    def test_rates(self):
        stats = ProbeStats(probes=100, attempts=110, retries=10,
                           timed_out=8, recovered=6, unreachable=2,
                           pings_sent=3000, pings_lost=30)
        assert stats.timeout_rate == pytest.approx(0.08)
        assert stats.recovery_rate == pytest.approx(0.75)
        assert stats.unreachable_rate == pytest.approx(0.02)
        assert stats.ping_loss_rate == pytest.approx(0.01)


class TestDegradedThroughputFactor:
    def test_no_loss_full_throughput(self):
        assert degraded_throughput_factor(0.0) == 1.0

    def test_quadratic_in_delivery_rate(self):
        assert degraded_throughput_factor(0.5) == pytest.approx(0.25)

    def test_floor_at_five_percent(self):
        assert degraded_throughput_factor(1.0) == pytest.approx(0.05)

    def test_out_of_range_rejected(self):
        with pytest.raises(FaultError):
            degraded_throughput_factor(1.5)
        with pytest.raises(FaultError):
            degraded_throughput_factor(-0.1)


class TestCampaignWiring:
    def test_baseline_campaign_has_no_fault_accounting(self, study):
        assert study.faults is None
        assert study.latency_results.probe_stats is None
        assert study.latency_results.failures == []
        assert study.throughput_results.failures == []
        assert not any(o.degraded
                       for o in study.throughput_results.throughput)

    def test_faulty_campaign_accounts_probes(self, faulty_study):
        stats = faulty_study.latency_results.probe_stats
        assert stats is not None
        assert stats.probes > 0
        assert stats.pings_sent > 0
        # Every timed-out probe either recovered or ended unreachable,
        # and every retry is an attempt beyond a probe's first.
        assert stats.recovered + stats.unreachable == stats.timed_out
        assert stats.attempts == stats.probes + stats.retries
        assert stats.retries >= stats.timed_out

    def test_faulty_campaign_loses_pings(self, faulty_study):
        stats = faulty_study.latency_results.probe_stats
        assert stats.pings_lost > 0
        assert 0.0 < stats.ping_loss_rate < 1.0

    def test_failed_probes_match_unreachable_count(self, faulty_study):
        results = faulty_study.latency_results
        ping_failures = [f for f in results.failures if f.probe == "ping"]
        assert len(ping_failures) == results.probe_stats.unreachable
        for failure in ping_failures:
            assert failure.target_kind in ("edge", "cloud")
            assert failure.attempts > 1
