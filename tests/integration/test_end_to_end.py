"""End-to-end integration: the paper's qualitative findings must hold on
the full (smoke-scale) pipeline — platforms -> campaign -> analyses."""

import numpy as np
import pytest

from repro.core.balance import app_balance_summary
from repro.core.latency_analysis import cv_cdfs, hop_count_cdf, rtt_cdfs
from repro.core.qoe_analysis import GamingExperiment, StreamingExperiment
from repro.core.throughput_analysis import all_series
from repro.core.workload_analysis import (
    cpu_utilization_summary,
    vm_size_summary,
)
from repro.netsim.access import AccessType


class TestFinding1NetworkLatency:
    """Finding 1: edges deliver lower, more stable delay than clouds."""

    def test_nearest_edge_beats_nearest_cloud(self, per_user):
        for access in (AccessType.WIFI, AccessType.LTE):
            cdfs = rtt_cdfs(per_user, access)
            assert cdfs["nearest_edge"].median < cdfs["nearest_cloud"].median

    def test_nearest_cloud_beats_all_cloud_average(self, per_user):
        cdfs = rtt_cdfs(per_user, AccessType.WIFI)
        assert cdfs["nearest_cloud"].median < cdfs["all_cloud"].median

    def test_third_edge_still_competitive(self, per_user):
        # "The 3rd nearest edge site also provides smaller network latency
        # than the nearest cloud."  The full claim needs NEP's real site
        # density (the fig2 bench checks it at 520 sites); at smoke scale
        # (60 sites) the 3rd edge must still beat the all-cloud average.
        cdfs = rtt_cdfs(per_user, AccessType.WIFI)
        assert cdfs["third_edge"].median < cdfs["all_cloud"].median

    def test_edge_jitter_lower(self, per_user):
        for access in (AccessType.WIFI, AccessType.LTE):
            cdfs = cv_cdfs(per_user, access)
            assert cdfs["nearest_edge"].median < cdfs["all_cloud"].median

    def test_edge_not_yet_at_mec_vision(self, per_user):
        # Edges are still 5+ hops away, not the envisioned 1-2.
        cdf = hop_count_cdf(per_user, "nearest_edge")
        assert cdf.quantile(0.05) >= 4

    def test_cloud_needs_more_hops(self, per_user):
        edge = hop_count_cdf(per_user, "nearest_edge")
        cloud = hop_count_cdf(per_user, "nearest_cloud")
        assert cloud.median > edge.median


class TestFinding2Throughput:
    """Finding 2: distance only matters with high last-mile capacity."""

    def test_low_capacity_accesses_uncorrelated(self, throughput_results):
        # Per-panel correlations are noisy at the smoke panel size; pool
        # the capacity-limited accesses (the fig5 bench checks each panel
        # at full scale with the paper's 0.2 threshold).
        from repro.core.stats import pearson_correlation

        points = [
            (o.result.distance_km, o.result.downlink_mbps)
            for o in throughput_results.throughput
            if o.access in (AccessType.WIFI, AccessType.LTE)
        ]
        assert len(points) >= 6
        corr = pearson_correlation([p[0] for p in points],
                                   [p[1] for p in points])
        assert abs(corr) < 0.45

    def test_wired_downlink_correlated(self, throughput_results):
        series = [s for s in all_series(throughput_results.throughput)
                  if s.access is AccessType.WIRED
                  and s.direction == "downlink"]
        assert series and series[0].correlation < -0.5


class TestFinding3QoE:
    """Finding 3: edge helps gaming a lot, streaming modestly."""

    @pytest.fixture(scope="class")
    def experiments(self, study):
        rng = np.random.default_rng(99)
        return (GamingExperiment(study.qoe_testbed, rng, trials=15),
                StreamingExperiment(study.qoe_testbed, rng, trials=15))

    def test_gaming_edge_advantage(self, experiments):
        gaming, _ = experiments
        edge = gaming.run_config("Edge", AccessType.WIFI)
        far = gaming.run_config("Cloud-3", AccessType.WIFI)
        assert edge.mean_ms < 110        # ~91 ms in the paper
        assert far.mean_ms - edge.mean_ms > 25

    def test_streaming_bottleneck_not_network(self, experiments):
        _, streaming = experiments
        edge = streaming.run_config("Edge", AccessType.WIFI)
        assert edge.breakdown["network_ms"] < edge.breakdown["capture_ms"] + \
            edge.breakdown["render_ms"]


class TestFinding4Workloads:
    """Finding 4: edge VMs are bigger but far less utilised."""

    def test_vm_sizes(self, nep_dataset, azure_dataset):
        nep = vm_size_summary(nep_dataset)
        azure = vm_size_summary(azure_dataset)
        assert nep.median_cpu >= 4 * azure.median_cpu
        assert nep.median_memory_gb >= 4 * azure.median_memory_gb

    def test_utilisation_gap(self, nep_dataset, azure_dataset):
        nep = cpu_utilization_summary(nep_dataset)
        azure = cpu_utilization_summary(azure_dataset)
        # Paper: 6x lower mean CPU usage on NEP (ordering is the claim).
        assert nep.overall_mean_utilization < azure.overall_mean_utilization

    def test_usage_variance_gap(self, nep_dataset, azure_dataset):
        nep = cpu_utilization_summary(nep_dataset)
        azure = cpu_utilization_summary(azure_dataset)
        assert nep.median_cv > azure.median_cv


class TestFinding6Balance:
    """Finding 6: per-app VM load is far more skewed on the edge."""

    def test_cross_vm_gap(self, nep_dataset, azure_dataset):
        nep = app_balance_summary(nep_dataset)
        azure = app_balance_summary(azure_dataset)
        assert nep.gaps_cdf.median >= azure.gaps_cdf.median
        assert nep.fraction_above_50x >= azure.fraction_above_50x


class TestDeterminism:
    def test_same_seed_same_campaign(self):
        from repro import EdgeStudy, Scenario

        a = EdgeStudy(Scenario.smoke_scale())
        b = EdgeStudy(Scenario.smoke_scale())
        obs_a = a.latency_results.latency
        obs_b = b.latency_results.latency
        assert len(obs_a) == len(obs_b)
        assert all(x == y for x, y in zip(obs_a[:50], obs_b[:50]))

    def test_same_seed_same_trace(self):
        from repro import EdgeStudy, Scenario

        a = EdgeStudy(Scenario.smoke_scale())
        b = EdgeStudy(Scenario.smoke_scale())
        vm = a.nep.dataset.vm_ids()[0]
        assert np.array_equal(a.nep.dataset.cpu_series[vm],
                              b.nep.dataset.cpu_series[vm])

    def test_different_seed_different_trace(self):
        from repro import EdgeStudy, Scenario

        a = EdgeStudy(Scenario.smoke_scale())
        b = EdgeStudy(Scenario.smoke_scale().with_overrides(seed=777))
        vm = a.nep.dataset.vm_ids()[0]
        if vm in b.nep.dataset.cpu_series:
            assert not np.array_equal(a.nep.dataset.cpu_series[vm],
                                      b.nep.dataset.cpu_series[vm])
