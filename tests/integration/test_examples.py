"""Smoke tests for the example scripts.

Examples are the library's front door; they must at least compile, and
the fast ones must run end to end.  Each example runs in a subprocess
with the repository's interpreter so import errors, API drift, and
runtime failures all surface here.
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Fast examples executed end to end (the rest are compile-checked; they
#: rebuild the smoke study per process, which would dominate suite time).
RUN_END_TO_END = ("quickstart.py", "trace_export.py", "buildout_planner.py")


def test_examples_directory_is_populated():
    # The project promises at least three runnable examples.
    assert len(ALL_EXAMPLES) >= 3


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("name", RUN_END_TO_END)
def test_example_runs(name, tmp_path):
    path = EXAMPLES_DIR / name
    args = [sys.executable, str(path)]
    if name == "trace_export.py":
        args.append(str(tmp_path / "out"))
    completed = subprocess.run(args, capture_output=True, text=True,
                               timeout=300)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_every_example_has_a_run_line():
    # Each example documents how to invoke it.
    for path in ALL_EXAMPLES:
        text = path.read_text()
        assert "Run:" in text, f"{path.name} lacks a Run: line"
        assert text.startswith("#!/usr/bin/env python3"), path.name
