"""Failure injection: corrupted state and inputs must fail loudly.

The library's contract is that deliberate failures surface as
:class:`~repro.errors.ReproError` subclasses with actionable messages —
never silent wrong answers, never raw ``KeyError``/``IndexError`` from
internals.
"""

import json

import numpy as np
import pytest

from repro.errors import ReproError, TraceError
from repro.trace.io import load_dataset, save_dataset


class TestCorruptedTraceOnDisk:
    def test_missing_meta_rejected(self, nep_dataset, tmp_path):
        root = save_dataset(nep_dataset, tmp_path / "t")
        (root / "meta.json").unlink()
        with pytest.raises(TraceError):
            load_dataset(root)

    def test_truncated_series_detected(self, nep_dataset, tmp_path):
        root = save_dataset(nep_dataset, tmp_path / "t")
        # Corrupt the metadata so every stored series has the wrong length.
        meta = json.loads((root / "meta.json").read_text())
        meta["trace_days"] += 1
        (root / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(TraceError):
            load_dataset(root)

    def test_vm_with_missing_series_detected(self, nep_dataset, tmp_path):
        root = save_dataset(nep_dataset, tmp_path / "t")
        # Drop one VM's series from the NPZ archives.
        victim = nep_dataset.vm_ids()[0]
        for name in ("cpu.npz", "bw.npz"):
            with np.load(root / name) as npz:
                arrays = {k: npz[k] for k in npz.files if k != victim}
            np.savez_compressed(root / name, **arrays)
        with pytest.raises((TraceError, KeyError)):
            load_dataset(root)

    def test_dangling_vm_reference_detected(self, nep_dataset, tmp_path):
        root = save_dataset(nep_dataset, tmp_path / "t")
        # Point one VM at a site that doesn't exist.
        vms_csv = (root / "vms.csv").read_text().splitlines()
        header = vms_csv[0].split(",")
        site_col = header.index("site_id")
        fields = vms_csv[1].split(",")
        fields[site_col] = "ghost-site"
        vms_csv[1] = ",".join(fields)
        (root / "vms.csv").write_text("\n".join(vms_csv) + "\n")
        with pytest.raises(TraceError):
            load_dataset(root)


class TestCorruptedPlatformState:
    def test_validate_catches_ghost_vm(self, scenario):
        from repro.workload.generator import generate_nep_workload

        workload = generate_nep_workload(scenario)
        platform = workload.platform
        server = next(iter(platform.iter_servers()))
        server.vm_ids.append("ghost-vm")
        with pytest.raises(ReproError):
            platform.validate()

    def test_dataset_validate_catches_missing_series(self, scenario):
        from repro.workload.generator import generate_nep_workload

        dataset = generate_nep_workload(scenario).dataset
        victim = dataset.vm_ids()[0]
        del dataset.cpu_series[victim]
        with pytest.raises(TraceError):
            dataset.validate()


class TestHostileInputsStayInHierarchy:
    """Bad inputs must raise ReproError subclasses, not leak internals."""

    def test_campaign_requires_sites(self, scenario):
        from repro.measurement.campaign import CrowdCampaign
        from repro.platform.cluster import Platform
        from repro.platform.entities import PlatformKind

        empty = Platform(name="empty", kind=PlatformKind.EDGE)
        with pytest.raises(ReproError):
            CrowdCampaign(scenario, empty, empty)

    def test_analysis_on_empty_observations(self):
        from repro.core.latency_analysis import per_user_latency

        assert per_user_latency([]) == []

    def test_rtt_cdfs_on_empty_records(self):
        from repro.core.latency_analysis import rtt_cdfs
        from repro.netsim.access import AccessType

        with pytest.raises(ReproError):
            rtt_cdfs([], AccessType.WIFI)

    def test_cost_study_without_apps(self):
        from repro.core.cost_analysis import heaviest_apps
        from repro.trace.dataset import TraceDataset

        empty = TraceDataset(platform_name="e", trace_days=1,
                             cpu_interval_minutes=30,
                             bw_interval_minutes=30)
        assert heaviest_apps(empty, 5) == []

    def test_prediction_on_constant_idle_vm(self):
        # An all-zero VM must yield a finite RMSE, not a crash.
        from repro.prediction.evaluate import (
            ExperimentSpec,
            evaluate_holt_winters,
        )

        spec = ExperimentSpec(cpu_interval_minutes=30, window_minutes=30,
                              train_days=7, test_days=2)
        series = np.zeros(9 * 48)
        outcome = evaluate_holt_winters("idle", series, "mean", spec)
        assert outcome.rmse_percent == pytest.approx(0.0, abs=0.1)
