"""Self-healing artifact store behaviour (repro.cache under chaos).

Covers the resilience satellites: the concurrent-eviction race, the
simulated-ENOSPC cleanup guarantee, commit retry/degrade under injected
faults, read-path self-healing, and ``cache verify --repair``.
"""

from __future__ import annotations

import errno
import multiprocessing
import os
import pickle
import time

import numpy as np
import pytest

import repro.cache as cache_mod
from repro.cache import ArtifactCache
from repro.config import Scenario
from repro.obs import RunJournal
from repro.resilience import install, reset
from repro.shards import ShardWriter, shard_path
from repro.workload.streaming import WorkloadSink

SCENARIO = Scenario.smoke_scale()


@pytest.fixture(autouse=True)
def _clean_registry():
    reset()
    yield
    reset()


def _journaled_cache(root) -> tuple[ArtifactCache, RunJournal]:
    journal = RunJournal(None)
    return ArtifactCache(root, journal=journal), journal


def _events(journal: RunJournal, etype: str) -> list[dict]:
    return [e for e in journal.events if e["type"] == etype]


class TestCommitRetry:
    def test_transient_commit_fault_retried_and_stored(self, tmp_path):
        cache, journal = _journaled_cache(tmp_path)
        install("cache.commit:nth=1")
        cache.put_object("campaign_latency", SCENARIO, {"x": 1})
        retries = _events(journal, "cache_retry")
        assert len(retries) == 1
        assert retries[0]["artifact"] == "campaign_latency"
        assert "InjectedFault" in retries[0]["error"]
        assert _events(journal, "cache_store")
        assert cache.get_object("campaign_latency", SCENARIO) == {"x": 1}
        assert not list(cache.root.glob(".tmp-*"))

    def test_persistent_commit_failure_degrades_to_uncached(self, tmp_path):
        cache, journal = _journaled_cache(tmp_path)
        install("cache.commit:nth=1,times=99")  # every attempt fails
        cache.put_object("campaign_latency", SCENARIO, {"x": 1})  # no raise
        assert _events(journal, "cache_write_error")
        assert not _events(journal, "cache_store")
        assert cache.entries() == []
        # The store stays readable and writable once the fault clears.
        assert not list(cache.root.glob(".tmp-*"))
        reset()
        cache.put_object("campaign_latency", SCENARIO, {"x": 1})
        assert cache.get_object("campaign_latency", SCENARIO) == {"x": 1}


class TestReadSelfHealing:
    def test_injected_read_fault_evicts_and_misses(self, tmp_path):
        cache, journal = _journaled_cache(tmp_path)
        cache.put_object("campaign_latency", SCENARIO, {"x": 1})
        install("cache.read:nth=1")
        assert cache.get_object("campaign_latency", SCENARIO) is None
        evictions = _events(journal, "cache_evict")
        assert evictions and evictions[0]["reason"] == "corrupt entry"
        # Self-healed: the entry is gone, a re-store round-trips again.
        cache.put_object("campaign_latency", SCENARIO, {"x": 2})
        assert cache.get_object("campaign_latency", SCENARIO) == {"x": 2}


class TestSimulatedEnospc:
    """OSError mid-write must clean staging and leave the store readable."""

    def test_object_store_enospc_cleans_staging(self, tmp_path,
                                                monkeypatch):
        cache, journal = _journaled_cache(tmp_path)
        cache.put_object("campaign_latency", SCENARIO, {"x": 1})

        def no_space(*_args, **_kwargs):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr(cache_mod.pickle, "dump", no_space)
        monkeypatch.setattr(
            cache_mod, "COMMIT_RETRY",
            cache_mod.COMMIT_RETRY.__class__(max_attempts=2,
                                             backoff_s=0.0))
        cache.put_object("campaign_throughput", SCENARIO, {"y": 2})
        errors = _events(journal, "cache_write_error")
        assert errors and "ENOSPC" in errors[0]["error"] \
            or "No space" in errors[0]["error"]
        assert not list(cache.root.glob(".tmp-*"))
        # The pre-existing entry is untouched and readable.
        monkeypatch.undo()
        assert cache.get_object("campaign_latency", SCENARIO) == {"x": 1}

    def test_shard_staging_enospc_removes_partial_file(self, tmp_path,
                                                       monkeypatch):
        from repro.resilience import RetryPolicy

        def no_space(path, *_args, **_kwargs):
            # np.save opens the file before our fake failure fires, so a
            # torn partial exists exactly as with a real full disk.
            with open(path, "wb") as handle:
                handle.write(b"torn")
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr(cache_mod.np, "save", no_space, raising=False)
        import repro.shards as shards_mod

        monkeypatch.setattr(shards_mod.np, "save", no_space)
        writer = ShardWriter(tmp_path, "cpu", 8, shard_rows=2,
                             retry=RetryPolicy(max_attempts=2,
                                               backoff_s=0.0))
        with pytest.raises(OSError):
            writer.append(np.zeros((4, 8), dtype=np.float32))
        assert not list(tmp_path.glob("shard-*.npy"))

    def test_streamed_entry_abort_after_enospc_cleans_up(self, tmp_path,
                                                         monkeypatch):
        cache = ArtifactCache(tmp_path / "cache")
        sink = WorkloadSink.for_cache(cache, "workload_nep", SCENARIO,
                                      shard_rows=2)
        sink.begin(cpu_points=8, bw_points=8, private=False)

        import repro.shards as shards_mod

        def no_space(*_args, **_kwargs):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr(shards_mod.np, "save", no_space)
        block = type("B", (), {})()
        block.app_id = "doomed"
        block.cpu_rows = np.full((4, 8), 0.5, dtype=np.float32)
        block.bw_rows = np.ones((4, 8), dtype=np.float32)
        block.private_rows = None
        with pytest.raises(OSError):
            sink.consume(["vm0", "vm1", "vm2", "vm3"], block)
        sink.abort()
        assert not list(cache.root.glob(".tmp-*"))
        assert cache.get_workload("workload_nep", SCENARIO) is None
        assert cache.entries() == []


def _hammer_reader(root: str, barrier, stop_at: float) -> None:
    """Child process: read the cache continuously while the parent
    evicts and re-stores.  Any uncaught exception -> nonzero exit."""
    cache = ArtifactCache(root)
    barrier.wait()
    while time.time() < stop_at:
        cache.get_object("campaign_latency", SCENARIO)
        cache.entries()
        cache.info()


class TestConcurrentEvictionRace:
    def test_reader_survives_concurrent_eviction(self, tmp_path):
        """Regression: a reader walking an entry that another process is
        evicting saw FileNotFoundError from stat() mid-walk."""
        cache = ArtifactCache(tmp_path)
        payload = {"rows": list(range(2000))}
        cache.put_object("campaign_latency", SCENARIO, payload)
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        stop_at = time.time() + 2.0
        reader = ctx.Process(target=_hammer_reader,
                             args=(str(tmp_path), barrier, stop_at))
        reader.start()
        barrier.wait()
        while time.time() < stop_at:
            cache.clear()
            cache.put_object("campaign_latency", SCENARIO, payload)
        reader.join(timeout=30)
        assert reader.exitcode == 0


class TestVerifyRepair:
    def _sharded_entry(self, root):
        from repro.workload.generator import generate_nep_workload

        cache = ArtifactCache(root)
        sink = WorkloadSink.for_cache(cache, "workload_nep", SCENARIO,
                                      shard_rows=8)
        generate_nep_workload(SCENARIO, sink=sink)
        return cache

    def test_healthy_store_verifies_clean(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put_object("campaign_latency", SCENARIO, {"x": 1})
        report = cache.verify()
        assert report["checked"] == 1 and report["ok"] == 1
        assert report["problems"] == [] and report["repaired"] == 0

    def test_bit_flip_in_shard_payload_detected_deep_only(self, tmp_path):
        cache = self._sharded_entry(tmp_path)
        entry = cache.entries()[0]
        victim = next(iter(entry.path.rglob("shard-00000.npy")))
        payload = bytearray(victim.read_bytes())
        payload[-1] ^= 0xFF  # same size, same header: checksum-only damage
        victim.write_bytes(bytes(payload))
        shallow = cache.verify(deep=False)
        assert shallow["problems"] == []
        deep = cache.verify(deep=True)
        assert len(deep["problems"]) == 1
        assert any("checksum" in issue
                   for issue in deep["problems"][0]["issues"])

    def test_truncated_manifest_file_detected_shallow(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put_object("campaign_latency", SCENARIO, {"x": 1})
        victim = cache.entries()[0].path / "object.pkl"
        victim.write_bytes(victim.read_bytes()[:-3])
        report = cache.verify(deep=False)
        assert report["problems"]
        assert any("size mismatch" in issue
                   for issue in report["problems"][0]["issues"])

    def test_repair_evicts_damaged_and_sweeps_stale_staging(self, tmp_path):
        cache, journal = _journaled_cache(tmp_path)
        cache.put_object("campaign_latency", SCENARIO, {"x": 1})
        (cache.entries()[0].path / "object.pkl").unlink()
        stale = cache.root / ".tmp-12345-deadbeef"
        stale.mkdir()
        old = time.time() - 7200
        os.utime(stale, (old, old))
        report = cache.verify(repair=True)
        assert report["repaired"] == 2  # one entry + one staging dir
        assert cache.entries() == []
        assert not stale.exists()
        evictions = _events(journal, "cache_evict")
        assert evictions and evictions[0]["reason"].startswith("verify:")

    def test_missing_shard_detected(self, tmp_path):
        cache = self._sharded_entry(tmp_path)
        entry = cache.entries()[0]
        next(iter(entry.path.rglob("shard-00001.npy"))).unlink()
        report = cache.verify(deep=False)
        assert report["problems"]


class TestShardChecksums:
    def test_checksums_round_trip_and_deep_verify(self, tmp_path):
        from repro.shards import (ShardedSeriesMap, read_shard_index,
                                  write_shard_index)

        rng = np.random.default_rng(3)
        data = rng.random((6, 8)).astype(np.float32)
        writer = ShardWriter(tmp_path, "cpu", 8, shard_rows=2)
        writer.append(data)
        layout = writer.finalize()
        write_shard_index(tmp_path, [layout])
        assert len(layout.checksums) == 3
        order = [f"vm{i}" for i in range(6)]
        reloaded = read_shard_index(tmp_path)["cpu"]
        assert reloaded.checksums == layout.checksums
        series = ShardedSeriesMap(tmp_path, reloaded, order, verify=False)
        series.verify(deep=True)  # pristine store: no error

    def test_deep_verify_catches_silent_corruption(self, tmp_path):
        from repro.errors import TraceError
        from repro.shards import (ShardedSeriesMap, read_shard_index,
                                  write_shard_index)

        writer = ShardWriter(tmp_path, "cpu", 8, shard_rows=2)
        writer.append(np.ones((4, 8), dtype=np.float32))
        layout = writer.finalize()
        write_shard_index(tmp_path, [layout])
        victim = shard_path(tmp_path, "cpu", 1)
        payload = bytearray(victim.read_bytes())
        payload[-2] ^= 0x01
        victim.write_bytes(bytes(payload))
        order = [f"vm{i}" for i in range(4)]
        series = ShardedSeriesMap(tmp_path, read_shard_index(tmp_path)["cpu"],
                                  order, verify=False)
        series.verify(deep=False)  # header/size cannot see the flip
        with pytest.raises(TraceError, match="checksum"):
            series.verify(deep=True)
