"""Tests for the CLI and report registry."""

import pytest

from repro.cli import DESCRIPTIONS, build_parser, main
from repro.reports import REPORTS


class TestRegistry:
    def test_every_report_described(self):
        assert set(DESCRIPTIONS) == set(REPORTS)

    def test_covers_all_paper_experiments(self):
        expected = {"table1", "table2", "table3", "table6", "sales",
                    "findings", "categories", "availability",
                    "qoe-sessions", "live"} | {
            f"fig{i}" for i in range(3, 15)
        } | {"fig2a", "fig2b"}
        assert set(REPORTS) == expected


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults_to_smoke(self):
        args = build_parser().parse_args(["run", "fig3"])
        assert args.scale == "smoke"
        assert args.experiments == ["fig3"]

    def test_seed_override(self):
        args = build_parser().parse_args(["run", "fig3", "--seed", "7"])
        assert args.seed == 7

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_faults_defaults_off(self):
        args = build_parser().parse_args(["run", "fig3"])
        assert args.faults == "off"

    def test_faults_profile_accepted(self):
        args = build_parser().parse_args(
            ["run", "availability", "--faults", "paper"])
        assert args.faults == "paper"

    def test_unknown_faults_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig3", "--faults", "storm"])

    def test_jobs_defaults_to_one(self):
        args = build_parser().parse_args(["run", "fig3"])
        assert args.jobs == 1
        assert args.cache_dir is None
        assert args.no_cache is False

    def test_jobs_and_cache_flags_accepted(self):
        args = build_parser().parse_args(
            ["run", "fig3", "--jobs", "4", "--cache-dir", "/tmp/c",
             "--no-cache"])
        assert args.jobs == 4
        assert str(args.cache_dir) == "/tmp/c"
        assert args.no_cache is True

    def test_streaming_defaults_to_auto(self):
        args = build_parser().parse_args(["run", "fig3"])
        assert args.streaming == "auto"

    def test_streaming_modes_accepted(self):
        for mode in ("auto", "on", "off"):
            args = build_parser().parse_args(
                ["run", "fig3", "--streaming", mode])
            assert args.streaming == mode
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig3", "--streaming", "half"])

    def test_city_scale_accepted(self):
        args = build_parser().parse_args(["run", "fig3", "--scale", "city"])
        assert args.scale == "city"

    def test_qoe_knobs_accepted(self):
        args = build_parser().parse_args(
            ["run", "qoe-sessions", "--sessions", "800",
             "--cache-mb", "256", "--abr", "buffer"])
        assert args.sessions == 800
        assert args.cache_mb == 256
        assert args.abr == "buffer"

    def test_qoe_knobs_default_to_scenario(self):
        args = build_parser().parse_args(["run", "qoe-sessions"])
        assert args.sessions is None
        assert args.cache_mb is None
        assert args.abr is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "qoe-sessions", "--abr", "oracle"])

    def test_cache_subcommand(self):
        args = build_parser().parse_args(["cache", "ls"])
        assert args.command == "cache"
        assert args.action == "ls"

    def test_cache_action_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "shrink"])


class TestMain:
    def test_list_exit_code(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2a" in out and "table3" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_run_cheap_reports(self, capsys):
        # table1 needs no simulation; fig3/fig8 reuse the cached smoke
        # study from the session (same default seed).
        assert main(["run", "table1", "fig3", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Figure 3" in out
        assert "Figure 8" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "built NEP" in out

    def test_availability_without_faults_prints_note(self, capsys):
        assert main(["run", "availability"]) == 0
        out = capsys.readouterr().out
        assert "fault injection is off" in out

    def test_repro_error_exits_2_with_clean_message(self, capsys):
        # A negative seed passes argparse but fails scenario validation —
        # main() must catch the ReproError, not traceback.
        assert main(["info", "--seed", "-1"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "Traceback" not in err

    def test_export(self, capsys, tmp_path):
        assert main(["export", str(tmp_path / "ds")]) == 0
        assert (tmp_path / "ds" / "campaign" / "latency.csv").exists()
        assert (tmp_path / "ds" / "nep-trace" / "vms.csv").exists()
        assert (tmp_path / "ds" / "azure-trace" / "meta.json").exists()


class TestCacheCommand:
    def test_ls_on_empty_cache(self, capsys, tmp_path):
        assert main(["cache", "ls", "--cache-dir", str(tmp_path)]) == 0
        assert "empty" in capsys.readouterr().out

    def test_run_populates_then_ls_and_clear(self, capsys, tmp_path):
        assert main(["run", "fig8", "--jobs", "2",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "ls", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "workload_nep" in out and "workload_azure" in out
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        assert "entries:      2" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 2" in capsys.readouterr().out
        assert main(["cache", "ls", "--cache-dir", str(tmp_path)]) == 0
        assert "empty" in capsys.readouterr().out

    def test_sharded_entries_reported_by_ls_and_info(self, capsys, tmp_path):
        assert main(["run", "fig8", "--streaming", "on",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "ls", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "shards" in out  # the column header
        workload_rows = [line for line in out.splitlines()
                         if "workload_nep" in line]
        assert workload_rows and "workload-shards" in workload_rows[0]
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        info_out = capsys.readouterr().out
        assert "sharded:" in info_out
        assert "2 entries" in info_out  # both platform workloads streamed

    def test_ls_sizes_always_in_mib(self, capsys, tmp_path):
        # regression: entry sizes used to auto-scale (B/KiB/MiB) while
        # docs/performance.md quoted MiB — the column is MiB, always
        assert main(["run", "fig8", "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "ls", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        rows = [line for line in out.splitlines() if "workload_" in line]
        assert rows
        for row in rows:
            assert "MiB" in row, row
            assert "KiB" not in row

    def test_no_cache_leaves_cache_untouched(self, capsys, tmp_path):
        assert main(["run", "table1", "--no-cache",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "ls", "--cache-dir", str(tmp_path)]) == 0
        assert "empty" in capsys.readouterr().out


class TestReportFunctions:
    @pytest.mark.parametrize("name", ["table1", "fig2a", "fig2b", "table2",
                                      "fig3", "fig5", "fig8", "fig9",
                                      "fig10", "fig11", "fig12", "fig13",
                                      "table6", "sales"])
    def test_report_produces_text(self, study, name):
        text = REPORTS[name](study)
        assert isinstance(text, str)
        assert len(text.splitlines()) >= 3

    def test_table3_report(self, study):
        text = REPORTS["table3"](study)
        assert "vCloud-1" in text and "pre-reserved" in text

    def test_fig4_report(self, study):
        text = REPORTS["fig4"](study)
        assert "inter-site" in text
        assert "sites within 5/10/20 ms" in text

    def test_findings_report_covers_all_eight(self, study):
        text = REPORTS["findings"](study)
        for number in range(1, 9):
            assert f"({number})" in text


class TestSweepParser:
    def test_sweep_run_flags(self):
        args = build_parser().parse_args(
            ["sweep", "run", "grid.toml", "--jobs", "2", "--out", "o",
             "--no-cache"])
        assert args.command == "sweep"
        assert args.sweep_command == "run"
        assert str(args.config) == "grid.toml"
        assert args.jobs == 2
        assert str(args.out) == "o"
        assert args.no_cache is True

    def test_sweep_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])

    def test_sweep_report_baseline(self):
        args = build_parser().parse_args(
            ["sweep", "report", "out-dir", "--baseline", "base"])
        assert args.sweep_command == "report"
        assert args.baseline == "base"

    def test_cache_pruning_flags(self):
        args = build_parser().parse_args(
            ["cache", "clear", "--older-than", "30", "--dry-run"])
        assert args.older_than == 30
        assert args.dry_run is True


class TestSweepMain:
    def _config(self, tmp_path):
        config = tmp_path / "grid.toml"
        config.write_text(
            'name = "cli"\n'
            '[defaults]\nanalyses = ["fig8"]\n'
            '[grid]\nfaults = ["off", "paper"]\n', encoding="utf-8")
        return config

    def test_sweep_analyses_lists_registry(self, capsys):
        assert main(["sweep", "analyses"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out
        assert "ablation_density" in out

    def test_sweep_cells_dry_run(self, capsys, tmp_path):
        assert main(["sweep", "cells", str(self._config(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "faults_off" in out and "faults_paper" in out
        assert "group" in out

    def test_sweep_run_then_report(self, capsys, tmp_path):
        config = self._config(tmp_path)
        out_dir = tmp_path / "out"
        cache = tmp_path / "cache"
        assert main(["sweep", "run", str(config), "--out", str(out_dir),
                     "--cache-dir", str(cache)]) == 0
        run_out = capsys.readouterr().out
        assert "2 cells" in run_out
        assert (out_dir / "sweep.json").exists()
        assert main(["sweep", "report", str(out_dir)]) == 0
        report_out = capsys.readouterr().out
        assert "faults_off vs faults_paper" in report_out

    def test_sweep_bad_config_exits_2(self, capsys, tmp_path):
        config = tmp_path / "broken.toml"
        config.write_text("[grid\n", encoding="utf-8")
        assert main(["sweep", "run", str(config)]) == 2
        assert "error:" in capsys.readouterr().err


class TestCacheMain:
    def test_clear_dry_run_older_than(self, capsys, tmp_path):
        assert main(["cache", "clear", "--cache-dir", str(tmp_path),
                     "--older-than", "30", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would remove 0 cache entries older than 30 days" in out

    def test_pruning_flags_rejected_outside_clear(self, capsys, tmp_path):
        assert main(["cache", "ls", "--cache-dir", str(tmp_path),
                     "--older-than", "3"]) == 2
        err = capsys.readouterr().err
        assert "only apply to 'cache clear'" in err
