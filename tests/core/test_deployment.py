"""Tests for the Table 1 deployment-density data."""

import pytest

from repro.core.deployment import (
    PAPER_DENSITIES,
    PLATFORM_DEPLOYMENTS,
    density_advantage_over,
    density_of,
    simulated_nep_density,
)


class TestTable1:
    def test_densities_match_paper(self):
        by_name = {r.platform: r for r in PLATFORM_DEPLOYMENTS}
        for name, paper_density in PAPER_DENSITIES.items():
            measured = density_of(by_name[name])
            assert measured == pytest.approx(paper_density, rel=0.05), name

    def test_nep_two_orders_of_magnitude_denser(self):
        # §2: NEP's site count is ~two orders of magnitude above a
        # typical cloud provider's in-country regions.
        assert density_advantage_over("Alibaba Cloud (China)") > 30
        assert density_advantage_over("AWS EC2 (US)") > 50

    def test_unknown_platform_rejected(self):
        with pytest.raises(KeyError):
            density_advantage_over("SkyNet")

    def test_simulated_platform_density(self, nep_platform):
        density = simulated_nep_density(nep_platform)
        assert density == pytest.approx(len(nep_platform.sites) / 3.70)

    def test_every_row_has_positive_density(self):
        assert all(density_of(r) > 0 for r in PLATFORM_DEPLOYMENTS)
