"""Tests for the statistics toolkit, including property-based invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import (
    ECDF,
    coefficient_of_variation,
    fairness_index,
    pearson_correlation,
    percentile,
    quantile_ratio,
    rmse,
    summarize,
)

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)
samples = st.lists(finite_floats, min_size=1, max_size=200)


class TestECDF:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ECDF.from_samples([])

    def test_nan_filtered(self):
        cdf = ECDF.from_samples([1.0, float("nan"), 3.0])
        assert len(cdf) == 2

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError):
            ECDF.from_samples([float("nan")])

    def test_evaluate_endpoints(self):
        cdf = ECDF.from_samples([1, 2, 3, 4])
        assert cdf.evaluate(0.5) == 0.0
        assert cdf.evaluate(4.0) == 1.0

    def test_median_of_odd_sample(self):
        assert ECDF.from_samples([3, 1, 2]).median == 2.0

    def test_quantile_bounds_checked(self):
        cdf = ECDF.from_samples([1, 2])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_curve_is_monotone(self):
        cdf = ECDF.from_samples(np.random.default_rng(0).random(500))
        xs, ys = cdf.curve(points=50)
        assert np.all(np.diff(xs) >= 0)
        assert np.all(np.diff(ys) >= 0)

    def test_curve_needs_two_points(self):
        with pytest.raises(ValueError):
            ECDF.from_samples([1, 2]).curve(points=1)

    @given(samples)
    @settings(max_examples=50, deadline=None)
    def test_evaluate_in_unit_interval(self, values):
        cdf = ECDF.from_samples(values)
        for probe in (min(values) - 1, np.median(values), max(values) + 1):
            assert 0.0 <= cdf.evaluate(float(probe)) <= 1.0

    @given(samples)
    @settings(max_examples=50, deadline=None)
    def test_quantiles_within_sample_range(self, values):
        cdf = ECDF.from_samples(values)
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert min(values) <= cdf.quantile(q) <= max(values)


class TestPercentile:
    def test_known_values(self):
        assert percentile([0, 50, 100], 50) == 50.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestCV:
    def test_constant_series_has_zero_cv(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0

    def test_zero_mean_returns_zero(self):
        assert coefficient_of_variation([-1, 1]) == 0.0

    def test_known_cv(self):
        cv = coefficient_of_variation([1, 3])  # mean 2, std 1
        assert cv == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([])

    @given(st.lists(st.floats(min_value=0.1, max_value=100,
                              allow_nan=False), min_size=2, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_cv_non_negative_for_positive_samples(self, values):
        assert coefficient_of_variation(values) >= 0.0

    @given(st.lists(st.floats(min_value=0.1, max_value=100,
                              allow_nan=False), min_size=2, max_size=50),
           st.floats(min_value=0.1, max_value=10, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_cv_scale_invariant(self, values, scale):
        base = coefficient_of_variation(values)
        scaled = coefficient_of_variation([v * scale for v in values])
        assert scaled == pytest.approx(base, rel=1e-6)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_input_returns_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1, 2, 3])

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation([1], [2])

    @given(st.lists(finite_floats, min_size=3, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_bounded_by_one(self, xs):
        rng = np.random.default_rng(0)
        ys = rng.random(len(xs))
        corr = pearson_correlation(xs, ys)
        assert -1.0 - 1e-9 <= corr <= 1.0 + 1e-9


class TestQuantileRatio:
    def test_uniform_gap(self):
        values = list(range(1, 101))
        ratio = quantile_ratio(values)
        assert ratio == pytest.approx(percentile(values, 95) / percentile(values, 5))

    def test_zero_floor_guard(self):
        ratio = quantile_ratio([0.0] * 10 + [100.0], floor=1e-9)
        assert ratio > 1e9

    def test_constant_sample_is_one(self):
        assert quantile_ratio([7.0] * 20) == pytest.approx(1.0)


class TestFairnessIndex:
    def test_even_allocation_is_one(self):
        assert fairness_index([3.0] * 10) == pytest.approx(1.0)

    def test_single_hog_is_one_over_n(self):
        assert fairness_index([1, 0, 0, 0]) == pytest.approx(0.25)

    def test_all_zero_is_trivially_even(self):
        assert fairness_index([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fairness_index([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fairness_index([1.0, -1.0])

    @given(st.lists(st.floats(min_value=0.0, max_value=1e4,
                              allow_nan=False), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_bounded(self, values):
        index = fairness_index(values)
        assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9

    @given(st.lists(st.floats(min_value=0.01, max_value=1e3,
                              allow_nan=False), min_size=2, max_size=40),
           st.floats(min_value=0.1, max_value=10, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_scale_invariant(self, values, scale):
        assert fairness_index([v * scale for v in values]) == \
            pytest.approx(fairness_index(values), rel=1e-9)


class TestRmse:
    def test_zero_for_identical(self):
        assert rmse([1, 2, 3], [1, 2, 3]) == 0.0

    def test_known_value(self):
        assert rmse([0, 0], [3, 4]) == pytest.approx(np.sqrt(12.5))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rmse([1], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rmse([], [])


class TestSummarize:
    def test_fields(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.count == 5
        assert summary.minimum == 1
        assert summary.maximum == 5
        assert summary.median == 3

    def test_cv_property(self):
        summary = summarize([2, 2, 2])
        assert summary.cv == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    @given(samples)
    @settings(max_examples=50, deadline=None)
    def test_ordering_invariants(self, values):
        s = summarize(values)
        assert s.minimum <= s.p5 <= s.median <= s.p95 <= s.maximum
        # np.mean of identical values can differ in the last ulp.
        tolerance = 1e-9 * max(1.0, abs(s.maximum))
        assert s.minimum - tolerance <= s.mean <= s.maximum + tolerance
