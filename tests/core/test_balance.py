"""Tests for §4.3 load-balance analyses."""

import numpy as np
import pytest

from repro.core.balance import (
    app_balance_summary,
    find_unbalanced_app,
    hottest_app_day_view,
    machine_imbalance,
    site_imbalance,
    weekly_bandwidth_view,
)
from repro.errors import TraceError


def _loaded_site(nep_dataset):
    """A site hosting at least two VMs, for the machine view."""
    by_site = {}
    for vm in nep_dataset.vms.values():
        by_site.setdefault(vm.site_id, []).append(vm)
    return max(by_site, key=lambda s: len(by_site[s]))


def _loaded_province(nep_dataset):
    by_province = {}
    for vm in nep_dataset.vms.values():
        by_province.setdefault(vm.province, set()).add(vm.site_id)
    return max(by_province, key=lambda p: len(by_province[p]))


class TestMachineImbalance:
    def test_cpu_view(self, nep_dataset):
        view = machine_imbalance(nep_dataset, _loaded_site(nep_dataset),
                                 "cpu")
        assert view.normalized_usage.min() >= 1.0
        assert view.max_gap >= 1.0

    def test_bw_view(self, nep_dataset):
        view = machine_imbalance(nep_dataset, _loaded_site(nep_dataset),
                                 "bw")
        assert view.label == "machines/bw"

    def test_fairness_bounded(self, nep_dataset):
        view = machine_imbalance(nep_dataset, _loaded_site(nep_dataset),
                                 "bw")
        assert 1.0 / len(view.unit_ids) <= view.fairness <= 1.0

    def test_unknown_metric_rejected(self, nep_dataset):
        with pytest.raises(TraceError):
            machine_imbalance(nep_dataset, _loaded_site(nep_dataset),
                              "gpu")

    def test_empty_site_rejected(self, nep_dataset):
        empty = next(site_id for site_id in nep_dataset.sites
                     if not nep_dataset.vms_on_site(site_id))
        with pytest.raises(TraceError):
            machine_imbalance(nep_dataset, empty, "cpu")


class TestSiteImbalance:
    def test_bw_skew_across_sites(self, nep_dataset):
        view = site_imbalance(nep_dataset, _loaded_province(nep_dataset),
                              "bw")
        assert view.max_gap >= 1.0
        assert len(view.unit_ids) <= 11  # the paper samples 11 sites

    def test_cpu_view(self, nep_dataset):
        view = site_imbalance(nep_dataset, _loaded_province(nep_dataset),
                              "cpu")
        assert view.normalized_usage.size == len(view.unit_ids)

    def test_unknown_province_rejected(self, nep_dataset):
        with pytest.raises(TraceError):
            site_imbalance(nep_dataset, "Narnia", "bw")

    def test_sampling_with_rng(self, nep_dataset, rng):
        view = site_imbalance(nep_dataset, _loaded_province(nep_dataset),
                              "bw", max_sites=2, rng=rng)
        assert len(view.unit_ids) <= 2


class TestWeeklyBandwidth:
    def test_weekly_view_shape(self, nep_dataset):
        vm_ids = nep_dataset.vm_ids()[:4]
        view = weekly_bandwidth_view(nep_dataset, vm_ids)
        weeks = nep_dataset.trace_days // 7
        for vm_id in vm_ids:
            assert view.weekly_mbps[vm_id].size == weeks

    def test_variability_metric(self, nep_dataset):
        vm_ids = nep_dataset.vm_ids()[:2]
        view = weekly_bandwidth_view(nep_dataset, vm_ids)
        for vm_id in vm_ids:
            assert view.variability(vm_id) >= 0.0

    def test_unknown_vm_rejected(self, nep_dataset):
        with pytest.raises(TraceError):
            weekly_bandwidth_view(nep_dataset, ["ghost"])


class TestAppBalance:
    def test_nep_more_unbalanced_than_azure(self, nep_dataset,
                                            azure_dataset):
        # Figure 13(a): far more NEP apps exceed a 50x cross-VM gap.
        nep = app_balance_summary(nep_dataset)
        azure = app_balance_summary(azure_dataset)
        assert nep.fraction_above_50x >= azure.fraction_above_50x

    def test_gap_cdf_at_least_one(self, nep_dataset):
        summary = app_balance_summary(nep_dataset)
        assert summary.gaps_cdf.quantile(0.0) >= 1.0

    def test_min_vms_filter(self, nep_dataset):
        strict = app_balance_summary(nep_dataset, min_vms=10)
        loose = app_balance_summary(nep_dataset, min_vms=3)
        assert strict.app_count <= loose.app_count


class TestHottestApp:
    def test_find_unbalanced_app(self, nep_dataset):
        app_id = find_unbalanced_app(nep_dataset, min_vms=5)
        assert app_id in nep_dataset.apps

    def test_day_view_shape(self, nep_dataset):
        app_id = find_unbalanced_app(nep_dataset, min_vms=5)
        view = hottest_app_day_view(nep_dataset, app_id, day_index=1)
        per_day = nep_dataset.cpu_points_per_day
        assert all(series.size == per_day for series in view.values())
        assert len(view) <= 11

    def test_bad_day_rejected(self, nep_dataset):
        app_id = find_unbalanced_app(nep_dataset, min_vms=5)
        with pytest.raises(TraceError):
            hottest_app_day_view(nep_dataset, app_id,
                                 day_index=nep_dataset.trace_days)

    def test_no_big_app_rejected(self, nep_dataset):
        with pytest.raises(TraceError):
            find_unbalanced_app(nep_dataset, min_vms=10**6)
