"""Tests for report rendering helpers."""

import pytest

from repro.core.report import (
    cdf_to_rows,
    check_ordering,
    check_ratio,
    comparison_block,
    format_table,
    sketch_cdf,
)
from repro.core.stats import ECDF


class TestFormatTable:
    def test_basic_render(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 22.0]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "--" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["x"], [[1]], title="Table 9")
        assert text.splitlines()[0] == "Table 9"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456], [123.456], [1.5]])
        assert "0.123" in text
        assert "123" in text
        assert "1.50" in text

    def test_column_alignment(self):
        text = format_table(["long-header", "x"], [["a", "b"]])
        header, rule, row = text.splitlines()
        assert len(row) <= len(header) + 2


class TestSketchCdf:
    def test_contains_quantiles(self):
        cdf = ECDF.from_samples(range(100))
        text = sketch_cdf(cdf, label="rtt")
        assert text.startswith("rtt:")
        assert "n=100" in text


class TestComparisons:
    def test_check_ratio_within_tolerance(self):
        assert check_ratio("m", 10.0, 11.0, tolerance=0.2).holds

    def test_check_ratio_outside_tolerance(self):
        assert not check_ratio("m", 10.0, 20.0, tolerance=0.2).holds

    def test_check_ratio_zero_paper_value(self):
        assert not check_ratio("m", 0.0, 1.0).holds

    def test_check_ordering(self):
        comparison = check_ordering("m", "edge < cloud", True, "12 < 25")
        assert comparison.holds
        assert "OK" in comparison.render()

    def test_comparison_block_counts(self):
        block = comparison_block("T", [
            check_ratio("a", 1.0, 1.0),
            check_ratio("b", 1.0, 9.0),
        ])
        assert "1/2 checks hold" in block
        assert block.startswith("== T ==")


class TestCdfToRows:
    def test_rows_monotone(self):
        cdf = ECDF.from_samples(range(1000))
        rows = cdf_to_rows(cdf, points=9)
        values = [v for v, _ in rows]
        fractions = [f for _, f in rows]
        assert values == sorted(values)
        assert fractions[0] == pytest.approx(0.1)
        assert fractions[-1] == pytest.approx(0.9)
