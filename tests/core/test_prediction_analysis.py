"""Tests for the §4.4 prediction comparison driver (reduced scale)."""

import numpy as np
import pytest

from repro.core.prediction_analysis import (
    PredictionComparison,
    run_prediction_study,
)
from repro.errors import PredictionError
from repro.prediction.evaluate import ExperimentSpec


@pytest.fixture(scope="module")
def small_spec(request):
    return ExperimentSpec(cpu_interval_minutes=5, window_minutes=60,
                          train_days=4, test_days=2)


@pytest.fixture(scope="module")
def nep_study(small_spec):
    from repro import smoke_study
    study = smoke_study()
    return run_prediction_study(study.nep.dataset, vm_sample=4,
                                rng=np.random.default_rng(0),
                                spec=small_spec, lstm_epochs=4,
                                lstm_sample=2)


class TestStudy:
    def test_outcomes_cover_models_and_targets(self, nep_study):
        combos = {(o.model, o.target) for o in nep_study.outcomes}
        assert ("holt-winters", "max") in combos
        assert ("holt-winters", "mean") in combos
        assert ("lstm", "max") in combos

    def test_lstm_sample_cap_respected(self, nep_study):
        lstm_vms = {o.vm_id for o in nep_study.outcomes
                    if o.model == "lstm"}
        hw_vms = {o.vm_id for o in nep_study.outcomes
                  if o.model == "holt-winters"}
        assert len(lstm_vms) <= 2
        assert len(hw_vms) == 4

    def test_rmse_values_sane(self, nep_study):
        for outcome in nep_study.outcomes:
            assert 0.0 <= outcome.rmse_percent <= 100.0

    def test_seasonality_collected(self, nep_study):
        assert len(nep_study.seasonality) == 4
        assert 0.0 <= nep_study.mean_seasonality <= 1.0

    def test_rmse_cdf_lookup(self, nep_study):
        cdf = nep_study.rmse_cdf("holt-winters", "mean")
        assert len(cdf) == 4

    def test_missing_combo_rejected(self, nep_study):
        with pytest.raises(PredictionError):
            nep_study.rmse_cdf("arima", "mean")

    def test_trace_too_short_rejected(self, nep_dataset):
        spec = ExperimentSpec(cpu_interval_minutes=5, window_minutes=60,
                              train_days=30, test_days=10)
        with pytest.raises(PredictionError):
            run_prediction_study(nep_dataset, vm_sample=2,
                                 rng=np.random.default_rng(0), spec=spec)


class TestSeasonalArLeg:
    def test_included_on_request(self, small_spec):
        from repro import smoke_study

        study = smoke_study()
        result = run_prediction_study(
            study.nep.dataset, vm_sample=2,
            rng=np.random.default_rng(5), spec=small_spec,
            lstm_epochs=2, lstm_sample=0, include_seasonal_ar=True)
        models = {o.model for o in result.outcomes}
        assert "seasonal-ar" in models
        assert result.median_rmse("seasonal-ar", "mean") >= 0.0

    def test_excluded_by_default(self, nep_study):
        assert "seasonal-ar" not in {o.model for o in nep_study.outcomes}


class TestComparison:
    def test_median_table_and_headline(self, nep_study, small_spec):
        from repro import smoke_study
        study = smoke_study()
        azure_study = run_prediction_study(
            study.azure.dataset, vm_sample=4,
            rng=np.random.default_rng(1), spec=small_spec,
            lstm_epochs=4, lstm_sample=2)
        comparison = PredictionComparison(edge=nep_study, cloud=azure_study)
        table = comparison.median_table()
        assert ("holt-winters", "mean") in table
        edge_median, cloud_median = table[("holt-winters", "mean")]
        assert edge_median >= 0 and cloud_median >= 0
