"""Tests for the §4.5 cost study."""

import pytest

from repro.billing.cloud import NetworkModel
from repro.core.cost_analysis import (
    build_app_usage,
    heaviest_apps,
    run_cost_study,
    site_locations,
)
from repro.errors import BillingError


@pytest.fixture(scope="module")
def cost_study():
    from repro import smoke_study
    study = smoke_study()
    return run_cost_study(study.nep.dataset, study.vcloud1,
                          study.vcloud_regions, study.nep_billing,
                          app_count=6)


class TestUsageAssembly:
    def test_usage_covers_all_vms(self, nep_dataset):
        app_id = nep_dataset.app_ids_with_vms()[0]
        usage = build_app_usage(nep_dataset, app_id)
        assert len(usage.hardware) == len(nep_dataset.vms_of_app(app_id))

    def test_per_site_aggregation(self, nep_dataset):
        app_id = nep_dataset.app_ids_with_vms()[0]
        usage = build_app_usage(nep_dataset, app_id)
        sites = {vm.site_id for vm in nep_dataset.vms_of_app(app_id)}
        assert set(usage.location_series) == sites

    def test_heaviest_apps_ordered_by_traffic(self, nep_dataset):
        apps = heaviest_apps(nep_dataset, 5)
        totals = [
            sum(float(nep_dataset.bw_series[vm.vm_id].sum())
                for vm in nep_dataset.vms_of_app(a))
            for a in apps
        ]
        assert totals == sorted(totals, reverse=True)

    def test_bad_count_rejected(self, nep_dataset):
        with pytest.raises(BillingError):
            heaviest_apps(nep_dataset, 0)

    def test_site_locations_cover_all_sites(self, nep_dataset):
        assert set(site_locations(nep_dataset)) == set(nep_dataset.sites)


class TestCostStudy:
    def test_all_models_billed(self, cost_study):
        for comparison in cost_study.comparisons:
            assert set(comparison.cloud_bills) == set(NetworkModel)

    def test_nep_cheaper_on_average(self, cost_study):
        # Table 3: mean ratios are > 1 for every network model.
        for model in NetworkModel:
            assert cost_study.summary(model)["mean"] > 1.0

    def test_on_demand_bandwidth_is_cheapest_cloud_option(self, cost_study):
        # Table 3 ordering: by-bandwidth < by-quantity < pre-reserved.
        means = {model: cost_study.summary(model)["mean"]
                 for model in NetworkModel}
        assert (means[NetworkModel.ON_DEMAND_BANDWIDTH]
                <= means[NetworkModel.ON_DEMAND_QUANTITY])
        assert (means[NetworkModel.ON_DEMAND_BANDWIDTH]
                <= means[NetworkModel.PRE_RESERVED])

    def test_network_dominates_nep_cost(self, cost_study):
        # §4.5: bandwidth is ~76% of the bill on average for heavy apps.
        shares = cost_study.network_share_of_nep_cost()
        assert shares["mean"] > 0.5
        assert shares["max"] <= 1.0

    def test_mean_saving_positive(self, cost_study):
        # ~45% average saving vs vCloud-1 in the paper.
        assert 0.1 < cost_study.mean_saving_by_bandwidth < 0.9

    def test_hardware_ratio_in_paper_band(self, cost_study):
        # §4.5: NEP charges 3-20% more on hardware.  Disk-heavy CDN apps
        # can dip below 1.0 (NEP SSD is 0.35/GB vs AliCloud's 1/GB), so
        # the band is checked on the typical (median) app.
        import numpy as np
        ratios = [c.hardware_ratio for c in cost_study.comparisons]
        assert 0.8 < float(np.median(ratios)) < 1.5

    def test_summary_fields(self, cost_study):
        summary = cost_study.summary(NetworkModel.PRE_RESERVED)
        assert summary["min"] <= summary["median"] <= summary["max"]
