"""Tests for the chunked series reductions (repro.core.chunks).

These pin the bit-identity contract: every chunked helper must return
exactly what the row-at-a-time originals returned, on both backing
stores, or streaming would silently change every §4 figure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.chunks import (
    StreamingHistogram,
    cpu_row_stats,
    iter_series_chunks,
    per_vm_means,
    per_vm_totals,
)
from repro.core.workload_analysis import cpu_tick_quantiles
from repro.errors import TraceError
from repro.shards import ShardWriter, load_sharded_series, write_shard_index


def _dict_series(rows=10, points=64, seed=4):
    rng = np.random.default_rng(seed)
    data = rng.random((rows, points)).astype(np.float32)
    return {f"vm{i:03d}": data[i] for i in range(rows)}


def _sharded_series(tmp_path, series, shard_rows=4):
    order = list(series)
    points = len(next(iter(series.values())))
    writer = ShardWriter(tmp_path, "cpu", points, shard_rows=shard_rows)
    for row in series.values():
        writer.append(row[np.newaxis, :])
    write_shard_index(tmp_path, [writer.finalize()])
    return load_sharded_series(tmp_path, {"cpu": order})["cpu"]


class TestIterSeriesChunks:
    def test_dict_backing_covers_in_order(self):
        series = _dict_series()
        seen = []
        for vm_ids, window in iter_series_chunks(series, rows=3):
            assert window.shape[0] <= 3
            for offset, vm_id in enumerate(vm_ids):
                assert np.array_equal(window[offset], series[vm_id])
                seen.append(vm_id)
        assert seen == list(series)

    def test_sharded_backing_matches_dict(self, tmp_path):
        series = _dict_series()
        sharded = _sharded_series(tmp_path, series)
        flat_dict = [(ids, np.asarray(w).copy())
                     for ids, w in iter_series_chunks(series, rows=4)]
        flat_shard = [(list(ids), np.asarray(w).copy())
                      for ids, w in iter_series_chunks(sharded, rows=4)]
        assert [ids for ids, _ in flat_dict] == [i for i, _ in flat_shard]
        assert np.array_equal(np.concatenate([w for _, w in flat_dict]),
                              np.concatenate([w for _, w in flat_shard]))

    def test_nonpositive_rows_rejected(self):
        with pytest.raises(TraceError):
            list(iter_series_chunks(_dict_series(), rows=0))


class TestReductionBitIdentity:
    """Chunked scalars == the historical row-at-a-time float dance."""

    @pytest.mark.parametrize("rows", [1, 3, 1024])
    def test_per_vm_means(self, rows):
        series = _dict_series()
        means = per_vm_means(series, rows=rows)
        assert means == {vm: float(row.mean()) for vm, row in series.items()}

    @pytest.mark.parametrize("rows", [1, 3, 1024])
    def test_per_vm_totals(self, rows):
        series = _dict_series()
        totals = per_vm_totals(series, rows=rows)
        assert totals == {vm: float(row.sum()) for vm, row in series.items()}

    def test_cpu_row_stats(self):
        series = _dict_series()
        series["vmidle"] = np.zeros(64, dtype=np.float32)  # the CV guard
        means, p95s, cvs = cpu_row_stats(series, rows=4)
        for vm, row in series.items():
            mean = float(row.mean())
            assert means[vm] == mean
            assert p95s[vm] == float(np.percentile(row, 95))
            expected_cv = 0.0 if mean == 0.0 else float(row.std() / mean)
            assert cvs[vm] == expected_cv

    def test_sharded_backing_same_scalars(self, tmp_path):
        series = _dict_series()
        sharded = _sharded_series(tmp_path, series)
        assert per_vm_means(series, rows=4) == per_vm_means(sharded, rows=4)
        assert per_vm_totals(series, rows=4) == per_vm_totals(sharded, rows=4)
        assert cpu_row_stats(series, rows=4) == cpu_row_stats(sharded, rows=4)

    def test_analyses_use_chunked_path(self, nep_dataset):
        """The shared-dataset smoke trace reduces identically."""
        means = per_vm_means(nep_dataset.cpu_series)
        for vm_id in nep_dataset.vms:
            row = np.asarray(nep_dataset.cpu_series[vm_id])
            assert means[vm_id] == float(row.mean())


class TestStreamingHistogram:
    def test_quantile_error_bounded_by_bin_width(self):
        rng = np.random.default_rng(7)
        values = rng.random(20_000).astype(np.float32)
        hist = StreamingHistogram(lo=0.0, hi=1.0, bins=512)
        for chunk in np.array_split(values, 7):
            hist.add(chunk)
        assert hist.count == values.size
        for q in (0.05, 0.5, 0.9, 0.99):
            exact = float(np.quantile(values.astype(np.float64), q))
            assert abs(hist.quantile(q) - exact) <= hist.bin_width

    def test_merge_equals_single_pass(self):
        rng = np.random.default_rng(8)
        values = rng.random(5_000)
        whole = StreamingHistogram(bins=256)
        whole.add(values)
        left, right = StreamingHistogram(bins=256), StreamingHistogram(
            bins=256)
        left.add(values[:2_000])
        right.add(values[2_000:])
        left.merge(right)
        assert np.array_equal(left.counts, whole.counts)
        assert left.quantile(0.5) == whole.quantile(0.5)

    def test_merge_empty_operands(self):
        """Empty-into-full and full-into-empty both leave counts right."""
        full = StreamingHistogram(bins=32)
        full.add(np.linspace(0.0, 1.0, 100))
        before = full.counts.copy()
        full.merge(StreamingHistogram(bins=32))  # empty rhs: no-op
        assert np.array_equal(full.counts, before)
        assert full.count == 100
        empty = StreamingHistogram(bins=32)
        empty.merge(full)  # empty lhs adopts the rhs wholesale
        assert np.array_equal(empty.counts, before)
        assert empty.quantile(0.5) == full.quantile(0.5)
        both = StreamingHistogram(bins=32)
        both.merge(StreamingHistogram(bins=32))
        assert both.count == 0

    def test_single_bin_histogram(self):
        """One bin degenerates gracefully: everything lands in it."""
        hist = StreamingHistogram(lo=0.0, hi=10.0, bins=1)
        hist.add(np.array([-1.0, 3.0, 42.0]))
        assert hist.count == 3
        assert hist.counts.tolist() == [3]
        assert 0.0 <= hist.quantile(0.5) <= 10.0
        other = StreamingHistogram(lo=0.0, hi=10.0, bins=1)
        other.add(np.array([5.0]))
        hist.merge(other)
        assert hist.count == 4

    def test_mismatched_ranges_raise(self):
        """Every geometry axis is checked, not just the bin count."""
        base = StreamingHistogram(lo=0.0, hi=1.0, bins=64)
        with pytest.raises(TraceError):
            base.merge(StreamingHistogram(lo=0.5, hi=1.0, bins=64))
        with pytest.raises(TraceError):
            base.merge(StreamingHistogram(lo=0.0, hi=0.5, bins=64))
        with pytest.raises(TraceError):
            base.merge(StreamingHistogram(lo=-1.0, hi=1.0, bins=64))

    def test_out_of_range_values_clamp_into_edge_bins(self):
        hist = StreamingHistogram(lo=0.0, hi=1.0, bins=10)
        hist.add(np.array([-5.0, 0.05, 2.0]))
        assert hist.counts[0] == 2  # -5.0 clamps down, 0.05 lands there
        assert hist.counts[-1] == 1
        assert hist.count == 3

    def test_geometry_mismatch_rejected(self):
        base = StreamingHistogram(bins=64)
        with pytest.raises(TraceError):
            base.merge(StreamingHistogram(bins=128))
        with pytest.raises(TraceError):
            base.merge(StreamingHistogram(lo=0.0, hi=2.0, bins=64))

    def test_error_cases(self):
        with pytest.raises(TraceError):
            StreamingHistogram(bins=0)
        with pytest.raises(TraceError):
            StreamingHistogram(lo=1.0, hi=1.0)
        hist = StreamingHistogram()
        with pytest.raises(TraceError):
            hist.quantile(0.5)  # empty
        hist.add(np.array([0.5]))
        with pytest.raises(TraceError):
            hist.quantile(1.5)

    def test_degenerate_quantiles(self):
        hist = StreamingHistogram(bins=4)
        hist.add(np.array([1.0, 1.0]))  # everything in the top bin
        assert hist.quantile(1.0) <= 1.0
        assert hist.quantile(0.0) >= 0.75


class TestCpuTickQuantiles:
    def test_matches_exact_within_bound(self, nep_dataset):
        result = cpu_tick_quantiles(nep_dataset, qs=(0.5, 0.95))
        assert result.platform == nep_dataset.platform_name
        everything = np.concatenate(
            [np.asarray(nep_dataset.cpu_series[vm])
             for vm in nep_dataset.vms]).astype(np.float64)
        assert result.readings == everything.size
        for q, approx in result.quantiles.items():
            assert abs(approx - float(np.quantile(everything, q))) \
                <= result.max_error

    def test_frozen_result(self, nep_dataset):
        result = cpu_tick_quantiles(nep_dataset)
        with pytest.raises(AttributeError):
            result.platform = "x"

    def test_small_scale_matches_exact_quantiles(self):
        """At toy scale the sketch must track np.quantile bin-tight."""
        from repro.trace.dataset import TraceDataset
        from repro.trace.schema import VMRecord

        ds = TraceDataset(platform_name="toy", trace_days=1,
                          cpu_interval_minutes=180,
                          bw_interval_minutes=180)
        rng = np.random.default_rng(19)
        rows = rng.random((6, ds.cpu_points)).astype(np.float32)
        for i, row in enumerate(rows):
            record = VMRecord(vm_id=f"vm{i}", app_id="a0",
                              customer_id="c0", site_id="s0",
                              server_id="m0", city="Beijing",
                              province="Beijing", category="cdn",
                              image_id="img", os_type="linux",
                              cpu_cores=4, memory_gb=8, disk_gb=50,
                              bandwidth_mbps=10.0)
            ds.add_vm(record, row, np.zeros(ds.bw_points))
        result = cpu_tick_quantiles(ds, qs=(0.25, 0.5, 0.75, 0.95))
        pooled = rows.astype(np.float64).ravel()
        assert result.readings == pooled.size
        for q, approx in result.quantiles.items():
            # With 48 readings the interpolated default quantile can sit
            # between order statistics; the sketch tracks the pure
            # order-statistic quantile to within one bin.
            exact = float(np.quantile(pooled, q, method="inverted_cdf"))
            assert abs(approx - exact) <= result.max_error
