"""Tests for the §3.1 latency analyses."""

import numpy as np
import pytest

from repro.core.latency_analysis import (
    cv_cdfs,
    expected_intersite_rtt_ms,
    hop_breakdown,
    hop_count_cdf,
    intersite_summary,
    per_user_latency,
    rtt_cdfs,
)
from repro.errors import MeasurementError
from repro.measurement.campaign import LatencyObservation
from repro.netsim.access import AccessType


def _obs(participant, target, kind, rtt, cv=0.02, hops=8,
         access=AccessType.WIFI,
         shares=(0.4, 0.1, 0.2, 0.3)):
    return LatencyObservation(
        participant_id=participant, city="Beijing", province="Beijing",
        access=access, target_id=target, target_kind=kind,
        distance_km=100.0, mean_rtt_ms=rtt, rtt_cv=cv, hop_count=hops,
        hop_shares=shares,
    )


def _user_observations(participant="u0", access=AccessType.WIFI):
    return [
        _obs(participant, "e0", "edge", 12.0, cv=0.01, hops=7, access=access),
        _obs(participant, "e1", "edge", 15.0, access=access),
        _obs(participant, "e2", "edge", 18.0, access=access),
        _obs(participant, "c0", "cloud", 25.0, cv=0.06, hops=12,
             access=access),
        _obs(participant, "c1", "cloud", 45.0, cv=0.08, hops=14,
             access=access),
    ]


class TestPerUserAggregation:
    def test_baselines_computed(self):
        records = per_user_latency(_user_observations())
        assert len(records) == 1
        record = records[0]
        assert record.nearest_edge_rtt == 12.0
        assert record.third_edge_rtt == 18.0
        assert record.nearest_cloud_rtt == 25.0
        assert record.all_cloud_rtt == pytest.approx(35.0)

    def test_cv_baselines(self):
        record = per_user_latency(_user_observations())[0]
        assert record.nearest_edge_cv == 0.01
        assert record.nearest_cloud_cv == 0.06
        assert record.all_cloud_cv == pytest.approx(0.07)

    def test_hops_from_nearest_targets(self):
        record = per_user_latency(_user_observations())[0]
        assert record.nearest_edge_hops == 7
        assert record.nearest_cloud_hops == 12

    def test_insufficient_targets_rejected(self):
        observations = _user_observations()[:2]
        with pytest.raises(MeasurementError):
            per_user_latency(observations)

    def test_multiple_users_grouped(self):
        observations = _user_observations("u0") + _user_observations("u1")
        assert len(per_user_latency(observations)) == 2


class TestCdfBuilders:
    def test_rtt_cdfs_keys(self):
        records = per_user_latency(_user_observations())
        cdfs = rtt_cdfs(records, AccessType.WIFI)
        assert set(cdfs) == {"nearest_edge", "third_edge",
                             "nearest_cloud", "all_cloud"}

    def test_missing_access_rejected(self):
        records = per_user_latency(_user_observations())
        with pytest.raises(MeasurementError):
            rtt_cdfs(records, AccessType.LTE)

    def test_cv_cdfs(self):
        records = per_user_latency(_user_observations())
        cdfs = cv_cdfs(records, AccessType.WIFI)
        assert cdfs["nearest_edge"].median == 0.01


class TestHopBreakdown:
    def test_visible_hops_averaged(self):
        records = per_user_latency(_user_observations())
        breakdown = hop_breakdown(records, AccessType.WIFI, "nearest_edge")
        assert breakdown.hop1 == pytest.approx(0.4)
        assert breakdown.first3_total == pytest.approx(0.7)
        assert breakdown.rest == pytest.approx(0.3)

    def test_hidden_hops_reported_as_none(self):
        observations = [
            _obs("u0", "e0", "edge", 10.0, access=AccessType.FIVE_G,
                 shares=(None, None, 0.95, 0.05)),
            _obs("u0", "e1", "edge", 12.0, access=AccessType.FIVE_G,
                 shares=(None, None, 0.9, 0.1)),
            _obs("u0", "e2", "edge", 14.0, access=AccessType.FIVE_G,
                 shares=(None, None, 0.9, 0.1)),
            _obs("u0", "c0", "cloud", 30.0, access=AccessType.FIVE_G,
                 shares=(None, None, 0.8, 0.2)),
        ]
        records = per_user_latency(observations)
        breakdown = hop_breakdown(records, AccessType.FIVE_G, "nearest_edge")
        assert breakdown.hop1 is None
        assert breakdown.first3_total == pytest.approx(0.95)

    def test_unknown_target_rejected(self):
        records = per_user_latency(_user_observations())
        with pytest.raises(MeasurementError):
            hop_breakdown(records, AccessType.WIFI, "farthest_moon")


class TestHopCountCdf:
    def test_edge_vs_cloud(self):
        records = per_user_latency(_user_observations())
        assert hop_count_cdf(records, "nearest_edge").median == 7
        assert hop_count_cdf(records, "nearest_cloud").median == 12

    def test_unknown_target_rejected(self):
        records = per_user_latency(_user_observations())
        with pytest.raises(MeasurementError):
            hop_count_cdf(records, "nowhere")


class TestIntersite:
    def test_expected_rtt_monotone_in_distance(self):
        rtts = [expected_intersite_rtt_ms(d) for d in (10, 500, 1500, 3000)]
        assert rtts == sorted(rtts)

    def test_100ms_at_3000km(self):
        # Figure 4 calibration.
        assert 70 <= expected_intersite_rtt_ms(3000) <= 120

    def test_summary_shape(self, nep_platform, rng):
        summary = intersite_summary(nep_platform, rng)
        n = len(nep_platform.sites)
        assert summary.distances_km.size == n * (n - 1) // 2
        assert summary.rtts_ms.size == summary.distances_km.size

    def test_nearby_counts_ordered(self, nep_platform, rng):
        summary = intersite_summary(nep_platform, rng)
        assert (summary.mean_sites_within_5ms
                <= summary.mean_sites_within_10ms
                <= summary.mean_sites_within_20ms)

    def test_rtt_correlates_with_distance(self, nep_platform, rng):
        summary = intersite_summary(nep_platform, rng)
        corr = np.corrcoef(summary.distances_km, summary.rtts_ms)[0, 1]
        assert corr > 0.9
