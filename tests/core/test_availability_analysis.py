"""Tests for the availability analysis and its paper-facing claims."""

import pytest

from repro import EdgeStudy
from repro.core.availability_analysis import run_availability_study
from repro.errors import FaultError


@pytest.fixture(scope="module")
def report(faulty_study):
    return faulty_study.availability


class TestAvailabilityReport:
    def test_edge_availability_strictly_below_cloud(self, report):
        # The PR's headline acceptance criterion: individual edge sites
        # churn more than cloud regions under the paper profile.
        assert report.edge_mean_availability < report.cloud_mean_availability
        assert report.availability_gap > 0.0

    def test_availabilities_are_probabilities(self, report):
        for value in (report.edge_mean_availability,
                      report.edge_min_availability,
                      report.edge_p5_availability,
                      report.cloud_mean_availability,
                      report.cloud_min_availability):
            assert 0.0 <= value <= 1.0
        assert report.edge_min_availability <= report.edge_p5_availability
        assert report.edge_p5_availability <= report.edge_mean_availability

    def test_retries_recover_timeouts(self, report):
        # With the default seed some probes hit outage windows, and the
        # 225-minute backoff window outlasting the 180-minute mean outage
        # means a nonzero fraction must come back.
        assert report.probe_timeout_rate > 0.0
        assert report.probe_recovery_rate > 0.0

    def test_counts_are_consistent(self, report, faulty_study):
        schedule = faulty_study.faults
        assert report.edge_outage_count + report.cloud_outage_count == \
            len(schedule.outages)
        assert report.server_crashes == len(schedule.server_crashes)
        assert report.degradation_episodes == len(schedule.episodes)
        assert report.probes > 0
        assert report.ping_loss_rate > 0.0

    def test_format_contains_all_sections(self, report):
        text = report.format()
        assert "Site availability" in text
        assert "Probe outcomes" in text
        assert "Failover" in text
        assert "Access degradation" in text

    def test_requires_probe_accounting(self, study, faulty_study):
        # Baseline latency results carry no probe stats: mixing them with
        # a fault schedule is a caller error, flagged loudly.
        with pytest.raises(FaultError):
            run_availability_study(faulty_study.faults,
                                   study.latency_results,
                                   study.throughput_results,
                                   faulty_study.failover)


class TestDeterminism:
    def test_same_seed_byte_identical_report(self, faulty_study):
        # A completely fresh study (no shared caches with the session
        # fixture) must reproduce the formatted report byte for byte.
        fresh = EdgeStudy(faulty_study.scenario)
        assert fresh.availability.format() == \
            faulty_study.availability.format()

    def test_different_seed_differs(self, faulty_study):
        other = EdgeStudy(faulty_study.scenario.with_overrides(seed=777))
        assert other.availability.format() != \
            faulty_study.availability.format()
