"""Tests for the §3.2 throughput analysis."""

import pytest

from repro.core.throughput_analysis import all_series, throughput_series
from repro.errors import MeasurementError
from repro.measurement.campaign import ThroughputObservation
from repro.measurement.iperf import IperfResult
from repro.netsim.access import AccessType


def _obs(access, distance, down, up, participant="u0"):
    return ThroughputObservation(
        participant_id=participant, access=access,
        result=IperfResult(target_label="vm", distance_km=distance,
                           downlink_mbps=down, uplink_mbps=up, rtt_ms=20.0),
    )


def _capacity_limited_panel():
    # WiFi: throughput independent of distance (non-monotone noise).
    noise = (0.0, 2.0, -2.0, 0.5, -1.0, 1.5)
    return [_obs(AccessType.WIFI, d, 80.0 + n, 40.0)
            for d, n in zip((50, 300, 800, 1500, 2500, 3000), noise)]


def _path_limited_panel():
    # 5G downlink: throughput decays with distance.
    return [_obs(AccessType.FIVE_G, d, 600.0 - 0.15 * d, 50.0)
            for d in (50, 300, 800, 1500, 2500, 3000)]


class TestThroughputSeries:
    def test_capacity_limited_has_negligible_correlation(self):
        series = throughput_series(_capacity_limited_panel(),
                                   AccessType.WIFI, "downlink")
        assert series.capacity_limited
        assert not series.distance_matters

    def test_path_limited_has_significant_correlation(self):
        series = throughput_series(_path_limited_panel(),
                                   AccessType.FIVE_G, "downlink")
        assert series.distance_matters
        assert series.correlation < -0.7

    def test_uplink_direction(self):
        series = throughput_series(_path_limited_panel(),
                                   AccessType.FIVE_G, "uplink")
        assert series.capacity_limited  # constant 50 Mbps cap

    def test_mean(self):
        series = throughput_series(_capacity_limited_panel(),
                                   AccessType.WIFI, "uplink")
        assert series.mean_mbps == pytest.approx(40.0)

    def test_unknown_direction_rejected(self):
        with pytest.raises(MeasurementError):
            throughput_series(_capacity_limited_panel(),
                              AccessType.WIFI, "sideways")

    def test_too_few_observations_rejected(self):
        with pytest.raises(MeasurementError):
            throughput_series(_capacity_limited_panel()[:2],
                              AccessType.WIFI, "downlink")

    def test_all_series_covers_present_accesses(self):
        panels = _capacity_limited_panel() + _path_limited_panel()
        series = all_series(panels)
        accesses = {s.access for s in series}
        assert accesses == {AccessType.WIFI, AccessType.FIVE_G}
        assert len(series) == 4  # two accesses x two directions
