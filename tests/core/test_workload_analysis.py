"""Tests for §4.1/§4.2 workload analyses."""

import pytest

from repro.core.workload_analysis import (
    app_vm_count_summary,
    category_breakdown,
    cpu_utilization_summary,
    sales_rate_summary,
    vm_size_summary,
)
from repro.errors import TraceError
from repro.trace.dataset import TraceDataset


class TestVmSizeSummary:
    def test_nep_bigger_than_azure(self, nep_dataset, azure_dataset):
        nep = vm_size_summary(nep_dataset)
        azure = vm_size_summary(azure_dataset)
        assert nep.median_cpu > azure.median_cpu
        assert nep.median_memory_gb > azure.median_memory_gb

    def test_bucket_shares_sum_to_one(self, nep_dataset):
        summary = vm_size_summary(nep_dataset)
        assert sum(summary.cpu_bucket_shares.values()) == pytest.approx(1.0)
        assert sum(summary.memory_bucket_shares.values()) == pytest.approx(1.0)

    def test_azure_dominated_by_small_vms(self, azure_dataset):
        summary = vm_size_summary(azure_dataset)
        assert summary.cpu_bucket_shares["small"] > 0.7

    def test_disk_stats_present_for_nep(self, nep_dataset):
        summary = vm_size_summary(nep_dataset)
        assert summary.mean_disk_gb > summary.median_disk_gb  # long tail

    def test_empty_dataset_rejected(self):
        empty = TraceDataset(platform_name="e", trace_days=1,
                             cpu_interval_minutes=30, bw_interval_minutes=30)
        with pytest.raises(TraceError):
            vm_size_summary(empty)


class TestAppVmCounts:
    def test_summary_fields(self, nep_dataset):
        summary = app_vm_count_summary(nep_dataset)
        assert summary.max_vms >= 1
        assert 0.0 <= summary.fraction_at_least_50 <= 1.0

    def test_counts_cdf_positive(self, nep_dataset):
        summary = app_vm_count_summary(nep_dataset)
        assert summary.counts_cdf.quantile(0.0) >= 1


class TestCpuUtilization:
    def test_nep_less_utilised_than_azure(self, nep_dataset, azure_dataset):
        # Figure 10(a).
        nep = cpu_utilization_summary(nep_dataset)
        azure = cpu_utilization_summary(azure_dataset)
        assert nep.fraction_mean_below_10pct > azure.fraction_mean_below_10pct
        assert nep.overall_mean_utilization < azure.overall_mean_utilization

    def test_nep_more_variable_than_azure(self, nep_dataset, azure_dataset):
        # Figure 10(b).
        assert (cpu_utilization_summary(nep_dataset).median_cv
                > cpu_utilization_summary(azure_dataset).median_cv)

    def test_p95_max_at_least_mean(self, nep_dataset):
        summary = cpu_utilization_summary(nep_dataset)
        assert summary.p95_max_cdf.median >= summary.mean_cdf.median


class TestSalesRates:
    def test_skew_across_sites(self, nep_platform):
        # §4.1: "the 95th-percentile CPU sales rate across sites is about
        # 5x higher than the 5th-percentile" — skew is large.
        summary = sales_rate_summary(nep_platform)
        assert summary.site_cpu_p95_over_p5 > 2.0

    def test_cpu_more_saturated_than_memory(self, nep_platform):
        # §4.1: median CPU sales rate ~2x the memory sales rate.
        summary = sales_rate_summary(nep_platform)
        assert summary.cpu_over_memory_ratio > 1.0

    def test_empty_platform_rejected(self):
        from repro.platform.cluster import Platform
        from repro.platform.entities import PlatformKind
        empty = Platform(name="e", kind=PlatformKind.EDGE)
        with pytest.raises(TraceError):
            sales_rate_summary(empty)


class TestCategoryBreakdown:
    def test_covers_every_vm(self, nep_dataset):
        breakdown = category_breakdown(nep_dataset)
        total_vms = sum(vms for _, vms, _ in breakdown.categories.values())
        assert total_vms == len(nep_dataset.vms)

    def test_traffic_shares_sum_to_one(self, nep_dataset):
        breakdown = category_breakdown(nep_dataset)
        total = sum(share for _, _, share in breakdown.categories.values())
        assert total == pytest.approx(1.0)

    def test_nep_is_video_centric(self, nep_dataset):
        # §4.5: "current edge apps are mostly video-centric".
        assert category_breakdown(nep_dataset).video_centric_share > 0.5

    def test_azure_is_not(self, azure_dataset):
        assert category_breakdown(azure_dataset).video_centric_share == 0.0

    def test_unknown_category_rejected(self, nep_dataset):
        with pytest.raises(TraceError):
            category_breakdown(nep_dataset).traffic_share("mining")

    def test_empty_dataset_rejected(self):
        empty = TraceDataset(platform_name="e", trace_days=1,
                             cpu_interval_minutes=30,
                             bw_interval_minutes=30)
        with pytest.raises(TraceError):
            category_breakdown(empty)
