"""Tests for the §3.3 QoE experiment drivers."""

import numpy as np
import pytest

from repro.core.qoe_analysis import (
    GAMING_DELAY_BUDGET_MS,
    GamingExperiment,
    StreamingExperiment,
)
from repro.measurement.qoe.streaming import Resolution
from repro.measurement.qoe.testbed import QoETestbed
from repro.netsim.access import AccessType


@pytest.fixture(scope="module")
def testbed():
    return QoETestbed(np.random.default_rng(11))


@pytest.fixture(scope="module")
def gaming(testbed):
    return GamingExperiment(testbed, np.random.default_rng(12), trials=15)


@pytest.fixture(scope="module")
def streaming(testbed):
    return StreamingExperiment(testbed, np.random.default_rng(13), trials=15)


class TestGamingExperiment:
    def test_edge_wifi_meets_budget(self, gaming):
        result = gaming.run_config("Edge", AccessType.WIFI)
        assert result.mean_ms < GAMING_DELAY_BUDGET_MS + 10

    def test_far_cloud_slower_than_edge(self, gaming):
        edge = gaming.run_config("Edge", AccessType.WIFI)
        cloud = gaming.run_config("Cloud-3", AccessType.WIFI)
        assert cloud.mean_ms > edge.mean_ms + 20

    def test_network_sweep_covers_grid(self, gaming):
        results = gaming.sweep_networks()
        assert len(results) == 12  # 3 networks x 4 VMs
        assert {r.access for r in results} == {
            AccessType.WIFI, AccessType.LTE, AccessType.FIVE_G}

    def test_device_sweep(self, gaming):
        results = gaming.sweep_devices()
        assert len({r.device_name for r in results}) == 3

    def test_game_sweep(self, gaming):
        results = gaming.sweep_games()
        assert len({r.game_name for r in results}) == 3

    def test_sample_count(self, gaming):
        result = gaming.run_config("Edge", AccessType.WIFI)
        assert result.delays_ms.size == 15
        assert result.p95_ms >= result.mean_ms


class TestStreamingExperiment:
    def test_edge_benefit_is_modest(self, streaming):
        # §3.3.2: at most ~24% reduction vs the farthest cloud.
        edge = streaming.run_config("Edge", AccessType.FIVE_G)
        far = streaming.run_config("Cloud-3", AccessType.FIVE_G)
        reduction = 1 - edge.mean_ms / far.mean_ms
        assert 0.05 < reduction < 0.40

    def test_network_sweep_includes_transcode_leg(self, streaming):
        results = streaming.sweep_networks()
        assert len(results) == 16  # 3 networks x 4 VMs + 4 transcode
        assert any(r.transcode for r in results)

    def test_resolution_sweep(self, streaming):
        hi, lo = streaming.sweep_resolutions()
        assert hi.resolution is Resolution.P1080
        assert lo.mean_ms < hi.mean_ms

    def test_jitter_buffer_comparison(self, streaming):
        results = streaming.jitter_buffer_comparison()
        buffered = [r for r in results if r.jitter_buffer_mb > 0]
        plain = [r for r in results if r.jitter_buffer_mb == 0]
        assert min(r.mean_ms for r in buffered) > \
            max(r.mean_ms for r in plain)

    def test_breakdown_keys(self, streaming):
        result = streaming.run_config("Edge", AccessType.WIFI)
        assert {"capture_ms", "network_ms", "streaming_delay_ms"} <= \
            set(result.breakdown)
