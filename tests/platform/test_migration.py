"""Tests for live migration and the usage rebalancer."""

import pytest

from repro.errors import CapacityError
from repro.geo.coords import GeoPoint
from repro.platform.cluster import Platform
from repro.platform.entities import (
    App,
    Customer,
    PlatformKind,
    ResourceVector,
    Server,
    Site,
    VM,
    VMSpec,
)
from repro.platform.migration import (
    UsageRebalancer,
    migrate,
    predict_migration_cost,
)


@pytest.fixture()
def platform():
    p = Platform(name="t", kind=PlatformKind.EDGE)
    site = Site(site_id="s0", name="n", city="Beijing", province="Beijing",
                location=GeoPoint(39.9, 116.4))
    for i in range(3):
        site.servers.append(Server(server_id=f"m{i}", site_id="s0",
                                   capacity=ResourceVector(64, 256)))
    p.add_site(site)
    p.register_customer(Customer("c0", "cust"))
    p.register_app(App("a0", "c0", "cdn", "img"))
    return p


def _place(platform, vm_id, server_id, cores=8, mem=32):
    vm = VM(vm_id=vm_id, spec=VMSpec(cores, mem), customer_id="c0",
            app_id="a0", image_id="img")
    platform.server(server_id).attach(vm)
    platform.register_vm(vm)
    return vm


class TestMigrationCostModel:
    def test_cost_scales_with_memory(self):
        small = predict_migration_cost(4.0)
        large = predict_migration_cost(64.0)
        assert large.total_seconds > small.total_seconds
        assert large.data_moved_gb > small.data_moved_gb

    def test_downtime_much_smaller_than_total(self):
        cost = predict_migration_cost(32.0)
        assert cost.downtime_seconds < cost.total_seconds

    def test_precopy_moves_more_than_memory(self):
        # Retransmitting dirtied pages means total data > VM memory.
        cost = predict_migration_cost(32.0)
        assert cost.data_moved_gb > 32.0

    def test_non_converging_dirty_rate_bounded(self):
        cost = predict_migration_cost(32.0, link_gbps=1.0,
                                      dirty_rate_gbps=2.0)
        assert cost.total_seconds > 0

    def test_bad_memory_rejected(self):
        with pytest.raises(CapacityError):
            predict_migration_cost(0.0)

    def test_bad_link_rejected(self):
        with pytest.raises(CapacityError):
            predict_migration_cost(8.0, link_gbps=0.0)


class TestMigrate:
    def test_moves_vm(self, platform):
        vm = _place(platform, "vm0", "m0")
        cost = migrate(platform, vm, "m1")
        assert vm.server_id == "m1"
        assert platform.server("m0").allocated.cpu_cores == 0
        assert platform.server("m1").allocated.cpu_cores == 8
        assert cost.total_seconds > 0
        platform.validate()

    def test_unplaced_vm_rejected(self, platform):
        vm = VM(vm_id="vmX", spec=VMSpec(1, 1), customer_id="c0",
                app_id="a0", image_id="img")
        platform.register_vm(vm)
        with pytest.raises(CapacityError):
            migrate(platform, vm, "m1")

    def test_same_server_rejected(self, platform):
        vm = _place(platform, "vm0", "m0")
        with pytest.raises(CapacityError):
            migrate(platform, vm, "m0")

    def test_full_target_rejected(self, platform):
        vm = _place(platform, "vm0", "m0")
        _place(platform, "big", "m1", cores=64, mem=256)
        with pytest.raises(CapacityError):
            migrate(platform, vm, "m1")
        assert vm.server_id == "m0"  # unchanged on failure


class TestRebalancer:
    def test_moves_hot_vm_to_cold_server(self, platform):
        hot = _place(platform, "hot", "m0", cores=16, mem=64)
        _place(platform, "warm", "m0", cores=8, mem=32)
        usage = {"hot": 0.9, "warm": 0.2}
        rebalancer = UsageRebalancer(usage=lambda v: usage[v],
                                     target_spread=0.05)
        moves = rebalancer.rebalance_site(platform, "s0")
        assert moves
        assert moves[0].vm_id == "hot"
        assert platform.vms["hot"].server_id != "m0"
        platform.validate()

    def test_balanced_site_makes_no_moves(self, platform):
        _place(platform, "a", "m0")
        _place(platform, "b", "m1")
        _place(platform, "c", "m2")
        rebalancer = UsageRebalancer(usage=lambda v: 0.5, target_spread=0.25)
        assert rebalancer.rebalance_site(platform, "s0") == []

    def test_respects_max_moves(self, platform):
        for i in range(6):
            _place(platform, f"vm{i}", "m0", cores=8, mem=32)
        rebalancer = UsageRebalancer(usage=lambda v: 0.9, max_moves=2,
                                     target_spread=0.01)
        moves = rebalancer.rebalance_site(platform, "s0")
        assert len(moves) <= 2

    def test_reduces_load_spread(self, platform):
        for i in range(4):
            _place(platform, f"vm{i}", "m0", cores=8, mem=32)
        rebalancer = UsageRebalancer(usage=lambda v: 0.6, target_spread=0.1)

        def spread():
            loads = [rebalancer.server_load(platform, f"m{i}")
                     for i in range(3)]
            return max(loads) - min(loads)

        before = spread()
        rebalancer.rebalance_site(platform, "s0")
        assert spread() < before

    def test_bad_params_rejected(self):
        with pytest.raises(CapacityError):
            UsageRebalancer(usage=lambda v: 0.0, max_moves=0)
        with pytest.raises(CapacityError):
            UsageRebalancer(usage=lambda v: 0.0, target_spread=0.0)
