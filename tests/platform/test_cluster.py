"""Tests for the Platform inventory container."""

import pytest

from repro.errors import TopologyError
from repro.geo.coords import GeoPoint
from repro.platform.cluster import Platform
from repro.platform.entities import (
    App,
    Customer,
    PlatformKind,
    ResourceVector,
    Server,
    Site,
    VM,
    VMSpec,
)


@pytest.fixture()
def platform():
    p = Platform(name="test", kind=PlatformKind.EDGE)
    for i, (city, lat, lon) in enumerate([("Beijing", 39.9, 116.4),
                                          ("Shanghai", 31.2, 121.5)]):
        site = Site(site_id=f"s{i}", name=city, city=city, province=city,
                    location=GeoPoint(lat, lon))
        site.servers.append(Server(server_id=f"s{i}-m0", site_id=f"s{i}",
                                   capacity=ResourceVector(64, 256, 8000)))
        p.add_site(site)
    p.register_customer(Customer("c0", "cust"))
    p.register_app(App("a0", "c0", "cdn", "img0"))
    return p


def _placed_vm(platform, vm_id="vm0", site_idx=0):
    vm = VM(vm_id=vm_id, spec=VMSpec(4, 16), customer_id="c0",
            app_id="a0", image_id="img0")
    platform.sites[site_idx].servers[0].attach(vm)
    platform.register_vm(vm)
    return vm


class TestRegistration:
    def test_duplicate_site_rejected(self, platform):
        with pytest.raises(TopologyError):
            platform.add_site(Site(site_id="s0", name="dup", city="X",
                                   province="X", location=GeoPoint(0, 0)))

    def test_app_with_unknown_customer_rejected(self, platform):
        with pytest.raises(TopologyError):
            platform.register_app(App("a1", "ghost", "cdn", "img"))

    def test_vm_with_unknown_app_rejected(self, platform):
        vm = VM(vm_id="vmX", spec=VMSpec(1, 1), customer_id="c0",
                app_id="ghost", image_id="img")
        with pytest.raises(TopologyError):
            platform.register_vm(vm)


class TestLookups:
    def test_site_lookup(self, platform):
        assert platform.site("s1").city == "Shanghai"

    def test_unknown_site_raises(self, platform):
        with pytest.raises(TopologyError):
            platform.site("nope")

    def test_server_lookup(self, platform):
        assert platform.server("s0-m0").site_id == "s0"

    def test_unknown_server_raises(self, platform):
        with pytest.raises(TopologyError):
            platform.server("nope")

    def test_server_count(self, platform):
        assert platform.server_count == 2

    def test_vms_of_app(self, platform):
        _placed_vm(platform, "vm0")
        _placed_vm(platform, "vm1", site_idx=1)
        assert {vm.vm_id for vm in platform.vms_of_app("a0")} == {"vm0", "vm1"}

    def test_vms_of_unknown_app_raises(self, platform):
        with pytest.raises(TopologyError):
            platform.vms_of_app("ghost")

    def test_vms_on_server_and_site(self, platform):
        _placed_vm(platform, "vm0")
        assert [v.vm_id for v in platform.vms_on_server("s0-m0")] == ["vm0"]
        assert [v.vm_id for v in platform.vms_on_site("s0")] == ["vm0"]

    def test_sites_in_province(self, platform):
        assert [s.site_id for s in platform.sites_in_province("Beijing")] == ["s0"]

    def test_nearest_sites_ordering(self, platform):
        nearest = platform.nearest_sites(GeoPoint(39.8, 116.3), count=2)
        assert nearest[0].site_id == "s0"

    def test_nearest_sites_bad_count(self, platform):
        with pytest.raises(TopologyError):
            platform.nearest_sites(GeoPoint(0, 0), count=0)

    def test_is_edge(self, platform):
        assert platform.is_edge


class TestValidate:
    def test_consistent_platform_passes(self, platform):
        _placed_vm(platform)
        platform.validate()

    def test_dangling_server_listing_detected(self, platform):
        platform.sites[0].servers[0].vm_ids.append("ghost")
        with pytest.raises(TopologyError):
            platform.validate()

    def test_vm_claiming_unlisted_placement_detected(self, platform):
        vm = _placed_vm(platform)
        platform.sites[0].servers[0].vm_ids.remove(vm.vm_id)
        with pytest.raises(TopologyError):
            platform.validate()
