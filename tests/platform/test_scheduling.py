"""Tests for end-user request scheduling."""

import pytest

from repro.errors import SchedulingError
from repro.geo.coords import GeoPoint
from repro.platform.cluster import Platform
from repro.platform.entities import (
    App,
    Customer,
    PlatformKind,
    ResourceVector,
    Server,
    Site,
    VM,
    VMSpec,
)
from repro.platform.scheduling import LoadAwareScheduler, NearestSiteScheduler

BEIJING = GeoPoint(39.90, 116.40)


@pytest.fixture()
def platform():
    p = Platform(name="t", kind=PlatformKind.EDGE)
    cities = [("Beijing", 39.9, 116.4), ("Tianjin", 39.1, 117.2),
              ("Guangzhou", 23.1, 113.3)]
    for i, (city, lat, lon) in enumerate(cities):
        site = Site(site_id=f"s{i}", name=city, city=city, province=city,
                    location=GeoPoint(lat, lon))
        site.servers.append(Server(server_id=f"s{i}-m0", site_id=f"s{i}",
                                   capacity=ResourceVector(64, 256)))
        p.add_site(site)
    p.register_customer(Customer("c0", "cust"))
    p.register_app(App("a0", "c0", "gaming", "img"))
    for i in range(3):
        vm = VM(vm_id=f"vm{i}", spec=VMSpec(4, 16), customer_id="c0",
                app_id="a0", image_id="img")
        p.site(f"s{i}").servers[0].attach(vm)
        p.register_vm(vm)
    return p


class TestNearestSiteScheduler:
    def test_routes_to_nearest(self, platform):
        decision = NearestSiteScheduler().schedule(platform, "a0", BEIJING)
        assert decision.site_id == "s0"

    def test_distance_reported(self, platform):
        decision = NearestSiteScheduler().schedule(platform, "a0", BEIJING)
        assert decision.distance_km < 50

    def test_no_vms_raises(self, platform):
        platform.register_app(App("a1", "c0", "empty", "img"))
        with pytest.raises(SchedulingError):
            NearestSiteScheduler().schedule(platform, "a1", BEIJING)


class TestLoadAwareScheduler:
    def test_prefers_nearest_when_unloaded(self, platform):
        scheduler = LoadAwareScheduler(load=lambda vm_id: 0.1)
        decision = scheduler.schedule(platform, "a0", BEIJING)
        assert decision.site_id == "s0"

    def test_detours_away_from_overloaded_vm(self, platform):
        # Beijing VM is overloaded; Tianjin (~115 km) is inside the detour.
        loads = {"vm0": 0.95, "vm1": 0.2, "vm2": 0.2}
        scheduler = LoadAwareScheduler(load=lambda vm_id: loads[vm_id],
                                       detour_km=300.0)
        decision = scheduler.schedule(platform, "a0", BEIJING)
        assert decision.vm_id == "vm1"

    def test_does_not_detour_beyond_radius(self, platform):
        # Only Guangzhou is lightly loaded but it is ~1900 km away:
        # outside the detour, every in-radius VM is overloaded, so the
        # last-resort pool picks the globally least-loaded VM.
        loads = {"vm0": 0.95, "vm1": 0.9, "vm2": 0.1}
        scheduler = LoadAwareScheduler(load=lambda vm_id: loads[vm_id],
                                       detour_km=300.0)
        decision = scheduler.schedule(platform, "a0", BEIJING)
        assert decision.vm_id == "vm2"

    def test_load_recorded_in_decision(self, platform):
        scheduler = LoadAwareScheduler(load=lambda vm_id: 0.3)
        decision = scheduler.schedule(platform, "a0", BEIJING)
        assert decision.load == pytest.approx(0.3)

    def test_bad_detour_rejected(self):
        with pytest.raises(SchedulingError):
            LoadAwareScheduler(load=lambda v: 0.0, detour_km=-1)

    def test_bad_overload_rejected(self):
        with pytest.raises(SchedulingError):
            LoadAwareScheduler(load=lambda v: 0.0, overload=0.0)

    def test_balances_better_than_nearest(self, platform):
        # The §4.3 claim: load-aware GSLB evens VM load at small delay cost.
        import numpy as np
        loads = {"vm0": 0.0, "vm1": 0.0, "vm2": 0.0}
        nearest_counts = {"vm0": 0, "vm1": 0, "vm2": 0}
        scheduler = LoadAwareScheduler(load=lambda v: loads[v],
                                       detour_km=300.0, overload=0.8)
        rng = np.random.default_rng(0)
        for _ in range(60):
            user = GeoPoint(39.9 + rng.uniform(-0.3, 0.3),
                            116.4 + rng.uniform(-0.3, 0.3))
            nearest = NearestSiteScheduler().schedule(platform, "a0", user)
            nearest_counts[nearest.vm_id] += 1
            decision = scheduler.schedule(platform, "a0", user)
            loads[decision.vm_id] += 0.05  # each request adds load
        # Nearest-only sends everything to vm0; load-aware spreads.
        assert nearest_counts["vm0"] == 60
        assert loads["vm1"] > 0
