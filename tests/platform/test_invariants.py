"""Property-based invariants of placement and capacity accounting.

Whatever sequence of placements, failures, and migrations happens, the
platform ledgers must never oversubscribe a server and must stay
consistent with the VMs' own placement records.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError, PlacementError
from repro.geo.coords import GeoPoint
from repro.platform.cluster import Platform
from repro.platform.entities import (
    App,
    Customer,
    PlatformKind,
    ResourceVector,
    Server,
    Site,
    VMSpec,
)
from repro.platform.migration import migrate
from repro.platform.placement import (
    BestFitPolicy,
    FirstFitPolicy,
    NepPlacementPolicy,
    SubscriptionRequest,
)

request_specs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=16),   # cores
        st.integers(min_value=1, max_value=64),   # memory
        st.integers(min_value=1, max_value=6),    # vm count
    ),
    min_size=1, max_size=10,
)

policies = st.sampled_from([NepPlacementPolicy, FirstFitPolicy,
                            BestFitPolicy])


def _platform(servers=4, cores=64, memory=256):
    platform = Platform(name="t", kind=PlatformKind.EDGE)
    site = Site(site_id="s0", name="n", city="Beijing",
                province="Beijing", location=GeoPoint(39.9, 116.4))
    for i in range(servers):
        site.servers.append(Server(
            server_id=f"m{i}", site_id="s0",
            capacity=ResourceVector(cores, memory, 100_000),
        ))
    platform.add_site(site)
    platform.register_customer(Customer("c0", "cust"))
    return platform


class TestPlacementInvariants:
    @given(request_specs, policies)
    @settings(max_examples=40, deadline=None)
    def test_never_oversubscribes(self, specs, policy_cls):
        platform = _platform()
        policy = policy_cls()
        for index, (cores, memory, count) in enumerate(specs):
            app_id = f"a{index}"
            platform.register_app(App(app_id, "c0", "cdn", f"i{index}"))
            request = SubscriptionRequest(
                customer_id="c0", app_id=app_id, image_id=f"i{index}",
                spec=VMSpec(cores, memory), vm_count=count,
            )
            try:
                policy.place(platform, request)
            except PlacementError:
                pass  # rejection is fine; oversubscription is not
        for server in platform.iter_servers():
            assert server.allocated.cpu_cores <= server.capacity.cpu_cores
            assert server.allocated.memory_gb <= server.capacity.memory_gb
            assert server.allocated.cpu_cores >= 0

    @given(request_specs, policies)
    @settings(max_examples=40, deadline=None)
    def test_ledgers_stay_consistent(self, specs, policy_cls):
        platform = _platform()
        policy = policy_cls()
        for index, (cores, memory, count) in enumerate(specs):
            app_id = f"a{index}"
            platform.register_app(App(app_id, "c0", "cdn", f"i{index}"))
            try:
                policy.place(platform, SubscriptionRequest(
                    customer_id="c0", app_id=app_id, image_id=f"i{index}",
                    spec=VMSpec(cores, memory), vm_count=count,
                ))
            except PlacementError:
                pass
        platform.validate()  # raises on any inconsistency
        # Allocation equals the sum of hosted VM specs, exactly.
        for server in platform.iter_servers():
            total = sum(platform.vms[v].spec.cpu_cores
                        for v in server.vm_ids)
            assert server.allocated.cpu_cores == pytest.approx(total)

    @given(request_specs)
    @settings(max_examples=25, deadline=None)
    def test_rejected_requests_leave_no_trace(self, specs):
        platform = _platform(servers=1, cores=8, memory=16)
        policy = NepPlacementPolicy()
        platform.register_app(App("big", "c0", "cdn", "i"))
        before_vms = len(platform.vms)
        with pytest.raises(PlacementError):
            policy.place(platform, SubscriptionRequest(
                customer_id="c0", app_id="big", image_id="i",
                spec=VMSpec(8, 16), vm_count=5,
            ))
        assert len(platform.vms) == before_vms
        assert all(s.allocated.cpu_cores == 0
                   for s in platform.iter_servers())


class TestMigrationInvariants:
    @given(st.lists(st.integers(min_value=0, max_value=3),
                    min_size=1, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_random_migrations_preserve_capacity(self, moves):
        platform = _platform(servers=4, cores=32, memory=128)
        policy = FirstFitPolicy()
        platform.register_app(App("a0", "c0", "cdn", "i"))
        vms = policy.place(platform, SubscriptionRequest(
            customer_id="c0", app_id="a0", image_id="i",
            spec=VMSpec(8, 32), vm_count=6,
        ))
        rng = np.random.default_rng(0)
        for target_index in moves:
            vm = vms[int(rng.integers(0, len(vms)))]
            target = f"m{target_index}"
            if vm.server_id == target:
                continue
            try:
                migrate(platform, vm, target)
            except CapacityError:
                continue
        platform.validate()
        total_cores = sum(s.allocated.cpu_cores
                          for s in platform.iter_servers())
        assert total_cores == pytest.approx(6 * 8)
