"""Tests for platform entities: resources, servers, sites."""

import pytest

from repro.errors import CapacityError
from repro.geo.coords import GeoPoint
from repro.platform.entities import (
    ResourceVector,
    Server,
    Site,
    VM,
    VMSpec,
)


def _server(cores=64, mem=256, disk=8000, server_id="s0"):
    return Server(server_id=server_id, site_id="site0",
                  capacity=ResourceVector(cores, mem, disk))


def _vm(vm_id="vm0", cores=8, mem=32, disk=100):
    return VM(vm_id=vm_id, spec=VMSpec(cores, mem, disk),
              customer_id="c0", app_id="a0", image_id="img0")


class TestResourceVector:
    def test_addition(self):
        total = ResourceVector(1, 2, 3) + ResourceVector(4, 5, 6)
        assert (total.cpu_cores, total.memory_gb, total.disk_gb) == (5, 7, 9)

    def test_subtraction(self):
        left = ResourceVector(4, 5, 6) - ResourceVector(1, 2, 3)
        assert (left.cpu_cores, left.memory_gb, left.disk_gb) == (3, 3, 3)

    def test_negative_rejected(self):
        with pytest.raises(CapacityError):
            ResourceVector(-1, 0, 0)

    def test_fits_within(self):
        assert ResourceVector(2, 4).fits_within(ResourceVector(4, 8))
        assert not ResourceVector(8, 4).fits_within(ResourceVector(4, 8))

    def test_zero(self):
        zero = ResourceVector.zero()
        assert zero.cpu_cores == 0 and zero.memory_gb == 0


class TestVMSpec:
    def test_valid(self):
        spec = VMSpec(8, 32, 100, 200.0)
        assert spec.resources.cpu_cores == 8

    def test_zero_cores_rejected(self):
        with pytest.raises(CapacityError):
            VMSpec(0, 32)

    def test_zero_memory_rejected(self):
        with pytest.raises(CapacityError):
            VMSpec(8, 0)

    def test_negative_disk_rejected(self):
        with pytest.raises(CapacityError):
            VMSpec(8, 32, disk_gb=-1)


class TestServer:
    def test_attach_updates_ledger(self):
        server, vm = _server(), _vm()
        server.attach(vm)
        assert vm.server_id == "s0"
        assert vm.site_id == "site0"
        assert server.allocated.cpu_cores == 8
        assert vm.vm_id in server.vm_ids

    def test_attach_beyond_capacity_rejected(self):
        server = _server(cores=8, mem=16)
        server.attach(_vm(vm_id="a", cores=8, mem=16))
        with pytest.raises(CapacityError):
            server.attach(_vm(vm_id="b", cores=1, mem=1))

    def test_detach_restores_capacity(self):
        server, vm = _server(), _vm()
        server.attach(vm)
        server.detach(vm)
        assert server.allocated.cpu_cores == 0
        assert vm.server_id is None
        assert not server.vm_ids

    def test_detach_unknown_vm_rejected(self):
        server = _server()
        with pytest.raises(CapacityError):
            server.detach(_vm())

    def test_sales_rates(self):
        server = _server(cores=64, mem=256)
        server.attach(_vm(cores=16, mem=32))
        assert server.cpu_sales_rate() == pytest.approx(16 / 64)
        assert server.memory_sales_rate() == pytest.approx(32 / 256)

    def test_can_host_respects_all_dimensions(self):
        server = _server(cores=64, mem=16, disk=50)
        assert not server.can_host(VMSpec(8, 32))       # memory short
        assert not server.can_host(VMSpec(8, 8, 100))   # disk short
        assert server.can_host(VMSpec(8, 8, 50))


class TestSite:
    def test_capacity_aggregates_servers(self):
        site = Site(site_id="s", name="n", city="Beijing",
                    province="Beijing", location=GeoPoint(39.9, 116.4))
        site.servers.extend([_server(server_id="m0"), _server(server_id="m1")])
        assert site.capacity.cpu_cores == 128
        assert site.server_count == 2

    def test_site_sales_rate(self):
        site = Site(site_id="s", name="n", city="Beijing",
                    province="Beijing", location=GeoPoint(39.9, 116.4))
        server = _server()
        server.attach(_vm(cores=32, mem=128))
        site.servers.append(server)
        assert site.cpu_sales_rate() == pytest.approx(0.5)

    def test_empty_site_sales_rate_zero(self):
        site = Site(site_id="s", name="n", city="Beijing",
                    province="Beijing", location=GeoPoint(39.9, 116.4))
        assert site.cpu_sales_rate() == 0.0
        assert site.memory_sales_rate() == 0.0
