"""Tests for the platform build-out simulation (§4.3 growth driver)."""

import pytest

from repro.config import Scenario
from repro.errors import ConfigurationError
from repro.platform.growth import simulate_growth

SCENARIO = Scenario.smoke_scale()


@pytest.fixture(scope="module")
def grown():
    return simulate_growth(SCENARIO, epochs=5, initial_fraction=0.25,
                           requests_per_epoch=10)


class TestSimulation:
    def test_epoch_count(self, grown):
        assert len(grown.epochs) == 5

    def test_sites_grow_monotonically(self, grown):
        counts = [e.active_sites for e in grown.epochs]
        assert counts == sorted(counts)
        assert counts[-1] == SCENARIO.nep_site_count

    def test_vms_accumulate(self, grown):
        placed = [e.placed_vms for e in grown.epochs]
        assert placed == sorted(placed)
        assert placed[-1] > 0

    def test_platform_consistent(self, grown):
        grown.platform.validate()

    def test_every_site_has_activation_epoch(self, grown):
        assert set(grown.activation_epoch) == {
            s.site_id for s in grown.platform.sites}

    def test_static_baseline_activates_everything_at_once(self):
        static = simulate_growth(SCENARIO, epochs=3, initial_fraction=1.0,
                                 requests_per_epoch=5)
        assert all(epoch == 0
                   for epoch in static.activation_epoch.values())
        assert static.epochs[0].active_sites == SCENARIO.nep_site_count


class TestGrowthSignature:
    def test_growth_worsens_site_skew(self, grown):
        # §4.3: "the resource usage skewness is more severe across sites
        # ... with the arrival of both sites and VM subscriptions".
        static = simulate_growth(SCENARIO, epochs=5, initial_fraction=1.0,
                                 requests_per_epoch=10)
        assert grown.final_skew > static.final_skew

    def test_early_sites_sell_more(self, grown):
        rates = grown.rate_by_activation_epoch()
        first = rates[0]
        last = rates[max(rates)]
        assert first > last

    def test_skew_is_positive(self, grown):
        assert all(e.skew >= 1.0 for e in grown.epochs)


class TestValidation:
    def test_bad_epochs_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_growth(SCENARIO, epochs=0)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_growth(SCENARIO, initial_fraction=0.0)
        with pytest.raises(ConfigurationError):
            simulate_growth(SCENARIO, initial_fraction=1.5)

    def test_bad_request_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_growth(SCENARIO, requests_per_epoch=0)
