"""Tests for the serverless/FaaS extension (§5 'decomposing edge services')."""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.platform.serverless import (
    FaasBilling,
    FaasRuntime,
    FunctionSpec,
    compare_vm_vs_faas,
)

SPEC = FunctionSpec(name="transcode", memory_mb=512, exec_ms=80.0,
                    cold_start_ms=400.0, warm_start_ms=2.0)


class TestFunctionSpec:
    def test_bad_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            FunctionSpec(name="f", memory_mb=0, exec_ms=10.0)

    def test_bad_exec_rejected(self):
        with pytest.raises(ConfigurationError):
            FunctionSpec(name="f", memory_mb=128, exec_ms=0.0)


class TestFaasRuntime:
    def test_first_request_is_cold(self, rng):
        runtime = FaasRuntime(SPEC)
        stats = runtime.run_window(1, 60.0, rng)
        assert stats.cold_starts == 1
        assert stats.mean_latency_ms == pytest.approx(
            SPEC.cold_start_ms + SPEC.exec_ms, rel=0.01)

    def test_warm_requests_are_fast(self, rng):
        runtime = FaasRuntime(SPEC, keep_alive_s=3600.0)
        runtime.run_window(5, 60.0, rng)
        stats = runtime.run_window(5, 60.0, rng)
        # The pool is warm and the load stable: no new cold starts.
        assert stats.cold_starts == 0
        assert stats.mean_latency_ms == pytest.approx(
            SPEC.warm_start_ms + SPEC.exec_ms, rel=0.2)

    def test_keep_alive_expiry_forces_cold_start(self, rng):
        runtime = FaasRuntime(SPEC, keep_alive_s=10.0)
        runtime.run_window(1, 60.0, rng)
        runtime.run_window(0, 120.0, rng)  # idle past the keep-alive
        stats = runtime.run_window(1, 60.0, rng)
        assert stats.cold_starts == 1

    def test_concurrency_scales_with_load(self, rng):
        runtime = FaasRuntime(SPEC, keep_alive_s=3600.0)
        stats = runtime.run_window(500, 1.0, rng)  # 500 rps burst
        assert stats.max_concurrency > 10

    def test_pool_limit_enforced(self, rng):
        runtime = FaasRuntime(SPEC, max_instances=3)
        with pytest.raises(CapacityError):
            runtime.run_window(200, 0.5, rng)

    def test_gb_seconds_accumulate(self, rng):
        runtime = FaasRuntime(SPEC, keep_alive_s=3600.0)
        runtime.run_window(10, 60.0, rng)
        # 10 invocations x 0.5 GB x ~0.082-0.482 s each.
        assert 0.3 < runtime.gb_seconds < 3.0

    def test_zero_request_window(self, rng):
        runtime = FaasRuntime(SPEC)
        stats = runtime.run_window(0, 60.0, rng)
        assert stats.invocations == 0
        assert stats.mean_latency_ms == 0.0

    def test_bad_window_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            FaasRuntime(SPEC).run_window(1, 0.0, rng)

    def test_bad_keep_alive_rejected(self):
        with pytest.raises(ConfigurationError):
            FaasRuntime(SPEC, keep_alive_s=-1.0)


class TestFaasBilling:
    def test_zero_usage_is_free(self):
        assert FaasBilling().cost(0, 0.0) == 0.0

    def test_known_value(self):
        billing = FaasBilling(per_million_invocations=1.0,
                              per_gb_second=0.0001)
        assert billing.cost(2_000_000, 10_000.0) == pytest.approx(3.0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            FaasBilling().cost(-1, 0.0)


class TestVmVsFaas:
    def _diurnal_rate(self, peak_rps=5.0, windows=48):
        t = np.arange(windows)
        return peak_rps * np.clip(np.sin(2 * np.pi * t / windows), 0.02,
                                  None)

    def test_bursty_low_volume_favours_faas(self, rng):
        # An app busy 3 hours a day: the right-sized reserved VM
        # (2C/8G-class, ~260 RMB/month) still idles 21 hours, FaaS wins.
        rate = np.zeros(48)
        rate[18:24] = 2.0
        comparison = compare_vm_vs_faas(
            rate, window_s=1800.0, spec=SPEC, vm_monthly_rmb=260.0,
            vm_capacity_rps=50.0, rng=rng)
        assert comparison.faas_cheaper
        assert comparison.vm_peak_utilization < 0.2

    def test_steady_high_volume_favours_vm(self, rng):
        # Saturating the same right-sized VM around the clock: the
        # GB-second premium makes FaaS the expensive option (§5's
        # "elasticity comes at a price").
        rate = np.full(48, 45.0)
        comparison = compare_vm_vs_faas(
            rate, window_s=1800.0, spec=SPEC, vm_monthly_rmb=260.0,
            vm_capacity_rps=50.0, rng=rng)
        assert not comparison.faas_cheaper
        assert comparison.vm_peak_utilization > 0.8

    def test_cold_start_fraction_reported(self, rng):
        comparison = compare_vm_vs_faas(
            self._diurnal_rate(), window_s=1800.0, spec=SPEC,
            vm_monthly_rmb=500.0, vm_capacity_rps=20.0, rng=rng)
        assert 0.0 <= comparison.faas_cold_start_fraction <= 1.0
        # Diurnal ramps force some cold starts (§5's latency caveat).
        assert comparison.faas_cold_start_fraction > 0.0

    def test_faas_p95_reflects_cold_starts(self, rng):
        comparison = compare_vm_vs_faas(
            self._diurnal_rate(), window_s=1800.0, spec=SPEC,
            vm_monthly_rmb=500.0, vm_capacity_rps=20.0, rng=rng)
        assert comparison.faas_p95_latency_ms >= SPEC.exec_ms

    def test_empty_series_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            compare_vm_vs_faas(np.array([]), 60.0, SPEC, 100.0, 10.0, rng)
