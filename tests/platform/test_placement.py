"""Tests for VM placement policies."""

import numpy as np
import pytest

from repro.errors import PlacementError
from repro.geo.coords import GeoPoint
from repro.platform.cluster import Platform
from repro.platform.entities import (
    App,
    Customer,
    PlatformKind,
    ResourceVector,
    Server,
    Site,
    VMSpec,
)
from repro.platform.placement import (
    BestFitPolicy,
    FirstFitPolicy,
    NepPlacementPolicy,
    RandomPolicy,
    SubscriptionRequest,
)


def _platform(server_cores=(64, 64, 64), provinces=("Beijing",)):
    p = Platform(name="t", kind=PlatformKind.EDGE)
    for pi, province in enumerate(provinces):
        site = Site(site_id=f"s{pi}", name=province, city=province,
                    province=province, location=GeoPoint(30 + pi, 110 + pi))
        for mi, cores in enumerate(server_cores):
            site.servers.append(Server(
                server_id=f"s{pi}-m{mi}", site_id=f"s{pi}",
                capacity=ResourceVector(cores, cores * 4, 10_000),
            ))
        p.add_site(site)
    p.register_customer(Customer("c0", "cust"))
    p.register_app(App("a0", "c0", "cdn", "img0"))
    return p


def _request(count=3, cores=8, province=None, city=None):
    return SubscriptionRequest(
        customer_id="c0", app_id="a0", image_id="img0",
        spec=VMSpec(cores, cores * 2), vm_count=count,
        province=province, city=city,
    )


class TestSubscriptionRequest:
    def test_zero_count_rejected(self):
        with pytest.raises(PlacementError):
            _request(count=0)


class TestNepPolicy:
    def test_places_all_vms(self):
        platform = _platform()
        vms = NepPlacementPolicy().place(platform, _request(count=5))
        assert len(vms) == 5
        assert all(vm.placed for vm in vms)
        assert len(platform.vms) == 5

    def test_spreads_across_low_usage_servers(self):
        # NEP favours servers with the lowest sales ratio, so 3 identical
        # servers each get one of the first 3 VMs.
        platform = _platform()
        NepPlacementPolicy().place(platform, _request(count=3))
        loads = [s.cpu_sales_rate() for s in platform.iter_servers()]
        assert max(loads) == pytest.approx(min(loads))

    def test_uses_usage_provider(self):
        platform = _platform()
        # Mark m0 as historically hot; placement must avoid it first.
        usage = {f"s0-m{i}": (0.9 if i == 0 else 0.0, 0.9 if i == 0 else 0.0)
                 for i in range(3)}
        policy = NepPlacementPolicy(usage=lambda sid: usage[sid])
        vms = policy.place(platform, _request(count=2))
        assert all(vm.server_id != "s0-m0" for vm in vms)

    def test_infeasible_request_rolls_back(self):
        platform = _platform(server_cores=(8,))
        with pytest.raises(PlacementError):
            NepPlacementPolicy().place(platform, _request(count=3, cores=8))
        # Rollback: nothing left allocated, nothing registered.
        assert len(platform.vms) == 0
        assert all(s.allocated.cpu_cores == 0 for s in platform.iter_servers())

    def test_province_scoping(self):
        platform = _platform(provinces=("Beijing", "Guangdong"))
        vms = NepPlacementPolicy().place(
            platform, _request(count=2, province="Guangdong"))
        assert all(vm.site_id == "s1" for vm in vms)

    def test_unknown_province_rejected(self):
        platform = _platform()
        with pytest.raises(PlacementError):
            NepPlacementPolicy().place(platform,
                                       _request(province="Atlantis"))

    def test_city_scoping(self):
        platform = _platform(provinces=("Beijing", "Guangdong"))
        vms = NepPlacementPolicy().place(
            platform, _request(count=1, city="Beijing"))
        assert vms[0].site_id == "s0"

    def test_vm_ids_unique_across_requests(self):
        platform = _platform()
        a = NepPlacementPolicy().place(platform, _request(count=3))
        b = NepPlacementPolicy().place(platform, _request(count=3))
        ids = [vm.vm_id for vm in a + b]
        assert len(ids) == len(set(ids))


class TestClassicPolicies:
    def test_first_fit_fills_in_order(self):
        platform = _platform()
        FirstFitPolicy().place(platform, _request(count=2, cores=8))
        first = platform.server("s0-m0")
        assert len(first.vm_ids) == 2

    def test_best_fit_consolidates(self):
        platform = _platform(server_cores=(64, 16))
        # Best-fit picks the 16-core server for an 8-core VM.
        vms = BestFitPolicy().place(platform, _request(count=1, cores=8))
        assert vms[0].server_id == "s0-m1"

    def test_random_policy_is_feasible(self):
        platform = _platform()
        policy = RandomPolicy(np.random.default_rng(0))
        vms = policy.place(platform, _request(count=6, cores=8))
        assert len(vms) == 6
        platform.validate()

    def test_best_fit_vs_nep_fragmentation(self):
        # The §4.1 implication: spreading (NEP) leaves more partially-
        # filled servers than bin-packing best-fit.
        def used_servers(policy):
            platform = _platform(server_cores=(32, 32, 32, 32))
            policy.place(platform, _request(count=4, cores=8))
            return sum(1 for s in platform.iter_servers() if s.vm_ids)

        assert used_servers(BestFitPolicy()) <= used_servers(NepPlacementPolicy())
