"""Tests for the NEP and cloud platform builders."""

from repro.config import Scenario
from repro.platform.cloud import build_cloud_platform
from repro.platform.entities import PlatformKind
from repro.platform.nep import EDGE_SERVER_SKUS, build_nep_platform

SMOKE = Scenario.smoke_scale()


class TestNepBuilder:
    def test_site_count_matches_scenario(self, nep_platform, scenario):
        assert len(nep_platform.sites) == scenario.nep_site_count

    def test_kind_is_edge(self, nep_platform):
        assert nep_platform.kind is PlatformKind.EDGE

    def test_server_counts_in_range(self, nep_platform, scenario):
        for site in nep_platform.sites:
            assert (scenario.nep_servers_per_site_min
                    <= site.server_count
                    <= scenario.nep_servers_per_site_max)

    def test_servers_use_edge_skus(self, nep_platform):
        skus = {(s.cpu_cores, s.memory_gb) for s, _ in EDGE_SERVER_SKUS}
        for server in nep_platform.iter_servers():
            key = (server.capacity.cpu_cores, server.capacity.memory_gb)
            assert key in skus

    def test_site_ids_unique(self, nep_platform):
        ids = [s.site_id for s in nep_platform.sites]
        assert len(ids) == len(set(ids))

    def test_deterministic(self):
        a = build_nep_platform(SMOKE)
        b = build_nep_platform(SMOKE)
        assert ([s.site_id for s in a.sites] == [s.site_id for s in b.sites])
        assert ([s.location for s in a.sites] == [s.location for s in b.sites])


class TestCloudBuilder:
    def test_region_count(self):
        platform = build_cloud_platform(SMOKE, region_count=8,
                                        servers_per_region=10)
        assert len(platform.sites) == 8

    def test_kind_is_cloud(self):
        platform = build_cloud_platform(SMOKE, servers_per_region=4)
        assert platform.kind is PlatformKind.CLOUD
        assert not platform.is_edge

    def test_cloud_regions_bigger_than_edge_sites(self, nep_platform):
        cloud = build_cloud_platform(SMOKE, region_count=4,
                                     servers_per_region=400)
        mean_edge = (sum(s.server_count for s in nep_platform.sites)
                     / len(nep_platform.sites))
        mean_cloud = (sum(s.server_count for s in cloud.sites)
                      / len(cloud.sites))
        assert mean_cloud > 5 * mean_edge

    def test_regions_in_top_metros(self):
        platform = build_cloud_platform(SMOKE, region_count=4,
                                        servers_per_region=2)
        cities = {s.city for s in platform.sites}
        assert "Shanghai" in cities
