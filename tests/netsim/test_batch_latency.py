"""Tests for the vectorized batch sampling engine."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.geo.coords import GeoPoint
from repro.netsim.access import AccessType
from repro.netsim.latency import MIN_HOP_MS, LatencyModel
from repro.netsim.path import Hop, HopKind, Route
from repro.netsim.routing import TargetSiteSpec, UESpec, build_route

BEIJING = GeoPoint(39.90, 116.40)
NEARBY = GeoPoint(39.95, 116.50)
GUANGZHOU = GeoPoint(23.13, 113.26)


@pytest.fixture()
def edge_route(rng):
    return build_route(UESpec("u", BEIJING, AccessType.WIFI),
                       TargetSiteSpec("e", NEARBY, True), rng)


@pytest.fixture()
def cloud_route(rng):
    return build_route(UESpec("u", BEIJING, AccessType.LTE),
                       TargetSiteSpec("c", GUANGZHOU, False), rng)


class TestSampleMatrix:
    def test_shape(self, rng, edge_route):
        matrix = LatencyModel(rng).sample_matrix(edge_route, 30)
        assert matrix.shape == (30, edge_route.hop_count)

    def test_count_one(self, rng, edge_route):
        matrix = LatencyModel(rng).sample_matrix(edge_route, 1)
        assert matrix.shape == (1, edge_route.hop_count)

    def test_single_hop_route(self, rng):
        route = Route("a", "b",
                      (Hop("only", HopKind.DC, 1.0, 0.1),), 1.0)
        matrix = LatencyModel(rng).sample_matrix(route, 10)
        assert matrix.shape == (10, 1)
        assert (matrix >= MIN_HOP_MS).all()

    def test_floor_applied(self, rng):
        # A zero-mean, zero-jitter hop draws the floor except on the rare
        # congestion spike (ACCESS spike probability is 0.2%).
        route = Route("a", "b",
                      (Hop("z", HopKind.ACCESS, 0.0, 0.0),), 1.0)
        matrix = LatencyModel(rng).sample_matrix(route, 200)
        assert (matrix >= MIN_HOP_MS).all()
        assert np.median(matrix) == MIN_HOP_MS

    def test_zero_count_rejected(self, rng, edge_route):
        with pytest.raises(MeasurementError):
            LatencyModel(rng).sample_matrix(edge_route, 0)

    def test_negative_count_rejected(self, rng, edge_route):
        with pytest.raises(MeasurementError):
            LatencyModel(rng).sample_matrix(edge_route, -3)


class TestDeterminism:
    def test_same_seed_same_matrix(self, edge_route):
        draws = [
            LatencyModel(np.random.default_rng(7)).sample_matrix(
                edge_route, 40)
            for _ in range(2)
        ]
        np.testing.assert_array_equal(draws[0], draws[1])

    def test_same_seed_same_batch(self, edge_route, cloud_route):
        routes = [edge_route, cloud_route]
        batches = [
            LatencyModel(np.random.default_rng(11)).sample_route_batch(
                routes, 25)
            for _ in range(2)
        ]
        for first, second in zip(*batches):
            np.testing.assert_array_equal(first, second)

    def test_different_seeds_differ(self, edge_route):
        a = LatencyModel(np.random.default_rng(1)).sample_matrix(
            edge_route, 40)
        b = LatencyModel(np.random.default_rng(2)).sample_matrix(
            edge_route, 40)
        assert not np.array_equal(a, b)


class TestBatchScalarEquivalence:
    def test_mean_agrees_with_scalar_path(self, edge_route):
        """Batch and scalar draws share the per-cell distributions."""
        scalar_model = LatencyModel(np.random.default_rng(3))
        scalar = np.array([scalar_model.sample(edge_route).total_ms
                           for _ in range(4000)])
        batch = LatencyModel(np.random.default_rng(4)).sample_matrix(
            edge_route, 4000).sum(axis=1)
        assert batch.mean() == pytest.approx(scalar.mean(), rel=0.02)

    def test_mean_matches_route_expectation(self, cloud_route):
        samples = LatencyModel(np.random.default_rng(5)).sample_many(
            cloud_route, 6000)
        # Spikes push the sample mean slightly above the noise-free mean.
        assert samples.mean() >= cloud_route.mean_rtt_ms * 0.98
        assert samples.mean() <= cloud_route.mean_rtt_ms * 1.25

    def test_mean_and_cv_consistent(self, edge_route):
        mean, cv = LatencyModel(np.random.default_rng(6)).mean_and_cv(
            edge_route, 5000)
        assert mean > 0
        assert 0 < cv < 1


class TestRouteBatch:
    def test_split_matches_block(self, edge_route, cloud_route):
        routes = [edge_route, cloud_route, edge_route]
        block, starts = LatencyModel(
            np.random.default_rng(8)).sample_routes_block(routes, 12)
        split = LatencyModel(
            np.random.default_rng(8)).sample_route_batch(routes, 12)
        assert block.shape == (12, sum(r.hop_count for r in routes))
        offset = 0
        for route, matrix in zip(routes, split):
            assert matrix.shape == (12, route.hop_count)
            np.testing.assert_array_equal(
                matrix, block[:, offset:offset + route.hop_count])
            offset += route.hop_count
        assert starts.tolist() == [0, edge_route.hop_count,
                                   edge_route.hop_count
                                   + cloud_route.hop_count]

    def test_empty_routes(self, rng):
        model = LatencyModel(rng)
        assert model.sample_route_batch([], 5) == []

    def test_zero_count_rejected(self, rng, edge_route):
        with pytest.raises(MeasurementError):
            LatencyModel(rng).sample_route_batch([edge_route], 0)
