"""Property-based invariants of the network simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.coords import GeoPoint
from repro.netsim.access import AccessType, access_profile
from repro.netsim.latency import LatencyModel
from repro.netsim.routing import (
    TargetSiteSpec,
    UESpec,
    backbone_hop_count,
    backbone_rtt_ms,
    build_route,
)
from repro.netsim.throughput import (
    ThroughputModel,
    mathis_throughput_mbps,
    route_loss_rate,
)

china_lat = st.floats(min_value=20.0, max_value=50.0, allow_nan=False)
china_lon = st.floats(min_value=80.0, max_value=130.0, allow_nan=False)
access_types = st.sampled_from(list(AccessType))


def _route(lat1, lon1, lat2, lon2, access, is_edge=True, seed=0):
    rng = np.random.default_rng(seed)
    return build_route(
        UESpec("u", GeoPoint(lat1, lon1), access),
        TargetSiteSpec("t", GeoPoint(lat2, lon2), is_edge),
        rng,
    )


class TestRouteInvariants:
    @given(china_lat, china_lon, china_lat, china_lon, access_types)
    @settings(max_examples=60, deadline=None)
    def test_rtt_at_least_access_latency(self, lat1, lon1, lat2, lon2,
                                         access):
        route = _route(lat1, lon1, lat2, lon2, access)
        assert route.mean_rtt_ms >= access_profile(access).mean_access_rtt_ms

    @given(china_lat, china_lon, china_lat, china_lon, access_types)
    @settings(max_examples=60, deadline=None)
    def test_rtt_at_least_propagation_floor(self, lat1, lon1, lat2, lon2,
                                            access):
        # Physics: a round trip can't beat light in fibre over the
        # great-circle distance.
        route = _route(lat1, lon1, lat2, lon2, access)
        light_floor = 2.0 * route.distance_km / 200.0
        assert route.mean_rtt_ms >= light_floor

    @given(china_lat, china_lon, access_types)
    @settings(max_examples=40, deadline=None)
    def test_cloud_route_never_shorter_hops_than_edge(self, lat, lon,
                                                      access):
        edge = _route(lat, lon, lat, lon, access, is_edge=True)
        cloud = _route(lat, lon, lat, lon, access, is_edge=False)
        assert cloud.hop_count > edge.hop_count

    @given(st.floats(min_value=0.0, max_value=5000.0, allow_nan=False),
           st.floats(min_value=0.0, max_value=5000.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_backbone_monotone_in_distance(self, a, b):
        low, high = sorted((a, b))
        assert backbone_rtt_ms(low) <= backbone_rtt_ms(high) + 1e-9
        assert backbone_hop_count(low) <= backbone_hop_count(high)


class TestLatencySamplingInvariants:
    @given(china_lat, china_lon, access_types,
           st.integers(min_value=1, max_value=60))
    @settings(max_examples=30, deadline=None)
    def test_samples_positive_and_finite(self, lat, lon, access, count):
        route = _route(lat, lon, lat + 1.0, lon + 1.0, access)
        samples = LatencyModel(np.random.default_rng(1)).sample_many(
            route, count)
        assert samples.shape == (count,)
        assert np.isfinite(samples).all()
        assert (samples > 0).all()


class TestThroughputInvariants:
    @given(st.floats(min_value=0.1, max_value=500.0, allow_nan=False),
           st.floats(min_value=1e-8, max_value=1e-2, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_mathis_positive(self, rtt, loss):
        assert mathis_throughput_mbps(rtt, loss) > 0.0

    @given(st.floats(min_value=0.1, max_value=500.0, allow_nan=False),
           st.floats(min_value=0.1, max_value=500.0, allow_nan=False),
           st.floats(min_value=1e-8, max_value=1e-3, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_mathis_monotone_in_rtt(self, rtt_a, rtt_b, loss):
        low, high = sorted((rtt_a, rtt_b))
        assert (mathis_throughput_mbps(high, loss)
                <= mathis_throughput_mbps(low, loss) + 1e-9)

    @given(china_lat, china_lon, china_lat, china_lon,
           st.floats(min_value=1.0, max_value=2000.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_measured_throughput_bounded(self, lat1, lon1, lat2, lon2,
                                         capacity):
        route = _route(lat1, lon1, lat2, lon2, AccessType.WIRED)
        model = ThroughputModel(np.random.default_rng(2))
        result = model.run_test(route, capacity)
        assert 0.0 < result.mbps <= capacity
        assert 0.0 < result.loss_rate < 1.0

    @given(china_lat, china_lon, china_lat, china_lon)
    @settings(max_examples=40, deadline=None)
    def test_loss_rate_valid_probability(self, lat1, lon1, lat2, lon2):
        route = _route(lat1, lon1, lat2, lon2, AccessType.LTE)
        assert 0.0 < route_loss_rate(route) < 0.01
