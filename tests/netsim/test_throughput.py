"""Tests for the TCP throughput model (§3.2 structure)."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.geo.coords import GeoPoint
from repro.netsim.access import AccessType
from repro.netsim.routing import TargetSiteSpec, UESpec, build_route
from repro.netsim.throughput import (
    ThroughputModel,
    mathis_throughput_mbps,
    route_loss_rate,
)

BEIJING = GeoPoint(39.90, 116.40)
NEARBY = GeoPoint(39.95, 116.50)
URUMQI = GeoPoint(43.83, 87.62)  # ~2400 km away


def _route(target, rng):
    return build_route(UESpec("u", BEIJING, AccessType.WIRED),
                       TargetSiteSpec("e", target, True), rng)


class TestMathisModel:
    def test_known_value(self):
        # MSS 1460B, RTT 100ms, loss 1e-4 -> ~11.68 Mbps.
        bw = mathis_throughput_mbps(100.0, 1e-4)
        assert bw == pytest.approx(11.68, rel=0.01)

    def test_decreases_with_rtt(self):
        assert (mathis_throughput_mbps(10, 1e-6)
                > mathis_throughput_mbps(50, 1e-6))

    def test_decreases_with_loss(self):
        assert (mathis_throughput_mbps(20, 1e-7)
                > mathis_throughput_mbps(20, 1e-5))

    def test_zero_rtt_rejected(self):
        with pytest.raises(MeasurementError):
            mathis_throughput_mbps(0.0, 1e-6)

    def test_zero_loss_rejected(self):
        with pytest.raises(MeasurementError):
            mathis_throughput_mbps(10.0, 0.0)


class TestRouteLoss:
    def test_longer_route_lossier(self, rng):
        near = _route(NEARBY, rng)
        far = _route(URUMQI, rng)
        assert route_loss_rate(far) > route_loss_rate(near)

    def test_loss_is_small_probability(self, rng):
        loss = route_loss_rate(_route(URUMQI, rng))
        assert 0.0 < loss < 1e-3


class TestThroughputModel:
    def test_access_limited_when_capacity_small(self, rng):
        model = ThroughputModel(rng)
        result = model.run_test(_route(NEARBY, rng), access_capacity_mbps=50)
        assert result.access_limited
        assert result.mbps <= 50.0

    def test_path_limited_when_capacity_huge(self, rng):
        model = ThroughputModel(rng)
        result = model.run_test(_route(URUMQI, rng),
                                access_capacity_mbps=10_000)
        assert result.path_limited
        assert result.mbps < 10_000

    def test_measured_never_exceeds_capacity(self, rng):
        model = ThroughputModel(rng)
        for _ in range(50):
            result = model.run_test(_route(NEARBY, rng), 80.0)
            assert result.mbps <= 80.0

    def test_throughput_positive(self, rng):
        model = ThroughputModel(rng)
        result = model.run_test(_route(URUMQI, rng), 500.0)
        assert result.mbps > 0

    def test_far_route_slower_when_path_limited(self, rng):
        # The §3.2 headline: with high last-mile capacity, distance bites.
        model = ThroughputModel(rng)
        near = np.mean([model.run_test(_route(NEARBY, rng), 2000).mbps
                        for _ in range(10)])
        far = np.mean([model.run_test(_route(URUMQI, rng), 2000).mbps
                       for _ in range(10)])
        assert far < near

    def test_longer_test_less_noisy(self, rng):
        model = ThroughputModel(rng)
        route = _route(NEARBY, rng)
        short = [model.run_test(route, 100, duration_seconds=1).mbps
                 for _ in range(200)]
        long = [model.run_test(route, 100, duration_seconds=60).mbps
                for _ in range(200)]
        assert np.std(long) < np.std(short)

    def test_bad_capacity_rejected(self, rng):
        with pytest.raises(MeasurementError):
            ThroughputModel(rng).run_test(_route(NEARBY, rng), 0.0)

    def test_bad_duration_rejected(self, rng):
        with pytest.raises(MeasurementError):
            ThroughputModel(rng).run_test(_route(NEARBY, rng), 100.0,
                                          duration_seconds=0)

    def test_wide_area_limit_matches_mathis(self, rng):
        model = ThroughputModel(rng)
        route = _route(URUMQI, rng)
        assert model.wide_area_limit_mbps(route) == pytest.approx(
            mathis_throughput_mbps(route.mean_rtt_ms, route_loss_rate(route)))
