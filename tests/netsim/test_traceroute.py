"""Tests for traceroute simulation."""

import numpy as np
import pytest

from repro.geo.coords import GeoPoint
from repro.netsim.access import AccessType
from repro.netsim.routing import TargetSiteSpec, UESpec, build_route
from repro.netsim.traceroute import run_traceroute

BEIJING = GeoPoint(39.90, 116.40)
NEARBY = GeoPoint(39.95, 116.50)


def _route(access, rng):
    return build_route(UESpec("u", BEIJING, access),
                       TargetSiteSpec("e", NEARBY, True), rng)


class TestTraceroute:
    def test_reports_every_hop(self, rng):
        route = _route(AccessType.WIFI, rng)
        trace = run_traceroute(route, rng)
        assert trace.hop_count == route.hop_count

    def test_cumulative_rtts_monotone(self, rng):
        trace = run_traceroute(_route(AccessType.WIFI, rng), rng)
        visible = [h.cumulative_rtt_ms for h in trace.visible_hops]
        assert visible == sorted(visible)

    def test_total_at_least_last_visible(self, rng):
        trace = run_traceroute(_route(AccessType.WIFI, rng), rng)
        assert trace.total_rtt_ms >= trace.visible_hops[-1].cumulative_rtt_ms - 1e-9

    def test_5g_first_two_hops_hidden(self, rng):
        # §3.1: "our collected trace doesn't contain the latency of first
        # 2 hops" on 5G.
        trace = run_traceroute(_route(AccessType.FIVE_G, rng), rng)
        assert not trace.hops[0].visible
        assert not trace.hops[1].visible
        assert trace.hops[2].visible

    def test_wifi_all_hops_visible(self, rng):
        trace = run_traceroute(_route(AccessType.WIFI, rng), rng)
        assert all(h.visible for h in trace.hops)

    def test_hop_shares_sum_to_one_when_all_visible(self, rng):
        trace = run_traceroute(_route(AccessType.WIFI, rng), rng)
        shares = trace.hop_latency_shares()
        assert sum(s for s in shares if s is not None) == pytest.approx(1.0)

    def test_hidden_hop_latency_absorbed_by_next_visible(self, rng):
        # 5G's first visible hop reports the first-3-hops total, which is
        # how Table 2's "97.9% in total" arises.
        trace = run_traceroute(_route(AccessType.FIVE_G, rng), rng)
        shares = trace.hop_latency_shares()
        assert shares[0] is None and shares[1] is None
        non_none = [s for s in shares if s is not None]
        assert sum(non_none) == pytest.approx(1.0)
        assert shares[2] > 0.5  # absorbs the hidden packet-core latency

    def test_route_label(self, rng):
        trace = run_traceroute(_route(AccessType.WIFI, rng), rng)
        assert trace.route_label == "u -> e"

    def test_hop_indices_start_at_one(self, rng):
        trace = run_traceroute(_route(AccessType.WIFI, rng), rng)
        assert trace.hops[0].index == 1
        assert trace.hops[-1].index == trace.hop_count
