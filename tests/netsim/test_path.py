"""Tests for Hop and Route representations."""

import pytest

from repro.errors import TopologyError
from repro.netsim.path import Hop, HopKind, Route


def _hop(name="h", kind=HopKind.METRO, rtt=1.0, jitter=0.1, visible=True):
    return Hop(name=name, kind=kind, mean_rtt_ms=rtt, jitter_sd_ms=jitter,
               icmp_visible=visible)


class TestHop:
    def test_negative_rtt_rejected(self):
        with pytest.raises(TopologyError):
            _hop(rtt=-1.0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(TopologyError):
            _hop(jitter=-0.1)


class TestRoute:
    def test_empty_route_rejected(self):
        with pytest.raises(TopologyError):
            Route(source_label="a", target_label="b", hops=(),
                  distance_km=10.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(TopologyError):
            Route(source_label="a", target_label="b", hops=(_hop(),),
                  distance_km=-1.0)

    def test_mean_rtt_is_sum_of_hops(self):
        route = Route("a", "b", (_hop(rtt=1.0), _hop(rtt=2.5)), 10.0)
        assert route.mean_rtt_ms == pytest.approx(3.5)

    def test_hop_count(self):
        route = Route("a", "b", (_hop(), _hop(), _hop()), 10.0)
        assert route.hop_count == 3

    def test_backbone_hop_count(self):
        route = Route("a", "b", (
            _hop(kind=HopKind.ACCESS),
            _hop(kind=HopKind.BACKBONE),
            _hop(kind=HopKind.BACKBONE),
            _hop(kind=HopKind.DC),
        ), 500.0)
        assert route.backbone_hop_count == 2

    def test_cumulative_mean_rtt_monotone(self):
        route = Route("a", "b", (_hop(rtt=1.0), _hop(rtt=2.0),
                                 _hop(rtt=0.5)), 10.0)
        cumulative = route.cumulative_mean_rtt_ms()
        assert cumulative == pytest.approx([1.0, 3.0, 3.5])
