"""Tests for access-network profiles."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.netsim.access import (
    ACCESS_PROFILES,
    AccessHopModel,
    AccessType,
    access_profile,
)


class TestAccessProfiles:
    def test_all_types_have_profiles(self):
        for access in AccessType:
            assert access_profile(access).access_type is access

    def test_wireless_set(self):
        wireless = AccessType.wireless()
        assert AccessType.WIRED not in wireless
        assert len(wireless) == 3

    def test_wifi_first_hop_dominates(self):
        # Table 2: the wireless hop carries ~44% of WiFi end-to-end RTT.
        profile = access_profile(AccessType.WIFI)
        assert profile.hops[0].mean_rtt_ms > profile.hops[1].mean_rtt_ms

    def test_lte_second_hop_dominates(self):
        # Table 2: LTE's packet core (2nd hop) carries ~70%.
        profile = access_profile(AccessType.LTE)
        assert profile.hops[1].mean_rtt_ms == max(
            h.mean_rtt_ms for h in profile.hops)

    def test_5g_core_hops_hidden_from_icmp(self):
        profile = access_profile(AccessType.FIVE_G)
        hidden = [h for h in profile.hops if not h.icmp_visible]
        assert len(hidden) == 2  # "doesn't contain the latency of first 2 hops"

    def test_5g_access_rtt_lower_than_lte(self):
        assert (access_profile(AccessType.FIVE_G).mean_access_rtt_ms
                < access_profile(AccessType.LTE).mean_access_rtt_ms)

    def test_negative_hop_params_rejected(self):
        with pytest.raises(ConfigurationError):
            AccessHopModel("bad", mean_rtt_ms=-1.0, jitter_sd_ms=0.1)


class TestCapacitySampling:
    def test_downlink_positive(self, rng):
        for access in AccessType:
            profile = access_profile(access)
            draws = [profile.sample_downlink_capacity_mbps(rng)
                     for _ in range(200)]
            assert min(draws) > 0

    def test_5g_uplink_capped_by_tdd_ratio(self, rng):
        # §3.2: the 5G uplink is "strictly capped" near 52 Mbps mean.
        profile = access_profile(AccessType.FIVE_G)
        draws = [profile.sample_uplink_capacity_mbps(rng)
                 for _ in range(500)]
        assert max(draws) <= profile.uplink_cap_mbps
        assert np.mean(draws) == pytest.approx(52.0, abs=8.0)

    def test_5g_downlink_mean_near_paper(self, rng):
        # §3.2: 5G downlink mean ~497 Mbps.
        profile = access_profile(AccessType.FIVE_G)
        draws = [profile.sample_downlink_capacity_mbps(rng)
                 for _ in range(500)]
        assert np.mean(draws) == pytest.approx(497.0, rel=0.1)

    def test_wifi_downlink_stays_below_100(self, rng):
        # §3.2: WiFi/LTE top out around 100 Mbps.
        profile = access_profile(AccessType.WIFI)
        draws = [profile.sample_downlink_capacity_mbps(rng)
                 for _ in range(500)]
        assert np.mean(draws) < 100

    def test_wired_downlink_mean_near_paper(self, rng):
        # §3.2: wired access mean ~480 Mbps.
        profile = access_profile(AccessType.WIRED)
        draws = [profile.sample_downlink_capacity_mbps(rng)
                 for _ in range(500)]
        assert np.mean(draws) == pytest.approx(480.0, rel=0.1)

    def test_floor_guards_against_negative_draws(self, rng):
        profile = access_profile(AccessType.LTE)
        draws = [profile.sample_downlink_capacity_mbps(rng)
                 for _ in range(2000)]
        assert min(draws) >= profile.downlink_mean_mbps * 0.15 - 1e-9
