"""Tests for route construction (paper §3.1 path structure)."""

import numpy as np
import pytest

from repro.geo.coords import GeoPoint
from repro.netsim.access import AccessType
from repro.netsim.path import HopKind
from repro.netsim.routing import (
    SAME_METRO_KM,
    TargetSiteSpec,
    UESpec,
    backbone_hop_count,
    backbone_rtt_ms,
    build_intersite_route,
    build_route,
)

BEIJING = GeoPoint(39.90, 116.40)
SHANGHAI = GeoPoint(31.23, 121.47)
NEARBY = GeoPoint(39.95, 116.50)


def _edge_route(access=AccessType.WIFI, target=NEARBY, rng=None):
    rng = rng if rng is not None else np.random.default_rng(0)
    return build_route(UESpec("u", BEIJING, access),
                       TargetSiteSpec("e", target, is_edge=True), rng)


def _cloud_route(access=AccessType.WIFI, target=NEARBY, rng=None):
    rng = rng if rng is not None else np.random.default_rng(0)
    return build_route(UESpec("u", BEIJING, access),
                       TargetSiteSpec("c", target, is_edge=False), rng)


class TestBackboneModel:
    def test_no_backbone_within_metro(self):
        assert backbone_hop_count(SAME_METRO_KM - 1) == 0
        assert backbone_rtt_ms(SAME_METRO_KM - 1) == 0.0

    def test_hop_count_grows_with_distance(self):
        assert backbone_hop_count(400) < backbone_hop_count(2000)

    def test_rtt_grows_with_distance(self):
        assert backbone_rtt_ms(500) < backbone_rtt_ms(1500) < backbone_rtt_ms(3000)

    def test_figure4_calibration_100ms_at_3000km(self):
        # Figure 4: inter-site RTTs "reach 100ms when two sites are
        # 3000km away".
        assert 70 <= backbone_rtt_ms(3000) <= 120


class TestRouteStructure:
    def test_same_city_edge_has_no_backbone(self, rng):
        route = _edge_route(rng=rng)
        assert route.backbone_hop_count == 0

    def test_remote_target_has_backbone(self, rng):
        route = _edge_route(target=SHANGHAI, rng=rng)
        assert route.backbone_hop_count >= 2

    def test_edge_hop_count_in_paper_range(self, rng):
        # Figure 3: 5-12 hops to the nearest edge.
        for access in (AccessType.WIFI, AccessType.LTE, AccessType.FIVE_G):
            for _ in range(20):
                route = _edge_route(access=access, rng=rng)
                assert 4 <= route.hop_count <= 12

    def test_cloud_hop_count_in_paper_range(self, rng):
        # Figure 3: 10-16 hops to clouds (same-city cloud at the low end).
        for _ in range(20):
            route = _cloud_route(rng=rng)
            assert 9 <= route.hop_count <= 18

    def test_cloud_routes_have_core_pop_hops(self, rng):
        route = _cloud_route(rng=rng)
        names = [h.name for h in route.hops]
        assert any(n.startswith("core-pop") for n in names)

    def test_edge_routes_skip_core_pops(self, rng):
        route = _edge_route(rng=rng)
        assert not any(h.name.startswith("core-pop") for h in route.hops)

    def test_access_hops_first(self, rng):
        route = _edge_route(access=AccessType.LTE, rng=rng)
        assert route.hops[0].kind is HopKind.ACCESS
        assert route.hops[-1].kind is HopKind.DC

    def test_5g_has_fewest_metro_hops(self, rng):
        def metro_count(access):
            return sum(1 for h in _edge_route(access=access, rng=rng).hops
                       if h.kind is HopKind.METRO)
        assert metro_count(AccessType.FIVE_G) <= metro_count(AccessType.WIFI)

    def test_distance_recorded(self, rng):
        route = _edge_route(target=SHANGHAI, rng=rng)
        assert route.distance_km == pytest.approx(
            BEIJING.distance_km(SHANGHAI))

    def test_farther_target_higher_mean_rtt(self, rng):
        near = _edge_route(rng=rng)
        far = _edge_route(target=SHANGHAI, rng=rng)
        assert far.mean_rtt_ms > near.mean_rtt_ms


class TestMecRoute:
    def test_mec_route_is_access_plus_server(self, rng):
        profile_hops = {
            AccessType.WIFI: 2, AccessType.LTE: 3, AccessType.FIVE_G: 3,
        }
        for access, access_hops in profile_hops.items():
            route = build_route(
                UESpec("u", BEIJING, access),
                TargetSiteSpec("mec", BEIJING, True,
                               colocated_with_access=True), rng)
            assert route.hop_count == access_hops + 1

    def test_mec_faster_than_any_edge_site(self, rng):
        mec = build_route(
            UESpec("u", BEIJING, AccessType.WIFI),
            TargetSiteSpec("mec", BEIJING, True,
                           colocated_with_access=True), rng)
        edge = _edge_route(rng=rng)
        assert mec.mean_rtt_ms < edge.mean_rtt_ms

    def test_mec_skips_metro_and_backbone(self, rng):
        route = build_route(
            UESpec("u", BEIJING, AccessType.WIFI),
            TargetSiteSpec("mec", SHANGHAI, True,
                           colocated_with_access=True), rng)
        kinds = {h.kind for h in route.hops}
        assert HopKind.METRO not in kinds
        assert HopKind.BACKBONE not in kinds


class TestIntersiteRoute:
    def test_same_metro_uses_metro_crossconnect(self, rng):
        route = build_intersite_route("a", BEIJING, "b", NEARBY, rng)
        assert route.backbone_hop_count == 0
        assert route.mean_rtt_ms < 5.0

    def test_long_haul_uses_backbone(self, rng):
        route = build_intersite_route("a", BEIJING, "b", SHANGHAI, rng)
        assert route.backbone_hop_count >= 2
        assert 15 < route.mean_rtt_ms < 60

    def test_endpoints_are_dc_gateways(self, rng):
        route = build_intersite_route("a", BEIJING, "b", SHANGHAI, rng)
        assert route.hops[0].kind is HopKind.DC
        assert route.hops[-1].kind is HopKind.DC
