"""Tests for RTT sampling."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.geo.coords import GeoPoint
from repro.netsim.access import AccessType
from repro.netsim.latency import LatencyModel
from repro.netsim.routing import TargetSiteSpec, UESpec, build_route

BEIJING = GeoPoint(39.90, 116.40)
NEARBY = GeoPoint(39.95, 116.50)
GUANGZHOU = GeoPoint(23.13, 113.26)


@pytest.fixture()
def edge_route(rng):
    return build_route(UESpec("u", BEIJING, AccessType.WIFI),
                       TargetSiteSpec("e", NEARBY, True), rng)


@pytest.fixture()
def cloud_route(rng):
    return build_route(UESpec("u", BEIJING, AccessType.WIFI),
                       TargetSiteSpec("c", GUANGZHOU, False), rng)


class TestLatencyModel:
    def test_samples_positive(self, rng, edge_route):
        model = LatencyModel(rng)
        samples = model.sample_many(edge_route, 100)
        assert (samples > 0).all()

    def test_sample_count(self, rng, edge_route):
        model = LatencyModel(rng)
        assert model.sample_many(edge_route, 30).shape == (30,)

    def test_zero_count_rejected(self, rng, edge_route):
        with pytest.raises(MeasurementError):
            LatencyModel(rng).sample_many(edge_route, 0)

    def test_mean_tracks_route_mean(self, rng, edge_route):
        model = LatencyModel(rng)
        samples = model.sample_many(edge_route, 400)
        # Spikes push the sample mean slightly above the noise-free mean.
        assert samples.mean() == pytest.approx(edge_route.mean_rtt_ms,
                                               rel=0.15)

    def test_per_hop_breakdown_sums_to_total(self, rng, edge_route):
        model = LatencyModel(rng)
        sample = model.sample(edge_route)
        assert sample.total_ms == pytest.approx(sum(sample.per_hop_ms))
        assert len(sample.per_hop_ms) == edge_route.hop_count

    def test_cloud_path_has_higher_cv_than_edge(self, rng, edge_route,
                                                cloud_route):
        # Figure 2(b): backbone-rich cloud paths jitter more.
        model = LatencyModel(rng)
        edge_cvs, cloud_cvs = [], []
        for _ in range(25):
            _, edge_cv = model.mean_and_cv(edge_route, 30)
            _, cloud_cv = model.mean_and_cv(cloud_route, 30)
            edge_cvs.append(edge_cv)
            cloud_cvs.append(cloud_cv)
        assert np.median(cloud_cvs) > np.median(edge_cvs)

    def test_edge_cv_near_paper_magnitude(self, rng, edge_route):
        # Figure 2(b): nearest-edge WiFi CV median ~1.1%.
        model = LatencyModel(rng)
        cvs = [model.mean_and_cv(edge_route, 30)[1] for _ in range(40)]
        assert 0.002 < float(np.median(cvs)) < 0.06

    def test_mean_and_cv_deterministic_per_stream(self, edge_route):
        a = LatencyModel(np.random.default_rng(7)).mean_and_cv(edge_route, 30)
        b = LatencyModel(np.random.default_rng(7)).mean_and_cv(edge_route, 30)
        assert a == b
