"""Tests for the process-pool series executor (repro.parallel)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import Scenario
from repro.errors import ConfigurationError
from repro.parallel import resolve_jobs, run_series_jobs
from repro.perf import PerfRegistry
from repro.workload.apps import NEP_PROFILES
from repro.workload.series import NEP_RECIPE, SeriesJob

SCENARIO = Scenario.smoke_scale()


def _jobs(count: int) -> list[SeriesJob]:
    return [SeriesJob(app_id=f"app-{i:03d}",
                      profile=NEP_PROFILES[i % len(NEP_PROFILES)],
                      vm_count=2 + i % 3)
            for i in range(count)]


class TestResolveJobs:
    def test_explicit_count_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_zero_and_none_mean_all_cores(self):
        import os
        expected = os.cpu_count() or 1
        assert resolve_jobs(0) == expected
        assert resolve_jobs(None) == expected

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(-1)


class TestRunSeriesJobs:
    def test_blocks_arrive_in_submission_order(self):
        jobs = _jobs(6)
        blocks = list(run_series_jobs(jobs, SCENARIO, NEP_RECIPE, n_jobs=3))
        assert [b.app_id for b in blocks] == [j.app_id for j in jobs]

    def test_parallel_rows_match_serial(self):
        jobs = _jobs(5)
        serial = list(run_series_jobs(jobs, SCENARIO, NEP_RECIPE, n_jobs=1))
        parallel = list(run_series_jobs(jobs, SCENARIO, NEP_RECIPE, n_jobs=4))
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.mean_bws, b.mean_bws)
            assert np.array_equal(a.cpu_rows, b.cpu_rows)
            assert np.array_equal(a.bw_rows, b.bw_rows)
            if a.private_rows is not None:
                assert np.array_equal(a.private_rows, b.private_rows)

    def test_worker_perf_merged_into_parent(self):
        jobs = _jobs(4)
        perf = PerfRegistry()
        blocks = list(run_series_jobs(jobs, SCENARIO, NEP_RECIPE, n_jobs=2,
                                      perf=perf))
        assert all(block.perf is None for block in blocks)
        assert perf.counters["series_vms"] == sum(j.vm_count for j in jobs)
        assert perf.spans["series_render"].calls == len(jobs)

    def test_single_job_stays_inline(self):
        jobs = _jobs(1)
        perf = PerfRegistry()
        blocks = list(run_series_jobs(jobs, SCENARIO, NEP_RECIPE, n_jobs=8,
                                      perf=perf))
        assert len(blocks) == 1
        assert perf.spans["series_render"].calls == 1
