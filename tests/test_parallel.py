"""Tests for the process-pool series executor (repro.parallel)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import Scenario
from repro.errors import ConfigurationError
from repro.obs import RunJournal, canonical_events
from repro.parallel import resolve_jobs, run_series_jobs
from repro.perf import PerfRegistry
from repro.workload.apps import NEP_PROFILES
from repro.workload.series import NEP_RECIPE, SeriesJob

SCENARIO = Scenario.smoke_scale()


def _jobs(count: int) -> list[SeriesJob]:
    return [SeriesJob(app_id=f"app-{i:03d}",
                      profile=NEP_PROFILES[i % len(NEP_PROFILES)],
                      vm_count=2 + i % 3)
            for i in range(count)]


class TestResolveJobs:
    def test_explicit_count_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_zero_and_none_mean_all_cores(self):
        import os
        expected = os.cpu_count() or 1
        assert resolve_jobs(0) == expected
        assert resolve_jobs(None) == expected

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(-1)


class TestRunSeriesJobs:
    def test_blocks_arrive_in_submission_order(self):
        jobs = _jobs(6)
        blocks = list(run_series_jobs(jobs, SCENARIO, NEP_RECIPE, n_jobs=3))
        assert [b.app_id for b in blocks] == [j.app_id for j in jobs]

    def test_parallel_rows_match_serial(self):
        jobs = _jobs(5)
        serial = list(run_series_jobs(jobs, SCENARIO, NEP_RECIPE, n_jobs=1))
        parallel = list(run_series_jobs(jobs, SCENARIO, NEP_RECIPE, n_jobs=4))
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.mean_bws, b.mean_bws)
            assert np.array_equal(a.cpu_rows, b.cpu_rows)
            assert np.array_equal(a.bw_rows, b.bw_rows)
            if a.private_rows is not None:
                assert np.array_equal(a.private_rows, b.private_rows)

    def test_worker_perf_merged_into_parent(self):
        jobs = _jobs(4)
        perf = PerfRegistry()
        blocks = list(run_series_jobs(jobs, SCENARIO, NEP_RECIPE, n_jobs=2,
                                      perf=perf))
        assert all(block.perf is None for block in blocks)
        assert perf.counters["series_vms"] == sum(j.vm_count for j in jobs)
        assert perf.spans["series_render"].calls == len(jobs)

    def test_single_job_stays_inline(self):
        jobs = _jobs(1)
        perf = PerfRegistry()
        blocks = list(run_series_jobs(jobs, SCENARIO, NEP_RECIPE, n_jobs=8,
                                      perf=perf))
        assert len(blocks) == 1
        assert perf.spans["series_render"].calls == 1


def _block_rows(blocks):
    return [(b.app_id, b.cpu_rows.tobytes(), b.bw_rows.tobytes(),
             None if b.private_rows is None else b.private_rows.tobytes())
            for b in blocks]


class TestShmHandoff:
    """The shared-memory transport changes speed, never bytes."""

    def test_shm_equals_pickle_handoff(self):
        jobs = _jobs(5)
        via_shm = list(run_series_jobs(jobs, SCENARIO, NEP_RECIPE,
                                       n_jobs=2, handoff="shm"))
        via_pickle = list(run_series_jobs(jobs, SCENARIO, NEP_RECIPE,
                                          n_jobs=2, handoff="pickle"))
        assert _block_rows(via_shm) == _block_rows(via_pickle)

    def test_unknown_handoff_rejected(self):
        with pytest.raises(ConfigurationError):
            list(run_series_jobs(_jobs(2), SCENARIO, NEP_RECIPE,
                                 n_jobs=2, handoff="carrier-pigeon"))

    def test_shm_handoff_event_counts_blocks(self):
        jobs = _jobs(4)
        journal = RunJournal(None)
        perf = PerfRegistry(journal=journal)
        blocks = list(run_series_jobs(jobs, SCENARIO, NEP_RECIPE,
                                      n_jobs=2, perf=perf))
        assert len(blocks) == len(jobs)
        events = [e for e in journal.events if e["type"] == "shm_handoff"]
        assert len(events) == 1
        assert events[0]["blocks"] == len(jobs)
        assert events[0]["fallback_blocks"] == 0
        assert events[0]["workers"] == 2
        assert events[0]["bytes"] > 0

    def test_shm_handoff_event_survives_partial_consumers(self):
        """Regression: the generators zip() over the block iterator and
        never advance it past the last block, so the event must be
        emitted before the final yield, not after the loop."""
        from repro.workload.generator import generate_nep_workload

        journal = RunJournal(None)
        perf = PerfRegistry(journal=journal)
        generate_nep_workload(SCENARIO, jobs=2, perf=perf)
        events = [e for e in journal.events if e["type"] == "shm_handoff"]
        assert len(events) == 1
        assert events[0]["blocks"] + events[0]["fallback_blocks"] > 0

    def test_oversized_blocks_fall_back_to_pickle(self, monkeypatch):
        # A 1-byte slot makes every block oversized: the ring stays up
        # but every result travels the legacy pipe, bit-identically.
        monkeypatch.setattr("repro.parallel.SHM_SLOT_CAP_BYTES", 1)
        jobs = _jobs(4)
        journal = RunJournal(None)
        perf = PerfRegistry(journal=journal)
        fallback = list(run_series_jobs(jobs, SCENARIO, NEP_RECIPE,
                                        n_jobs=2, perf=perf))
        serial = list(run_series_jobs(jobs, SCENARIO, NEP_RECIPE, n_jobs=1))
        assert _block_rows(fallback) == _block_rows(serial)
        event = next(e for e in journal.events
                     if e["type"] == "shm_handoff")
        assert event["blocks"] == 0
        assert event["fallback_blocks"] == len(jobs)

    def test_kill_switch_disables_shm(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        jobs = _jobs(4)
        journal = RunJournal(None)
        perf = PerfRegistry(journal=journal)
        disabled = list(run_series_jobs(jobs, SCENARIO, NEP_RECIPE,
                                        n_jobs=2, perf=perf))
        serial = list(run_series_jobs(jobs, SCENARIO, NEP_RECIPE, n_jobs=1))
        assert _block_rows(disabled) == _block_rows(serial)
        assert not [e for e in journal.events if e["type"] == "shm_handoff"]

    def test_slot_size_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_SLOT_MB", "1")
        jobs = _jobs(3)
        journal = RunJournal(None)
        perf = PerfRegistry(journal=journal)
        list(run_series_jobs(jobs, SCENARIO, NEP_RECIPE, n_jobs=2,
                             perf=perf))
        event = next(e for e in journal.events
                     if e["type"] == "shm_handoff")
        assert event["slot_bytes"] <= 1 << 20

    def test_canonical_journal_invariant_across_transports(self):
        def run(**kwargs):
            journal = RunJournal(None)
            perf = PerfRegistry(journal=journal)
            list(run_series_jobs(_jobs(4), SCENARIO, NEP_RECIPE,
                                 perf=perf, **kwargs))
            return canonical_events(journal.events)

        serial = run(n_jobs=1)
        assert serial == run(n_jobs=2, handoff="shm")
        assert serial == run(n_jobs=2, handoff="pickle")

    def test_serial_fallback_warns_when_fork_unavailable(self, monkeypatch):
        monkeypatch.setattr("repro.parallel._pool_context", lambda: None)
        jobs = _jobs(3)
        journal = RunJournal(None)
        perf = PerfRegistry(journal=journal)
        blocks = list(run_series_jobs(jobs, SCENARIO, NEP_RECIPE,
                                      n_jobs=2, perf=perf))
        serial = list(run_series_jobs(jobs, SCENARIO, NEP_RECIPE, n_jobs=1))
        assert _block_rows(blocks) == _block_rows(serial)
        warning = next(e for e in journal.events if e["type"] == "warning")
        assert "fork" in warning["message"]
        # The fallback still renders in-process: same job_complete trail.
        assert sum(1 for e in journal.events
                   if e["type"] == "job_complete") == len(jobs)


def _square(x):
    return x * x


def _explode(x):
    raise ValueError(f"bad cell {x}")


def _die_silently(_):
    import os
    import signal
    os.kill(os.getpid(), signal.SIGKILL)


class TestTaskFarm:
    def test_serial_runs_inline_in_fifo_order(self):
        from repro.parallel import TaskFarm
        with TaskFarm(1) as farm:
            for i in range(3):
                farm.submit(f"t{i}", _square, i)
            seen = []
            while farm.outstanding:
                outcome = farm.next_outcome()
                assert outcome.ok
                seen.append((outcome.task_id, outcome.value))
        assert seen == [("t0", 0), ("t1", 1), ("t2", 4)]

    def test_serial_relays_errors_as_outcomes(self):
        from repro.parallel import TaskFarm
        with TaskFarm(1) as farm:
            farm.submit("boom", _explode, 7)
            outcome = farm.next_outcome()
        assert not outcome.ok
        assert outcome.error == "ValueError: bad cell 7"

    def test_pooled_collects_every_outcome(self):
        from repro.parallel import TaskFarm
        with TaskFarm(2) as farm:
            for i in range(5):
                farm.submit(f"t{i}", _square, i)
            values = {}
            while farm.outstanding:
                outcome = farm.next_outcome()
                assert outcome.ok
                values[outcome.task_id] = outcome.value
        assert values == {f"t{i}": i * i for i in range(5)}

    def test_pooled_relays_worker_exceptions(self):
        from repro.parallel import TaskFarm
        with TaskFarm(2) as farm:
            farm.submit("ok", _square, 3)
            farm.submit("boom", _explode, 9)
            results = {}
            while farm.outstanding:
                outcome = farm.next_outcome()
                results[outcome.task_id] = outcome
        assert results["ok"].ok and results["ok"].value == 9
        assert not results["boom"].ok
        assert "ValueError: bad cell 9" in results["boom"].error

    def test_silently_dead_worker_reported_failed(self):
        from repro.parallel import TaskFarm
        with TaskFarm(2) as farm:
            farm.submit("doomed", _die_silently, None)
            outcome = farm.next_outcome()
        assert not outcome.ok
        assert "worker died without reporting" in outcome.error

    def test_duplicate_outstanding_id_rejected(self):
        from repro.parallel import TaskFarm
        with TaskFarm(1) as farm:
            farm.submit("a", _square, 1)
            with pytest.raises(ConfigurationError, match="already"):
                farm.submit("a", _square, 2)

    def test_next_outcome_without_tasks_rejected(self):
        from repro.parallel import TaskFarm
        with TaskFarm(1) as farm:
            with pytest.raises(ConfigurationError, match="outstanding"):
                farm.next_outcome()

    def test_queue_beyond_worker_count_drains(self):
        from repro.parallel import TaskFarm
        with TaskFarm(2) as farm:
            for i in range(6):
                farm.submit(f"t{i}", _square, i)
            done = sum(1 for _ in iter(
                lambda: farm.next_outcome() if farm.outstanding else None,
                None))
        assert done == 6
