"""Tests for the persistent artifact cache (repro.cache)."""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import signal

import numpy as np
import pytest

from repro.cache import ArtifactCache, code_version, default_cache_dir
from repro.config import Scenario
from repro.errors import ConfigurationError

SCENARIO = Scenario.smoke_scale()


@pytest.fixture()
def cache(tmp_path) -> ArtifactCache:
    return ArtifactCache(tmp_path / "cache")


class TestKeys:
    def test_stable_for_equal_scenarios(self, cache):
        assert (cache.key("x", Scenario.smoke_scale())
                == cache.key("x", Scenario.smoke_scale()))

    def test_sensitive_to_seed(self, cache):
        assert (cache.key("x", SCENARIO)
                != cache.key("x", SCENARIO.with_overrides(seed=1)))

    def test_sensitive_to_any_scenario_knob(self, cache):
        assert (cache.key("x", SCENARIO)
                != cache.key("x", SCENARIO.with_overrides(trace_days=9)))
        assert (cache.key("x", SCENARIO)
                != cache.key("x", SCENARIO.with_overrides(
                    fault_profile="paper")))

    def test_sensitive_to_artifact_name(self, cache):
        assert cache.key("x", SCENARIO) != cache.key("y", SCENARIO)

    def test_sensitive_to_code_version(self, cache, monkeypatch):
        before = cache.key("x", SCENARIO)
        monkeypatch.setattr("repro.cache.code_version", lambda: "0" * 16)
        assert cache.key("x", SCENARIO) != before

    def test_empty_artifact_rejected(self, cache):
        with pytest.raises(ConfigurationError):
            cache.key("", SCENARIO)


class TestObjectRoundTrip:
    def test_miss_returns_none(self, cache):
        assert cache.get_object("campaign_latency", SCENARIO) is None

    def test_round_trip(self, cache):
        value = {"latency": [1.5, 2.5], "n": 3}
        cache.put_object("campaign_latency", SCENARIO, value)
        assert cache.get_object("campaign_latency", SCENARIO) == value

    def test_put_is_idempotent(self, cache):
        cache.put_object("a", SCENARIO, 1)
        cache.put_object("a", SCENARIO, 2)  # already present: kept
        assert cache.get_object("a", SCENARIO) == 1
        assert len(cache.entries()) == 1

    def test_corrupt_payload_is_a_miss_and_removed(self, cache):
        cache.put_object("a", SCENARIO, [1, 2, 3])
        entry = cache._entry_dir(cache.key("a", SCENARIO))
        (entry / "object.pkl").write_bytes(b"\x80garbage")
        assert cache.get_object("a", SCENARIO) is None
        assert not entry.exists()
        assert cache.get_object("a", SCENARIO) is None


class TestWorkloadRoundTrip:
    def test_round_trip_byte_identical(self, cache, nep_workload):
        cache.put_workload("workload_nep", SCENARIO, nep_workload)
        loaded = cache.get_workload("workload_nep", SCENARIO)
        assert loaded is not None
        src, dst = nep_workload.dataset, loaded.dataset
        assert list(src.vms) == list(dst.vms)
        for vm_id in src.vms:
            assert np.array_equal(src.cpu_series[vm_id],
                                  np.asarray(dst.cpu_series[vm_id]))
            assert np.array_equal(src.bw_series[vm_id],
                                  np.asarray(dst.bw_series[vm_id]))
        assert set(src.bw_private_series) == set(dst.bw_private_series)
        for vm_id in src.bw_private_series:
            assert np.array_equal(src.bw_private_series[vm_id],
                                  np.asarray(dst.bw_private_series[vm_id]))
        assert repr(src.vms) == repr(dst.vms)
        assert repr(nep_workload.platform.sites) == repr(loaded.platform.sites)

    def test_loaded_series_are_memory_mapped(self, cache, nep_workload):
        cache.put_workload("workload_nep", SCENARIO, nep_workload)
        loaded = cache.get_workload("workload_nep", SCENARIO)
        first = next(iter(loaded.dataset.cpu_series.values()))
        assert isinstance(np.asarray(first).base, np.memmap) or isinstance(
            first, np.memmap) or first.base is not None

    def test_truncated_series_is_a_miss(self, cache, nep_workload):
        cache.put_workload("workload_nep", SCENARIO, nep_workload)
        entry = cache._entry_dir(cache.key("workload_nep", SCENARIO))
        payload = (entry / "cpu.npy").read_bytes()
        (entry / "cpu.npy").write_bytes(payload[:len(payload) // 2])
        assert cache.get_workload("workload_nep", SCENARIO) is None
        assert not entry.exists()


class _Bomb:
    """Pickles by SIGKILLing its own process: simulates a crash mid-write."""

    def __reduce__(self):
        os.kill(os.getpid(), signal.SIGKILL)
        return (list, ())  # pragma: no cover - never reached


def _put_bomb(root: str) -> None:
    cache = ArtifactCache(root)
    # A large head so the partial payload actually reaches the disk
    # before the kill fires.
    cache.put_object("bombed", SCENARIO, [b"x" * 1_000_000, _Bomb()])


class TestWriteAtomicity:
    def test_kill_during_write_leaves_no_loadable_entry(self, cache):
        proc = multiprocessing.get_context("fork").Process(
            target=_put_bomb, args=(str(cache.root),))
        proc.start()
        proc.join(timeout=60)
        assert proc.exitcode == -signal.SIGKILL
        # The interrupted write is invisible: a miss, zero complete
        # entries, at most an ignored staging directory.
        assert cache.get_object("bombed", SCENARIO) is None
        assert cache.entries() == []
        staging = list(cache.root.glob(".tmp-*"))
        assert staging, "expected the partial write to leave a staging dir"
        cache.clear()
        assert not list(cache.root.glob(".tmp-*"))

    def test_failed_writer_cleans_staging(self, cache):
        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            cache.put_object("bad", SCENARIO, Unpicklable())
        assert not list(cache.root.glob(".tmp-*"))
        assert cache.get_object("bad", SCENARIO) is None

    def test_concurrent_writers_keep_one_entry(self, cache):
        cache.put_object("a", SCENARIO, 41)
        # Simulate losing the materialisation race: the final entry
        # appears between the existence check and the rename.
        key = cache.key("b", SCENARIO)

        real_rename = os.rename
        raced = []

        def racing_rename(src, dst):
            if not raced:
                raced.append(True)
                cache.put_object("b", SCENARIO, 42)
            real_rename(src, dst)

        try:
            os.rename = racing_rename
            cache.put_object("b", SCENARIO, 43)
        finally:
            os.rename = real_rename
        assert cache.get_object("b", SCENARIO) in (42, 43)
        assert len([e for e in cache.entries() if e.key == key]) == 1


class TestMaintenance:
    def test_entries_and_info(self, cache, nep_workload):
        cache.put_object("campaign_latency", SCENARIO, [1, 2])
        cache.put_workload("workload_nep", SCENARIO, nep_workload)
        entries = cache.entries()
        assert {e.artifact for e in entries} == {"campaign_latency",
                                                "workload_nep"}
        assert {e.kind for e in entries} == {"object", "workload"}
        assert all(e.bytes > 0 for e in entries)
        info = cache.info()
        assert info["entries"] == 2
        assert info["bytes"] == sum(e.bytes for e in entries)
        assert info["code_version"] == code_version()

    def test_clear_removes_everything(self, cache):
        cache.put_object("a", SCENARIO, 1)
        cache.put_object("b", SCENARIO, 2)
        assert cache.clear() == 2
        assert cache.entries() == []
        assert cache.clear() == 0

    def test_unreadable_meta_skipped(self, cache):
        cache.put_object("a", SCENARIO, 1)
        entry = cache.entries()[0]
        (entry.path / "meta.json").write_text("{not json")
        assert cache.entries() == []

    def test_meta_records_scenario_and_version(self, cache):
        cache.put_object("a", SCENARIO, 1)
        meta = json.loads((cache.entries()[0].path / "meta.json").read_text())
        assert meta["artifact"] == "a"
        assert meta["code_version"] == code_version()
        assert meta["scenario"]["seed"] == SCENARIO.seed


class TestDefaultDir:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro"


def _age_entry(cache, artifact, days):
    """Backdate an entry's created_at by ``days`` (meta.json rewrite)."""
    import time
    entry = next(e for e in cache.entries() if e.artifact == artifact)
    meta_path = entry.path / "meta.json"
    meta = json.loads(meta_path.read_text())
    meta["created_at"] = time.strftime(
        "%Y-%m-%dT%H:%M:%SZ", time.gmtime(time.time() - days * 86_400))
    meta_path.write_text(json.dumps(meta))


class TestPruning:
    def test_stale_entries_respect_cutoff(self, cache):
        cache.put_object("old", SCENARIO, 1)
        cache.put_object("new", SCENARIO, 2)
        _age_entry(cache, "old", days=10)
        assert {e.artifact for e in cache.stale_entries(5)} == {"old"}
        assert len(cache.stale_entries(None)) == 2
        assert cache.stale_entries(30) == []

    def test_clear_older_than_keeps_recent(self, cache):
        cache.put_object("old", SCENARIO, 1)
        cache.put_object("new", SCENARIO, 2)
        _age_entry(cache, "old", days=10)
        assert cache.clear(older_than_days=5) == 1
        assert {e.artifact for e in cache.entries()} == {"new"}
        assert cache.get_object("new", SCENARIO) == 2

    def test_dry_run_counts_without_removing(self, cache):
        cache.put_object("a", SCENARIO, 1)
        cache.put_object("b", SCENARIO, 2)
        assert cache.clear(dry_run=True) == 2
        assert len(cache.entries()) == 2
        _age_entry(cache, "a", days=10)
        assert cache.clear(older_than_days=5, dry_run=True) == 1
        assert len(cache.entries()) == 2

    def test_damaged_created_at_counts_as_stale(self, cache):
        cache.put_object("a", SCENARIO, 1)
        entry = cache.entries()[0]
        meta_path = entry.path / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["created_at"] = "yesterday-ish"
        meta_path.write_text(json.dumps(meta))
        assert len(cache.stale_entries(9999)) == 1

    def test_cutoff_clear_spares_fresh_staging(self, cache):
        cache.put_object("a", SCENARIO, 1)
        _age_entry(cache, "a", days=10)
        staging = cache.root / ".tmp-live-writer"
        staging.mkdir()
        assert cache.clear(older_than_days=5) == 1
        assert staging.exists()        # a live writer may own it
        cache.put_object("b", SCENARIO, 2)
        assert cache.clear() == 1      # full clear sweeps staging too
        assert not staging.exists()
