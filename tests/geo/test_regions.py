"""Tests for the China gazetteer."""

import pytest

from repro.errors import GeoError
from repro.geo.regions import (
    CHINA_CITIES,
    cities_in_province,
    city,
    provinces,
    total_population_m,
)


class TestGazetteer:
    def test_has_enough_cities_for_campaign(self):
        # The paper's campaign covered 41 cities in 20 provinces.
        assert len(CHINA_CITIES) >= 41
        assert len(provinces()) >= 20

    def test_city_names_unique(self):
        names = [c.name for c in CHINA_CITIES]
        assert len(names) == len(set(names))

    def test_all_cities_in_china_bounding_box(self):
        for c in CHINA_CITIES:
            assert 18.0 <= c.location.lat <= 54.0, c.name
            assert 73.0 <= c.location.lon <= 135.0, c.name

    def test_populations_positive(self):
        assert all(c.population_m > 0 for c in CHINA_CITIES)

    def test_total_population_reasonable(self):
        # Urban population of the major cities: hundreds of millions.
        assert 300 < total_population_m() < 1200

    def test_lookup_known_city(self):
        beijing = city("Beijing")
        assert beijing.province == "Beijing"
        assert beijing.population_m > 20

    def test_lookup_unknown_city_raises(self):
        with pytest.raises(GeoError):
            city("Atlantis")

    def test_cities_in_province(self):
        guangdong = cities_in_province("Guangdong")
        assert {"Guangzhou", "Shenzhen"} <= {c.name for c in guangdong}

    def test_unknown_province_raises(self):
        with pytest.raises(GeoError):
            cities_in_province("Hogwarts")

    def test_city_key_includes_province(self):
        assert city("Guangzhou").key == "Guangdong/Guangzhou"

    def test_municipalities_present(self):
        for name in ("Beijing", "Shanghai", "Tianjin", "Chongqing"):
            assert city(name).province == name
