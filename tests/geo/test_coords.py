"""Tests for geographic primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.coords import EARTH_RADIUS_KM, GeoPoint, haversine_km

lat = st.floats(min_value=-89.9, max_value=89.9, allow_nan=False)
lon = st.floats(min_value=-179.9, max_value=179.9, allow_nan=False)


class TestGeoPoint:
    def test_valid_point(self):
        p = GeoPoint(39.9, 116.4)
        assert p.lat == 39.9

    def test_latitude_out_of_range(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0)

    def test_longitude_out_of_range(self):
        with pytest.raises(ValueError):
            GeoPoint(0.0, 181.0)

    def test_jitter_clamps_latitude(self):
        p = GeoPoint(89.95, 0.0).jitter(1.0, 0.0)
        assert p.lat == 90.0

    def test_jitter_wraps_longitude(self):
        p = GeoPoint(0.0, 179.9).jitter(0.0, 0.2)
        assert p.lon == pytest.approx(-179.9)

    def test_jitter_wraps_negative_longitude(self):
        p = GeoPoint(0.0, -179.9).jitter(0.0, -0.2)
        assert p.lon == pytest.approx(179.9)


class TestHaversine:
    def test_zero_distance(self):
        p = GeoPoint(30.0, 110.0)
        assert haversine_km(p, p) == 0.0

    def test_beijing_shanghai(self):
        # Great-circle Beijing-Shanghai is ~1070 km.
        d = haversine_km(GeoPoint(39.90, 116.40), GeoPoint(31.23, 121.47))
        assert 1000 < d < 1150

    def test_beijing_guangzhou(self):
        # ~1890 km.
        d = haversine_km(GeoPoint(39.90, 116.40), GeoPoint(23.13, 113.26))
        assert 1800 < d < 2000

    def test_quarter_circumference(self):
        d = haversine_km(GeoPoint(0.0, 0.0), GeoPoint(0.0, 90.0))
        assert d == pytest.approx(EARTH_RADIUS_KM * 3.14159 / 2, rel=1e-3)

    @given(lat, lon, lat, lon)
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, lat1, lon1, lat2, lon2):
        a, b = GeoPoint(lat1, lon1), GeoPoint(lat2, lon2)
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))

    @given(lat, lon, lat, lon)
    @settings(max_examples=100, deadline=None)
    def test_non_negative_and_bounded(self, lat1, lon1, lat2, lon2):
        d = haversine_km(GeoPoint(lat1, lon1), GeoPoint(lat2, lon2))
        assert 0.0 <= d <= EARTH_RADIUS_KM * 3.1416  # half circumference

    @given(lat, lon, lat, lon, lat, lon)
    @settings(max_examples=100, deadline=None)
    def test_triangle_inequality(self, lat1, lon1, lat2, lon2, lat3, lon3):
        a, b, c = (GeoPoint(lat1, lon1), GeoPoint(lat2, lon2),
                   GeoPoint(lat3, lon3))
        assert (haversine_km(a, c)
                <= haversine_km(a, b) + haversine_km(b, c) + 1e-6)

    def test_distance_km_method_matches_function(self):
        a, b = GeoPoint(10.0, 20.0), GeoPoint(11.0, 21.0)
        assert a.distance_km(b) == haversine_km(a, b)
