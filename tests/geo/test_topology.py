"""Tests for site-placement generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geo.coords import GeoPoint
from repro.geo.regions import CHINA_CITIES
from repro.geo.topology import (
    nearest_site,
    place_cloud_regions,
    place_edge_sites,
)


class TestEdgePlacement:
    def test_exact_count(self, rng):
        sites = place_edge_sites(520, rng)
        assert len(sites) == 520

    def test_full_scale_covers_every_city(self, rng):
        sites = place_edge_sites(600, rng)
        covered = {s.city.name for s in sites}
        assert covered == {c.name for c in CHINA_CITIES}

    def test_reduced_scale_below_city_count(self, rng):
        sites = place_edge_sites(30, rng)
        assert len(sites) == 30
        # distinct cities at reduced scale
        assert len({s.city.name for s in sites}) == 30

    def test_population_weighting(self, rng):
        sites = place_edge_sites(1000, rng)
        by_city = {}
        for s in sites:
            by_city[s.city.name] = by_city.get(s.city.name, 0) + 1
        # Shanghai (24.9M) should host clearly more sites than Sanya (1M).
        assert by_city.get("Shanghai", 0) > by_city.get("Sanya", 0)

    def test_sites_jittered_within_metro_belt(self, rng):
        # Sites spread into the county belt (~+-80 km of the metro).
        sites = place_edge_sites(200, rng)
        for s in sites:
            assert s.location.distance_km(s.city.location) < 130

    def test_zero_count_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            place_edge_sites(0, rng)

    def test_deterministic_for_same_rng_state(self):
        a = place_edge_sites(100, np.random.default_rng(5))
        b = place_edge_sites(100, np.random.default_rng(5))
        assert [s.location for s in a] == [s.location for s in b]


class TestCloudPlacement:
    def test_count_and_distinct_cities(self, rng):
        regions = place_cloud_regions(12, rng)
        assert len(regions) == 12
        assert len({r.city.name for r in regions}) == 12

    def test_picks_biggest_metros(self, rng):
        regions = place_cloud_regions(6, rng)
        names = {r.city.name for r in regions}
        assert "Shanghai" in names and "Beijing" in names

    def test_zero_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            place_cloud_regions(0, rng)

    def test_too_many_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            place_cloud_regions(len(CHINA_CITIES) + 1, rng)


class TestNearestSite:
    def test_nearest_is_found(self, rng):
        sites = place_edge_sites(100, rng)
        probe = GeoPoint(39.9, 116.4)  # Beijing
        nearest = nearest_site(probe, sites)
        assert all(
            nearest.location.distance_km(probe)
            <= s.location.distance_km(probe)
            for s in sites
        )

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            nearest_site(GeoPoint(0, 0), [])
