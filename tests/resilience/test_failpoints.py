"""Tests for the deterministic failpoint registry (repro.resilience)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, InjectedFault
from repro.resilience import (
    CHAOS_PROFILES,
    FAILPOINTS_ENV,
    SITES,
    FailpointRule,
    active,
    chaos_spec,
    failpoint,
    fire,
    install,
    parse_failpoints,
    reset,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    """Failpoints are process-global: every test starts and ends clean."""
    reset()
    yield
    reset()


class TestGrammar:
    def test_empty_spec_is_disabled(self):
        registry = parse_failpoints("")
        assert not registry.enabled

    def test_nth_rule(self):
        registry = parse_failpoints("cache.commit:nth=3")
        rule = registry.rules["cache.commit"]
        assert rule.nth == 3 and rule.p is None
        assert rule.max_fires == 1  # nth default: fire once

    def test_p_rule_with_seed_and_times(self):
        registry = parse_failpoints("shard.write:p=0.5,seed=7,times=2")
        rule = registry.rules["shard.write"]
        assert rule.p == 0.5 and rule.seed == 7 and rule.max_fires == 2

    def test_p_rule_defaults_to_unlimited_fires(self):
        rule = parse_failpoints("cache.read:p=0.5").rules["cache.read"]
        assert rule.max_fires is None

    def test_multiple_sites(self):
        registry = parse_failpoints(
            "cache.commit:nth=1;series.render:p=0.1,seed=3")
        assert set(registry.rules) == {"cache.commit", "series.render"}

    @pytest.mark.parametrize("spec", [
        "not.a.site:nth=1",          # unknown site
        "cache.commit:nth=1,p=0.5",  # both triggers
        "cache.commit:times=2",      # neither trigger
        "cache.commit:nth=0",        # out of range
        "cache.commit:p=0",          # out of range
        "cache.commit:p=1.5",        # out of range
        "cache.commit:nth=1,times=0",
        "cache.commit:nth=x",        # bad int
        "cache.commit:wat=1",        # unknown parameter
        "cache.commit",              # missing params
        "cache.commit:nth=1;cache.commit:nth=2",  # duplicate site
        "cache.commit:nth",          # malformed parameter
    ])
    def test_rejected_specs(self, spec):
        with pytest.raises(ConfigurationError):
            parse_failpoints(spec)

    def test_rule_site_must_be_known(self):
        with pytest.raises(ConfigurationError):
            FailpointRule(site="bogus", nth=1)


class TestFiring:
    def test_nth_fires_exactly_once_on_nth_hit(self):
        registry = parse_failpoints("series.render:nth=3")
        fires = [registry.fire("series.render") for _ in range(6)]
        assert fires == [False, False, True, False, False, False]
        assert registry.hits("series.render") == 6
        assert registry.fired("series.render") == 1

    def test_times_extends_the_budget(self):
        registry = parse_failpoints("series.render:nth=1,times=3")
        fires = [registry.fire("series.render") for _ in range(5)]
        assert fires == [True, True, True, False, False]

    def test_unconfigured_site_never_fires(self):
        registry = parse_failpoints("cache.commit:nth=1")
        assert not registry.fire("series.render")
        assert registry.hits("series.render") == 0  # only rules count hits

    def test_unknown_site_rejected_at_fire_time(self):
        registry = parse_failpoints("cache.commit:nth=1")
        with pytest.raises(ConfigurationError):
            registry.fire("made.up")

    def test_p_sequence_is_deterministic(self):
        a = parse_failpoints("cache.read:p=0.3,seed=5")
        b = parse_failpoints("cache.read:p=0.3,seed=5")
        seq_a = [a.fire("cache.read") for _ in range(50)]
        seq_b = [b.fire("cache.read") for _ in range(50)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)

    def test_p_sequence_depends_on_seed(self):
        a = parse_failpoints("cache.read:p=0.3,seed=5")
        b = parse_failpoints("cache.read:p=0.3,seed=6")
        assert ([a.fire("cache.read") for _ in range(50)]
                != [b.fire("cache.read") for _ in range(50)])

    def test_p_rate_is_roughly_p(self):
        registry = parse_failpoints("cache.read:p=0.2,seed=1")
        fired = sum(registry.fire("cache.read") for _ in range(2000))
        assert 300 <= fired <= 500  # 0.2 +/- generous tolerance

    def test_trip_raises_injected_fault_with_context(self):
        registry = parse_failpoints("cache.commit:nth=1")
        with pytest.raises(InjectedFault, match="cache.commit.*hit 1.*nep"):
            registry.trip("cache.commit", "nep")
        registry.trip("cache.commit")  # budget spent: no-op


class TestActivation:
    def test_install_exports_env(self, monkeypatch):
        install("cache.commit:nth=1")
        import os
        assert os.environ[FAILPOINTS_ENV] == "cache.commit:nth=1"
        assert active().enabled
        reset()
        assert FAILPOINTS_ENV not in os.environ
        assert not active().enabled

    def test_active_reparses_on_env_change(self, monkeypatch):
        monkeypatch.setenv(FAILPOINTS_ENV, "cache.commit:nth=1")
        assert active().rules["cache.commit"].nth == 1
        monkeypatch.setenv(FAILPOINTS_ENV, "cache.commit:nth=2")
        assert active().rules["cache.commit"].nth == 2

    def test_failpoint_helper_raises_when_armed(self):
        failpoint("series.render", "app-1")  # disabled: no-op
        install("series.render:nth=1")
        with pytest.raises(InjectedFault):
            failpoint("series.render", "app-1")

    def test_fire_helper_is_false_when_disabled(self):
        assert not fire("pool.kill_worker")
        install("pool.kill_worker:nth=1")
        assert fire("pool.kill_worker")
        assert not fire("pool.kill_worker")  # budget spent


class TestChaosProfiles:
    def test_all_profiles_parse(self):
        for name in CHAOS_PROFILES:
            assert parse_failpoints(chaos_spec(name)).enabled

    def test_profile_sites_are_instrumented(self):
        for name in CHAOS_PROFILES:
            for site in parse_failpoints(chaos_spec(name)).rules:
                assert site in SITES

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            chaos_spec("apocalypse")
