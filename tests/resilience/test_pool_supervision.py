"""Supervised-pool behaviour under injected chaos (repro.parallel).

The contract pinned here: recovery changes *when* work happens, never
*what* it produces.  Every retried/restarted run must yield bit-identical
blocks and a canonical journal equal to a clean run's, with the recovery
story told only through volatile events.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

import repro.parallel as parallel
from repro.config import Scenario
from repro.errors import InjectedFault, QuarantineError
from repro.obs import RunJournal, canonical_events
from repro.parallel import TaskFarm, run_series_jobs
from repro.perf import PerfRegistry
from repro.resilience import RetryPolicy, SupervisionConfig, install, reset
from repro.workload.apps import NEP_PROFILES
from repro.workload.series import NEP_RECIPE, SeriesJob

SCENARIO = Scenario.smoke_scale()

#: A patient watchdog with fast, bounded retries for chaos tests.
FAST_RETRY = SupervisionConfig(
    job_timeout_s=60.0, heartbeat_timeout_s=60.0,
    retry=RetryPolicy(max_attempts=3, backoff_s=0.01))


@pytest.fixture(autouse=True)
def _clean_registry():
    reset()
    yield
    reset()


def _jobs(count: int) -> list[SeriesJob]:
    return [SeriesJob(app_id=f"app-{i:03d}",
                      profile=NEP_PROFILES[i % len(NEP_PROFILES)],
                      vm_count=2 + i % 3)
            for i in range(count)]


def _rows(blocks):
    return [(b.app_id, b.cpu_rows.tobytes(), b.bw_rows.tobytes())
            for b in blocks]


def _run(jobs, n_jobs, supervision=FAST_RETRY):
    """One journaled run; returns (rows, journal, perf)."""
    journal = RunJournal(None)
    perf = PerfRegistry(journal=journal)
    blocks = list(run_series_jobs(jobs, SCENARIO, NEP_RECIPE, n_jobs=n_jobs,
                                  perf=perf, supervision=supervision))
    return _rows(blocks), journal, perf


class TestInjectedRenderFaults:
    def test_serial_retry_is_bit_identical_to_clean(self):
        jobs = _jobs(4)
        clean, clean_journal, _ = _run(jobs, 1)
        install("series.render:nth=1")
        chaotic, chaos_journal, perf = _run(jobs, 1)
        assert chaotic == clean
        retries = [e for e in chaos_journal.events
                   if e["type"] == "job_retry"]
        assert len(retries) == 1
        assert retries[0]["app_id"] == jobs[0].app_id
        assert "InjectedFault" in retries[0]["error"]
        # Only the accepted render counts: telemetry stays deterministic.
        assert perf.spans["series_render"].calls == len(jobs)
        assert canonical_events(chaos_journal.events) \
            == canonical_events(clean_journal.events)

    def test_pooled_retry_is_bit_identical_to_clean(self):
        jobs = _jobs(6)
        clean, clean_journal, _ = _run(jobs, 2)
        # Each forked worker inherits hit=0, so each fires at most once:
        # between 1 and 2 retries total, all absorbed by the budget.
        install("series.render:nth=1")
        chaotic, chaos_journal, perf = _run(jobs, 2)
        assert chaotic == clean
        retries = [e for e in chaos_journal.events
                   if e["type"] == "job_retry"]
        assert 1 <= len(retries) <= 2
        assert perf.spans["series_render"].calls == len(jobs)
        assert canonical_events(chaos_journal.events) \
            == canonical_events(clean_journal.events)

    def test_serial_quarantine_after_budget(self):
        install("series.render:nth=1,times=99")  # every attempt fails
        with pytest.raises(QuarantineError, match="app-000.*3 attempts"):
            _run(_jobs(3), 1)

    def test_pooled_quarantine_after_budget(self):
        install("series.render:nth=1,times=99")
        with pytest.raises(QuarantineError, match="failed after 3 attempts"):
            _run(_jobs(3), 2)

    def test_quarantine_event_precedes_the_raise(self):
        install("series.render:nth=1,times=99")
        journal = RunJournal(None)
        perf = PerfRegistry(journal=journal)
        with pytest.raises(QuarantineError):
            list(run_series_jobs(_jobs(2), SCENARIO, NEP_RECIPE, n_jobs=1,
                                 perf=perf, supervision=FAST_RETRY))
        quarantined = [e for e in journal.events
                       if e["type"] == "job_quarantined"]
        assert len(quarantined) == 1
        assert quarantined[0]["attempts"] == 3


class TestWorkerDeath:
    def test_killed_worker_restarts_and_output_is_identical(self):
        jobs = _jobs(6)
        clean, clean_journal, _ = _run(jobs, 2)
        install("pool.kill_worker:nth=2,times=1")
        chaotic, chaos_journal, _ = _run(jobs, 2)
        assert chaotic == clean
        restarts = [e for e in chaos_journal.events
                    if e["type"] == "worker_restart"]
        assert len(restarts) == 1
        assert "-9" in restarts[0]["reason"]  # SIGKILL exit code
        assert canonical_events(chaos_journal.events) \
            == canonical_events(clean_journal.events)


class TestWatchdog:
    def test_hung_job_killed_and_retried(self, tmp_path, monkeypatch):
        jobs = _jobs(4)
        clean, _, _ = _run(jobs, 2)
        flag = tmp_path / "hung-once"
        real = parallel._render_in_worker

        def hang_once(job):
            # Hangs the first attempt of the first job only: the flag
            # file is shared across forked workers, so the retry (and
            # every other job) renders normally.
            if job.app_id == jobs[0].app_id and not flag.exists():
                flag.write_text("hung")
                time.sleep(60)
            return real(job)

        monkeypatch.setattr(parallel, "_render_in_worker", hang_once)
        supervision = SupervisionConfig(
            job_timeout_s=0.75, heartbeat_timeout_s=60.0,
            retry=RetryPolicy(max_attempts=3, backoff_s=0.01))
        chaotic, journal, _ = _run(jobs, 2, supervision)
        assert chaotic == clean
        restarts = [e for e in journal.events
                    if e["type"] == "worker_restart"]
        assert [e["reason"] for e in restarts] == ["job timeout"]
        assert restarts[0]["app_id"] == jobs[0].app_id

    def test_wedged_worker_detected_by_stale_heartbeat(self, tmp_path,
                                                       monkeypatch):
        jobs = _jobs(4)
        clean, _, _ = _run(jobs, 2)
        flag = tmp_path / "wedged-once"
        real = parallel._render_in_worker

        def freeze_once(job):
            if job.app_id == jobs[0].app_id and not flag.exists():
                flag.write_text("frozen")
                # SIGSTOP freezes the whole process, heartbeat thread
                # included -- the job-timeout path cannot see it wedge,
                # only heartbeat staleness can.
                os.kill(os.getpid(), signal.SIGSTOP)
            return real(job)

        monkeypatch.setattr(parallel, "_render_in_worker", freeze_once)
        supervision = SupervisionConfig(
            job_timeout_s=60.0, heartbeat_timeout_s=1.0,
            retry=RetryPolicy(max_attempts=3, backoff_s=0.01))
        chaotic, journal, _ = _run(jobs, 2, supervision)
        assert chaotic == clean
        restarts = [e for e in journal.events
                    if e["type"] == "worker_restart"]
        assert restarts and restarts[0]["reason"] == "heartbeat stale"


def _flaky_once(flag_path: str) -> str:
    """Fails with an injected fault until its flag file exists.

    The flag lives on disk, so the retry (a fresh forked worker in
    pooled mode) sees the first attempt happened and succeeds.
    """
    from pathlib import Path

    flag = Path(flag_path)
    if not flag.exists():
        flag.write_text("tried")
        raise InjectedFault("first attempt fails")
    return "recovered"


def _farm_square(value: int) -> int:
    return value * value


class TestTaskFarmRetry:
    def test_serial_injected_fault_retried(self, tmp_path):
        journal = RunJournal(None)
        with TaskFarm(1, journal=journal) as farm:
            farm.submit("flaky", _flaky_once, str(tmp_path / "flag"))
            outcome = farm.next_outcome()
        assert outcome.ok and outcome.value == "recovered"
        retries = [e for e in journal.events if e["type"] == "job_retry"]
        assert len(retries) == 1 and retries[0]["task"] == "flaky"

    def test_pooled_injected_fault_retried(self, tmp_path):
        journal = RunJournal(None)
        with TaskFarm(2, journal=journal) as farm:
            farm.submit("flaky", _flaky_once, str(tmp_path / "flag"))
            farm.submit("plain", _farm_square, 4)
            outcomes = {}
            while farm.outstanding:
                outcome = farm.next_outcome()
                outcomes[outcome.task_id] = outcome
        assert outcomes["flaky"].ok
        assert outcomes["flaky"].value == "recovered"
        assert outcomes["plain"].value == 16
        assert any(e["type"] == "job_retry" for e in journal.events)

    def test_injected_worker_kill_retried_as_restart(self):
        install("farm.kill_worker:nth=1,times=1")
        journal = RunJournal(None)
        with TaskFarm(2, journal=journal) as farm:
            farm.submit("victim", _farm_square, 3)
            outcome = farm.next_outcome()
        assert outcome.ok and outcome.value == 9
        restarts = [e for e in journal.events
                    if e["type"] == "worker_restart"]
        assert len(restarts) == 1
        assert restarts[0]["task"] == "victim"

    def test_genuine_exception_not_retried(self):
        journal = RunJournal(None)
        with TaskFarm(1, journal=journal) as farm:
            farm.submit("boom", _raise_value_error, 1)
            outcome = farm.next_outcome()
        assert not outcome.ok
        assert not any(e["type"] == "job_retry" for e in journal.events)


def _raise_value_error(value: int) -> None:
    raise ValueError(f"genuine bug {value}")
