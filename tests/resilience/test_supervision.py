"""Tests for the watchdog configuration (repro.resilience.supervise)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.resilience import SupervisionConfig
from repro.resilience.supervise import (
    DEFAULT_HEARTBEAT_TIMEOUT_S,
    DEFAULT_JOB_TIMEOUT_S,
    HEARTBEAT_TIMEOUT_ENV,
    JOB_TIMEOUT_ENV,
    MAX_ATTEMPTS_ENV,
)


class TestDefaults:
    def test_stock_limits(self):
        config = SupervisionConfig()
        assert config.job_timeout_s == DEFAULT_JOB_TIMEOUT_S
        assert config.heartbeat_timeout_s == DEFAULT_HEARTBEAT_TIMEOUT_S
        assert config.retry.max_attempts == 3

    @pytest.mark.parametrize("kwargs", [
        {"job_timeout_s": 0.0},
        {"job_timeout_s": -5.0},
        {"heartbeat_timeout_s": -1.0},
    ])
    def test_non_positive_timeouts_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SupervisionConfig(**kwargs)

    def test_none_disables_a_check(self):
        config = SupervisionConfig(job_timeout_s=None,
                                   heartbeat_timeout_s=None)
        assert config.job_timeout_s is None
        assert config.heartbeat_timeout_s is None


class TestFromEnv:
    def test_no_env_gives_defaults(self, monkeypatch):
        for name in (JOB_TIMEOUT_ENV, HEARTBEAT_TIMEOUT_ENV,
                     MAX_ATTEMPTS_ENV):
            monkeypatch.delenv(name, raising=False)
        assert SupervisionConfig.from_env() == SupervisionConfig()

    def test_numeric_overrides(self, monkeypatch):
        monkeypatch.setenv(JOB_TIMEOUT_ENV, "12.5")
        monkeypatch.setenv(HEARTBEAT_TIMEOUT_ENV, "3")
        monkeypatch.setenv(MAX_ATTEMPTS_ENV, "5")
        config = SupervisionConfig.from_env()
        assert config.job_timeout_s == 12.5
        assert config.heartbeat_timeout_s == 3.0
        assert config.retry.max_attempts == 5

    @pytest.mark.parametrize("raw", ["off", "none", "0", "OFF"])
    def test_off_values_disable_the_watchdog(self, monkeypatch, raw):
        monkeypatch.setenv(JOB_TIMEOUT_ENV, raw)
        assert SupervisionConfig.from_env().job_timeout_s is None

    @pytest.mark.parametrize("name, raw", [
        (JOB_TIMEOUT_ENV, "soon"),
        (JOB_TIMEOUT_ENV, "-3"),
        (MAX_ATTEMPTS_ENV, "many"),
    ])
    def test_bad_overrides_rejected(self, monkeypatch, name, raw):
        monkeypatch.setenv(name, raw)
        with pytest.raises(ConfigurationError):
            SupervisionConfig.from_env()
