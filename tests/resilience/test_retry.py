"""Tests for the seeded bounded-retry loop (repro.resilience.retry)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, InjectedFault
from repro.resilience import RetryPolicy, call_with_retry


class TestRetryPolicy:
    def test_delay_is_deterministic_per_token_and_attempt(self):
        policy = RetryPolicy(backoff_s=0.1, factor=2.0, jitter=0.25)
        assert policy.delay("job-a", 1) == policy.delay("job-a", 1)
        assert policy.delay("job-a", 1) != policy.delay("job-b", 1)

    def test_delay_grows_exponentially_within_jitter(self):
        policy = RetryPolicy(backoff_s=0.1, factor=2.0, jitter=0.25)
        for attempt in (1, 2, 3):
            base = 0.1 * 2.0 ** (attempt - 1)
            delay = policy.delay("t", attempt)
            assert base <= delay <= base * 1.25

    def test_zero_jitter_is_exact_backoff(self):
        policy = RetryPolicy(backoff_s=0.5, factor=3.0, jitter=0.0)
        assert policy.delay("t", 2) == pytest.approx(1.5)

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"backoff_s": -1.0},
        {"factor": 0.5},
        {"jitter": -0.1},
    ])
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestCallWithRetry:
    def test_first_try_success_calls_once(self):
        calls = []
        result = call_with_retry(lambda: calls.append(1) or "ok",
                                 policy=RetryPolicy(), token="t")
        assert result == "ok" and len(calls) == 1

    def test_transient_failures_retried_until_success(self):
        attempts, slept, retries = [], [], []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise InjectedFault(f"boom {len(attempts)}")
            return "ok"

        result = call_with_retry(
            flaky, policy=RetryPolicy(max_attempts=3, backoff_s=0.01),
            token="t",
            on_retry=lambda a, d, e: retries.append((a, d, str(e))),
            sleep=slept.append)
        assert result == "ok"
        assert len(attempts) == 3
        assert [a for a, _, _ in retries] == [1, 2]
        assert slept == [d for _, d, _ in retries]

    def test_budget_exhaustion_reraises_last_error(self):
        def always():
            raise InjectedFault("persistent")

        with pytest.raises(InjectedFault, match="persistent"):
            call_with_retry(always,
                            policy=RetryPolicy(max_attempts=2,
                                               backoff_s=0.0),
                            token="t", sleep=lambda _s: None)

    def test_non_transient_error_propagates_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("programming error")

        with pytest.raises(ValueError):
            call_with_retry(broken, policy=RetryPolicy(max_attempts=5),
                            token="t", sleep=lambda _s: None)
        assert len(calls) == 1

    def test_oserror_is_transient_by_default(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) == 1:
                raise OSError(28, "No space left on device")
            return "ok"

        assert call_with_retry(flaky,
                               policy=RetryPolicy(backoff_s=0.0),
                               token="t", sleep=lambda _s: None) == "ok"
