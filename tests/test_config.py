"""Tests for scenario configuration and deterministic randomness."""

import numpy as np
import pytest

from repro.config import DEFAULT_SCENARIO, RandomState, Scenario
from repro.errors import ConfigurationError


class TestRandomState:
    def test_same_stream_name_same_draws(self):
        rs = RandomState(42)
        a = rs.stream("alpha").random(8)
        b = rs.stream("alpha").random(8)
        assert np.array_equal(a, b)

    def test_different_stream_names_differ(self):
        rs = RandomState(42)
        a = rs.stream("alpha").random(8)
        b = rs.stream("beta").random(8)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomState(1).stream("x").random(8)
        b = RandomState(2).stream("x").random(8)
        assert not np.array_equal(a, b)

    def test_child_is_deterministic(self):
        a = RandomState(7).child("c").stream("s").random(4)
        b = RandomState(7).child("c").stream("s").random(4)
        assert np.array_equal(a, b)

    def test_child_differs_from_parent(self):
        parent = RandomState(7)
        child = parent.child("c")
        assert child.seed != parent.seed

    def test_empty_stream_name_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomState(1).stream("")

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomState(-1)


class TestScenario:
    def test_default_is_valid(self):
        assert DEFAULT_SCENARIO.nep_site_count > 500

    def test_trace_minutes(self):
        sc = Scenario(trace_days=2)
        assert sc.trace_minutes == 2 * 24 * 60

    def test_with_overrides_returns_new_instance(self):
        sc = Scenario().with_overrides(trace_days=3)
        assert sc.trace_days == 3
        assert DEFAULT_SCENARIO.trace_days != 3 or True  # original untouched
        assert Scenario().trace_days == 28

    def test_rejects_non_positive_fields(self):
        with pytest.raises(ConfigurationError):
            Scenario(trace_days=0)
        with pytest.raises(ConfigurationError):
            Scenario(participant_count=-5)

    def test_rejects_inverted_server_range(self):
        with pytest.raises(ConfigurationError):
            Scenario(nep_servers_per_site_min=50, nep_servers_per_site_max=10)

    def test_rejects_misaligned_prediction_window(self):
        with pytest.raises(ConfigurationError):
            Scenario(cpu_interval_minutes=7, prediction_window_minutes=30)

    def test_paper_scale_matches_paper(self):
        sc = Scenario.paper_scale()
        assert sc.trace_days == 92          # 3 months
        assert sc.cpu_interval_minutes == 1  # 1-minute readings

    def test_smoke_scale_is_smaller(self):
        smoke, full = Scenario.smoke_scale(), Scenario()
        assert smoke.nep_vm_count < full.nep_vm_count
        assert smoke.trace_days < full.trace_days

    def test_city_scale_is_the_big_tier(self):
        city, paper = Scenario.city_scale(), Scenario.paper_scale()
        assert city.nep_vm_count == 1_000_000
        assert city.azure_vm_count == 1_000_000
        assert city.nep_site_count == 4000
        assert city.trace_days == 92
        assert city.cpu_interval_minutes == 1
        assert city.nep_vm_count > paper.nep_vm_count

    def test_city_scale_accepts_overrides(self):
        shrunk = Scenario.city_scale().with_overrides(
            nep_vm_count=400, azure_vm_count=400, nep_site_count=60,
            seed=5)
        assert shrunk.seed == 5
        assert shrunk.nep_vm_count == 400
        assert shrunk.trace_days == 92  # keeps the tier's resolution

    def test_random_property_reproducible(self):
        sc = Scenario(seed=99)
        a = sc.random.stream("s").random(4)
        b = sc.random.stream("s").random(4)
        assert np.array_equal(a, b)

    def test_scenario_is_frozen(self):
        with pytest.raises(AttributeError):
            Scenario().trace_days = 10  # type: ignore[misc]
