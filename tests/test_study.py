"""Tests for the EdgeStudy facade and its caching behaviour."""

from repro import EdgeStudy, Scenario, smoke_study
from repro.errors import ReproError


class TestFacade:
    def test_components_are_cached(self, study):
        assert study.nep is study.nep
        assert study.per_user is study.per_user
        assert study.qoe_testbed is study.qoe_testbed

    def test_smoke_study_is_module_cached(self):
        assert smoke_study() is smoke_study()

    def test_distinct_seeds_distinct_studies(self):
        assert smoke_study(1) is not smoke_study(2)

    def test_platforms_have_expected_kinds(self, study):
        assert study.nep.platform.is_edge
        assert not study.alicloud.is_edge
        assert not study.azure.platform.is_edge

    def test_vcloud_regions_match_alicloud(self, study):
        assert len(study.vcloud_regions) == len(study.alicloud.sites)

    def test_billing_engines_named(self, study):
        assert study.nep_billing.provider == "NEP"
        assert study.vcloud1.provider == "vCloud-1"
        assert study.vcloud2.provider == "vCloud-2"

    def test_lazy_construction(self):
        # Creating a study is instant; nothing is built until accessed.
        study = EdgeStudy(Scenario.smoke_scale().with_overrides(seed=404))
        assert "nep" not in study.__dict__
        assert "campaign" not in study.__dict__


class TestErrorHierarchy:
    def test_all_library_errors_share_a_base(self):
        from repro import errors

        subclasses = [
            errors.ConfigurationError, errors.GeoError,
            errors.TopologyError, errors.CapacityError,
            errors.PlacementError, errors.SchedulingError,
            errors.TraceError, errors.MeasurementError,
            errors.PredictionError, errors.BillingError,
        ]
        for cls in subclasses:
            assert issubclass(cls, ReproError)

    def test_placement_error_is_capacity_error(self):
        from repro.errors import CapacityError, PlacementError

        assert issubclass(PlacementError, CapacityError)

    def test_catching_base_catches_all(self):
        from repro.errors import BillingError

        try:
            raise BillingError("x")
        except ReproError:
            caught = True
        assert caught
