"""Tests for the EdgeStudy facade and its caching behaviour."""

import pytest

from repro import EdgeStudy, Scenario, smoke_study, study_for
from repro.errors import ConfigurationError, ReproError


class TestFacade:
    def test_components_are_cached(self, study):
        assert study.nep is study.nep
        assert study.per_user is study.per_user
        assert study.qoe_testbed is study.qoe_testbed

    def test_smoke_study_is_module_cached(self):
        assert smoke_study() is smoke_study()

    def test_distinct_seeds_distinct_studies(self):
        assert smoke_study(1) is not smoke_study(2)

    def test_platforms_have_expected_kinds(self, study):
        assert study.nep.platform.is_edge
        assert not study.alicloud.is_edge
        assert not study.azure.platform.is_edge

    def test_vcloud_regions_match_alicloud(self, study):
        assert len(study.vcloud_regions) == len(study.alicloud.sites)

    def test_billing_engines_named(self, study):
        assert study.nep_billing.provider == "NEP"
        assert study.vcloud1.provider == "vCloud-1"
        assert study.vcloud2.provider == "vCloud-2"

    def test_lazy_construction(self):
        # Creating a study is instant; nothing is built until accessed.
        study = EdgeStudy(Scenario.smoke_scale().with_overrides(seed=404))
        assert "nep" not in study.__dict__
        assert "campaign" not in study.__dict__

    def test_jobs_and_cache_dir_are_part_of_study_key(self, tmp_path):
        assert study_for("smoke") is not study_for("smoke", jobs=2)
        assert study_for("smoke", jobs=2) is study_for("smoke", jobs=2)
        assert study_for("smoke") is not study_for(
            "smoke", cache_dir=str(tmp_path))

    def test_warm_study_serves_phases_from_cache(self, tmp_path):
        from repro import ArtifactCache

        cache = ArtifactCache(tmp_path)
        scenario = Scenario.smoke_scale().with_overrides(seed=505)
        cold = EdgeStudy(scenario, cache=cache)
        cold.nep, cold.latency_results
        assert "cache_hit:workload_nep" not in cold.perf.counters
        warm = EdgeStudy(scenario, cache=cache)
        warm.nep, warm.latency_results
        assert warm.perf.counters["cache_hit:workload_nep"] == 1
        assert warm.perf.counters["cache_hit:campaign_latency"] == 1
        # Served from cache: the warm run renders no series at all.
        assert "series_render" not in warm.perf.spans

    def test_streamed_study_populates_sharded_cache(self, tmp_path):
        from repro import ArtifactCache

        cache = ArtifactCache(tmp_path)
        scenario = Scenario.smoke_scale().with_overrides(seed=606)
        cold = EdgeStudy(scenario, cache=cache, streaming="on")
        cold.nep
        entry = next(e for e in cache.entries()
                     if e.artifact == "workload_nep")
        assert entry.kind == "workload-shards"
        assert entry.shards > 0
        warm = EdgeStudy(scenario, cache=cache, streaming="on")
        warm.nep
        assert warm.perf.counters["cache_hit:workload_nep"] == 1
        assert "series_render" not in warm.perf.spans

    def test_streaming_is_part_of_study_key(self):
        assert (study_for("smoke", streaming="on")
                is not study_for("smoke"))
        assert (study_for("smoke", streaming="on")
                is study_for("smoke", streaming="on"))


class TestCityTier:
    def test_scenario_for_city(self):
        from repro.study import SCALES, scenario_for

        assert "city" in SCALES
        city = scenario_for("city", seed=3)
        assert city.seed == 3
        assert city.nep_vm_count == 1_000_000
        assert city.trace_days == 92

    def test_city_studies_stream_automatically(self):
        from repro.study import scenario_for
        from repro.workload.streaming import resolve_streaming

        assert resolve_streaming("auto", scenario_for("city")) is True
        assert EdgeStudy(scenario_for("smoke")).streaming is False

    def test_unknown_scale_rejected(self):
        from repro.study import scenario_for

        with pytest.raises(ConfigurationError):
            scenario_for("continental")


class TestFaultWiring:
    def test_faults_off_by_default(self, study):
        assert study.scenario.fault_profile == "off"
        assert study.faults is None

    def test_fault_phases_refuse_when_off(self, study):
        with pytest.raises(ConfigurationError):
            study.failover
        with pytest.raises(ConfigurationError):
            study.availability

    def test_faulty_study_builds_schedule(self, faulty_study):
        schedule = faulty_study.faults
        assert schedule is not None
        assert schedule.profile_name == "paper"
        assert faulty_study.faults is schedule  # cached

    def test_fault_profile_is_part_of_cache_key(self):
        assert study_for("smoke") is not study_for("smoke", faults="paper")
        assert study_for("smoke", faults="paper") is \
            study_for("smoke", faults="paper")
        assert study_for("smoke", faults="off") is study_for("smoke")

    def test_unknown_fault_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            study_for("smoke", faults="storm")


class TestPhaseLedger:
    def test_ok_phase_recorded(self, study):
        study.nep  # force the phase
        status = study.phases.status("workload_nep")
        assert status is not None and status.ok
        assert status.wall_s >= 0.0

    def test_failed_phase_recorded_with_error(self, study):
        with pytest.raises(ConfigurationError):
            study.availability
        status = study.phases.status("availability")
        assert status is not None and not status.ok
        assert "ConfigurationError" in status.error
        assert "availability" in study.phases.report()

    def test_try_phase_degrades_gracefully(self, study):
        # A failing phase returns None; a working one still computes.
        assert study.try_phase("failover") is None
        assert study.try_phase("nep") is study.nep

    def test_ledger_report_lists_phases(self, study):
        study.nep
        report = study.phases.report()
        assert "workload_nep" in report and "ok" in report


class TestErrorHierarchy:
    def test_all_library_errors_share_a_base(self):
        from repro import errors

        subclasses = [
            errors.ConfigurationError, errors.GeoError,
            errors.TopologyError, errors.CapacityError,
            errors.PlacementError, errors.SchedulingError,
            errors.TraceError, errors.MeasurementError,
            errors.PredictionError, errors.BillingError,
            errors.FaultError,
        ]
        for cls in subclasses:
            assert issubclass(cls, ReproError)

    def test_placement_error_is_capacity_error(self):
        from repro.errors import CapacityError, PlacementError

        assert issubclass(PlacementError, CapacityError)

    def test_catching_base_catches_all(self):
        from repro.errors import BillingError

        try:
            raise BillingError("x")
        except ReproError:
            caught = True
        assert caught


class TestResume:
    """Phase-level resume: committed cache entries are the checkpoints."""

    def _cached_study(self, tmp_path, **kwargs):
        from repro import ArtifactCache

        cache = ArtifactCache(tmp_path / "cache")
        scenario = Scenario.smoke_scale().with_overrides(seed=606)
        return EdgeStudy(scenario, cache=cache, **kwargs), cache

    def test_resume_without_cache_is_rejected(self):
        with pytest.raises(ConfigurationError, match="cache"):
            EdgeStudy(Scenario.smoke_scale(), resume=True)

    def test_resume_status_without_cache_is_rejected(self):
        with pytest.raises(ConfigurationError, match="cache"):
            EdgeStudy(Scenario.smoke_scale()).resume_status()

    def test_resume_status_tracks_committed_phases(self, tmp_path):
        from repro.study import RESUMABLE_PHASES

        study, cache = self._cached_study(tmp_path)
        status = study.resume_status()
        assert status["cached"] == []
        assert status["pending"] == list(RESUMABLE_PHASES)
        study.nep  # commits workload_nep
        status = study.resume_status()
        assert status["cached"] == ["workload_nep"]
        assert "workload_nep" not in status["pending"]
        study.latency_results  # commits campaign_latency
        status = study.resume_status()
        assert "campaign_latency" in status["cached"]
        assert "campaign_throughput" in status["pending"]

    def test_resumed_study_skips_committed_phases(self, tmp_path):
        crashed, cache = self._cached_study(tmp_path)
        crashed.nep  # the "crash" happens after this phase committed
        resumed = EdgeStudy(crashed.scenario, cache=cache, resume=True)
        resumed.nep, resumed.latency_results
        assert resumed.perf.counters["cache_hit:workload_nep"] == 1
        assert "cache_hit:campaign_latency" not in resumed.perf.counters

    def test_resume_event_journaled_and_volatile(self, tmp_path):
        from repro.obs import RunJournal, canonical_events

        study, cache = self._cached_study(tmp_path)
        study.nep
        journal = RunJournal(None)
        EdgeStudy(study.scenario, cache=cache, journal=journal, resume=True)
        resumes = [e for e in journal.events if e["type"] == "resume"]
        assert len(resumes) == 1
        assert resumes[0]["cached"] == ["workload_nep"]
        assert "workload_azure" in resumes[0]["pending"]
        # Volatile: a resumed run canonicalizes equal to a clean one.
        assert canonical_events(resumes) == []


class TestLivePhase:
    def test_live_is_resumable(self):
        from repro.study import RESUMABLE_PHASES

        assert "live" in RESUMABLE_PHASES

    def test_cache_roundtrip_preserves_digest(self, tmp_path):
        from repro import ArtifactCache

        cache = ArtifactCache(tmp_path)
        scenario = Scenario.smoke_scale().with_overrides(seed=808)
        cold = EdgeStudy(scenario, cache=cache)
        digest = cold.live.digest
        assert "cache_hit:live" not in cold.perf.counters
        warm = EdgeStudy(scenario, cache=cache)
        assert warm.live.digest == digest
        assert warm.perf.counters["cache_hit:live"] == 1

    def test_report_renders(self, study):
        from repro.reports import REPORTS

        text = REPORTS["live"](study)
        assert "Live platform run" in text
        assert "digest:" in text
