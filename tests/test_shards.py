"""Tests for the sharded on-disk series store (repro.shards).

The sharded store is the city-tier backbone: every byte the streaming
sink writes comes back through these maps, so the read path must both
round-trip bit-identically and refuse every plausible corruption —
truncated shards, missing shards, dtype/shape drift, and entries left
behind by a process killed mid-write.
"""

from __future__ import annotations

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.cache import ArtifactCache
from repro.config import Scenario
from repro.errors import TraceError
from repro.shards import (
    DEFAULT_SHARD_ROWS,
    ShardedSeriesMap,
    ShardLayout,
    ShardWriter,
    load_sharded_series,
    read_shard_index,
    shard_path,
    write_shard_index,
)

SCENARIO = Scenario.smoke_scale()


def _write_store(root, rows=10, points=16, shard_rows=4, kind="cpu"):
    """A small deterministic store: returns (order, full_matrix)."""
    rng = np.random.default_rng(99)
    data = rng.random((rows, points)).astype(np.float32)
    writer = ShardWriter(root, kind, points, shard_rows=shard_rows)
    # Append in uneven blocks to exercise the buffer split logic.
    writer.append(data[:3])
    writer.append(data[3:3])  # empty block is a no-op
    writer.append(data[3:])
    layout = writer.finalize()
    write_shard_index(root, [layout])
    order = [f"vm{i:04d}" for i in range(rows)]
    return order, data


class TestShardWriter:
    def test_layout_and_files(self, tmp_path):
        _write_store(tmp_path, rows=10, shard_rows=4)
        layout = read_shard_index(tmp_path)["cpu"]
        assert layout == ShardLayout(kind="cpu", rows=10, points=16,
                                     shard_rows=4,
                                     checksums=layout.checksums)
        assert layout.n_shards == 3
        assert layout.shard_extent(2) == (8, 10)
        # One payload checksum per shard survives the index round-trip.
        assert len(layout.checksums) == 3
        assert all(len(c) == 64 for c in layout.checksums)
        for shard in range(3):
            assert shard_path(tmp_path, "cpu", shard).exists()

    def test_flush_hook_sees_every_shard(self, tmp_path):
        flushed = []
        writer = ShardWriter(tmp_path, "cpu", 8, shard_rows=4,
                             on_flush=lambda *a: flushed.append(a))
        writer.append(np.zeros((10, 8), dtype=np.float32))
        writer.finalize()
        assert [(s, r) for s, r, _ in flushed] == [(0, 4), (1, 4), (2, 2)]
        assert all(nbytes == r * 8 * 4 for _, r, nbytes in flushed)

    def test_append_after_finalize_rejected(self, tmp_path):
        writer = ShardWriter(tmp_path, "cpu", 8)
        writer.finalize()
        with pytest.raises(TraceError):
            writer.append(np.zeros((1, 8), dtype=np.float32))

    def test_wrong_width_rejected(self, tmp_path):
        writer = ShardWriter(tmp_path, "cpu", 8)
        with pytest.raises(TraceError):
            writer.append(np.zeros((2, 9), dtype=np.float32))

    def test_bad_geometry_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            ShardWriter(tmp_path, "cpu", 0)
        with pytest.raises(TraceError):
            ShardWriter(tmp_path, "cpu", 8, shard_rows=0)


class TestShardedSeriesMap:
    def test_round_trip_bit_identical(self, tmp_path):
        order, data = _write_store(tmp_path)
        series = load_sharded_series(tmp_path, {"cpu": order})["cpu"]
        assert list(series) == order
        assert len(series) == len(order)
        for i, vm_id in enumerate(order):
            assert vm_id in series
            assert np.array_equal(series[vm_id], data[i])

    def test_rows_are_mmap_views(self, tmp_path):
        order, _ = _write_store(tmp_path)
        series = load_sharded_series(tmp_path, {"cpu": order})["cpu"]
        row = series[order[0]]
        assert isinstance(row.base, np.memmap) or isinstance(row, np.memmap)

    def test_iter_windows_covers_in_order(self, tmp_path):
        order, data = _write_store(tmp_path, rows=10, shard_rows=4)
        series = load_sharded_series(tmp_path, {"cpu": order})["cpu"]
        seen_ids, seen_rows = [], []
        for vm_ids, window in series.iter_windows(rows=3):
            # Windows are bounded and never cross a shard boundary.
            assert window.shape[0] <= 3
            seen_ids.extend(vm_ids)
            seen_rows.append(np.asarray(window))
        assert seen_ids == order
        assert np.array_equal(np.concatenate(seen_rows), data)

    def test_window_rows_must_be_positive(self, tmp_path):
        order, _ = _write_store(tmp_path)
        series = load_sharded_series(tmp_path, {"cpu": order})["cpu"]
        with pytest.raises(TraceError):
            list(series.iter_windows(rows=0))

    def test_order_length_must_match_rows(self, tmp_path):
        order, _ = _write_store(tmp_path)
        with pytest.raises(TraceError):
            load_sharded_series(tmp_path, {"cpu": order[:-1]})

    def test_index_kinds_must_match_orders(self, tmp_path):
        order, _ = _write_store(tmp_path)
        with pytest.raises(TraceError):
            load_sharded_series(tmp_path, {"cpu": order, "bw": order})


class TestCorruptionDetection:
    """The verification quartet: every broken store is a TraceError."""

    def test_truncated_shard(self, tmp_path):
        order, _ = _write_store(tmp_path)
        victim = shard_path(tmp_path, "cpu", 1)
        payload = victim.read_bytes()
        victim.write_bytes(payload[:len(payload) - 7])
        with pytest.raises(TraceError, match="truncated|bytes"):
            load_sharded_series(tmp_path, {"cpu": order})

    def test_missing_shard(self, tmp_path):
        order, _ = _write_store(tmp_path)
        shard_path(tmp_path, "cpu", 2).unlink()
        with pytest.raises(TraceError, match="missing shard"):
            load_sharded_series(tmp_path, {"cpu": order})

    def test_dtype_mismatch(self, tmp_path):
        order, _ = _write_store(tmp_path)
        np.save(shard_path(tmp_path, "cpu", 0),
                np.zeros((4, 16), dtype=np.float64))
        with pytest.raises(TraceError, match="dtype"):
            load_sharded_series(tmp_path, {"cpu": order})

    def test_shape_header_mismatch(self, tmp_path):
        order, _ = _write_store(tmp_path)
        np.save(shard_path(tmp_path, "cpu", 0),
                np.zeros((5, 16), dtype=np.float32))
        with pytest.raises(TraceError, match="shape"):
            load_sharded_series(tmp_path, {"cpu": order})

    def test_missing_index(self, tmp_path):
        with pytest.raises(TraceError, match="no shard index"):
            read_shard_index(tmp_path)

    def test_malformed_index(self, tmp_path):
        (tmp_path / "shards.json").write_text('{"series": {"cpu": {}}}')
        with pytest.raises(TraceError, match="malformed"):
            read_shard_index(tmp_path)

    def test_verify_can_be_deferred(self, tmp_path):
        order, _ = _write_store(tmp_path)
        layout = read_shard_index(tmp_path)["cpu"]
        shard_path(tmp_path, "cpu", 2).unlink()
        series = ShardedSeriesMap(tmp_path, layout, order, verify=False)
        with pytest.raises(TraceError):
            series.verify()


def _stream_bomb(root: str) -> None:
    """SIGKILL this process while a sharded cache entry is mid-write."""
    from repro.workload.streaming import WorkloadSink

    cache = ArtifactCache(root)
    sink = WorkloadSink.for_cache(cache, "workload_nep", SCENARIO,
                                  shard_rows=2)
    sink.begin(cpu_points=16, bw_points=16, private=False)
    block = type("B", (), {})()
    block.app_id = "bomb"
    block.cpu_rows = np.full((3, 16), 0.5, dtype=np.float32)
    block.bw_rows = np.ones((3, 16), dtype=np.float32)
    block.private_rows = None
    sink.consume(["vm0", "vm1", "vm2"], block)  # flushes shard 0
    os.kill(os.getpid(), signal.SIGKILL)


class TestCrashMidShardWrite:
    def test_kill_leaves_no_loadable_entry(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        proc = multiprocessing.get_context("fork").Process(
            target=_stream_bomb, args=(str(cache.root),))
        proc.start()
        proc.join(timeout=60)
        assert proc.exitcode == -signal.SIGKILL
        # The half-written sharded store never left staging: a miss,
        # zero complete entries, and `clear` sweeps the staging debris.
        assert cache.get_workload("workload_nep", SCENARIO) is None
        assert cache.entries() == []
        staging = list(cache.root.glob(".tmp-*"))
        assert staging, "expected the partial stream to leave a staging dir"
        assert any(p.name.startswith("shard-")
                   for s in staging for p in s.rglob("*.npy"))
        cache.clear()
        assert not list(cache.root.glob(".tmp-*"))


class TestShardedCacheEntries:
    def test_entries_report_shard_counts(self, tmp_path):
        from repro.workload.generator import generate_nep_workload
        from repro.workload.streaming import WorkloadSink

        cache = ArtifactCache(tmp_path / "cache")
        sink = WorkloadSink.for_cache(cache, "workload_nep", SCENARIO,
                                      shard_rows=8)
        generate_nep_workload(SCENARIO, sink=sink)
        entry = cache.entries()[0]
        assert entry.kind == "workload-shards"
        assert entry.shards > 0
        on_disk = sum(1 for _ in entry.path.rglob("shard-*.npy"))
        assert entry.shards == on_disk
        info = cache.info()
        assert info["sharded_entries"] == 1
        assert info["shard_files"] == entry.shards
        assert info["bytes"] == entry.bytes > 0

    def test_corrupt_shard_evicts_entry(self, tmp_path):
        from repro.workload.generator import generate_nep_workload
        from repro.workload.streaming import WorkloadSink

        cache = ArtifactCache(tmp_path / "cache")
        sink = WorkloadSink.for_cache(cache, "workload_nep", SCENARIO,
                                      shard_rows=8)
        generate_nep_workload(SCENARIO, sink=sink)
        entry = cache.entries()[0]
        victim = next(iter(entry.path.rglob("shard-00000.npy")))
        payload = victim.read_bytes()
        victim.write_bytes(payload[:len(payload) // 2])
        assert cache.get_workload("workload_nep", SCENARIO) is None
        assert cache.entries() == []
