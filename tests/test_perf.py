"""Tests for the perf telemetry registry."""

import time

from repro.perf import PerfRegistry


class TestSpans:
    def test_span_records_time_and_calls(self):
        perf = PerfRegistry()
        with perf.span("work"):
            time.sleep(0.01)
        stats = perf.spans["work"]
        assert stats.calls == 1
        assert stats.wall_s >= 0.01
        assert stats.cpu_s >= 0.0

    def test_spans_accumulate(self):
        perf = PerfRegistry()
        for _ in range(3):
            with perf.span("phase"):
                pass
        assert perf.spans["phase"].calls == 3

    def test_span_survives_exceptions(self):
        perf = PerfRegistry()
        try:
            with perf.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert perf.spans["boom"].calls == 1

    def test_wall_s_of_unknown_span_is_zero(self):
        assert PerfRegistry().wall_s("never-ran") == 0.0


class TestCountersAndViews:
    def test_counters_accumulate(self):
        perf = PerfRegistry()
        perf.count("vms", 5)
        perf.count("vms", 2)
        assert perf.counters == {"vms": 7}

    def test_as_dict_round_trips(self):
        perf = PerfRegistry()
        with perf.span("a"):
            pass
        perf.count("n", 1)
        data = perf.as_dict()
        assert set(data) == {"spans", "counters"}
        assert data["spans"]["a"]["calls"] == 1
        assert data["counters"] == {"n": 1}

    def test_report_lists_phases(self):
        perf = PerfRegistry()
        with perf.span("alpha"):
            pass
        perf.count("widgets", 3)
        report = perf.report()
        assert "alpha" in report
        assert "widgets" in report

    def test_empty_report(self):
        assert "no spans" in PerfRegistry().report()

    def test_reset(self):
        perf = PerfRegistry()
        with perf.span("a"):
            pass
        perf.reset()
        assert perf.spans == {}
        assert perf.counters == {}


class TestStudyIntegration:
    def test_study_phases_recorded(self, study, latency_results):
        # The session study has at least built NEP and run the campaign.
        assert study.perf.wall_s("workload_nep") > 0
        assert study.perf.wall_s("campaign_latency") > 0
        assert study.perf.counters["latency_observations"] == len(
            latency_results.latency)
