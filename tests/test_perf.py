"""Tests for the perf telemetry registry."""

import pickle
import time

from repro.perf import PerfRegistry, SpanStats


class TestSpans:
    def test_span_records_time_and_calls(self):
        perf = PerfRegistry()
        with perf.span("work"):
            time.sleep(0.01)
        stats = perf.spans["work"]
        assert stats.calls == 1
        assert stats.wall_s >= 0.01
        assert stats.cpu_s >= 0.0

    def test_spans_accumulate(self):
        perf = PerfRegistry()
        for _ in range(3):
            with perf.span("phase"):
                pass
        assert perf.spans["phase"].calls == 3

    def test_span_survives_exceptions(self):
        perf = PerfRegistry()
        try:
            with perf.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert perf.spans["boom"].calls == 1

    def test_wall_s_of_unknown_span_is_zero(self):
        assert PerfRegistry().wall_s("never-ran") == 0.0


class TestCountersAndViews:
    def test_counters_accumulate(self):
        perf = PerfRegistry()
        perf.count("vms", 5)
        perf.count("vms", 2)
        assert perf.counters == {"vms": 7}

    def test_as_dict_round_trips(self):
        perf = PerfRegistry()
        with perf.span("a"):
            pass
        perf.count("n", 1)
        data = perf.as_dict()
        assert set(data) == {"spans", "counters"}
        assert data["spans"]["a"]["calls"] == 1
        assert data["counters"] == {"n": 1}

    def test_report_lists_phases(self):
        perf = PerfRegistry()
        with perf.span("alpha"):
            pass
        perf.count("widgets", 3)
        report = perf.report()
        assert "alpha" in report
        assert "widgets" in report

    def test_empty_report(self):
        assert "no spans" in PerfRegistry().report()

    def test_reset(self):
        perf = PerfRegistry()
        with perf.span("a"):
            pass
        perf.reset()
        assert perf.spans == {}
        assert perf.counters == {}


class TestMerge:
    def test_span_stats_merge_sums(self):
        a = SpanStats(wall_s=1.0, cpu_s=0.5, calls=2)
        a.merge(SpanStats(wall_s=0.25, cpu_s=0.25, calls=1))
        assert (a.wall_s, a.cpu_s, a.calls) == (1.25, 0.75, 3)

    def test_registry_merge_sums_spans_and_counters(self):
        parent, worker = PerfRegistry(), PerfRegistry()
        with parent.span("shared"):
            pass
        with worker.span("shared"):
            pass
        with worker.span("worker-only"):
            pass
        parent.count("vms", 3)
        worker.count("vms", 4)
        worker.count("chunks", 1)
        parent.merge(worker)
        assert parent.spans["shared"].calls == 2
        assert parent.spans["worker-only"].calls == 1
        assert parent.counters == {"vms": 7, "chunks": 1}

    def test_merge_empty_is_noop(self):
        parent = PerfRegistry()
        with parent.span("a"):
            pass
        before = parent.as_dict()
        parent.merge(PerfRegistry())
        assert parent.as_dict() == before

    def test_registry_survives_pickle_round_trip(self):
        # Worker processes ship their registries back through pickle.
        worker = PerfRegistry()
        with worker.span("series_render"):
            pass
        worker.count("series_vms", 256)
        clone = pickle.loads(pickle.dumps(worker))
        assert clone.spans["series_render"].calls == 1
        assert clone.counters == {"series_vms": 256}
        parent = PerfRegistry()
        parent.merge(clone)
        assert parent.counters["series_vms"] == 256


class TestStudyIntegration:
    def test_study_phases_recorded(self, study, latency_results):
        # The session study has at least built NEP and run the campaign.
        assert study.perf.wall_s("workload_nep") > 0
        assert study.perf.wall_s("campaign_latency") > 0
        assert study.perf.counters["latency_observations"] == len(
            latency_results.latency)
