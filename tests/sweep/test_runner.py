"""Tests for the sweep executor (repro.sweep.runner)."""

from __future__ import annotations

import json

import pytest

import repro.sweep.runner as runner_mod
from repro.errors import ConfigurationError, TraceError
from repro.obs import phase_breakdown, read_journal
from repro.sweep import (load_manifest, parse_sweep_spec, run_sweep,
                         workload_group_token)


def _tiny_spec(**cell_kwargs):
    cells = [{"name": "a", "analyses": ["fig8"]},
             {"name": "b", "analyses": ["fig8"], **cell_kwargs}]
    return parse_sweep_spec({"name": "tiny", "cells": cells})


class TestGroupToken:
    def test_fault_profile_shares_a_group(self):
        spec = _tiny_spec(faults="paper")
        assert (workload_group_token(spec.cell("a"))
                == workload_group_token(spec.cell("b")))

    def test_seed_splits_groups(self):
        spec = _tiny_spec(seed=7)
        assert (workload_group_token(spec.cell("a"))
                != workload_group_token(spec.cell("b")))

    def test_override_splits_groups(self):
        spec = _tiny_spec(overrides={"nep_site_count": 9})
        assert (workload_group_token(spec.cell("a"))
                != workload_group_token(spec.cell("b")))


class TestRunSweep:
    def test_every_cell_ok(self, finished_sweep):
        _, result = finished_sweep
        assert result.ok
        assert {c.status for c in result.cells} == {"ok"}
        assert result.failed == ()

    def test_output_layout(self, finished_sweep):
        _, result = finished_sweep
        out = result.out_dir
        assert (out / "spec.json").exists()
        assert (out / "sweep.json").exists()
        assert (out / "sweep.jsonl").exists()
        for name in ("base", "faulty", "reseed"):
            assert (out / "cells" / name / "result.json").exists()
            assert (out / "cells" / name / "journal.jsonl").exists()

    def test_grouping_in_outcomes(self, finished_sweep):
        _, result = finished_sweep
        groups = {c.name: c.group for c in result.cells}
        assert groups["base"] == groups["faulty"]
        assert groups["base"] != groups["reseed"]

    def test_follower_served_from_shared_cache(self, finished_sweep):
        _, result = finished_sweep
        cells = result.out_dir / "cells"
        leader, _ = read_journal(cells / "base" / "journal.jsonl")
        follower, _ = read_journal(cells / "faulty" / "journal.jsonl")
        assert not phase_breakdown(leader)["workload_nep"]["cached"]
        assert phase_breakdown(follower)["workload_nep"]["cached"]

    def test_cell_results_carry_analyses(self, finished_sweep):
        _, result = finished_sweep
        payload = json.loads(
            (result.out_dir / "cells" / "base" / "result.json").read_text())
        names = [a["name"] for a in payload["analyses"]]
        assert names == ["fig8", "ablation_growth"]
        assert payload["checks_ok"] == payload["checks_total"] > 0

    def test_manifest_matches_result(self, finished_sweep):
        _, result = finished_sweep
        manifest = load_manifest(result.out_dir)
        assert manifest["sweep"] == "unit"
        assert manifest["ok"] is True
        assert [c["name"] for c in manifest["cells"]] == [
            "base", "faulty", "reseed"]

    def test_sweep_journal_merges_cells_in_spec_order(self, finished_sweep):
        _, result = finished_sweep
        events, _ = read_journal(result.out_dir / "sweep.jsonl")
        types = [e["type"] for e in events]
        assert "sweep_start" in types
        starts = [e["cell"] for e in events if e["type"] == "cell_start"]
        assert starts == ["base", "faulty", "reseed"]
        ends = [e for e in events if e["type"] == "cell_end"]
        assert all(e["status"] == "ok" for e in ends)
        assert any(e["type"] == "cell_phase" for e in events)

    def test_rerun_is_a_resume_noop(self, finished_sweep):
        spec, result = finished_sweep
        before = {
            name: (result.out_dir / "cells" / name
                   / "journal.jsonl").read_bytes()
            for name in ("base", "faulty", "reseed")
        }
        again = run_sweep(spec, result.out_dir, cache_dir=None, jobs=1)
        assert again.ok
        assert again.resumed == len(again.cells) == 3
        for name, blob in before.items():
            assert (result.out_dir / "cells" / name
                    / "journal.jsonl").read_bytes() == blob

    def test_different_spec_in_same_out_dir_rejected(self, finished_sweep):
        _, result = finished_sweep
        other = _tiny_spec(seed=3)
        with pytest.raises(ConfigurationError, match="different grid"):
            run_sweep(other, result.out_dir)

    def test_no_cache_still_completes(self, tmp_path):
        spec = _tiny_spec(faults="paper")
        result = run_sweep(spec, tmp_path / "out", cache_dir=None, jobs=1)
        assert result.ok
        events, _ = read_journal(
            tmp_path / "out" / "cells" / "b" / "journal.jsonl")
        assert not phase_breakdown(events)["workload_nep"]["cached"]


class TestFailure:
    def test_failed_analysis_fails_only_its_cell(self, tmp_path,
                                                 monkeypatch):
        real = runner_mod.run_analysis

        def flaky(name, study):
            if name == "fig10":
                raise TraceError("no utilisation trace")
            return real(name, study)

        monkeypatch.setattr(runner_mod, "run_analysis", flaky)
        spec = parse_sweep_spec({"name": "partial", "cells": [
            {"name": "good", "analyses": ["fig8"]},
            {"name": "bad", "analyses": ["fig10"]}]})
        result = run_sweep(spec, tmp_path / "out", jobs=1)
        assert not result.ok
        assert result.failed == ("bad",)
        payload = json.loads(
            (tmp_path / "out" / "cells" / "bad" / "result.json").read_text())
        assert payload["status"] == "failed"
        assert payload["error"].startswith("fig10:")

    def test_resume_retries_only_failed_cells(self, tmp_path, monkeypatch):
        real = runner_mod.run_analysis

        def flaky(name, study):
            if name == "fig10":
                raise TraceError("transient")
            return real(name, study)

        monkeypatch.setattr(runner_mod, "run_analysis", flaky)
        spec = parse_sweep_spec({"name": "retry", "cells": [
            {"name": "good", "analyses": ["fig8"]},
            {"name": "bad", "analyses": ["fig10"]}]})
        first = run_sweep(spec, tmp_path / "out", jobs=1)
        assert first.failed == ("bad",)

        monkeypatch.setattr(runner_mod, "run_analysis", real)
        second = run_sweep(spec, tmp_path / "out", jobs=1)
        assert second.ok
        statuses = {c.name: c.status for c in second.cells}
        assert statuses == {"good": "resumed", "bad": "ok"}

    def test_unexpected_exception_recorded(self, tmp_path, monkeypatch):
        def boom(name, study):
            raise RuntimeError("wires crossed")

        monkeypatch.setattr(runner_mod, "run_analysis", boom)
        spec = parse_sweep_spec({"name": "crash", "cells": [
            {"name": "only", "analyses": ["fig8"]}]})
        result = run_sweep(spec, tmp_path / "out", jobs=1)
        assert not result.ok
        assert "RuntimeError: wires crossed" in result.cells[0].error
