"""Tests for the declarative sweep subsystem (repro.sweep)."""
