"""Tests for sweep grid specs (repro.sweep.spec)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.sweep import load_sweep_spec, parse_sweep_spec


class TestGridExpansion:
    def test_cartesian_product_with_auto_names(self):
        spec = parse_sweep_spec({
            "defaults": {"analyses": ["fig8"]},
            "grid": {"seed": [1, 2], "faults": ["off", "paper"]},
        })
        assert [c.name for c in spec.cells] == [
            "seed1-faults_off", "seed1-faults_paper",
            "seed2-faults_off", "seed2-faults_paper"]
        assert {c.seed for c in spec.cells} == {1, 2}
        assert all(c.analyses == ("fig8",) for c in spec.cells)

    def test_single_combination_named_cell(self):
        spec = parse_sweep_spec({
            "defaults": {"analyses": ["fig8"]},
            "grid": {"seed": [9]},
        })
        assert [c.name for c in spec.cells] == ["cell"]
        assert spec.cells[0].seed == 9

    def test_fixed_axes_stay_out_of_names(self):
        # Only axes with more than one value contribute to auto-names.
        spec = parse_sweep_spec({
            "defaults": {"analyses": ["fig8"]},
            "grid": {"scale": ["smoke"], "seed": [1, 2]},
        })
        assert [c.name for c in spec.cells] == ["seed1", "seed2"]

    def test_override_axis(self):
        spec = parse_sweep_spec({
            "defaults": {"analyses": ["fig8"]},
            "grid": {"overrides": {"nep_site_count": [10, 20]}},
        })
        assert [c.name for c in spec.cells] == [
            "nep_site_count10", "nep_site_count20"]
        assert spec.cells[0].overrides == (("nep_site_count", 10),)

    def test_defaults_inherited_by_grid_and_cells(self):
        spec = parse_sweep_spec({
            "defaults": {"scale": "smoke", "jobs": 2,
                         "analyses": ["fig8"]},
            "grid": {"faults": ["off", "paper"]},
            "cells": [{"name": "extra", "seed": 5}],
        })
        assert all(c.scale == "smoke" and c.jobs == 2 for c in spec.cells)
        assert spec.cell("extra").seed == 5

    def test_explicit_cell_gets_index_name(self):
        spec = parse_sweep_spec({
            "cells": [{"analyses": ["fig8"]}],
        })
        assert spec.cells[0].name == "cell0"

    def test_string_analyses_coerced_to_list(self):
        spec = parse_sweep_spec({
            "cells": [{"name": "one", "analyses": "fig8"}],
        })
        assert spec.cell("one").analyses == ("fig8",)

    def test_cell_lookup_unknown_name(self):
        spec = parse_sweep_spec({"cells": [{"name": "a",
                                            "analyses": ["fig8"]}]})
        with pytest.raises(ConfigurationError, match="no cell"):
            spec.cell("b")


class TestValidation:
    def test_unknown_top_level_key(self):
        with pytest.raises(ConfigurationError, match="top-level"):
            parse_sweep_spec({"grids": {}})

    def test_no_cells_declared(self):
        with pytest.raises(ConfigurationError, match="declares no cells"):
            parse_sweep_spec({"name": "empty"})

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError, match="no axes"):
            parse_sweep_spec({"grid": {}})

    def test_axis_must_be_nonempty_list(self):
        with pytest.raises(ConfigurationError, match="non-empty list"):
            parse_sweep_spec({"grid": {"seed": 7}})

    def test_unknown_scale(self):
        with pytest.raises(ConfigurationError, match="unknown scale"):
            parse_sweep_spec({"cells": [{"scale": "galactic",
                                         "analyses": ["fig8"]}]})

    def test_unknown_fault_profile(self):
        with pytest.raises(ConfigurationError, match="fault profile"):
            parse_sweep_spec({"cells": [{"faults": "storm",
                                         "analyses": ["fig8"]}]})

    def test_unknown_analysis(self):
        with pytest.raises(ConfigurationError, match="unknown analysis"):
            parse_sweep_spec({"cells": [{"analyses": ["fig99"]}]})

    def test_analyses_required(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            parse_sweep_spec({"cells": [{"seed": 1}]})

    def test_seed_must_be_integer(self):
        with pytest.raises(ConfigurationError, match="seed"):
            parse_sweep_spec({"cells": [{"seed": "seven",
                                         "analyses": ["fig8"]}]})

    def test_jobs_must_be_non_negative(self):
        with pytest.raises(ConfigurationError, match="jobs"):
            parse_sweep_spec({"cells": [{"jobs": -1,
                                         "analyses": ["fig8"]}]})

    def test_unknown_override_field(self):
        with pytest.raises(ConfigurationError, match="scenario field"):
            parse_sweep_spec({"cells": [
                {"analyses": ["fig8"],
                 "overrides": {"nep_quantum_links": 3}}]})

    def test_seed_override_must_use_axis(self):
        with pytest.raises(ConfigurationError, match="seed/faults axis"):
            parse_sweep_spec({"cells": [
                {"analyses": ["fig8"], "overrides": {"seed": 3}}]})

    def test_unknown_cell_key(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            parse_sweep_spec({"cells": [{"analyses": ["fig8"],
                                         "speed": "max"}]})

    def test_duplicate_cell_names(self):
        with pytest.raises(ConfigurationError, match="duplicate cell"):
            parse_sweep_spec({"cells": [
                {"name": "a", "analyses": ["fig8"]},
                {"name": "a", "analyses": ["fig10"]}]})


class TestLoad:
    def test_toml_round_trip_names_from_stem(self, tmp_path):
        config = tmp_path / "campaign.toml"
        config.write_text(
            '[defaults]\nanalyses = ["fig8"]\n'
            '[grid]\nseed = [1, 2]\n', encoding="utf-8")
        spec = load_sweep_spec(config)
        assert spec.name == "campaign"
        assert len(spec.cells) == 2

    def test_json_config(self, tmp_path):
        config = tmp_path / "grid.json"
        config.write_text(json.dumps({
            "name": "explicit",
            "cells": [{"name": "only", "analyses": ["fig8"]}],
        }), encoding="utf-8")
        spec = load_sweep_spec(config)
        assert spec.name == "explicit"
        assert spec.cell("only").analyses == ("fig8",)

    def test_unknown_suffix_rejected(self, tmp_path):
        config = tmp_path / "grid.yaml"
        config.write_text("cells: []\n", encoding="utf-8")
        with pytest.raises(ConfigurationError, match=".toml or .json"):
            load_sweep_spec(config)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_sweep_spec(tmp_path / "absent.toml")

    def test_invalid_toml(self, tmp_path):
        config = tmp_path / "broken.toml"
        config.write_text("[grid\n", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="invalid TOML"):
            load_sweep_spec(config)

    def test_invalid_json(self, tmp_path):
        config = tmp_path / "broken.json"
        config.write_text("{", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            load_sweep_spec(config)

    def test_shipped_configs_parse(self):
        # The committed campaign configs must stay loadable.
        from pathlib import Path
        sweeps = Path(__file__).resolve().parents[2] / "benchmarks/sweeps"
        ablations = load_sweep_spec(sweeps / "ablations.toml")
        assert len(ablations.cells) == 6
        smoke = load_sweep_spec(sweeps / "ci_smoke.toml")
        assert len(smoke.cells) == 8
        # The CI speedup gate relies on every cell sharing one
        # workload group (the fault axis is cache-key-excluded).
        from repro.sweep import workload_group_token
        assert len({workload_group_token(c) for c in smoke.cells}) == 1
