"""Shared sweep fixtures: one finished smoke sweep reused per session.

Running a sweep is the expensive part of testing this subsystem, so
one three-cell campaign (two cells sharing a workload group through
the fault axis, one split off by seed) is executed once and inspected
by the runner and report tests.
"""

from __future__ import annotations

import pytest

from repro.sweep import parse_sweep_spec, run_sweep

#: Two cells share a workload group (fault profile is excluded from the
#: workload cache token); the reseeded cell forms its own group.
SPEC_DATA = {
    "name": "unit",
    "defaults": {"scale": "smoke",
                 "analyses": ["fig8", "ablation_growth"]},
    "cells": [
        {"name": "base"},
        {"name": "faulty", "faults": "paper"},
        {"name": "reseed", "seed": 7, "analyses": ["fig8"]},
    ],
}


@pytest.fixture(scope="session")
def finished_sweep(tmp_path_factory):
    """A completed sweep: ``(spec, result)`` with a warm shared cache."""
    spec = parse_sweep_spec(SPEC_DATA)
    out = tmp_path_factory.mktemp("sweep-out")
    cache = tmp_path_factory.mktemp("sweep-cache")
    result = run_sweep(spec, out, cache_dir=str(cache), jobs=1)
    assert result.ok, f"fixture sweep failed: {result.failed}"
    return spec, result
