"""Crash-resume contract: SIGKILL mid-sweep, restart, byte identity.

The satellite guarantees under test:

- a killed sweep leaves **no partial cell visible** — every directory
  under ``cells/`` that is not a staging dir holds a complete
  ``result.json`` and journal;
- restarting the same config completes only the remaining cells;
- a completed cell's journal survives the resume byte-for-byte, and
  its canonical event stream equals the one from an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.obs import canonical_events, read_journal
from repro.sweep import parse_sweep_spec, run_sweep

#: Six smoke cells in three workload groups — enough runway that the
#: kill lands while most of the grid is still pending.
SPEC = {
    "name": "kill",
    "defaults": {"analyses": ["fig8"]},
    "grid": {"seed": [1, 2, 3], "faults": ["off", "paper"]},
}

RUNNER = """\
import json, sys
from repro.sweep import parse_sweep_spec, run_sweep
spec = parse_sweep_spec(json.loads(sys.argv[1]))
run_sweep(spec, sys.argv[2], cache_dir=sys.argv[3], jobs=1)
"""


def _visible_cells(cells_dir: Path) -> list[Path]:
    if not cells_dir.exists():
        return []
    return [p for p in cells_dir.iterdir()
            if p.is_dir() and not p.name.startswith(".tmp-")]


def test_sigkill_mid_sweep_then_resume(tmp_path):
    out, cache = tmp_path / "out", tmp_path / "cache"
    src = str(Path(__file__).resolve().parents[2] / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    proc = subprocess.Popen(
        [sys.executable, "-c", RUNNER, json.dumps(SPEC), str(out),
         str(cache)], env=env)
    cells_dir = out / "cells"
    try:
        deadline = time.time() + 120
        while time.time() < deadline:
            if proc.poll() is not None or _visible_cells(cells_dir):
                break
            time.sleep(0.02)
        assert proc.poll() is None, \
            "sweep finished before it could be killed"
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert proc.returncode == -signal.SIGKILL

    # No partial cell is visible: atomic rename publishes whole dirs.
    completed = sorted(p.name for p in _visible_cells(cells_dir))
    assert completed, "no cell completed before the kill"
    assert len(completed) < 6, "every cell completed before the kill"
    for cell_dir in _visible_cells(cells_dir):
        payload = json.loads((cell_dir / "result.json").read_text())
        assert payload["status"] == "ok"
        events, _ = read_journal(cell_dir / "journal.jsonl")
        assert events[-1]["type"] == "run_end"
    before = {p.name: (p / "journal.jsonl").read_bytes()
              for p in _visible_cells(cells_dir)}

    # The restart completes only the remaining cells.
    spec = parse_sweep_spec(SPEC)
    resumed = run_sweep(spec, out, cache_dir=str(cache), jobs=1)
    assert resumed.ok
    statuses = {c.name: c.status for c in resumed.cells}
    assert len(statuses) == 6
    for name in completed:
        assert statuses[name] == "resumed"
    assert sum(1 for s in statuses.values() if s == "ok") \
        == 6 - len(completed)

    # Completed cells were never rewritten.
    for name, blob in before.items():
        assert (cells_dir / name / "journal.jsonl").read_bytes() == blob

    # Their canonical journals match an uninterrupted run's.
    clean = run_sweep(spec, tmp_path / "clean",
                      cache_dir=str(tmp_path / "cache2"), jobs=1)
    assert clean.ok
    for name in completed:
        interrupted, _ = read_journal(cells_dir / name / "journal.jsonl")
        pristine, _ = read_journal(
            tmp_path / "clean" / "cells" / name / "journal.jsonl")
        assert (canonical_events(interrupted)
                == canonical_events(pristine)), name

    # A finished sweep re-run is a no-op.
    rerun = run_sweep(spec, out, cache_dir=str(cache), jobs=1)
    assert rerun.ok
    assert rerun.resumed == len(rerun.cells) == 6
