"""Tests for sweep report rendering (repro.sweep.report)."""

from __future__ import annotations

import re

import pytest

from repro.errors import ConfigurationError
from repro.sweep import load_manifest, render_sweep_report


class TestRender:
    def test_summary_lists_every_cell(self, finished_sweep):
        _, result = finished_sweep
        text = render_sweep_report(result.out_dir)
        assert "Sweep 'unit'" in text
        for name in ("base", "faulty", "reseed"):
            assert name in text

    def test_delta_tables_against_first_cell(self, finished_sweep):
        _, result = finished_sweep
        text = render_sweep_report(result.out_dir)
        assert "base vs faulty" in text
        assert "base vs reseed" in text

    def test_shared_metrics_get_ratios(self, finished_sweep):
        # base and faulty both ran the growth ablation, so the delta
        # table compares its metrics with explicit ratios.
        _, result = finished_sweep
        text = render_sweep_report(result.out_dir)
        assert "final_skew_growth" in text
        assert re.search(r"\d+(\.\d+)?x\b", text)

    def test_heterogeneous_analysis_sets_align(self, finished_sweep):
        # reseed ran only fig8, so the growth-ablation metrics exist
        # on the base side alone; the union keeps them in the table
        # with "-" placeholders instead of silently dropping the row.
        _, result = finished_sweep
        text = render_sweep_report(result.out_dir)
        section = text.split("base vs reseed", 1)[1]
        line = next(line for line in section.splitlines()
                    if "final_skew_growth" in line)
        name, base_value, reseed_value, ratio = line.split()
        assert name == "final_skew_growth"
        assert float(base_value) > 0.0
        assert reseed_value == "-" and ratio == "-"

    def test_baseline_override(self, finished_sweep):
        _, result = finished_sweep
        text = render_sweep_report(result.out_dir, baseline="faulty")
        assert "faulty vs base" in text

    def test_unknown_baseline_rejected(self, finished_sweep):
        _, result = finished_sweep
        with pytest.raises(ConfigurationError, match="baseline"):
            render_sweep_report(result.out_dir, baseline="nope")

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_manifest(tmp_path)
        with pytest.raises(ConfigurationError):
            render_sweep_report(tmp_path)
