"""Tests for the unified analysis registry (repro.sweep.analyses)."""

from __future__ import annotations

import pytest

from repro.core.ablations import ABLATIONS
from repro.errors import ConfigurationError
from repro.reports import REPORTS
from repro.sweep import ANALYSES, run_analysis


class TestRegistry:
    def test_covers_reports_and_ablations(self):
        expected = set(REPORTS) | {f"ablation_{n}" for n in ABLATIONS}
        assert set(ANALYSES) == expected

    def test_ablation_ids_are_prefixed(self):
        assert "ablation_density" in ANALYSES
        assert "density" not in ANALYSES


class TestRunAnalysis:
    def test_report_analysis(self, study):
        result = run_analysis("table1", study)
        assert result.name == "table1"
        assert "Table 1" in result.text
        assert result.metrics == {}
        assert result.holds and result.checks_total == 0

    def test_ablation_analysis(self, study):
        result = run_analysis("ablation_growth", study)
        assert result.name == "ablation_growth"
        assert "Growth ablation" in result.text
        assert result.checks_total > 0
        assert result.metrics

    def test_qoe_report_carries_metrics(self, study):
        # The one figure report with a numeric surface: its QoE
        # summary feeds the cross-cell comparison columns.
        result = run_analysis("qoe-sessions", study)
        assert result.name == "qoe-sessions"
        assert "edge" in result.text and "cloud" in result.text
        assert "qoe_hit_ratio" in result.metrics
        assert result.checks_total == 0

    def test_unknown_report_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown analysis"):
            run_analysis("fig99", None)

    def test_unknown_ablation_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown analysis"):
            run_analysis("ablation_nope", None)
