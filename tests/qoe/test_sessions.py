"""Tests for the vectorized ABR session engine (repro.qoe.sessions).

The heart of the file is the golden-digest contract: the vectorized
tick loop, the scalar reference, every chunking, and every worker
count must all hash to the same pinned SHA-256 per (abr, arm) — any
drift in the buffer dynamics is a test failure, not a silent QoE
shift.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParallelError
from repro.obs import RunJournal, canonical_events
from repro.obs.journal import VOLATILE_EVENT_TYPES
from repro.qoe import (
    ARMS,
    METRICS,
    SessionDigest,
    SessionWorkload,
    build_session_workload,
    counter_uniform,
    run_qoe_sessions,
    run_sessions,
    simulate_chunk,
    simulate_reference,
)
from repro.resilience import install, reset

#: Pinned digests for :func:`_workload` — regenerate only when the
#: session dynamics change *on purpose* (and say so in the changelog).
GOLDEN_DIGESTS = {
    ("throughput", "edge"):
        "a902b51f975db3f320a323616d41c3c4d7b2e06e592a683189dc096b44a46cab",
    ("throughput", "cloud"):
        "4b02318271af6e43e2d073c1295d4a53f341e06d57f52347be000e251013e948",
    ("buffer", "edge"):
        "554cb5cee809e58852dea36a38290917836de209640600ceadf1c1cc30630d02",
    ("buffer", "cloud"):
        "9b7009ee2f77bae79076c6e2227df68bc728d14905385cb5e39078db1d6ff78b",
}


def _workload(abr="throughput", n_sessions=256, n_ticks=48):
    return SessionWorkload(
        seed=1234, n_sessions=n_sessions, n_ticks=n_ticks, abr=abr,
        site_hit_ratios=np.array([0.2, 0.45, 0.7]),
        hit_rtt_ms=17.0, miss_rtt_ms=43.0, cloud_rtt_ms=44.0,
        downlink_mean_mbps=6.0)


def _reference_digest(workload, arm):
    digest = SessionDigest()
    digest.update(simulate_reference(workload, arm))
    return digest.hexdigest()


class TestCounterRng:
    def test_uniform_range_and_determinism(self):
        idx = np.arange(10_000, dtype=np.uint64)
        u = counter_uniform(7, 1, idx)
        assert np.all((u >= 0.0) & (u < 1.0))
        assert np.array_equal(u, counter_uniform(7, 1, idx))
        assert abs(float(u.mean()) - 0.5) < 0.02

    def test_streams_and_ticks_decorrelate(self):
        idx = np.arange(256, dtype=np.uint64)
        base = counter_uniform(7, 1, idx)
        assert not np.array_equal(base, counter_uniform(7, 2, idx))
        assert not np.array_equal(base, counter_uniform(7, 1, idx, tick=1))
        assert not np.array_equal(base, counter_uniform(8, 1, idx))

    def test_absolute_indexing_is_chunk_free(self):
        """Draw 100 sessions at once or in two halves: same numbers."""
        whole = counter_uniform(5, 3, np.arange(100, dtype=np.uint64))
        left = counter_uniform(5, 3, np.arange(50, dtype=np.uint64))
        right = counter_uniform(5, 3, np.arange(50, 100, dtype=np.uint64))
        assert np.array_equal(whole, np.concatenate([left, right]))


class TestGoldenDigests:
    @pytest.mark.parametrize("abr,arm", sorted(GOLDEN_DIGESTS))
    def test_vectorized_matches_pinned_digest(self, abr, arm):
        result = run_sessions(_workload(abr), arm, chunk_sessions=64)
        assert result.digest == GOLDEN_DIGESTS[(abr, arm)]

    @pytest.mark.parametrize("abr,arm", sorted(GOLDEN_DIGESTS))
    def test_reference_matches_pinned_digest(self, abr, arm):
        """The scalar engine independently reproduces the same bytes."""
        assert (_reference_digest(_workload(abr), arm)
                == GOLDEN_DIGESTS[(abr, arm)])

    def test_chunk_size_never_changes_the_digest(self):
        workload = _workload()
        digests = {run_sessions(workload, "edge", chunk_sessions=c).digest
                   for c in (17, 64, 97, 256, 10_000)}
        assert digests == {GOLDEN_DIGESTS[("throughput", "edge")]}

    def test_worker_count_never_changes_the_digest(self):
        workload = _workload()
        serial = run_sessions(workload, "edge", chunk_sessions=32, jobs=1)
        pooled = run_sessions(workload, "edge", chunk_sessions=32, jobs=2)
        assert serial.digest == pooled.digest
        assert serial.means == pooled.means

    def test_chunk_slice_equals_reference_slice(self):
        """simulate_chunk on [start, start+count) == the same slice
        of a scalar run, element for element."""
        workload = _workload(n_sessions=96)
        chunk = simulate_chunk(workload, 32, 40, "cloud")
        ref = simulate_reference(workload, "cloud", start=32, count=40)
        for metric in METRICS:
            assert np.array_equal(chunk[metric], ref[metric])


class TestRunSessions:
    def test_means_and_quantiles_are_coherent(self):
        result = run_sessions(_workload(), "edge")
        assert result.sessions == 256
        assert set(result.means) == set(METRICS)
        for metric in METRICS:
            assert result.quantile(metric, 0.9) \
                >= result.quantile(metric, 0.5)

    def test_unknown_arm_rejected(self):
        with pytest.raises(ParallelError):
            run_sessions(_workload(), "fog")
        with pytest.raises(ParallelError):
            simulate_reference(_workload(), "fog")

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ParallelError):
            run_sessions(_workload(), "edge", chunk_sessions=0)

    def test_spill_writes_metric_shards(self, tmp_path):
        run_sessions(_workload(), "edge", chunk_sessions=64,
                     spill_dir=tmp_path)
        shards = sorted(p.name for p in tmp_path.iterdir())
        assert any("qoe-edge" in name for name in shards)

    def test_session_chunks_journaled_as_volatile(self, tmp_path):
        assert "session_chunk" in VOLATILE_EVENT_TYPES
        with RunJournal(tmp_path / "run.jsonl") as journal:
            run_sessions(_workload(), "edge", chunk_sessions=64,
                         journal=journal)
            events = list(journal.events)
        chunks = [e for e in events if e.get("type") == "session_chunk"]
        assert len(chunks) == 4  # 256 sessions / 64
        assert sum(e["sessions"] for e in chunks) == 256
        # Chunking is an execution detail: canonicalization drops it,
        # so chaos reruns with different retry patterns still compare.
        assert not [e for e in canonical_events(events)
                    if e.get("type") == "session_chunk"]


class TestFailpointRecovery:
    def setup_method(self):
        reset()

    def teardown_method(self):
        reset()

    def test_injected_chunk_fault_retries_to_identical_output(self):
        clean = run_sessions(_workload(), "edge", chunk_sessions=64)
        install("qoe.chunk:nth=1")
        faulty = run_sessions(_workload(), "edge", chunk_sessions=64)
        assert faulty.digest == clean.digest
        assert faulty.means == clean.means


class TestScenarioIntegration:
    def test_edge_arm_beats_cloud_arm(self, scenario):
        result = run_qoe_sessions(scenario)
        assert set(result.arms) == set(ARMS)
        edge, cloud = result.arms["edge"], result.arms["cloud"]
        assert edge.sessions == scenario.qoe_session_count
        # The whole point of the experiment: closer cache, better QoE.
        assert (edge.means["mean_bitrate_mbps"]
                > cloud.means["mean_bitrate_mbps"])
        assert result.hit_rtt_ms < result.miss_rtt_ms

    def test_metrics_surface(self, scenario):
        metrics = run_qoe_sessions(scenario).metrics()
        assert set(metrics) >= {"qoe_hit_ratio",
                                "qoe_edge_bitrate_mbps",
                                "qoe_cloud_bitrate_mbps"}
        assert all(isinstance(v, float) for v in metrics.values())

    def test_report_renders(self, scenario):
        text = run_qoe_sessions(scenario).format()
        assert "edge" in text and "cloud" in text
        for metric in METRICS:
            assert metric in text

    def test_workload_tracks_scenario_knobs(self, scenario):
        workload = build_session_workload(scenario)
        assert workload.n_sessions == scenario.qoe_session_count
        assert workload.abr == scenario.qoe_abr
        assert workload.site_hit_ratios.shape \
            == (scenario.nep_site_count,)


class TestStudyPhase:
    def test_phase_is_cached_and_journaled(self, tmp_path):
        from repro import ArtifactCache, Scenario
        from repro.study import EdgeStudy

        cache = ArtifactCache(tmp_path)
        scenario = Scenario.smoke_scale().with_overrides(seed=707)
        cold = EdgeStudy(scenario, cache=cache)
        first = cold.qoe_sessions
        assert "cache_hit:qoe_sessions" not in cold.perf.counters
        warm = EdgeStudy(scenario, cache=cache)
        second = warm.qoe_sessions
        assert warm.perf.counters["cache_hit:qoe_sessions"] == 1
        assert second.arms["edge"].digest == first.arms["edge"].digest

    def test_phase_in_ledger(self, study):
        study.qoe_sessions
        assert study.phases.status("qoe_sessions").ok

    def test_knobs_change_the_answer(self, study):
        from repro.study import EdgeStudy

        tweaked = EdgeStudy(study.scenario.with_overrides(
            qoe_cache_mb=64))
        assert (tweaked.qoe_sessions.arms["edge"].digest
                != study.qoe_sessions.arms["edge"].digest)
        assert (tweaked.qoe_sessions.hit_ratio_mean
                < study.qoe_sessions.hit_ratio_mean)
