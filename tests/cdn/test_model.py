"""Tests for the analytic edge-cache model (repro.cdn).

The Che approximation is checked against its defining fixed point, the
TTL closed form against its formula, and the per-site model against
the determinism/ordering invariants the session engine relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cdn import (
    CdnModel,
    che_characteristic_time,
    lru_hit_ratio_curve,
    ttl_hit_ratios,
    zipf_weights,
)
from repro.cdn.model import OBJECT_MB, SITE_ALPHA_JITTER
from repro.config import Scenario
from repro.errors import ConfigurationError


class TestZipfWeights:
    def test_normalized_and_decreasing(self):
        weights = zipf_weights(500, 0.8)
        assert weights.shape == (500,)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(np.diff(weights) < 0)

    def test_hotter_alpha_concentrates_mass(self):
        flat = zipf_weights(1000, 0.4)
        steep = zipf_weights(1000, 1.2)
        assert steep[:10].sum() > flat[:10].sum()

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            zipf_weights(0, 0.8)
        with pytest.raises(ConfigurationError):
            zipf_weights(100, 0.0)
        with pytest.raises(ConfigurationError):
            zipf_weights(100, -1.0)


class TestCheCharacteristicTime:
    def test_fixed_point_holds(self):
        """T_c is defined by sum_i(1 - exp(-w_i T_c)) = capacity."""
        rates = zipf_weights(2000, 0.9)
        for capacity in (10.0, 100.0, 500.0):
            t_c = che_characteristic_time(rates, capacity)
            occupancy = float(np.sum(1.0 - np.exp(-rates * t_c)))
            assert occupancy == pytest.approx(capacity, rel=1e-6)

    def test_capacity_bounds_rejected(self):
        rates = zipf_weights(100, 0.8)
        with pytest.raises(ConfigurationError):
            che_characteristic_time(rates, 0.0)
        with pytest.raises(ConfigurationError):
            che_characteristic_time(rates, 100.0)


class TestLruHitRatioCurve:
    def test_bigger_cache_never_hurts(self):
        alphas = np.array([0.6, 0.8, 1.0])
        small = lru_hit_ratio_curve(alphas, 5000, 50.0)
        large = lru_hit_ratio_curve(alphas, 5000, 500.0)
        assert np.all(large > small)
        assert np.all((small > 0.0) & (small < 1.0))

    def test_full_cache_hits_everything(self):
        alphas = np.array([0.7, 0.9])
        assert np.array_equal(
            lru_hit_ratio_curve(alphas, 100, 100.0), np.ones(2))

    def test_hotter_sites_hit_more(self):
        """Steeper per-site popularity -> higher request-weighted hits."""
        curve = lru_hit_ratio_curve(np.array([0.5, 0.8, 1.1, 1.4]),
                                    5000, 200.0)
        assert np.all(np.diff(curve) > 0)

    def test_matches_scalar_solver(self):
        """The blocked vectorized bisection equals per-site solves."""
        alphas = np.array([0.62, 0.85, 1.07])
        catalog, capacity = 3000, 120.0
        curve = lru_hit_ratio_curve(alphas, catalog, capacity)
        for site, alpha in enumerate(alphas):
            weights = zipf_weights(catalog, float(alpha))
            t_c = che_characteristic_time(weights, capacity)
            hits = 1.0 - np.exp(-weights * t_c)
            expected = float(np.sum(weights * hits))
            assert curve[site] == pytest.approx(expected, rel=1e-6)


class TestTtlHitRatios:
    def test_closed_form(self):
        rates = np.array([0.01, 0.1, 1.0])
        ratios = ttl_hit_ratios(rates, 60.0)
        assert np.allclose(ratios, 1.0 - np.exp(-rates * 60.0))

    def test_longer_ttl_never_hurts(self):
        rates = np.array([0.05, 0.5])
        assert np.all(ttl_hit_ratios(rates, 300.0)
                      > ttl_hit_ratios(rates, 30.0))

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ConfigurationError):
            ttl_hit_ratios(np.array([0.1]), 0.0)


class TestCdnModel:
    def test_deterministic_across_instances(self, scenario):
        a, b = CdnModel(scenario), CdnModel(scenario)
        assert np.array_equal(a.site_hit_ratios, b.site_hit_ratios)
        assert a.latencies == b.latencies

    def test_site_alphas_stay_in_jitter_band(self, scenario):
        alphas = CdnModel(scenario).site_alphas
        lo, hi = SITE_ALPHA_JITTER
        base = scenario.qoe_zipf_alpha
        assert alphas.shape == (scenario.nep_site_count,)
        assert np.all(alphas >= base * lo)
        assert np.all(alphas <= base * hi)

    def test_capacity_objects(self, scenario):
        model = CdnModel(scenario)
        assert model.capacity_objects == pytest.approx(
            scenario.qoe_cache_mb / OBJECT_MB)

    def test_hit_path_beats_miss_and_cloud(self, scenario):
        lat = CdnModel(scenario).latencies
        assert 0.0 < lat.hit_rtt_ms < lat.miss_rtt_ms
        assert lat.hit_rtt_ms < lat.cloud_rtt_ms
        # A miss traverses the edge leg and then the origin leg.
        assert lat.miss_rtt_ms > lat.hit_rtt_ms

    def test_hit_ratios_are_proper_probabilities(self, scenario):
        ratios = CdnModel(scenario).site_hit_ratios
        assert ratios.shape == (scenario.nep_site_count,)
        assert np.all((ratios > 0.0) & (ratios < 1.0))

    def test_eviction_policies_differ(self, scenario):
        lru = CdnModel(scenario).site_hit_ratios
        ttl = CdnModel(scenario.with_overrides(
            qoe_cache_eviction="ttl")).site_hit_ratios
        assert not np.array_equal(lru, ttl)

    def test_bigger_cache_helps_every_site(self, scenario):
        small = CdnModel(scenario.with_overrides(
            qoe_cache_mb=128)).site_hit_ratios
        large = CdnModel(scenario.with_overrides(
            qoe_cache_mb=2048)).site_hit_ratios
        assert np.all(large > small)

    def test_invalid_scenario_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario.smoke_scale().with_overrides(qoe_cache_mb=0)
        with pytest.raises(ConfigurationError):
            Scenario.smoke_scale().with_overrides(
                qoe_cache_eviction="fifo")
