"""Tests for the event-driven live-platform engine (repro.live).

The heart of the file is the twin-stepper contract: the vectorized
engine and the scalar per-server reference must produce bit-identical
per-tick series (and therefore digests) from the same precomputed
inputs — clean, fault-interleaved, autoscaling on or off, and under
injected chaos.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.faults.schedule import FaultSchedule, OutageWindow, ServerCrash
from repro.live import (
    LiveInputs,
    build_live_inputs,
    demand_curve,
    run_live,
    run_live_engine,
    run_reference_engine,
)
from repro.obs import RunJournal
from repro.platform.nep import build_nep_platform
from repro.resilience import chaos_spec, install, reset
from repro.study import scenario_for


@pytest.fixture(scope="module")
def scenario():
    return scenario_for("smoke", seed=7)


@pytest.fixture(scope="module")
def platform(scenario):
    return build_nep_platform(scenario)


@pytest.fixture(scope="module")
def inputs(scenario, platform):
    return build_live_inputs(scenario, platform)


class TestLiveInventory:
    def test_shapes_consistent(self, platform):
        site_of, slots, site_ids, server_ids = platform.live_inventory()
        assert site_of.shape == slots.shape == (len(server_ids),)
        assert len(site_ids) == len(platform.sites)
        assert len(server_ids) == platform.server_count
        assert (slots >= 1).all()

    def test_servers_contiguous_per_site(self, platform):
        site_of, _, _, _ = platform.live_inventory()
        # site order is non-decreasing: one site = one index range
        assert (np.diff(site_of) >= 0).all()

    def test_rejects_bad_slot_size(self, platform):
        with pytest.raises(TopologyError):
            platform.live_inventory(cores_per_slot=0)


class TestInputs:
    def test_all_draws_precomputed(self, inputs, scenario):
        assert inputs.ticks == scenario.live_ticks
        assert inputs.arrivals.shape == (inputs.ticks,)
        assert (inputs.arrivals >= 0).all()
        assert inputs.transitions == ()  # faults off

    def test_demand_curve_modulates(self, scenario):
        factor = demand_curve(scenario)
        assert factor.shape == (scenario.live_ticks,)
        assert (factor > 0).all()
        # flash crowds push some window above the diurnal ceiling
        assert factor.max() > 1.0 + scenario.live_diurnal_amplitude

    def test_empty_platform_rejected(self, scenario):
        from repro.platform.cluster import Platform
        from repro.platform.entities import PlatformKind

        empty = Platform(name="none", kind=PlatformKind.EDGE)
        with pytest.raises(ConfigurationError):
            build_live_inputs(scenario, empty)


class TestTwinSteppers:
    def test_vectorized_matches_reference(self, inputs):
        vec = run_live_engine(inputs)
        ref = run_reference_engine(inputs)
        assert vec.digest == ref.digest
        for name, series in vec.series.items():
            np.testing.assert_array_equal(series, ref.series[name],
                                          err_msg=name)

    def test_rerun_is_bit_identical(self, inputs):
        assert run_live_engine(inputs).digest == \
            run_live_engine(inputs).digest

    def test_matches_under_overload(self):
        # arrivals far beyond capacity stress allocation tie-breaking
        scenario = scenario_for("smoke", seed=11, overrides={
            "nep_site_count": 3, "live_ticks": 60,
            "live_arrival_rate": 900.0})
        inputs = build_live_inputs(scenario, build_nep_platform(scenario))
        vec = run_live_engine(inputs)
        ref = run_reference_engine(inputs)
        assert vec.digest == ref.digest
        assert int(vec.series["rejected"].sum()) > 0

    def test_matches_with_faults(self):
        scenario = scenario_for("smoke", seed=7, faults="paper")
        platform = build_nep_platform(scenario)
        from repro.faults.schedule import build_fault_schedule
        from repro.platform.cloud import build_cloud_platform

        faults = build_fault_schedule(
            scenario, platform,
            build_cloud_platform(scenario, name="AliCloud",
                                 servers_per_region=4))
        inputs = build_live_inputs(scenario, platform, faults)
        assert inputs.transitions  # the profile produced fault weather
        vec = run_live_engine(inputs)
        ref = run_reference_engine(inputs)
        assert vec.digest == ref.digest
        assert vec.fault_ticks == ref.fault_ticks
        assert int(vec.series["down_servers"].sum()) > 0


class TestConservation:
    def test_fleet_balance_per_tick(self, inputs):
        result = run_live_engine(inputs)
        s = result.series
        previous = 0
        for t in range(result.ticks):
            expected = (previous - s["displaced"][t] - s["departures"][t]
                        + s["admitted"][t])
            assert s["active"][t] == expected, f"tick {t}"
            previous = s["active"][t]

    def test_admission_bounded_by_arrivals(self, inputs):
        result = run_live_engine(inputs)
        s = result.series
        assert (s["admitted"] <= s["arrivals"]).all()
        assert (s["rejected"] == s["arrivals"] - s["admitted"]).all()
        assert (s["rejected"] >= 0).all()

    def test_active_never_negative(self, inputs):
        result = run_live_engine(inputs)
        assert (result.series["active"] >= 0).all()


class TestAutoscale:
    @pytest.fixture(scope="class")
    def pressured(self):
        """A small fleet under enough load to trip the scale-up EWMA."""
        return {"nep_site_count": 3, "live_ticks": 120,
                "live_arrival_rate": 400.0, "live_mean_lifetime_ticks": 600}

    def test_on_grows_capacity(self, pressured):
        on = run_live(scenario_for("smoke", seed=3, overrides=pressured))
        off = run_live(scenario_for("smoke", seed=3, overrides={
            **pressured, "live_autoscale": "off"}))
        assert on.series["capacity"].max() > off.series["capacity"].max()
        assert int(on.series["admitted"].sum()) >= \
            int(off.series["admitted"].sum())

    def test_off_capacity_is_flat(self, pressured):
        off = run_live(scenario_for("smoke", seed=3, overrides={
            **pressured, "live_autoscale": "off"}))
        # no faults and no autoscale: up-capacity never moves
        assert len(set(off.series["capacity"].tolist())) == 1

    def test_modes_match_reference(self, pressured):
        scenario = scenario_for("smoke", seed=3, overrides={
            **pressured, "live_autoscale": "off"})
        inputs = build_live_inputs(scenario, build_nep_platform(scenario))
        assert not inputs.autoscale
        assert run_live_engine(inputs).digest == \
            run_reference_engine(inputs).digest


class TestRunLive:
    def test_jobs_is_inert(self, scenario):
        assert run_live(scenario, jobs=1).digest == \
            run_live(scenario, jobs=8).digest

    def test_chaos_is_behaviour_identical(self, scenario):
        clean = run_live(scenario)
        install(chaos_spec("ci"))
        try:
            chaotic = run_live(scenario)
        finally:
            reset()
        assert clean.digest == chaotic.digest

    def test_chaos_retries_are_journaled(self, scenario):
        with RunJournal(None) as journal:
            install(chaos_spec("harsh"))
            try:
                run_live(scenario, journal=journal)
            finally:
                reset()
            journal.close()
        types = [e["type"] for e in journal.events]
        assert "live_retry" in types
        assert types.count("live_tick") == scenario.live_ticks

    def test_journal_summary_event(self, scenario):
        with RunJournal(None) as journal:
            result = run_live(scenario, journal=journal)
            journal.close()
        summaries = [e for e in journal.events
                     if e["type"] == "live_summary"]
        assert len(summaries) == 1
        assert summaries[0]["digest"] == result.digest
        assert summaries[0]["ticks"] == result.ticks

    def test_fault_events_are_canonical(self):
        from repro.obs import canonical_events

        scenario = scenario_for("smoke", seed=7, faults="paper")
        with RunJournal(None) as journal:
            result = run_live(scenario, journal=journal)
            journal.close()
        assert result.fault_ticks
        kept = [e["type"] for e in canonical_events(journal.events)]
        assert "live_fault" in kept       # divergence stays visible
        assert "live_tick" not in kept    # telemetry canonicalizes away

    def test_metrics_are_flat_floats(self, scenario):
        metrics = run_live(scenario).metrics()
        assert metrics
        assert all(isinstance(v, float) for v in metrics.values())
        assert metrics["live_peak_active"] > 0

    def test_format_renders(self, scenario):
        text = run_live(scenario).format()
        assert "Live platform run" in text
        assert "digest:" in text


class TestTickTransitions:
    def _schedule(self, outages=(), crashes=()):
        return FaultSchedule(
            profile_name="paper", horizon_minutes=10_000.0,
            outages=list(outages), crashes=list(crashes), episodes=[],
            edge_site_ids=("site-1",), cloud_site_ids=())

    def test_outage_lowered_to_site_range(self):
        schedule = self._schedule(
            outages=[OutageWindow("site-1", 10.5, 12.0)])
        events = schedule.tick_transitions(
            1, 100, {"site-1": (0, 4)}, {})
        # covers() is half-open on minutes: ticks 11 covered, 12 not
        assert events == [(11, 0, 4, 1), (12, 0, 4, -1)]

    def test_crash_lowered_to_single_server(self):
        schedule = self._schedule(
            crashes=[ServerCrash("srv-b", "site-1", 5.0, 8.0)])
        events = schedule.tick_transitions(
            1, 100, {}, {"srv-b": 7})
        assert events == [(5, 7, 8, 1), (8, 7, 8, -1)]

    def test_unknown_sites_and_servers_skipped(self):
        schedule = self._schedule(
            outages=[OutageWindow("cloud-1", 0.0, 50.0)],
            crashes=[ServerCrash("cloud-srv", "cloud-1", 0.0, 50.0)])
        assert schedule.tick_transitions(1, 100, {}, {}) == []

    def test_open_ended_window_has_no_up_event(self):
        schedule = self._schedule(
            outages=[OutageWindow("site-1", 90.0, 500.0)])
        events = schedule.tick_transitions(1, 100, {"site-1": (0, 2)}, {})
        assert events == [(90, 0, 2, 1)]

    def test_rejects_bad_grid(self):
        from repro.errors import FaultError

        with pytest.raises(FaultError):
            self._schedule().tick_transitions(0, 100, {}, {})


class TestLiveInputsSlicing:
    def test_prefix_slice_matches_prefix_of_full_run(self, inputs):
        """The bench's reference-slice trick is sound: a truncated run
        reproduces the prefix of the full run exactly."""
        import dataclasses

        full = run_live_engine(inputs)
        prefix = dataclasses.replace(
            inputs, ticks=50, arrivals=inputs.arrivals[:50],
            transitions=tuple(t for t in inputs.transitions if t[0] < 50))
        assert isinstance(prefix, LiveInputs)
        short = run_live_engine(prefix)
        for name, series in short.series.items():
            np.testing.assert_array_equal(series, full.series[name][:50],
                                          err_msg=name)
