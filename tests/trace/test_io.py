"""Tests for the trace dataset disk round-trip."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.io import load_dataset, save_dataset


class TestRoundTrip:
    def test_full_round_trip(self, nep_dataset, tmp_path):
        root = save_dataset(nep_dataset, tmp_path / "nep")
        loaded = load_dataset(root)
        assert loaded.platform_name == nep_dataset.platform_name
        assert loaded.trace_days == nep_dataset.trace_days
        assert set(loaded.vms) == set(nep_dataset.vms)
        assert set(loaded.apps) == set(nep_dataset.apps)
        assert len(loaded.sites) == len(nep_dataset.sites)
        assert len(loaded.servers) == len(nep_dataset.servers)

    def test_series_preserved_exactly(self, nep_dataset, tmp_path):
        root = save_dataset(nep_dataset, tmp_path / "nep")
        loaded = load_dataset(root)
        vm_id = nep_dataset.vm_ids()[0]
        assert np.array_equal(loaded.cpu_series[vm_id],
                              nep_dataset.cpu_series[vm_id])
        assert np.array_equal(loaded.bw_series[vm_id],
                              nep_dataset.bw_series[vm_id])

    def test_private_series_preserved(self, nep_dataset, tmp_path):
        root = save_dataset(nep_dataset, tmp_path / "nep")
        loaded = load_dataset(root)
        assert set(loaded.bw_private_series) == set(
            nep_dataset.bw_private_series)

    def test_vm_records_preserved(self, nep_dataset, tmp_path):
        root = save_dataset(nep_dataset, tmp_path / "nep")
        loaded = load_dataset(root)
        vm_id = nep_dataset.vm_ids()[0]
        assert loaded.vms[vm_id] == nep_dataset.vms[vm_id]

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            load_dataset(tmp_path / "nothing-here")

    def test_expected_files_written(self, nep_dataset, tmp_path):
        root = save_dataset(nep_dataset, tmp_path / "nep")
        for name in ("meta.json", "vms.csv", "apps.csv", "sites.csv",
                     "servers.csv", "cpu.npz", "bw.npz"):
            assert (root / name).exists(), name
