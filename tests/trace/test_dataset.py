"""Tests for the trace dataset container."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.dataset import TraceDataset, merge_days
from repro.trace.schema import AppRecord, ServerRecord, SiteRecord, VMRecord


def _dataset(days=2, cpu_interval=30, bw_interval=30):
    ds = TraceDataset(platform_name="t", trace_days=days,
                      cpu_interval_minutes=cpu_interval,
                      bw_interval_minutes=bw_interval)
    ds.sites["s0"] = SiteRecord("s0", "n", "Beijing", "Beijing",
                                39.9, 116.4, 10_000.0)
    ds.servers["m0"] = ServerRecord("m0", "s0", 64, 256, 8000)
    ds.apps["a0"] = AppRecord("a0", "c0", "cdn", "img")
    return ds


def _record(vm_id="vm0", cores=8, mem=32):
    return VMRecord(vm_id=vm_id, app_id="a0", customer_id="c0",
                    site_id="s0", server_id="m0", city="Beijing",
                    province="Beijing", category="cdn", image_id="img",
                    os_type="linux", cpu_cores=cores, memory_gb=mem,
                    disk_gb=100, bandwidth_mbps=10.0)


class TestSchemaValidation:
    def test_bad_vm_capacity_rejected(self):
        with pytest.raises(TraceError):
            VMRecord(vm_id="v", app_id="a", customer_id="c", site_id="s",
                     server_id="m", city="x", province="x", category="cdn",
                     image_id="i", os_type="linux", cpu_cores=0,
                     memory_gb=4, disk_gb=0, bandwidth_mbps=0.0)

    def test_bad_server_capacity_rejected(self):
        with pytest.raises(TraceError):
            ServerRecord("m", "s", 0, 128, 100)


class TestAddVm:
    def test_add_and_lookup(self):
        ds = _dataset()
        cpu = np.full(ds.cpu_points, 0.25)
        bw = np.full(ds.bw_points, 5.0)
        ds.add_vm(_record(), cpu, bw)
        assert ds.mean_cpu("vm0") == pytest.approx(0.25)
        assert ds.vms_of_app("a0")[0].vm_id == "vm0"

    def test_duplicate_vm_rejected(self):
        ds = _dataset()
        cpu, bw = np.zeros(ds.cpu_points), np.zeros(ds.bw_points)
        ds.add_vm(_record(), cpu, bw)
        with pytest.raises(TraceError):
            ds.add_vm(_record(), cpu, bw)

    def test_wrong_cpu_length_rejected(self):
        ds = _dataset()
        with pytest.raises(TraceError):
            ds.add_vm(_record(), np.zeros(3), np.zeros(ds.bw_points))

    def test_wrong_bw_length_rejected(self):
        ds = _dataset()
        with pytest.raises(TraceError):
            ds.add_vm(_record(), np.zeros(ds.cpu_points), np.zeros(3))

    def test_cpu_out_of_range_rejected(self):
        ds = _dataset()
        bad = np.full(ds.cpu_points, 1.5)
        with pytest.raises(TraceError):
            ds.add_vm(_record(), bad, np.zeros(ds.bw_points))

    def test_negative_bw_rejected(self):
        ds = _dataset()
        with pytest.raises(TraceError):
            ds.add_vm(_record(), np.zeros(ds.cpu_points),
                      np.full(ds.bw_points, -1.0))


class TestAggregations:
    def test_p95_max_cpu(self):
        ds = _dataset()
        cpu = np.zeros(ds.cpu_points)
        cpu[-1] = 1.0
        ds.add_vm(_record(), cpu, np.zeros(ds.bw_points))
        assert 0.0 <= ds.p95_max_cpu("vm0") <= 1.0

    def test_cpu_cv_zero_for_idle(self):
        ds = _dataset()
        ds.add_vm(_record(), np.zeros(ds.cpu_points), np.zeros(ds.bw_points))
        assert ds.cpu_cv("vm0") == 0.0

    def test_server_cpu_usage_weighted_by_cores(self):
        ds = _dataset()
        ds.add_vm(_record("vm0", cores=8),
                  np.full(ds.cpu_points, 1.0), np.zeros(ds.bw_points))
        ds.add_vm(_record("vm1", cores=24),
                  np.zeros(ds.cpu_points), np.zeros(ds.bw_points))
        usage = ds.server_cpu_usage("m0")
        # Weighted: 8*1.0 / 32 cores = 0.25.
        assert usage.mean() == pytest.approx(0.25, rel=1e-5)

    def test_server_cpu_usage_empty_server(self):
        ds = _dataset()
        assert ds.server_cpu_usage("m0").sum() == 0.0

    def test_site_and_app_bandwidth_sum(self):
        ds = _dataset()
        ds.add_vm(_record("vm0"), np.zeros(ds.cpu_points),
                  np.full(ds.bw_points, 2.0))
        ds.add_vm(_record("vm1"), np.zeros(ds.cpu_points),
                  np.full(ds.bw_points, 3.0))
        assert ds.site_bandwidth("s0").mean() == pytest.approx(5.0)
        assert ds.app_bandwidth("a0").mean() == pytest.approx(5.0)
        assert ds.server_bandwidth("m0").mean() == pytest.approx(5.0)

    def test_unknown_app_rejected(self):
        with pytest.raises(TraceError):
            _dataset().vms_of_app("ghost")


class TestValidate:
    def test_dangling_site_detected(self):
        ds = _dataset()
        record = VMRecord(vm_id="v", app_id="a0", customer_id="c",
                          site_id="ghost", server_id="m0", city="x",
                          province="x", category="cdn", image_id="i",
                          os_type="linux", cpu_cores=1, memory_gb=1,
                          disk_gb=0, bandwidth_mbps=0.0)
        ds.add_vm(record, np.zeros(ds.cpu_points), np.zeros(ds.bw_points))
        with pytest.raises(TraceError):
            ds.validate()

    def test_clean_dataset_passes(self):
        ds = _dataset()
        ds.add_vm(_record(), np.zeros(ds.cpu_points), np.zeros(ds.bw_points))
        ds.validate()


class TestMergeDays:
    def test_max_reducer(self):
        series = np.array([1, 5, 2, 8], dtype=float)
        assert merge_days(series, 2, "max").tolist() == [5, 8]

    def test_mean_reducer(self):
        series = np.array([1, 3, 2, 4], dtype=float)
        assert merge_days(series, 2, "mean").tolist() == [2, 3]

    def test_partial_day_rejected(self):
        with pytest.raises(TraceError):
            merge_days(np.zeros(5), 2)

    def test_unknown_reducer_rejected(self):
        with pytest.raises(TraceError):
            merge_days(np.zeros(4), 2, "median")
