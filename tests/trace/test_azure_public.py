"""Tests for the real Azure Public Dataset adapter (synthetic fixtures)."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.azure_public import (
    AZURE_READING_INTERVAL_MINUTES,
    load_azure_public_dataset,
    read_cpu_readings,
    read_vmtable,
    to_trace_dataset,
)

VMTABLE_ROWS = [
    # vmid, sub, deployment, created, deleted, maxcpu, avgcpu, p95, cat,
    # cores, memory
    "vm1,sub1,dep1,0,2592000,95.0,12.0,80.0,Interactive,2,4",
    "vm2,sub1,dep1,0,2592000,50.0,5.0,30.0,Interactive,1,2",
    "vm3,sub2,dep2,0,2592000,99.0,60.0,95.0,Delay-insensitive,>24,>64",
    "vm4,sub3,dep3,0,2592000,10.0,1.0,5.0,Unknown,1,1",  # no readings
]


@pytest.fixture()
def azure_dir(tmp_path):
    (tmp_path / "vmtable.csv").write_text("\n".join(VMTABLE_ROWS) + "\n")
    interval = AZURE_READING_INTERVAL_MINUTES * 60
    lines = []
    for vm, level in (("vm1", 12.0), ("vm2", 5.0), ("vm3", 60.0)):
        for i in range(2 * 24 * 60 // AZURE_READING_INTERVAL_MINUTES):
            lines.append(f"{i * interval},{vm},0.0,{level + 5},{level}")
    (tmp_path / "vm_cpu_readings-file-1-of-1.csv").write_text(
        "\n".join(lines) + "\n")
    return tmp_path


class TestVmtable:
    def test_parses_rows(self, azure_dir):
        rows = read_vmtable(azure_dir / "vmtable.csv")
        assert len(rows) == 4
        assert rows[0]["cores"] == 2
        assert rows[0]["category"] == "interactive"

    def test_bucket_tails(self, azure_dir):
        rows = read_vmtable(azure_dir / "vmtable.csv")
        assert rows[2]["cores"] == 30      # ">24"
        assert rows[2]["memory_gb"] == 96  # ">64"

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            read_vmtable(tmp_path / "vmtable.csv")

    def test_malformed_row_rejected(self, tmp_path):
        (tmp_path / "vmtable.csv").write_text("a,b,c\n")
        with pytest.raises(TraceError):
            read_vmtable(tmp_path / "vmtable.csv")

    def test_empty_table_rejected(self, tmp_path):
        (tmp_path / "vmtable.csv").write_text("")
        with pytest.raises(TraceError):
            read_vmtable(tmp_path / "vmtable.csv")


class TestReadings:
    def test_grouped_by_vm(self, azure_dir):
        readings = read_cpu_readings(
            [azure_dir / "vm_cpu_readings-file-1-of-1.csv"])
        assert set(readings) == {"vm1", "vm2", "vm3"}

    def test_malformed_rejected(self, tmp_path):
        bad = tmp_path / "vm_cpu_readings-x.csv"
        bad.write_text("1,2\n")
        with pytest.raises(TraceError):
            read_cpu_readings([bad])


class TestConversion:
    def test_full_load(self, azure_dir):
        dataset = load_azure_public_dataset(azure_dir, trace_days=2)
        assert dataset.platform_name == "AzurePublic"
        assert set(dataset.vm_ids()) == {"vm1", "vm2", "vm3"}
        dataset.validate()

    def test_vm_without_readings_dropped(self, azure_dir):
        dataset = load_azure_public_dataset(azure_dir, trace_days=2)
        assert "vm4" not in dataset.vms

    def test_cpu_converted_to_fraction(self, azure_dir):
        dataset = load_azure_public_dataset(azure_dir, trace_days=2)
        assert dataset.mean_cpu("vm1") == pytest.approx(0.12, abs=0.01)
        assert dataset.mean_cpu("vm3") == pytest.approx(0.60, abs=0.01)

    def test_deployment_becomes_app(self, azure_dir):
        dataset = load_azure_public_dataset(azure_dir, trace_days=2)
        assert {vm.vm_id for vm in dataset.vms_of_app("dep1")} == \
            {"vm1", "vm2"}

    def test_missing_windows_padded_with_mean(self, azure_dir):
        # Ask for more days than the readings cover: padding, not NaN.
        dataset = load_azure_public_dataset(azure_dir, trace_days=4)
        series = dataset.cpu_series["vm1"]
        assert series.size == dataset.cpu_points
        assert not np.isnan(series).any()

    def test_analyses_run_on_converted_dataset(self, azure_dir):
        from repro.core.workload_analysis import (
            cpu_utilization_summary,
            vm_size_summary,
        )
        dataset = load_azure_public_dataset(azure_dir, trace_days=2)
        sizes = vm_size_summary(dataset)
        assert sizes.median_cpu >= 1
        util = cpu_utilization_summary(dataset)
        assert 0.0 <= util.overall_mean_utilization <= 1.0

    def test_no_readings_at_all_rejected(self, azure_dir):
        vmtable = read_vmtable(azure_dir / "vmtable.csv")
        with pytest.raises(TraceError):
            to_trace_dataset(vmtable, {}, trace_days=2)

    def test_missing_readings_files_rejected(self, tmp_path):
        (tmp_path / "vmtable.csv").write_text(VMTABLE_ROWS[0] + "\n")
        with pytest.raises(TraceError):
            load_azure_public_dataset(tmp_path)
