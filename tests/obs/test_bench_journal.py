"""The bench harness records journal-derived per-phase data (satellite:
warm phases keep explicit ``cached: true`` entries instead of being
dropped from the ledger)."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "bench_study.py"


@pytest.fixture(scope="module")
def bench_mod():
    spec = importlib.util.spec_from_file_location("bench_study", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_study"] = module
    spec.loader.exec_module(module)
    return module


class TestRunOnce:
    def test_carries_journal_phase_breakdown(self, bench_mod):
        run = bench_mod.run_once("smoke", None)
        assert "journal_phases" in run
        for phase in bench_mod.PHASES:
            entry = run["journal_phases"][phase]
            assert entry["status"] == "ok"
            assert entry["cached"] is False
            assert entry["wall_s"] >= 0


class TestBench:
    def test_phases_record_peak_rss(self, bench_mod):
        fresh = bench_mod.bench("smoke", None, repeats=1, jobs=1)
        for stats in fresh["phases"].values():
            assert stats["peak_rss_mb"] > 0


class TestBenchCache:
    def test_warm_phases_kept_with_cached_flag(self, bench_mod, tmp_path):
        stats = bench_mod.bench_cache("smoke", None, jobs=1,
                                      cache_dir=tmp_path / "cache")
        cold, warm = stats["phases"]["cold"], stats["phases"]["warm"]
        # cold/warm rows stay phase-aligned: same keys, all four phases
        assert set(cold) == set(warm) == set(bench_mod.PHASES)
        for phase in bench_mod.PHASES:
            assert cold[phase]["cached"] is False
            assert warm[phase]["cached"] is True
            assert warm[phase]["wall_s"] is not None
        assert all(stats["warm_hits"].values())
