"""Tests for the run journal core (repro.obs.journal)."""

from __future__ import annotations

import json

import pytest

from repro.config import Scenario
from repro.errors import ConfigurationError
from repro.obs import RunJournal, VOLATILE_FIELDS, canonical_events

SCENARIO = Scenario.smoke_scale()


class TestEnvelope:
    def test_seq_is_dense_and_ordered(self):
        journal = RunJournal(None)
        for _ in range(5):
            journal.emit("x")
        assert [e["seq"] for e in journal.events] == list(range(5))

    def test_envelope_fields_present(self):
        journal = RunJournal(None)
        event = journal.emit("cache_hit", artifact="a", key="k")
        assert event["type"] == "cache_hit"
        assert isinstance(event["t"], float)
        assert event["artifact"] == "a"

    def test_memory_sample_attached_to_phase_end(self):
        journal = RunJournal(None)
        event = journal.emit("phase_end", phase="p", status="ok")
        assert event["rss_mb"] > 0
        assert event["peak_rss_mb"] > 0
        plain = journal.emit("phase_begin", phase="p")
        assert "rss_mb" not in plain


class TestInMemory:
    def test_none_path_accumulates_without_file(self):
        journal = RunJournal(None)
        journal.emit("x")
        journal.close()
        assert journal.path is None
        assert [e["type"] for e in journal.events] == ["x", "run_end"]


class TestFileLifecycle:
    def test_staging_then_atomic_rename(self, tmp_path):
        target = tmp_path / "run.jsonl"
        journal = RunJournal(target)
        journal.emit("x")
        assert (tmp_path / "run.jsonl.part").exists()
        assert not target.exists()
        journal.close()
        assert target.exists()
        assert not (tmp_path / "run.jsonl.part").exists()

    def test_file_contents_round_trip(self, tmp_path):
        target = tmp_path / "run.jsonl"
        journal = RunJournal(target)
        journal.emit("x", value=1)
        journal.close(counters={"b": 2, "a": 1})
        lines = [json.loads(line)
                 for line in target.read_text().splitlines()]
        assert lines == journal.events
        assert lines[-1]["type"] == "run_end"
        assert lines[-1]["counters"] == {"a": 1, "b": 2}

    def test_directory_path_gets_default_name(self, tmp_path):
        journal = RunJournal(tmp_path)
        journal.close()
        assert journal.path == tmp_path / "journal.jsonl"
        assert journal.path.exists()

    def test_parent_directories_created(self, tmp_path):
        target = tmp_path / "deep" / "er" / "run.jsonl"
        RunJournal(target).close()
        assert target.exists()


class TestClose:
    def test_close_is_idempotent(self):
        journal = RunJournal(None)
        journal.close()
        before = len(journal.events)
        journal.close("failed", error="nope")
        assert len(journal.events) == before
        assert journal.events[-1]["status"] == "ok"

    def test_emit_after_close_raises(self):
        journal = RunJournal(None)
        journal.close()
        with pytest.raises(ConfigurationError):
            journal.emit("x")

    def test_run_end_counts_events(self):
        journal = RunJournal(None)
        journal.emit("x")
        journal.emit("y")
        journal.close()
        assert journal.events[-1]["events"] == 3

    def test_context_manager_success(self):
        with RunJournal(None) as journal:
            journal.emit("x")
        assert journal.events[-1]["status"] == "ok"

    def test_context_manager_failure_records_error(self):
        with pytest.raises(ValueError):
            with RunJournal(None) as journal:
                raise ValueError("boom")
        end = journal.events[-1]
        assert end["status"] == "failed"
        assert "ValueError" in end["error"]
        assert "boom" in end["error"]


class TestRunStart:
    def test_records_scenario_and_provenance(self):
        journal = RunJournal(None)
        event = journal.run_start(SCENARIO, jobs=2)
        assert event["seed"] == SCENARIO.seed
        assert event["fault_profile"] == SCENARIO.fault_profile
        assert event["jobs"] == 2
        assert isinstance(event["scenario"], dict)
        assert len(event["code_version"]) == 16

    def test_idempotent(self):
        journal = RunJournal(None)
        first = journal.run_start(SCENARIO)
        again = journal.run_start(SCENARIO)
        assert first is again
        assert len(journal.events) == 1


class TestMisc:
    def test_warn_emits_warning_event(self):
        journal = RunJournal(None)
        event = journal.warn("careful", phase="p")
        assert event["type"] == "warning"
        assert event["message"] == "careful"
        assert event["phase"] == "p"

    def test_echo_sees_every_event(self):
        seen = []
        journal = RunJournal(None, echo=seen.append)
        journal.emit("x")
        journal.close()
        assert [e["type"] for e in seen] == ["x", "run_end"]

    def test_canonical_events_strips_volatile_fields(self):
        journal = RunJournal(None)
        journal.emit("phase_end", phase="p", status="ok", wall_s=1.0)
        journal.close()
        for event in canonical_events(journal.events):
            assert not VOLATILE_FIELDS & set(event)
        # and keeps everything else
        assert canonical_events(journal.events)[0]["phase"] == "p"

    def test_canonical_events_drops_volatile_event_types(self):
        from repro.obs import VOLATILE_EVENT_TYPES

        assert {"chunk_spill", "shm_handoff"} <= VOLATILE_EVENT_TYPES
        journal = RunJournal(None)
        journal.emit("phase_begin", phase="p")
        journal.emit("chunk_spill", kind="cpu", shard=0, rows=64,
                     bytes=1024)
        journal.emit("shm_handoff", blocks=3, fallback_blocks=0, slots=4,
                     slot_bytes=128, bytes=4096, workers=2)
        journal.emit("phase_end", phase="p", status="ok", wall_s=0.1)
        canonical = canonical_events(journal.events)
        assert [e["type"] for e in canonical] == ["phase_begin", "phase_end"]
        # seq is renumbered densely so streamed and in-core runs of the
        # same scenario canonicalise byte-identically.
        assert [e["seq"] for e in canonical] == [0, 1]

    def test_canonical_equality_across_streaming(self):
        """A streamed run and an in-core run canonicalise identically."""
        from repro.workload.generator import generate_nep_workload
        from repro.workload.streaming import WorkloadSink

        def run(streamed: bool) -> list[dict]:
            from repro.perf import PerfRegistry

            journal = RunJournal(None)
            perf = PerfRegistry(journal=journal)
            sink = WorkloadSink.spill(journal=journal) if streamed else None
            generate_nep_workload(SCENARIO, perf=perf, sink=sink)
            return canonical_events(journal.events)

        assert run(streamed=False) == run(streamed=True)
