"""`repro trace diff` on live-engine journals (the replay/diff story).

Pins the satellite contract from docs/live.md: two live runs that
differ only in volatile tick events (telemetry, chaos retries) diff
clean, while a fault-interleaved run diverges from a clean one at
exactly the first fault tick.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.obs import read_journal
from repro.resilience import reset

TICKS = 200


@pytest.fixture(autouse=True)
def _clean_registry():
    reset()
    yield
    reset()


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    """Three real live runs: clean, under --chaos ci, and with faults.

    Module-scoped (the engine steps 200 ticks each); the chaos profile
    is reset manually because monkeypatch is function-scoped.
    """
    root = tmp_path_factory.mktemp("trace-live")
    paths = {"clean": root / "clean.jsonl", "chaos": root / "chaos.jsonl",
             "faulted": root / "faulted.jsonl"}

    def live(name, *extra):
        assert main(["run", "live", "--scale", "smoke",
                     "--ticks", str(TICKS), "--no-cache",
                     "--log-json", str(paths[name]), *extra]) == 0

    live("clean")
    try:
        live("chaos", "--chaos", "ci")
    finally:
        reset()
    live("faulted", "--faults", "paper")
    return paths


class TestVolatileOnlyDrift:
    def test_chaos_run_actually_retried(self, runs):
        # the pair differs in volatile events — the diff below is not
        # vacuously empty
        events, warnings = read_journal(runs["chaos"])
        assert warnings == []
        assert any(e["type"] == "live_retry" for e in events)

    def test_canonical_diff_is_clean(self, runs, capsys):
        assert main(["trace", "diff", str(runs["clean"]),
                     str(runs["chaos"])]) == 0
        out = capsys.readouterr().out
        assert "result: no behavioural differences" in out
        assert "live_retry" not in out

    def test_raw_diff_keeps_the_chaos_story(self, runs, capsys):
        assert main(["trace", "diff", "--raw", str(runs["clean"]),
                     str(runs["chaos"])]) == 0
        out = capsys.readouterr().out
        assert "live_retry" in out

    def test_raw_flag_parses(self):
        args = build_parser().parse_args(
            ["trace", "diff", "--raw", "a.jsonl", "b.jsonl"])
        assert args.raw is True


class TestFaultDivergence:
    def test_diff_localizes_first_fault_tick(self, runs, capsys):
        events, _ = read_journal(runs["faulted"])
        fault_ticks = [e["tick"] for e in events
                       if e["type"] == "live_fault"]
        assert fault_ticks  # paper weather produced faults in 200 ticks
        assert main(["trace", "diff", str(runs["clean"]),
                     str(runs["faulted"])]) == 0
        out = capsys.readouterr().out
        assert "result: behavioural differences found" in out
        assert (f"live: fault timeline diverges at tick "
                f"{min(fault_ticks)}") in out

    def test_diff_reports_digest_change(self, runs, capsys):
        assert main(["trace", "diff", str(runs["clean"]),
                     str(runs["faulted"])]) == 0
        assert "live: series digest" in capsys.readouterr().out

    def test_summary_renders_live_rollup(self, runs, capsys):
        assert main(["trace", "summary", str(runs["faulted"])]) == 0
        out = capsys.readouterr().out
        assert "live:" in out
        assert f"{TICKS} ticks" in out
