"""Tests for the memory sampler (repro.obs.memory)."""

from __future__ import annotations

from repro.obs import MemorySampler
from repro.obs.memory import _read_proc_status, _read_rusage


class TestMemorySampler:
    def test_sample_shape(self):
        sample = MemorySampler().sample()
        assert set(sample) == {"rss_mb", "peak_rss_mb"}
        assert sample["rss_mb"] > 0
        # VmHWM can lag VmRSS by a page or two on some kernels.
        assert sample["peak_rss_mb"] >= sample["rss_mb"] * 0.9

    def test_rusage_fallback_positive(self):
        sample = _read_rusage()
        assert sample["rss_mb"] > 0
        assert sample["peak_rss_mb"] >= sample["rss_mb"]

    def test_backends_roughly_agree(self):
        proc = _read_proc_status()
        if proc is None:  # platform without procfs: fallback covers it
            return
        # Same process, same order of magnitude (procfs RSS vs rusage HWM).
        ratio = proc["peak_rss_mb"] / _read_rusage()["peak_rss_mb"]
        assert 0.1 < ratio < 10

    def test_sampler_sticks_to_working_backend(self):
        sampler = MemorySampler()
        sampler.sample()
        # After one successful procfs read the flag must still be set
        # (or permanently cleared on non-procfs platforms) — never flap.
        first = sampler._proc_ok
        sampler.sample()
        assert sampler._proc_ok == first
