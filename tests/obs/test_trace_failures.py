"""`repro trace` on failed and retried runs (the chaos observability story).

Pins the satellite contract: a run that retried renders the recovery
events in show/summary, a run that failed closes its journal with
``status=failed``, and a chaos run's canonical journal diffs empty
against a clean run's.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.obs import canonical_events, diff_journals, read_journal
from repro.resilience import FAILPOINTS_ENV, reset


@pytest.fixture(autouse=True)
def _clean_registry():
    reset()
    yield
    reset()


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    """Three real smoke runs: clean, retried-but-ok, and failed.

    Module-scoped (one workload generation each); the failpoint env var
    is managed manually because monkeypatch is function-scoped.
    """
    import os

    root = tmp_path_factory.mktemp("trace-failures")
    paths = {"clean": root / "clean.jsonl", "retried": root / "retried.jsonl",
             "failed": root / "failed.jsonl"}
    assert main(["run", "fig9", "--log-json", str(paths["clean"]),
                 "--cache-dir", str(root / "cache-clean")]) == 0
    os.environ[FAILPOINTS_ENV] = "series.render:nth=1"
    try:
        assert main(["run", "fig9", "--log-json", str(paths["retried"]),
                     "--cache-dir", str(root / "cache-retried")]) == 0
        reset()
        # Every render attempt fails: the workload phases quarantine and
        # the run closes failed (still journaled end to end).
        os.environ[FAILPOINTS_ENV] = "series.render:nth=1,times=9999"
        assert main(["run", "fig9", "--log-json", str(paths["failed"]),
                     "--no-cache"]) == 1
    finally:
        os.environ.pop(FAILPOINTS_ENV, None)
        reset()
    return paths


class TestRetriedRun:
    def test_journal_records_retry_and_closes_ok(self, runs):
        events, warnings = read_journal(runs["retried"])
        assert warnings == []
        assert events[-1]["status"] == "ok"
        retries = [e for e in events if e["type"] == "job_retry"]
        assert retries and "InjectedFault" in retries[0]["error"]

    def test_show_renders_retry_events(self, runs, capsys):
        assert main(["trace", "show", str(runs["retried"])]) == 0
        assert "job_retry" in capsys.readouterr().out

    def test_summary_has_resilience_line(self, runs, capsys):
        assert main(["trace", "summary", str(runs["retried"])]) == 0
        out = capsys.readouterr().out
        assert "status=ok" in out
        assert "resilience:" in out
        assert "job retries" in out

    def test_canonical_diff_vs_clean_is_empty(self, runs):
        clean, _ = read_journal(runs["clean"])
        retried, _ = read_journal(runs["retried"])
        assert canonical_events(clean) != canonical_events([])  # non-trivial
        assert canonical_events(retried) == canonical_events(clean)
        rendered = diff_journals(canonical_events(clean),
                                 canonical_events(retried))
        assert "identical type counts" in rendered
        assert "identical behaviour" in rendered

    def test_raw_diff_shows_only_volatile_drift(self, runs):
        clean, _ = read_journal(runs["clean"])
        retried, _ = read_journal(runs["retried"])
        rendered = diff_journals(clean, retried)
        assert "job_retry" in rendered  # raw view keeps the chaos story


class TestFailedRun:
    def test_journal_closes_failed_with_quarantine(self, runs):
        events, _ = read_journal(runs["failed"])
        end = events[-1]
        assert end["type"] == "run_end" and end["status"] == "failed"
        assert any(e["type"] == "job_quarantined" for e in events)
        assert any(e["type"] == "job_retry" for e in events)
        failed_phases = [e for e in events if e["type"] == "phase_end"
                         and e.get("status") == "failed"]
        assert failed_phases

    def test_summary_renders_failure_and_retries(self, runs, capsys):
        assert main(["trace", "summary", str(runs["failed"])]) == 0
        out = capsys.readouterr().out
        assert "status=failed" in out
        assert "error:" in out
        assert "resilience:" in out
        assert "quarantined" in out

    def test_diff_failed_vs_clean_flags_status(self, runs):
        clean, _ = read_journal(runs["clean"])
        failed, _ = read_journal(runs["failed"])
        rendered = diff_journals(clean, failed)
        assert "status: ok -> failed" in rendered
