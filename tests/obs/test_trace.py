"""Tests for the journal reader and renderers (repro.obs.trace)."""

from __future__ import annotations

import json

from repro.obs import (
    RunJournal,
    diff_journals,
    phase_breakdown,
    read_journal,
    render_show,
    render_summary,
    summarize_journal,
)
from repro.config import Scenario


def sample_events(*, cached: bool = False,
                  wall: float = 1.0) -> list[dict]:
    """A hand-built but schema-faithful journal for renderer tests."""
    journal = RunJournal(None)
    journal.run_start(Scenario.smoke_scale(), jobs=1, cache=True)
    if cached:
        journal.emit("cache_hit", artifact="workload_nep", kind="workload",
                     key="k" * 64)
    else:
        journal.emit("cache_miss", artifact="workload_nep", key="k" * 64)
    journal.emit("span_begin", span="workload_nep")
    journal.emit("phase_begin", phase="workload_nep")
    journal.emit("job_dispatch", app_id="app-1", vm_count=3)
    journal.emit("job_complete", app_id="app-1", vms=3, wall_s=wall / 2)
    if not cached:
        journal.emit("cache_store", artifact="workload_nep",
                     kind="workload", key="k" * 64, bytes=1234)
    journal.emit("phase_end", phase="workload_nep", status="ok",
                 wall_s=wall)
    journal.emit("span_end", span="workload_nep", wall_s=wall,
                 cpu_s=wall / 2)
    journal.emit("fault_schedule", profile="paper", outages=3,
                 server_crashes=1, episodes=2, mttr_minutes=90.0)
    journal.emit("probe_stats", probe="ping", probes=10, attempts=12,
                 timed_out=2, recovered=1, unreachable=1)
    journal.close(counters={"nep_vms": 3})
    return journal.events


def write_journal(path, events) -> None:
    path.write_text("".join(json.dumps(e) + "\n" for e in events))


class TestReadJournal:
    def test_round_trip(self, tmp_path):
        events = sample_events()
        target = tmp_path / "run.jsonl"
        write_journal(target, events)
        loaded, warnings = read_journal(target)
        assert loaded == events
        assert warnings == []

    def test_corrupt_middle_line_skipped_with_warning(self, tmp_path):
        events = sample_events()
        lines = [json.dumps(e) for e in events]
        lines.insert(2, "{this is not json")
        target = tmp_path / "run.jsonl"
        target.write_text("\n".join(lines) + "\n")
        loaded, warnings = read_journal(target)
        assert loaded == events
        assert any("corrupt" in w for w in warnings)

    def test_truncated_final_line_reported_as_truncation(self, tmp_path):
        events = sample_events()
        text = "".join(json.dumps(e) + "\n" for e in events[:-1])
        text += json.dumps(events[-1])[:20]  # killed mid-write
        target = tmp_path / "run.jsonl"
        target.write_text(text)
        loaded, warnings = read_journal(target)
        assert loaded == events[:-1]
        assert any("truncated" in w for w in warnings)
        assert any("run_end" in w for w in warnings)

    def test_missing_run_end_warned(self, tmp_path):
        events = sample_events()[:-1]
        target = tmp_path / "run.jsonl"
        write_journal(target, events)
        _, warnings = read_journal(target)
        assert any("run_end" in w for w in warnings)


class TestPhaseBreakdown:
    def test_merges_phase_span_and_cache(self):
        phases = phase_breakdown(sample_events())
        entry = phases["workload_nep"]
        assert entry["status"] == "ok"
        assert entry["wall_s"] == 1.0
        assert entry["cpu_s"] == 0.5
        assert entry["cached"] is False

    def test_cache_hit_marks_phase_cached(self):
        phases = phase_breakdown(sample_events(cached=True))
        assert phases["workload_nep"]["cached"] is True


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize_journal(sample_events())
        assert summary.status == "ok"
        assert summary.run["seed"] == Scenario.smoke_scale().seed
        assert "workload_nep" in summary.phases
        assert summary.pool == {"dispatched": 1, "completed": 1, "vms": 3}
        assert summary.faults["profile"] == "paper"
        assert summary.probe_stats["ping"]["timed_out"] == 2
        assert summary.event_counts["phase_end"] == 1


class TestRenderers:
    def test_render_summary_accounts_for_everything(self):
        text = render_summary(sample_events())
        assert "status=ok" in text
        assert "workload_nep" in text
        assert "cache:" in text and "1 misses" in text
        assert "pool: 1 jobs dispatched, 1 completed" in text
        assert "faults: profile=paper" in text
        assert "probes[ping]" in text
        assert "nep_vms=3" in text

    def test_render_show_one_line_per_event(self):
        events = sample_events()
        lines = render_show(events).splitlines()
        assert len(lines) == len(events)
        assert "run_start" in lines[0]
        assert "run_end" in lines[-1]

    def test_render_show_limit_keeps_tail(self):
        events = sample_events()
        lines = render_show(events, limit=3).splitlines()
        assert len(lines) == 4  # elision marker + 3 events
        assert "elided" in lines[0]
        assert "run_end" in lines[-1]

    def test_render_summary_with_no_events(self):
        # Tolerant renderer: an empty journal yields a zeroed summary,
        # not a crash.
        text = render_summary([])
        assert "status=unknown" in text
        assert "0 total" in text

    def test_diff_shows_cache_transition(self):
        cold = sample_events(wall=1.0)
        warm = sample_events(cached=True, wall=0.1)
        text = diff_journals(cold, warm, "cold", "warm")
        assert "cold -> warm" in text
        assert "generated -> hit" in text
        assert "workload_nep" in text

    def test_diff_identical_runs(self):
        events = sample_events()
        text = diff_journals(events, events, "a", "b")
        assert "a -> b" in text
