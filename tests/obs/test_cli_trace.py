"""End-to-end tests for `--log-json` and the `repro trace` subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import read_journal


@pytest.fixture()
def journal_path(tmp_path):
    """A journal produced by a real smoke-scale CLI run."""
    path = tmp_path / "run.jsonl"
    code = main(["run", "fig2a", "table3", "--log-json", str(path),
                 "--cache-dir", str(tmp_path / "cache")])
    assert code == 0
    return path


class TestParser:
    def test_log_json_flag(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "fig3", "--log-json", "out.jsonl"])
        assert str(args.log_json) == "out.jsonl"

    def test_verbose_quiet_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig3", "-v", "-q"])

    def test_trace_subcommand(self):
        args = build_parser().parse_args(["trace", "summary", "a.jsonl"])
        assert args.action == "summary"


class TestLogJson(object):
    def test_journal_accounts_for_the_run(self, journal_path):
        events, warnings = read_journal(journal_path)
        assert warnings == []
        types = [e["type"] for e in events]
        assert types[0] == "run_start"
        assert types[-1] == "run_end"
        assert events[-1]["status"] == "ok"
        assert "counters" in events[-1]
        # every phase opened is closed
        begun = [e["phase"] for e in events if e["type"] == "phase_begin"]
        ended = [e["phase"] for e in events if e["type"] == "phase_end"]
        assert begun and begun == ended
        # every cache miss at smoke scale is followed by a store
        missed = {e["artifact"] for e in events if e["type"] == "cache_miss"}
        stored = {e["artifact"] for e in events if e["type"] == "cache_store"}
        assert missed == stored
        # every dispatched pool job completes
        dispatched = [e["app_id"] for e in events
                      if e["type"] == "job_dispatch"]
        completed = [e["app_id"] for e in events
                     if e["type"] == "job_complete"]
        assert sorted(dispatched) == sorted(completed)

    def test_failed_experiment_marks_run_failed(self, tmp_path):
        path = tmp_path / "run.jsonl"
        # fig14 needs a 28-day trace; smoke has 7 -> the experiment fails
        # but the journal must still close cleanly with status=failed.
        code = main(["run", "fig14", "--log-json", str(path),
                     "--no-cache"])
        assert code == 1
        events, _ = read_journal(path)
        end = events[-1]
        assert end["type"] == "run_end"
        assert end["status"] == "failed"
        assert "fig14" in end["error"]
        assert any(e["type"] == "warning" for e in events)


class TestTrace:
    def test_summary_renders_all_phases(self, journal_path, capsys):
        assert main(["trace", "summary", str(journal_path)]) == 0
        out = capsys.readouterr().out
        assert "status=ok" in out
        for phase in ("workload_nep", "platform_alicloud",
                      "campaign_latency"):
            assert phase in out
        assert "cache:" in out
        assert "pool:" in out

    def test_show_respects_limit(self, journal_path, capsys):
        assert main(["trace", "show", str(journal_path),
                     "--limit", "5"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert len(out) == 6  # elision marker + 5 events
        assert "run_end" in out[-1]

    def test_diff_of_cold_and_warm(self, journal_path, tmp_path, capsys):
        warm = tmp_path / "warm.jsonl"
        assert main(["run", "fig2a", "table3", "--log-json", str(warm),
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        assert main(["trace", "diff", str(journal_path), str(warm)]) == 0
        out = capsys.readouterr().out
        assert "generated -> hit" in out

    def test_diff_requires_two_journals(self, journal_path, capsys):
        assert main(["trace", "diff", str(journal_path)]) == 2
        assert "exactly 2" in capsys.readouterr().err

    def test_summary_requires_one_journal(self, journal_path, capsys):
        assert main(["trace", "summary", str(journal_path),
                     str(journal_path)]) == 2

    def test_missing_journal_is_a_clean_error(self, tmp_path, capsys):
        assert main(["trace", "summary",
                     str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_truncated_journal_tolerated(self, journal_path, capsys):
        text = journal_path.read_text()
        journal_path.write_text(text[:-40])  # kill the run_end mid-line
        assert main(["trace", "summary", str(journal_path)]) == 0
        captured = capsys.readouterr()
        assert "warning" in captured.err
        assert "status=unknown" in captured.out

    def test_corrupt_line_tolerated(self, journal_path, capsys):
        lines = journal_path.read_text().splitlines()
        lines[3] = '{"broken":'
        journal_path.write_text("\n".join(lines) + "\n")
        assert main(["trace", "show", str(journal_path)]) == 0
        assert "corrupt" in capsys.readouterr().err


class TestVerboseEcho:
    def test_verbose_streams_events_to_stderr(self, tmp_path, capsys):
        assert main(["info", "--no-cache", "-v"]) == 0
        err = capsys.readouterr().err
        assert "run_start" in err
        assert "run_end" in err
