"""Journal determinism: same scenario+seed => same canonical journal.

The contract (docs/observability.md): strip the volatile fields
(timestamps, durations, memory, execution knobs) and a journal is a
pure function of the scenario and cache state — identical across
repeats, across ``--jobs`` settings, and with fault injection on.
"""

from __future__ import annotations

import pytest

from repro.cache import ArtifactCache
from repro.obs import RunJournal, VOLATILE_FIELDS, canonical_events
from repro.study import EdgeStudy, scenario_for


def run_canonical(jobs: int = 1, faults: str | None = None,
                  cache: ArtifactCache | None = None) -> list[dict]:
    """Drive the journalled phases of a smoke study; canonical events."""
    scenario = scenario_for("smoke", faults=faults)
    with RunJournal(None) as journal:
        study = EdgeStudy(scenario, jobs=jobs, cache=cache, journal=journal)
        study.nep
        study.latency_results
        journal.close(counters=study.perf.counters)
    return canonical_events(journal.events)


class TestDeterminism:
    def test_serial_repeat_identical(self):
        assert run_canonical() == run_canonical()

    def test_serial_vs_two_jobs_identical(self):
        assert run_canonical(jobs=1) == run_canonical(jobs=2)

    def test_faulted_serial_vs_two_jobs_identical(self):
        assert (run_canonical(jobs=1, faults="paper")
                == run_canonical(jobs=2, faults="paper"))

    def test_faults_change_the_journal(self):
        off = run_canonical()
        on = run_canonical(faults="paper")
        assert off != on
        assert any(e["type"] == "fault_schedule" for e in on)
        assert not any(e["type"] == "fault_schedule" for e in off)

    def test_warm_runs_identical_across_jobs(self, tmp_path):
        cold = run_canonical(cache=ArtifactCache(tmp_path / "c"))
        warm_serial = run_canonical(cache=ArtifactCache(tmp_path / "c"))
        warm_pool = run_canonical(jobs=2,
                                  cache=ArtifactCache(tmp_path / "c"))
        assert warm_serial == warm_pool
        assert cold != warm_serial  # misses+stores became hits
        hits = [e for e in warm_serial if e["type"] == "cache_hit"]
        assert hits

    def test_no_volatile_fields_survive(self):
        for event in run_canonical(jobs=2):
            leaked = VOLATILE_FIELDS & set(event)
            assert not leaked, (event["type"], leaked)

    def test_pool_accounting_matches_serial(self):
        events = run_canonical(jobs=2)
        dispatched = [e["app_id"] for e in events
                      if e["type"] == "job_dispatch"]
        completed = [e["app_id"] for e in events
                     if e["type"] == "job_complete"]
        assert dispatched
        assert sorted(dispatched) == sorted(completed)
