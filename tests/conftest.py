"""Shared fixtures: one smoke-scale study reused across the whole suite.

Generating platforms/traces/campaigns is the expensive part of testing
this library, so everything derived from the smoke scenario is
session-scoped and computed lazily through the EdgeStudy facade.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import Scenario, smoke_study, study_for


@pytest.fixture(scope="session", autouse=True)
def _isolated_cache_dir(tmp_path_factory):
    """Keep the suite hermetic: never touch the user's ~/.cache/repro."""
    root = tmp_path_factory.mktemp("artifact-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(root)
    yield root
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def study():
    """The shared reduced-scale study."""
    return smoke_study()


@pytest.fixture(scope="session")
def faulty_study():
    """The shared reduced-scale study with the paper fault profile on."""
    return study_for("smoke", faults="paper")


@pytest.fixture(scope="session")
def scenario(study) -> Scenario:
    return study.scenario


@pytest.fixture(scope="session")
def nep_workload(study):
    return study.nep


@pytest.fixture(scope="session")
def nep_dataset(nep_workload):
    return nep_workload.dataset


@pytest.fixture(scope="session")
def nep_platform(nep_workload):
    return nep_workload.platform


@pytest.fixture(scope="session")
def azure_workload(study):
    return study.azure


@pytest.fixture(scope="session")
def azure_dataset(azure_workload):
    return azure_workload.dataset


@pytest.fixture(scope="session")
def latency_results(study):
    return study.latency_results


@pytest.fixture(scope="session")
def throughput_results(study):
    return study.throughput_results


@pytest.fixture(scope="session")
def per_user(study):
    return study.per_user


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)
