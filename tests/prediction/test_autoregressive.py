"""Tests for the seasonal-AR (ARIMA-family) forecaster."""

import numpy as np
import pytest

from repro.errors import PredictionError
from repro.prediction.autoregressive import SeasonalARForecaster
from repro.prediction.evaluate import ExperimentSpec, evaluate_seasonal_ar


def _seasonal_series(days=14, period=48, noise=0.01, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(days * period)
    series = 0.4 + 0.25 * np.sin(2 * np.pi * t / period)
    return np.clip(series + rng.normal(0, noise, t.size), 0, 1)


class TestConstruction:
    def test_bad_season_rejected(self):
        with pytest.raises(PredictionError):
            SeasonalARForecaster(season_length=1)

    def test_bad_order_rejected(self):
        with pytest.raises(PredictionError):
            SeasonalARForecaster(season_length=48, order=0)

    def test_negative_ridge_rejected(self):
        with pytest.raises(PredictionError):
            SeasonalARForecaster(season_length=48, ridge=-1.0)


class TestFitting:
    def test_too_short_rejected(self):
        model = SeasonalARForecaster(season_length=48)
        with pytest.raises(PredictionError):
            model.fit(np.zeros(30))

    def test_forecast_before_fit_rejected(self):
        with pytest.raises(PredictionError):
            SeasonalARForecaster(season_length=48).forecast_next()

    def test_update_before_fit_rejected(self):
        with pytest.raises(PredictionError):
            SeasonalARForecaster(season_length=48).update(0.5)


class TestForecasting:
    def test_tracks_clean_seasonal_signal(self):
        series = _seasonal_series(noise=0.002)
        train, test = series[:-96], series[-96:]
        model = SeasonalARForecaster(season_length=48).fit(train)
        forecasts = model.walk_forward(test)
        rmse = np.sqrt(np.mean((forecasts - test) ** 2))
        assert rmse < 0.02

    def test_beats_naive_mean(self):
        series = _seasonal_series(noise=0.02)
        train, test = series[:-96], series[-96:]
        model = SeasonalARForecaster(season_length=48).fit(train)
        forecasts = model.walk_forward(test)
        model_rmse = np.sqrt(np.mean((forecasts - test) ** 2))
        naive_rmse = np.sqrt(np.mean((train.mean() - test) ** 2))
        assert model_rmse < naive_rmse

    def test_constant_series_stays_constant(self):
        model = SeasonalARForecaster(season_length=48).fit(
            np.full(480, 0.3))
        assert model.forecast_next() == pytest.approx(0.3, abs=0.01)

    def test_walk_forward_length(self):
        series = _seasonal_series()
        model = SeasonalARForecaster(season_length=48).fit(series[:-20])
        assert model.walk_forward(series[-20:]).shape == (20,)

    def test_harness_integration(self):
        spec = ExperimentSpec(cpu_interval_minutes=30, window_minutes=30,
                              train_days=7, test_days=2)
        outcome = evaluate_seasonal_ar(
            "vm0", _seasonal_series(days=9), "mean", spec)
        assert outcome.model == "seasonal-ar"
        assert outcome.rmse_percent < 5.0

    def test_comparable_to_holt_winters(self):
        from repro.prediction.evaluate import evaluate_holt_winters
        spec = ExperimentSpec(cpu_interval_minutes=30, window_minutes=30,
                              train_days=7, test_days=2)
        series = _seasonal_series(days=9, noise=0.02)
        ar = evaluate_seasonal_ar("vm0", series, "mean", spec)
        hw = evaluate_holt_winters("vm0", series, "mean", spec)
        assert ar.rmse_percent < 3 * hw.rmse_percent
