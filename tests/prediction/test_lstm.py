"""Tests for the numpy LSTM forecaster."""

import numpy as np
import pytest

from repro.errors import PredictionError
from repro.prediction.lstm import LSTMForecaster


def _sine(points=600, period=48, noise=0.005, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(points)
    return 0.5 + 0.3 * np.sin(2 * np.pi * t / period) \
        + rng.normal(0, noise, points)


class TestArchitecture:
    def test_paper_weight_count(self):
        # §4.4: "1 layer and 24 units (2496 weights)".
        assert LSTMForecaster(hidden=24).lstm_weight_count == 2496

    def test_bad_window_rejected(self):
        with pytest.raises(PredictionError):
            LSTMForecaster(window=1)

    def test_bad_hidden_rejected(self):
        with pytest.raises(PredictionError):
            LSTMForecaster(hidden=0)


class TestTraining:
    def test_too_short_series_rejected(self):
        with pytest.raises(PredictionError):
            LSTMForecaster(window=24).fit(np.zeros(10))

    def test_learns_sine_better_than_mean(self):
        series = _sine()
        train, test = series[:500], series[500:]
        model = LSTMForecaster(window=24, epochs=40, seed=1).fit(train)
        preds = model.walk_forward(train, test)
        model_rmse = np.sqrt(np.mean((preds - test) ** 2))
        naive_rmse = np.sqrt(np.mean((train.mean() - test) ** 2))
        assert model_rmse < 0.5 * naive_rmse

    def test_training_reduces_loss(self):
        series = _sine(points=400)
        few = LSTMForecaster(window=24, epochs=2, seed=2).fit(series[:350])
        many = LSTMForecaster(window=24, epochs=40, seed=2).fit(series[:350])
        test = series[350:]
        rmse_few = np.sqrt(np.mean(
            (few.walk_forward(series[:350], test) - test) ** 2))
        rmse_many = np.sqrt(np.mean(
            (many.walk_forward(series[:350], test) - test) ** 2))
        assert rmse_many < rmse_few

    def test_deterministic_given_seed(self):
        series = _sine(points=300)
        a = LSTMForecaster(window=12, epochs=5, seed=3).fit(series)
        b = LSTMForecaster(window=12, epochs=5, seed=3).fit(series)
        assert a.predict_next(series) == b.predict_next(series)

    def test_constant_series_handled(self):
        # std = 0 must not divide by zero.
        series = np.full(200, 0.4)
        model = LSTMForecaster(window=12, epochs=3).fit(series)
        assert np.isfinite(model.predict_next(series))


class TestPrediction:
    def test_short_history_rejected(self):
        model = LSTMForecaster(window=24, epochs=2).fit(_sine(points=200))
        with pytest.raises(PredictionError):
            model.predict_next(np.zeros(10))

    def test_walk_forward_length(self):
        series = _sine(points=300)
        model = LSTMForecaster(window=12, epochs=3).fit(series[:250])
        preds = model.walk_forward(series[:250], series[250:])
        assert preds.shape == (50,)
