"""Tests for the §4.4 prediction harness."""

import numpy as np
import pytest

from repro.errors import PredictionError
from repro.prediction.evaluate import (
    ExperimentSpec,
    evaluate_holt_winters,
    evaluate_lstm,
    split_train_test,
    window_aggregate,
)


def _raw_series(days=10, interval=30, seed=0):
    rng = np.random.default_rng(seed)
    per_day = 24 * 60 // interval
    t = np.arange(days * per_day)
    series = 0.3 + 0.2 * np.sin(2 * np.pi * t / per_day)
    return np.clip(series + rng.normal(0, 0.01, t.size), 0, 1)


SPEC = ExperimentSpec(cpu_interval_minutes=30, window_minutes=30,
                      train_days=7, test_days=2)


class TestWindowing:
    def test_max_aggregation(self):
        series = np.array([0.1, 0.5, 0.3, 0.2])
        assert window_aggregate(series, 2, "max").tolist() == [0.5, 0.3]

    def test_mean_aggregation(self):
        series = np.array([0.2, 0.4, 0.6, 0.8])
        assert window_aggregate(series, 2, "mean").tolist() == \
            pytest.approx([0.3, 0.7])

    def test_partial_window_rejected(self):
        with pytest.raises(PredictionError):
            window_aggregate(np.zeros(5), 2, "max")

    def test_unknown_reducer_rejected(self):
        with pytest.raises(PredictionError):
            window_aggregate(np.zeros(4), 2, "p99")

    def test_spec_window_alignment_checked(self):
        spec = ExperimentSpec(cpu_interval_minutes=7)
        with pytest.raises(PredictionError):
            _ = spec.readings_per_window


class TestSplit:
    def test_split_sizes(self):
        windows = np.arange(SPEC.windows_per_day * 9, dtype=float)
        train, test = split_train_test(windows, SPEC)
        assert train.size == 7 * SPEC.windows_per_day
        assert test.size == 2 * SPEC.windows_per_day

    def test_too_short_rejected(self):
        with pytest.raises(PredictionError):
            split_train_test(np.zeros(10), SPEC)

    def test_no_overlap(self):
        windows = np.arange(SPEC.windows_per_day * 9, dtype=float)
        train, test = split_train_test(windows, SPEC)
        assert train[-1] < test[0]


class TestEvaluators:
    def test_holt_winters_outcome(self):
        outcome = evaluate_holt_winters("vm0", _raw_series(), "mean", SPEC)
        assert outcome.model == "holt-winters"
        assert outcome.target == "mean"
        assert 0.0 <= outcome.rmse_percent < 20.0

    def test_lstm_outcome(self):
        outcome = evaluate_lstm("vm0", _raw_series(), "max", SPEC,
                                epochs=8)
        assert outcome.model == "lstm"
        assert 0.0 <= outcome.rmse_percent < 30.0

    def test_seasonal_series_predicts_well(self):
        # The paper's headline: low single-digit percent errors.
        outcome = evaluate_holt_winters("vm0", _raw_series(), "mean", SPEC)
        assert outcome.rmse_percent < 5.0
