"""Tests for the Holt-Winters forecaster."""

import numpy as np
import pytest

from repro.errors import PredictionError
from repro.prediction.holtwinters import HoltWinters


def _seasonal_series(days=14, period=48, noise=0.01, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(days * period)
    series = 0.4 + 0.25 * np.sin(2 * np.pi * t / period)
    return np.clip(series + rng.normal(0, noise, t.size), 0, 1)


class TestFitting:
    def test_too_short_rejected(self):
        with pytest.raises(PredictionError):
            HoltWinters(season_length=48).fit(np.zeros(50))

    def test_bad_season_length_rejected(self):
        with pytest.raises(PredictionError):
            HoltWinters(season_length=1)

    def test_grid_search_fills_params(self):
        model = HoltWinters(season_length=48).fit(_seasonal_series())
        assert model.alpha is not None
        assert model.beta is not None
        assert model.gamma is not None

    def test_explicit_params_kept(self):
        model = HoltWinters(season_length=48, alpha=0.3, beta=0.05,
                            gamma=0.2)
        model.fit(_seasonal_series())
        assert (model.alpha, model.beta, model.gamma) == (0.3, 0.05, 0.2)


class TestForecasting:
    def test_forecast_before_fit_rejected(self):
        with pytest.raises(PredictionError):
            HoltWinters(season_length=48).forecast_next()

    def test_update_before_fit_rejected(self):
        with pytest.raises(PredictionError):
            HoltWinters(season_length=48).update(0.5)

    def test_tracks_clean_seasonal_signal(self):
        series = _seasonal_series(noise=0.001)
        train, test = series[:-96], series[-96:]
        model = HoltWinters(season_length=48).fit(train)
        forecasts = model.walk_forward(test)
        rmse = np.sqrt(np.mean((forecasts - test) ** 2))
        assert rmse < 0.02

    def test_seasonal_signal_beats_noise_only_baseline(self):
        series = _seasonal_series(noise=0.02)
        train, test = series[:-96], series[-96:]
        model = HoltWinters(season_length=48).fit(train)
        forecasts = model.walk_forward(test)
        model_rmse = np.sqrt(np.mean((forecasts - test) ** 2))
        naive_rmse = np.sqrt(np.mean((train.mean() - test) ** 2))
        assert model_rmse < naive_rmse

    def test_walk_forward_length(self):
        series = _seasonal_series()
        model = HoltWinters(season_length=48).fit(series[:-20])
        assert model.walk_forward(series[-20:]).shape == (20,)

    def test_constant_series_forecast_constant(self):
        series = np.full(480, 0.3)
        model = HoltWinters(season_length=48).fit(series)
        assert model.forecast_next() == pytest.approx(0.3, abs=0.02)

    def test_update_advances_phase(self):
        model = HoltWinters(season_length=48).fit(_seasonal_series())
        before = model._state.index
        model.update(0.5)
        assert model._state.index == before + 1
