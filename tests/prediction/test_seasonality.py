"""Tests for the seasonality-strength metric."""

import numpy as np
import pytest

from repro.errors import PredictionError
from repro.prediction.seasonality import decompose, seasonality_strength


def _series(seasonal_amp, noise_amp, days=14, period=48, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(days * period)
    return (0.5 + seasonal_amp * np.sin(2 * np.pi * t / period)
            + rng.normal(0, noise_amp, t.size))


class TestDecompose:
    def test_too_short_rejected(self):
        with pytest.raises(PredictionError):
            decompose(np.zeros(10), period=48)

    def test_bad_period_rejected(self):
        with pytest.raises(PredictionError):
            decompose(np.zeros(100), period=1)

    def test_components_reconstruct_series(self):
        series = _series(0.3, 0.02)
        trend, seasonal, remainder = decompose(series, 48)
        assert np.allclose(trend + seasonal + remainder, series)

    def test_seasonal_component_is_periodic(self):
        series = _series(0.3, 0.0)
        _, seasonal, _ = decompose(series, 48)
        assert np.allclose(seasonal[:48], seasonal[48:96])


class TestStrength:
    def test_pure_seasonal_near_one(self):
        assert seasonality_strength(_series(0.3, 0.001), 48) > 0.95

    def test_pure_noise_near_zero(self):
        assert seasonality_strength(_series(0.0, 0.2), 48) < 0.15

    def test_monotone_in_signal_to_noise(self):
        strong = seasonality_strength(_series(0.3, 0.05), 48)
        weak = seasonality_strength(_series(0.05, 0.05), 48)
        assert strong > weak

    def test_constant_series_zero(self):
        assert seasonality_strength(np.full(480, 0.5), 48) == 0.0

    def test_bounded(self):
        for seed in range(5):
            value = seasonality_strength(_series(0.2, 0.1, seed=seed), 48)
            assert 0.0 <= value <= 1.0

    def test_nep_profile_more_seasonal_than_azure(self, nep_dataset,
                                                  azure_dataset):
        # §4.4: edge VMs show stronger seasonality than cloud VMs.
        def mean_strength(dataset, count=20):
            period = dataset.cpu_points_per_day
            vm_ids = [v for v in dataset.vm_ids()
                      if dataset.mean_cpu(v) > 0.01][:count]
            return np.mean([
                seasonality_strength(dataset.cpu_series[v].astype(float),
                                     period)
                for v in vm_ids
            ])

        assert mean_strength(nep_dataset) > mean_strength(azure_dataset)
