"""Tests for the seasonal pattern library."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.workload.patterns import (
    PATTERNS,
    ar1_noise,
    pattern,
    regime_switching_level,
    time_axis_minutes,
)

WEEK = time_axis_minutes(7, 5)


class TestTimeAxis:
    def test_length(self):
        axis = time_axis_minutes(2, 5)
        assert axis.size == 2 * 24 * 60 // 5

    def test_spacing(self):
        axis = time_axis_minutes(1, 15)
        assert np.all(np.diff(axis) == 15)

    def test_bad_args_rejected(self):
        with pytest.raises(ConfigurationError):
            time_axis_minutes(0, 5)
        with pytest.raises(ConfigurationError):
            time_axis_minutes(1, 0)


class TestPatterns:
    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_normalised_to_unit_mean(self, name):
        curve = pattern(name)(WEEK)
        assert curve.mean() == pytest.approx(1.0, rel=1e-6)

    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_non_negative(self, name):
        assert (pattern(name)(WEEK) >= 0).all()

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            pattern("full_moon")

    def test_evening_peak_location(self):
        # Entertainment traffic peaks around 21:00.
        day = time_axis_minutes(1, 5)
        curve = pattern("evening_entertainment")(day)
        peak_hour = (day[np.argmax(curve)] % (24 * 60)) / 60
        assert 19 <= peak_hour <= 23

    def test_school_peak_in_morning_classes(self):
        # §4.5: the education app peaks 9:00-12:00.
        day = time_axis_minutes(1, 5)
        curve = pattern("school_hours")(day)
        peak_hour = (day[np.argmax(curve)] % (24 * 60)) / 60
        assert 9 <= peak_hour <= 12

    def test_school_weekends_quieter(self):
        curve = pattern("school_hours")(WEEK)
        per_day = curve.reshape(7, -1).mean(axis=1)
        assert per_day[5:].mean() < per_day[:5].mean()

    def test_flat_is_constant(self):
        assert np.ptp(pattern("flat")(WEEK)) == 0.0

    def test_cloud_batch_weak_seasonality(self):
        # Cloud workloads swing far less than edge video traffic.
        batch = pattern("cloud_batch")(WEEK)
        video = pattern("evening_entertainment")(WEEK)
        assert batch.std() < video.std()


class TestRegimeSwitching:
    def test_levels_within_bounds(self, rng):
        levels = regime_switching_level(5000, rng, low=0.2, high=2.5)
        assert levels.min() >= 0.2 and levels.max() <= 2.5

    def test_piecewise_constant(self, rng):
        levels = regime_switching_level(5000, rng,
                                        switch_probability=0.002)
        changes = np.count_nonzero(np.diff(levels))
        assert changes < 50  # few switches, long holds

    def test_switches_do_happen(self, rng):
        levels = regime_switching_level(20_000, rng,
                                        switch_probability=0.01)
        assert np.unique(levels).size > 3

    def test_bad_probability_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            regime_switching_level(100, rng, switch_probability=0.0)

    @given(st.integers(min_value=10, max_value=2000))
    @settings(max_examples=30, deadline=None)
    def test_output_length(self, points):
        levels = regime_switching_level(points, np.random.default_rng(1))
        assert levels.size == points


class TestAr1Noise:
    def test_centred_on_one(self, rng):
        noise = ar1_noise(50_000, rng, rho=0.9, sigma=0.2)
        assert noise.mean() == pytest.approx(1.0, abs=0.05)

    def test_floored(self, rng):
        noise = ar1_noise(50_000, rng, rho=0.5, sigma=1.0)
        assert noise.min() >= 0.05

    def test_autocorrelated(self, rng):
        noise = ar1_noise(20_000, rng, rho=0.95, sigma=0.2)
        lag1 = np.corrcoef(noise[:-1], noise[1:])[0, 1]
        assert lag1 > 0.7

    def test_sigma_controls_spread(self, rng):
        calm = ar1_noise(20_000, np.random.default_rng(1), sigma=0.05)
        wild = ar1_noise(20_000, np.random.default_rng(1), sigma=0.4)
        assert calm.std() < wild.std()

    def test_bad_rho_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            ar1_noise(100, rng, rho=1.0)
