"""Tests for the batched (n_vms, n_ticks) series generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.apps import NEP_PROFILES, profiles_by_category
from repro.workload.bandwidth import (
    derive_private_series,
    derive_private_series_batch,
    generate_bw_series,
    generate_bw_series_batch,
)
from repro.workload.cpu import generate_cpu_series, generate_cpu_series_batch
from repro.workload.patterns import (
    ar1_noise_batch,
    regime_switching_levels,
    time_axis_minutes,
)

WEEK = time_axis_minutes(7, 5)
PROFILE = profiles_by_category(NEP_PROFILES)["live_streaming"]


class TestPatternBatches:
    def test_ar1_batch_shape(self, rng):
        noise = ar1_noise_batch(5, 200, rng)
        assert noise.shape == (5, 200)
        assert (noise >= 0.05).all()

    def test_ar1_batch_rows_independent(self, rng):
        noise = ar1_noise_batch(2, 4000, rng)
        correlation = np.corrcoef(noise[0], noise[1])[0, 1]
        assert abs(correlation) < 0.1

    def test_ar1_scalar_is_batch_row(self):
        # The scalar wrapper draws through the same batched code path.
        from repro.workload.patterns import ar1_noise

        scalar = ar1_noise(300, np.random.default_rng(9))
        batch = ar1_noise_batch(1, 300, np.random.default_rng(9))
        np.testing.assert_allclose(scalar, batch[0])

    def test_regime_levels_shape_and_bounds(self, rng):
        levels = regime_switching_levels(6, 500, rng, low=0.2, high=2.5)
        assert levels.shape == (6, 500)
        assert (levels >= 0.2).all() and (levels <= 2.5).all()

    def test_regime_levels_piecewise_constant_per_row(self, rng):
        levels = regime_switching_levels(4, 2000, rng,
                                         switch_probability=0.01)
        for row in levels:
            # Few distinct values per row, each held over a long stretch.
            assert len(np.unique(row)) < 60

    def test_regime_levels_rows_differ(self, rng):
        levels = regime_switching_levels(2, 1000, rng)
        assert not np.array_equal(levels[0], levels[1])

    def test_bad_count_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            ar1_noise_batch(0, 100, rng)
        with pytest.raises(ConfigurationError):
            regime_switching_levels(0, 100, rng)


class TestCpuBatch:
    def test_shape_and_bounds(self, rng):
        levels = np.array([0.1, 0.4, 0.8])
        series = generate_cpu_series_batch(PROFILE, levels, WEEK, rng)
        assert series.shape == (3, WEEK.size)
        assert (series >= 0).all() and (series <= 1).all()

    def test_rows_track_their_levels(self, rng):
        levels = np.array([0.1, 0.5])
        series = generate_cpu_series_batch(PROFILE, levels, WEEK, rng)
        assert series[0].mean() == pytest.approx(0.1, rel=0.25)
        assert series[1].mean() == pytest.approx(0.5, rel=0.25)

    def test_matches_scalar_distribution(self):
        """Batch rows and scalar series agree in mean within tolerance."""
        scalar = generate_cpu_series(PROFILE, 0.3, WEEK,
                                     np.random.default_rng(21))
        batch = generate_cpu_series_batch(PROFILE, np.full(8, 0.3), WEEK,
                                          np.random.default_rng(22))
        assert batch.mean() == pytest.approx(scalar.mean(), rel=0.15)

    def test_bad_level_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            generate_cpu_series_batch(PROFILE, np.array([0.5, 1.5]), WEEK,
                                      rng)
        with pytest.raises(ConfigurationError):
            generate_cpu_series_batch(PROFILE, np.array([]), WEEK, rng)


class TestBandwidthBatch:
    def test_shape_and_sign(self, rng):
        means = np.array([5.0, 50.0])
        series = generate_bw_series_batch(PROFILE, means, WEEK, rng)
        assert series.shape == (2, WEEK.size)
        assert (series >= 0).all()

    def test_rows_track_their_means(self, rng):
        means = np.array([5.0, 50.0])
        series = generate_bw_series_batch(PROFILE, means, WEEK, rng)
        assert series[1].mean() > series[0].mean() * 5

    def test_matches_scalar_distribution(self):
        scalar = generate_bw_series(PROFILE, 20.0, WEEK,
                                    np.random.default_rng(31))
        batch = generate_bw_series_batch(PROFILE, np.full(8, 20.0), WEEK,
                                         np.random.default_rng(32))
        assert batch.mean() == pytest.approx(scalar.mean(), rel=0.2)

    def test_erratic_rows_more_variable(self, rng):
        means = np.full(16, 20.0)
        erratic = np.zeros(16, dtype=bool)
        erratic[8:] = True
        series = generate_bw_series_batch(PROFILE, means, WEEK, rng,
                                          erratic=erratic)
        calm_cv = np.mean([row.std() / row.mean() for row in series[:8]])
        wild_cv = np.mean([row.std() / row.mean() for row in series[8:]])
        assert wild_cv > calm_cv

    def test_private_batch_small_fraction(self, rng):
        public = generate_bw_series_batch(PROFILE, np.full(4, 30.0), WEEK,
                                          rng)
        private = derive_private_series_batch(public, rng)
        assert private.shape == public.shape
        assert private.mean() < public.mean()

    def test_private_scalar_matches_batch_path(self):
        public = generate_bw_series(PROFILE, 30.0, WEEK,
                                    np.random.default_rng(41))
        scalar = derive_private_series(public, np.random.default_rng(42))
        batch = derive_private_series_batch(public[None, :],
                                            np.random.default_rng(42))
        np.testing.assert_allclose(scalar, batch[0])
