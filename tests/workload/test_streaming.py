"""Streamed generation equivalence and sink-protocol tests.

Streaming (``--streaming``) is an execution knob like ``--jobs``: the
tests here pin that a streamed workload — spill- or cache-backed,
serial or pooled — reproduces the exact golden bytes of the in-core
path, and that the sink protocol rejects misuse.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import ArtifactCache
from repro.config import Scenario
from repro.errors import ConfigurationError, TraceError
from repro.study import scenario_for
from repro.workload.azure import generate_azure_workload
from repro.workload.generator import generate_nep_workload
from repro.workload.streaming import (
    STREAMING_THRESHOLD_VMS,
    WorkloadSink,
    resolve_streaming,
)

from .test_parallel_equivalence import GOLDEN, workload_digest

SCENARIO = Scenario.smoke_scale()


class TestResolveStreaming:
    def test_forced_modes(self):
        assert resolve_streaming("on", SCENARIO) is True
        assert resolve_streaming("off", SCENARIO) is False

    def test_auto_follows_vm_threshold(self):
        assert resolve_streaming("auto", SCENARIO) is False
        big = SCENARIO.with_overrides(
            azure_vm_count=STREAMING_THRESHOLD_VMS)
        assert resolve_streaming("auto", big) is True

    def test_city_tier_streams_by_default(self):
        assert resolve_streaming("auto", Scenario.city_scale()) is True

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_streaming("maybe", SCENARIO)


class TestStreamedGoldenDigests:
    """Streamed output is bit-identical to the in-core golden bytes."""

    @pytest.mark.parametrize("scale", ["smoke", "default"])
    def test_spill_sink_matches_golden(self, scale, tmp_path):
        scenario = scenario_for(scale)
        nep = generate_nep_workload(
            scenario, sink=WorkloadSink.spill(tmp_path / "nep"))
        azure = generate_azure_workload(
            scenario, sink=WorkloadSink.spill(tmp_path / "azure"))
        assert workload_digest(nep) == GOLDEN[(scale, "nep")]
        assert workload_digest(azure) == GOLDEN[(scale, "azure")]

    def test_pooled_streamed_matches_golden(self, tmp_path):
        scenario = scenario_for("smoke")
        nep = generate_nep_workload(
            scenario, jobs=2, sink=WorkloadSink.spill(tmp_path / "nep"))
        assert workload_digest(nep) == GOLDEN[("smoke", "nep")]

    def test_cache_sink_matches_golden_and_rereads(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        sink = WorkloadSink.for_cache(cache, "workload_nep", SCENARIO)
        streamed = generate_nep_workload(SCENARIO, sink=sink)
        assert workload_digest(streamed) == GOLDEN[("smoke", "nep")]
        # The streamed run populated the cache; a cold load serves the
        # same bytes back from the sharded entry.
        reloaded = cache.get_workload("workload_nep", SCENARIO)
        assert reloaded is not None
        assert workload_digest(reloaded) == GOLDEN[("smoke", "nep")]

    def test_streamed_rows_are_disk_backed(self, tmp_path):
        workload = generate_nep_workload(
            SCENARIO, sink=WorkloadSink.spill(tmp_path / "nep"))
        first = next(iter(workload.dataset.cpu_series.values()))
        assert isinstance(first.base, np.memmap) or isinstance(
            first, np.memmap)


class TestStudyStreaming:
    def test_streamed_study_statistics_match_in_core(self):
        from repro.core.workload_analysis import cpu_utilization_summary
        from repro.study import EdgeStudy

        in_core = EdgeStudy(SCENARIO)
        streamed = EdgeStudy(SCENARIO, streaming="on")
        assert streamed.streaming and not in_core.streaming
        assert (workload_digest(streamed.nep)
                == workload_digest(in_core.nep)
                == GOLDEN[("smoke", "nep")])
        assert (repr(cpu_utilization_summary(streamed.nep.dataset))
                == repr(cpu_utilization_summary(in_core.nep.dataset)))


class TestSinkProtocol:
    def _block(self, n=2, points=8):
        block = type("B", (), {})()
        block.app_id = "app"
        block.cpu_rows = np.full((n, points), 0.25, dtype=np.float32)
        block.bw_rows = np.ones((n, points), dtype=np.float32)
        block.private_rows = None
        return block

    def test_begin_twice_rejected(self, tmp_path):
        sink = WorkloadSink.spill(tmp_path)
        sink.begin(8, 8, private=False)
        with pytest.raises(TraceError):
            sink.begin(8, 8, private=False)

    def test_consume_before_begin_rejected(self, tmp_path):
        sink = WorkloadSink.spill(tmp_path)
        with pytest.raises(TraceError):
            sink.consume(["a", "b"], self._block())

    def test_duplicate_vm_ids_rejected(self, tmp_path):
        sink = WorkloadSink.spill(tmp_path)
        sink.begin(8, 8, private=False)
        sink.consume(["a", "b"], self._block())
        with pytest.raises(TraceError, match="duplicate"):
            sink.consume(["b", "c"], self._block())

    def test_row_count_mismatch_rejected(self, tmp_path):
        sink = WorkloadSink.spill(tmp_path)
        sink.begin(8, 8, private=False)
        with pytest.raises(TraceError, match="rows"):
            sink.consume(["a", "b", "c"], self._block(n=2))

    def test_out_of_range_values_rejected(self, tmp_path):
        sink = WorkloadSink.spill(tmp_path)
        sink.begin(8, 8, private=False)
        bad = self._block()
        bad.cpu_rows = np.full((2, 8), 1.5, dtype=np.float32)
        with pytest.raises(TraceError, match="CPU"):
            sink.consume(["a", "b"], bad)
        worse = self._block()
        worse.bw_rows = np.full((2, 8), -1.0, dtype=np.float32)
        with pytest.raises(TraceError, match="negative"):
            sink.consume(["c", "d"], worse)

    def test_abort_discards_spill(self, tmp_path):
        root = tmp_path / "spill"
        sink = WorkloadSink.spill(root)
        sink.begin(8, 8, private=False)
        sink.consume(["a", "b"], self._block())
        sink.abort()
        assert not root.exists()
        with pytest.raises(TraceError):
            sink.consume(["c"], self._block(n=1))

    def test_abort_is_idempotent(self, tmp_path):
        # The generator aborts on a mid-stream failure and the study
        # aborts again when the exception surfaces — the second call
        # must not trip over the already-removed directory.
        root = tmp_path / "spill"
        sink = WorkloadSink.spill(root)
        sink.begin(8, 8, private=False)
        sink.consume(["a", "b"], self._block())
        sink.abort()
        sink.abort()
        assert not root.exists()

    def test_study_aborts_sink_on_generation_failure(self, tmp_path):
        # A mid-generation failure must surface the original error —
        # the study-level abort (plus the idempotence guard above) may
        # not mask it with a second-cleanup crash — and the spill
        # directory is gone before the exception reaches the caller.
        from repro.errors import QuarantineError
        from repro.resilience import install, reset
        from repro.study import EdgeStudy
        from repro.workload import streaming as streaming_mod

        spills: list[Path] = []
        original = streaming_mod.WorkloadSink.spill.__func__

        def tracking_spill(cls, directory=None, **kwargs):
            sink = original(cls, directory, **kwargs)
            spills.append(sink.root)
            return sink

        scenario = Scenario.smoke_scale().with_overrides(seed=811)
        install("series.render:nth=1,times=99")
        try:
            streaming_mod.WorkloadSink.spill = classmethod(tracking_spill)
            study = EdgeStudy(scenario, streaming="on")
            with pytest.raises(QuarantineError):
                study.nep
        finally:
            streaming_mod.WorkloadSink.spill = classmethod(original)
            reset()
        assert spills and all(not root.exists() for root in spills)
