"""Tests for CPU and bandwidth series generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.apps import NEP_PROFILES, profiles_by_category
from repro.workload.bandwidth import (
    derive_private_series,
    generate_bw_series,
    peak_to_mean_ratio,
)
from repro.workload.cpu import generate_cpu_series
from repro.workload.patterns import time_axis_minutes

PROFILES = profiles_by_category(NEP_PROFILES)
MINUTES = time_axis_minutes(14, 5)


class TestCpuSeries:
    def test_bounded_in_unit_interval(self, rng):
        series = generate_cpu_series(PROFILES["live_streaming"], 0.3,
                                     MINUTES, rng)
        assert series.min() >= 0.0 and series.max() <= 1.0

    def test_mean_tracks_target(self, rng):
        series = generate_cpu_series(PROFILES["video_surveillance"], 0.2,
                                     MINUTES, rng)
        assert series.mean() == pytest.approx(0.2, rel=0.3)

    def test_length_matches_axis(self, rng):
        series = generate_cpu_series(PROFILES["cdn"], 0.1, MINUTES, rng)
        assert series.size == MINUTES.size

    def test_bad_level_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            generate_cpu_series(PROFILES["cdn"], 0.0, MINUTES, rng)
        with pytest.raises(ConfigurationError):
            generate_cpu_series(PROFILES["cdn"], 1.5, MINUTES, rng)

    def test_seasonal_profile_has_diurnal_structure(self, rng):
        # A strongly seasonal app shows a clear day/night swing.
        series = generate_cpu_series(PROFILES["cloud_gaming"], 0.3,
                                     MINUTES, rng)
        per_interval = series.reshape(14, -1).mean(axis=0)
        assert per_interval.max() > 1.5 * per_interval.min()

    def test_flat_profile_less_variable_than_seasonal(self, rng):
        flat = generate_cpu_series(PROFILES["video_surveillance"], 0.3,
                                   MINUTES, np.random.default_rng(1))
        seasonal = generate_cpu_series(PROFILES["cloud_gaming"], 0.3,
                                       MINUTES, np.random.default_rng(1))
        def cv(x):
            return x.std() / x.mean()
        assert cv(flat) < cv(seasonal)

    def test_bursts_create_tail(self, rng):
        series = generate_cpu_series(PROFILES["live_streaming"], 0.2,
                                     MINUTES, rng)
        assert np.percentile(series, 99.5) > 1.5 * series.mean()


class TestBandwidthSeries:
    def test_non_negative(self, rng):
        series = generate_bw_series(PROFILES["live_streaming"], 50.0,
                                    MINUTES, rng)
        assert series.min() >= 0.0

    def test_mean_tracks_target(self, rng):
        series = generate_bw_series(PROFILES["video_surveillance"], 30.0,
                                    MINUTES, rng)
        assert series.mean() == pytest.approx(30.0, rel=0.35)

    def test_negative_mean_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            generate_bw_series(PROFILES["cdn"], -1.0, MINUTES, rng)

    def test_erratic_vm_more_variable_weekly(self):
        # Figure 12: regime-switching VMs swing week over week.
        def weekly_cv(erratic):
            rng = np.random.default_rng(42)
            minutes = time_axis_minutes(28, 5)
            series = generate_bw_series(PROFILES["cdn"], 50.0, minutes,
                                        rng, erratic=erratic)
            weekly = series.reshape(4, -1).mean(axis=1)
            return weekly.std() / weekly.mean()

        assert weekly_cv(True) > weekly_cv(False)

    def test_video_peak_to_mean_in_paper_band(self, rng):
        # §4.5: most apps' peak/mean bandwidth variance is ~1.5x-4x...
        series = generate_bw_series(PROFILES["live_streaming"], 60.0,
                                    MINUTES, rng)
        assert 1.5 <= peak_to_mean_ratio(series) <= 15.0

    def test_education_peakier_than_surveillance(self, rng):
        edu = generate_bw_series(PROFILES["online_education"], 50.0,
                                 MINUTES, np.random.default_rng(2))
        flat = generate_bw_series(PROFILES["video_surveillance"], 50.0,
                                  MINUTES, np.random.default_rng(2))
        assert peak_to_mean_ratio(edu) > peak_to_mean_ratio(flat)


class TestPrivateSeries:
    def test_small_fraction_of_public(self, rng):
        public = generate_bw_series(PROFILES["cdn"], 100.0, MINUTES, rng)
        private = derive_private_series(public, rng)
        assert private.mean() < 0.15 * public.mean()
        assert private.min() >= 0.0

    def test_peak_to_mean_of_zero_series(self):
        assert peak_to_mean_ratio(np.zeros(10)) == 0.0


class TestSeasonCache:
    """Regression: the cache keys on axis *values*, never ``id()``.

    The original implementation keyed on ``(pattern, id(minutes))``;
    object ids are recycled after garbage collection, so a fresh axis
    could silently be served a curve computed for a freed, different
    one — and equal axes rebuilt per call never hit at all.
    """

    def test_equal_axes_hit_regardless_of_identity(self):
        from repro.workload.series import SeasonCache

        cache = SeasonCache()
        first = cache.get("business_hours", time_axis_minutes(14, 5))
        # A distinct-but-equal array (different id) must hit the cache.
        second = cache.get("business_hours", time_axis_minutes(14, 5))
        assert second is first

    def test_different_axes_never_collide(self):
        from repro.workload.series import SeasonCache

        cache = SeasonCache()
        curves = {}
        for days, interval in [(14, 5), (14, 15), (7, 5)]:
            axis = time_axis_minutes(days, interval)
            curve = cache.get("evening_entertainment", axis)
            curves[(days, interval)] = curve
            assert curve.shape == axis.shape
        del axis  # free the last axis: its id may now be recycled
        fresh = cache.get("evening_entertainment", time_axis_minutes(28, 5))
        assert all(fresh is not curve for curve in curves.values())
        assert fresh.size == time_axis_minutes(28, 5).size

    def test_token_is_a_pure_value(self):
        from repro.workload.series import SeasonCache

        a = time_axis_minutes(14, 5)
        b = a.copy()
        assert SeasonCache.axis_token(a) == SeasonCache.axis_token(b)
        assert (SeasonCache.axis_token(a)
                != SeasonCache.axis_token(time_axis_minutes(7, 5)))

    def test_distinct_patterns_distinct_entries(self):
        from repro.workload.series import SeasonCache

        cache = SeasonCache()
        axis = time_axis_minutes(14, 5)
        flat = cache.get("flat", axis)
        busy = cache.get("business_hours", axis)
        assert not np.array_equal(flat, busy)
