"""Tests for VM-size subscription distributions (Figure 8 inputs)."""

import numpy as np
import pytest

from repro.workload.subscription import (
    AZURE_SIZE_OPTIONS,
    NEP_SIZE_OPTIONS,
    sample_azure_spec,
    sample_nep_disk_gb,
    sample_nep_spec,
)


class TestNepSizes:
    def test_median_matches_paper(self, rng):
        # Figure 8: NEP medians are 8 cores / 32 GB.
        specs = [sample_nep_spec(rng) for _ in range(3000)]
        assert np.median([s.cpu_cores for s in specs]) == 8
        assert np.median([s.memory_gb for s in specs]) == 32

    def test_half_of_vms_large(self, rng):
        # "NEP's half VMs have more than 8 CPU cores and 16GBs memory"
        # (>= 8 cores and >= 16 GB in our discrete shape set).
        specs = [sample_nep_spec(rng) for _ in range(3000)]
        big = np.mean([s.cpu_cores >= 8 and s.memory_gb >= 16 for s in specs])
        assert big == pytest.approx(0.6, abs=0.15)

    def test_disk_median_and_mean(self, rng):
        # §4.1: median/mean storage is 100/650 GB.
        disks = np.array([sample_nep_disk_gb(rng) for _ in range(20_000)])
        assert np.median(disks) == pytest.approx(100, rel=0.25)
        assert disks.mean() == pytest.approx(650, rel=0.5)

    def test_weights_positive(self):
        assert all(o.weight > 0 for o in NEP_SIZE_OPTIONS)


class TestAzureSizes:
    def test_median_matches_paper(self, rng):
        # Figure 8: Azure medians are 1 core / 4 GB.
        specs = [sample_azure_spec(rng) for _ in range(3000)]
        assert np.median([s.cpu_cores for s in specs]) <= 2
        assert np.median([s.memory_gb for s in specs]) == 4

    def test_90pct_small_cpu(self, rng):
        # "90% VMs with <= 4 vCPUs".
        specs = [sample_azure_spec(rng) for _ in range(3000)]
        assert np.mean([s.cpu_cores <= 4 for s in specs]) >= 0.85

    def test_70pct_small_memory(self, rng):
        # "70% VMs with <= 4 GBs".
        specs = [sample_azure_spec(rng) for _ in range(3000)]
        assert np.mean([s.memory_gb <= 4 for s in specs]) == pytest.approx(
            0.7, abs=0.1)

    def test_weights_positive(self):
        assert all(o.weight > 0 for o in AZURE_SIZE_OPTIONS)

    def test_nep_vms_bigger_than_azure(self, rng):
        nep = [sample_nep_spec(rng) for _ in range(1000)]
        azure = [sample_azure_spec(rng) for _ in range(1000)]
        assert (np.median([s.cpu_cores for s in nep])
                > np.median([s.cpu_cores for s in azure]))
        assert (np.median([s.memory_gb for s in nep])
                > np.median([s.memory_gb for s in azure]))
