"""Tests for app-category profiles."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.apps import (
    AZURE_PROFILES,
    CpuLevelMixture,
    NEP_PROFILES,
    profiles_by_category,
    sample_profile,
)


class TestCpuLevelMixture:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            CpuLevelMixture(components=((0.5, 0.0, 0.5),))

    def test_bad_range_rejected(self):
        with pytest.raises(ConfigurationError):
            CpuLevelMixture(components=((1.0, 0.5, 0.2),))

    def test_samples_within_component_ranges(self, rng):
        mixture = CpuLevelMixture(components=((0.5, 0.0, 0.1),
                                              (0.5, 0.5, 0.9)))
        draws = [mixture.sample(rng) for _ in range(300)]
        assert all((0.0 <= d <= 0.1) or (0.5 <= d <= 0.9) for d in draws)


class TestCatalogs:
    def test_nep_has_paper_categories(self):
        # §4.1 names these as NEP's most popular customers.
        categories = {p.category for p in NEP_PROFILES}
        assert {"live_streaming", "online_education", "cdn",
                "video_communication", "video_surveillance",
                "cloud_gaming"} == categories

    def test_category_index(self):
        by_cat = profiles_by_category(NEP_PROFILES)
        assert by_cat["cdn"].vm_count_max == 1000  # the ~1000-VM CDN app

    def test_nep_more_bandwidth_hungry_than_azure(self):
        nep_bw = np.mean([p.bw_median_mbps for p in NEP_PROFILES])
        azure_bw = np.mean([p.bw_median_mbps for p in AZURE_PROFILES])
        assert nep_bw > 5 * azure_bw

    def test_nep_stronger_seasonality(self):
        # Effective seasonal amplitude = weight x pattern swing; the raw
        # weights are not comparable because cloud patterns are weak.
        from repro.workload.patterns import pattern, time_axis_minutes

        minutes = time_axis_minutes(7, 30)

        def amplitude(profiles):
            return np.mean([
                p.seasonal_weight * pattern(p.pattern_name)(minutes).std()
                for p in profiles
            ])

        assert amplitude(NEP_PROFILES) > 1.5 * amplitude(AZURE_PROFILES)

    def test_nep_more_within_app_heterogeneity(self):
        nep = np.mean([p.within_app_sigma for p in NEP_PROFILES])
        azure = np.mean([p.within_app_sigma for p in AZURE_PROFILES])
        assert nep > 2 * azure

    def test_popularities_normalisable(self):
        assert sum(p.popularity for p in NEP_PROFILES) == pytest.approx(1.0)
        assert sum(p.popularity for p in AZURE_PROFILES) == pytest.approx(1.0)

    def test_sample_profile_respects_popularity(self, rng):
        draws = [sample_profile(NEP_PROFILES, rng).category
                 for _ in range(2000)]
        share = draws.count("live_streaming") / len(draws)
        assert share == pytest.approx(0.30, abs=0.06)

    def test_vm_count_sampling_within_limits(self, rng):
        for profile in NEP_PROFILES + AZURE_PROFILES:
            counts = [profile.sample_vm_count(rng) for _ in range(200)]
            assert min(counts) >= 1
            assert max(counts) <= profile.vm_count_max
