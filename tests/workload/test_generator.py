"""Tests for the end-to-end workload generators (smoke-scale fixtures)."""

import numpy as np
import pytest

from repro.workload.apps import AZURE_PROFILES, NEP_PROFILES


class TestNepGeneration:
    def test_vm_count_near_budget(self, nep_dataset, scenario):
        assert len(nep_dataset.vms) >= scenario.nep_vm_count

    def test_dataset_validates(self, nep_dataset):
        nep_dataset.validate()

    def test_platform_validates(self, nep_platform):
        nep_platform.validate()

    def test_every_vm_has_both_series(self, nep_dataset):
        for vm_id in nep_dataset.vm_ids():
            assert nep_dataset.cpu_series[vm_id].size == nep_dataset.cpu_points
            assert nep_dataset.bw_series[vm_id].size == nep_dataset.bw_points

    def test_private_traffic_recorded(self, nep_dataset):
        assert len(nep_dataset.bw_private_series) == len(nep_dataset.vms)

    def test_categories_from_catalog(self, nep_dataset):
        known = {p.category for p in NEP_PROFILES}
        assert {vm.category for vm in nep_dataset.vms.values()} <= known

    def test_vm_placement_consistent_with_platform(self, nep_workload):
        dataset, platform = nep_workload.dataset, nep_workload.platform
        for record in dataset.vms.values():
            vm = platform.vms[record.vm_id]
            assert vm.server_id == record.server_id
            assert vm.site_id == record.site_id

    def test_app_vms_share_spec(self, nep_dataset):
        # NEP customers subscribe uniform fleets per app (§2 example).
        for app_id in nep_dataset.app_ids_with_vms():
            vms = nep_dataset.vms_of_app(app_id)
            assert len({(vm.cpu_cores, vm.memory_gb) for vm in vms}) == 1

    def test_big_apps_span_provinces(self, nep_dataset):
        for app_id in nep_dataset.app_ids_with_vms():
            vms = nep_dataset.vms_of_app(app_id)
            if len(vms) >= 30:
                provinces = {vm.province for vm in vms}
                assert len(provinces) >= 2

    def test_city_matches_site(self, nep_dataset):
        for vm in nep_dataset.vms.values():
            assert nep_dataset.sites[vm.site_id].city == vm.city


class TestAzureGeneration:
    def test_dataset_validates(self, azure_dataset):
        azure_dataset.validate()

    def test_categories_from_cloud_catalog(self, azure_dataset):
        known = {p.category for p in AZURE_PROFILES}
        assert {vm.category for vm in azure_dataset.vms.values()} <= known

    def test_no_private_traffic_table(self, azure_dataset):
        # The Azure public dataset has no intra-site traffic telemetry.
        assert not azure_dataset.bw_private_series

    def test_smaller_vms_than_nep(self, nep_dataset, azure_dataset):
        nep_med = np.median([vm.cpu_cores for vm in nep_dataset.vms.values()])
        az_med = np.median([vm.cpu_cores
                            for vm in azure_dataset.vms.values()])
        assert nep_med > az_med

    def test_lower_utilisation_on_nep(self, nep_dataset, azure_dataset):
        # Figure 10(a): NEP VMs are much less utilised.
        nep_mean = np.mean([nep_dataset.mean_cpu(v)
                            for v in nep_dataset.vm_ids()])
        az_mean = np.mean([azure_dataset.mean_cpu(v)
                           for v in azure_dataset.vm_ids()])
        assert nep_mean < az_mean

    def test_higher_cv_on_nep(self, nep_dataset, azure_dataset):
        # Figure 10(b): NEP usage varies more across time.
        nep_cv = np.median([nep_dataset.cpu_cv(v)
                            for v in nep_dataset.vm_ids()])
        az_cv = np.median([azure_dataset.cpu_cv(v)
                           for v in azure_dataset.vm_ids()])
        assert nep_cv > az_cv
