"""Serial/parallel equivalence: ``jobs=N`` must be bit-identical.

The parallel executor dispatches per-app series jobs to worker
processes; because every app's RNG substream is a pure function of
(seed, stream name, app id), the rendered series must not depend on the
worker count or on completion order.  These tests pin that contract two
ways: golden SHA-256 digests captured from the pre-parallel serial
engine, and direct byte-comparison of ``jobs=1`` vs ``jobs=4`` output —
workloads and the campaign statistics computed from them, with and
without fault injection.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.study import EdgeStudy, scenario_for
from repro.workload.azure import generate_azure_workload
from repro.workload.generator import generate_nep_workload

#: Digests of the serial engine's output before the parallel executor
#: existed.  A change here means the generated datasets changed for
#: every downstream figure — never update casually.
GOLDEN = {
    ("smoke", "nep"):
        "fef31dec1a783375b81d0969c684359d2c6024ae946568d186265c4d76458ab3",
    ("smoke", "azure"):
        "98e8763441602aa2efba24ea8c9991906c58c114ac83f1252a26282774b83ba8",
    ("default", "nep"):
        "2a7ff7df744326108b000a2932d138f3e4088478a6810a032f6cc7b16d6ea673",
    ("default", "azure"):
        "9e25ffa1d1aaea2416ab7afce72acfcb7f5b4259e75e31bc29ce958df0ae5253",
}


def workload_digest(workload) -> str:
    """SHA-256 over every VM record and raw series byte, in trace order."""
    h = hashlib.sha256()
    ds = workload.dataset
    for vm_id in ds.vms:
        h.update(vm_id.encode())
        h.update(repr(ds.vms[vm_id]).encode())
        h.update(np.asarray(ds.cpu_series[vm_id]).tobytes())
        h.update(np.asarray(ds.bw_series[vm_id]).tobytes())
        if vm_id in ds.bw_private_series:
            h.update(np.asarray(ds.bw_private_series[vm_id]).tobytes())
    return h.hexdigest()


class TestGoldenDigests:
    """The refactored serial path still emits the pre-refactor bytes."""

    def test_smoke_nep_matches_golden(self, nep_workload):
        assert workload_digest(nep_workload) == GOLDEN[("smoke", "nep")]

    def test_smoke_azure_matches_golden(self, azure_workload):
        assert workload_digest(azure_workload) == GOLDEN[("smoke", "azure")]


class TestParallelEquivalence:
    @pytest.mark.parametrize("scale", ["smoke", "default"])
    def test_jobs4_matches_golden(self, scale):
        scenario = scenario_for(scale)
        nep = generate_nep_workload(scenario, jobs=4)
        azure = generate_azure_workload(scenario, jobs=4)
        assert workload_digest(nep) == GOLDEN[(scale, "nep")]
        assert workload_digest(azure) == GOLDEN[(scale, "azure")]

    def test_jobs1_equals_jobs4_bytes(self):
        scenario = scenario_for("smoke", seed=777)
        serial = generate_nep_workload(scenario, jobs=1)
        parallel = generate_nep_workload(scenario, jobs=4)
        assert list(serial.dataset.vms) == list(parallel.dataset.vms)
        for vm_id in serial.dataset.vms:
            assert np.array_equal(serial.dataset.cpu_series[vm_id],
                                  parallel.dataset.cpu_series[vm_id])
            assert np.array_equal(serial.dataset.bw_series[vm_id],
                                  parallel.dataset.bw_series[vm_id])
        assert (set(serial.dataset.bw_private_series)
                == set(parallel.dataset.bw_private_series))
        for vm_id in serial.dataset.bw_private_series:
            assert np.array_equal(
                serial.dataset.bw_private_series[vm_id],
                parallel.dataset.bw_private_series[vm_id])

    @pytest.mark.parametrize("faults", ["off", "paper"])
    def test_campaign_stats_invariant_under_jobs(self, faults):
        scenario = scenario_for("smoke", faults=faults)
        serial = EdgeStudy(scenario, jobs=1)
        parallel = EdgeStudy(scenario, jobs=4)
        assert ([repr(o) for o in serial.latency_results.latency]
                == [repr(o) for o in parallel.latency_results.latency])
        assert ([repr(o) for o in serial.throughput_results.throughput]
                == [repr(o) for o in parallel.throughput_results.throughput])
