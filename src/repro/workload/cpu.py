"""Per-VM CPU utilisation series generator.

A VM's series combines four components::

    util(t) = level * [ w * season(t) + (1 - w) ] * ar1(t) * burst(t)

clipped to [0, 1], where ``level`` is the VM's mean utilisation drawn from
the category's mixture, ``season`` is the category's diurnal/weekly
pattern, ``ar1`` is smooth autocorrelated noise, and ``burst`` injects the
occasional load spike that drives the "P95 Max" tail of Figure 10(a).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .apps import AppProfile
from .patterns import ar1_noise, pattern

#: Burst magnitude range and hold time (intervals).
BURST_SCALE = (1.6, 3.2)
BURST_HOLD_INTERVALS = 4


def _burst_multiplier(points: int, probability: float,
                      rng: np.random.Generator) -> np.ndarray:
    """Multiplier series with short multiplicative bursts held a few steps."""
    multiplier = np.ones(points, dtype=np.float64)
    starts = np.flatnonzero(rng.random(points) < probability)
    for start in starts:
        magnitude = float(rng.uniform(*BURST_SCALE))
        end = min(points, start + BURST_HOLD_INTERVALS)
        multiplier[start:end] = np.maximum(multiplier[start:end], magnitude)
    return multiplier


def generate_cpu_series(profile: AppProfile, mean_level: float,
                        minutes: np.ndarray,
                        rng: np.random.Generator) -> np.ndarray:
    """Generate one VM's CPU utilisation series over ``minutes``.

    Args:
        profile: the app category's workload profile.
        mean_level: the VM's target mean utilisation in (0, 1].
        minutes: time axis from :func:`repro.workload.patterns.time_axis_minutes`.
        rng: the VM's random stream.

    Raises:
        ConfigurationError: if ``mean_level`` is outside (0, 1].
    """
    if not 0.0 < mean_level <= 1.0:
        raise ConfigurationError(
            f"mean CPU level must be in (0, 1], got {mean_level}"
        )
    points = minutes.size
    season = pattern(profile.pattern_name)(minutes)
    w = profile.seasonal_weight
    shape = w * season + (1.0 - w)
    noise = ar1_noise(points, rng, rho=profile.noise_rho,
                      sigma=profile.noise_sigma)
    bursts = _burst_multiplier(points, profile.burst_probability, rng)
    series = mean_level * shape * noise * bursts
    return np.clip(series, 0.0, 1.0)
