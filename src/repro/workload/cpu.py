"""Per-VM CPU utilisation series generator.

A VM's series combines four components::

    util(t) = level * [ w * season(t) + (1 - w) ] * ar1(t) * burst(t)

clipped to [0, 1], where ``level`` is the VM's mean utilisation drawn from
the category's mixture, ``season`` is the category's diurnal/weekly
pattern, ``ar1`` is smooth autocorrelated noise, and ``burst`` injects the
occasional load spike that drives the "P95 Max" tail of Figure 10(a).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .apps import AppProfile
from .patterns import ar1_noise_batch, pattern

#: Burst magnitude range and hold time (intervals).
BURST_SCALE = (1.6, 3.2)
BURST_HOLD_INTERVALS = 4


def _burst_multipliers(count: int, points: int, probability: float,
                       rng: np.random.Generator) -> np.ndarray:
    """Burst multiplier rows: short multiplicative spikes held a few steps.

    One Bernoulli matrix picks every burst start across all rows; a burst
    magnitude is held for :data:`BURST_HOLD_INTERVALS` steps by taking the
    running maximum over shifted copies of the magnitude matrix.
    """
    hits = rng.random((count, points)) < probability
    magnitudes = np.zeros((count, points), dtype=np.float64)
    n_hits = int(hits.sum())
    if n_hits:
        magnitudes[hits] = rng.uniform(*BURST_SCALE, size=n_hits)
    multiplier = np.ones((count, points), dtype=np.float64)
    for shift in range(BURST_HOLD_INTERVALS):
        if shift >= points:
            break
        np.maximum(multiplier[:, shift:], magnitudes[:, :points - shift],
                   out=multiplier[:, shift:])
    return multiplier


def generate_cpu_series_batch(profile: AppProfile, mean_levels: np.ndarray,
                              minutes: np.ndarray, rng: np.random.Generator,
                              season: np.ndarray | None = None) -> np.ndarray:
    """Generate CPU utilisation rows for a whole fleet of VMs at once.

    Args:
        profile: the app category's workload profile.
        mean_levels: per-VM target mean utilisations, each in (0, 1].
        minutes: time axis from :func:`repro.workload.patterns.time_axis_minutes`.
        rng: the fleet's random stream.
        season: optional precomputed ``pattern(profile.pattern_name)(minutes)``,
            so callers generating many apps with the same pattern can reuse it.

    Returns:
        A ``(len(mean_levels), len(minutes))`` array clipped to [0, 1].

    Raises:
        ConfigurationError: if any mean level is outside (0, 1].
    """
    mean_levels = np.asarray(mean_levels, dtype=np.float64)
    if mean_levels.size == 0:
        raise ConfigurationError("mean_levels must be non-empty")
    if np.any((mean_levels <= 0.0) | (mean_levels > 1.0)):
        raise ConfigurationError(
            f"mean CPU levels must be in (0, 1], got {mean_levels!r}"
        )
    count = mean_levels.size
    points = minutes.size
    if season is None:
        season = pattern(profile.pattern_name)(minutes)
    w = profile.seasonal_weight
    shape = w * season + (1.0 - w)
    series = ar1_noise_batch(count, points, rng, rho=profile.noise_rho,
                             sigma=profile.noise_sigma)
    series *= _burst_multipliers(count, points, profile.burst_probability,
                                 rng)
    series *= shape[None, :]
    series *= mean_levels[:, None]
    return np.clip(series, 0.0, 1.0, out=series)


def generate_cpu_series(profile: AppProfile, mean_level: float,
                        minutes: np.ndarray,
                        rng: np.random.Generator) -> np.ndarray:
    """Generate one VM's CPU utilisation series over ``minutes``.

    One row of :func:`generate_cpu_series_batch`; see there for the model.

    Raises:
        ConfigurationError: if ``mean_level`` is outside (0, 1].
    """
    if not 0.0 < mean_level <= 1.0:
        raise ConfigurationError(
            f"mean CPU level must be in (0, 1], got {mean_level}"
        )
    return generate_cpu_series_batch(
        profile, np.array([mean_level]), minutes, rng)[0]
