"""Per-VM public/private bandwidth series generators.

Bandwidth follows the same seasonal structure as CPU, but with a heavier
diurnal swing (video traffic collapses overnight) and, for "erratic" VMs,
a regime-switching base level reproducing Figure 12's unpredictable
weekly averages.  Private (intra-site) traffic is a small fraction of
public traffic — NEP logs both (§2.1.2 item 4).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .apps import AppProfile
from .patterns import ar1_noise, pattern, regime_switching_level

#: Short traffic spikes (flash crowds) on top of the seasonal shape.
#: Kept small: NEP bills the *daily peak*, so heavy spikes would dominate
#: every bill, which is not what Table 3's ratios show.
SPIKE_PROBABILITY = 0.0008
SPIKE_SCALE = (1.3, 2.0)

#: Private traffic runs at a few percent of public for edge video apps.
PRIVATE_FRACTION_RANGE = (0.01, 0.08)


def generate_bw_series(profile: AppProfile, mean_mbps: float,
                       minutes: np.ndarray, rng: np.random.Generator,
                       erratic: bool = False) -> np.ndarray:
    """Generate one VM's public bandwidth series (Mbps).

    Args:
        profile: the app category's workload profile.
        mean_mbps: the VM's target mean public bandwidth.
        minutes: time axis.
        rng: the VM's random stream.
        erratic: if True, multiply by a regime-switching level — the
            unpredictable VMs of Figure 12.

    Raises:
        ConfigurationError: if ``mean_mbps`` is negative.
    """
    if mean_mbps < 0:
        raise ConfigurationError(
            f"mean bandwidth must be non-negative, got {mean_mbps}"
        )
    points = minutes.size
    season = pattern(profile.pattern_name)(minutes)
    # Bandwidth swings harder with the season than CPU does: keep the
    # seasonal weight but square-root the residual floor so traffic almost
    # vanishes off-peak for strongly seasonal categories.
    w = min(1.0, profile.seasonal_weight * 1.15)
    shape = w * season + (1.0 - w)
    noise = ar1_noise(points, rng, rho=profile.noise_rho,
                      sigma=profile.noise_sigma * 1.3)
    series = mean_mbps * shape * noise
    if erratic:
        series = series * regime_switching_level(points, rng)
    spikes = rng.random(points) < SPIKE_PROBABILITY
    if spikes.any():
        series[spikes] *= rng.uniform(*SPIKE_SCALE, size=int(spikes.sum()))
    return np.maximum(series, 0.0)


def derive_private_series(public_series: np.ndarray,
                          rng: np.random.Generator) -> np.ndarray:
    """Intra-site traffic derived from the public series."""
    fraction = float(rng.uniform(*PRIVATE_FRACTION_RANGE))
    wobble = ar1_noise(public_series.size, rng, rho=0.8, sigma=0.3)
    return public_series * fraction * wobble


def peak_to_mean_ratio(series: np.ndarray) -> float:
    """Max over mean of a bandwidth series; the §4.5 variance indicator.

    Returns 0.0 for an all-zero series.
    """
    mean = float(series.mean())
    if mean == 0.0:
        return 0.0
    return float(series.max() / mean)
