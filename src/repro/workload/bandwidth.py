"""Per-VM public/private bandwidth series generators.

Bandwidth follows the same seasonal structure as CPU, but with a heavier
diurnal swing (video traffic collapses overnight) and, for "erratic" VMs,
a regime-switching base level reproducing Figure 12's unpredictable
weekly averages.  Private (intra-site) traffic is a small fraction of
public traffic — NEP logs both (§2.1.2 item 4).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .apps import AppProfile
from .patterns import ar1_noise_batch, pattern, regime_switching_levels

#: Short traffic spikes (flash crowds) on top of the seasonal shape.
#: Kept small: NEP bills the *daily peak*, so heavy spikes would dominate
#: every bill, which is not what Table 3's ratios show.
SPIKE_PROBABILITY = 0.0008
SPIKE_SCALE = (1.3, 2.0)

#: Private traffic runs at a few percent of public for edge video apps.
PRIVATE_FRACTION_RANGE = (0.01, 0.08)


def generate_bw_series_batch(profile: AppProfile, mean_mbps: np.ndarray,
                             minutes: np.ndarray, rng: np.random.Generator,
                             erratic: np.ndarray | None = None,
                             season: np.ndarray | None = None) -> np.ndarray:
    """Generate public bandwidth rows (Mbps) for a whole fleet at once.

    Args:
        profile: the app category's workload profile.
        mean_mbps: per-VM target mean public bandwidths.
        minutes: time axis.
        rng: the fleet's random stream.
        erratic: optional boolean mask; True rows get a regime-switching
            level — the unpredictable VMs of Figure 12.
        season: optional precomputed ``pattern(profile.pattern_name)(minutes)``.

    Returns:
        A ``(len(mean_mbps), len(minutes))`` non-negative array.

    Raises:
        ConfigurationError: if any mean bandwidth is negative.
    """
    mean_mbps = np.asarray(mean_mbps, dtype=np.float64)
    if mean_mbps.size == 0:
        raise ConfigurationError("mean_mbps must be non-empty")
    if np.any(mean_mbps < 0):
        raise ConfigurationError(
            f"mean bandwidths must be non-negative, got {mean_mbps!r}"
        )
    count = mean_mbps.size
    points = minutes.size
    if season is None:
        season = pattern(profile.pattern_name)(minutes)
    # Bandwidth swings harder with the season than CPU does: keep the
    # seasonal weight but square-root the residual floor so traffic almost
    # vanishes off-peak for strongly seasonal categories.
    w = min(1.0, profile.seasonal_weight * 1.15)
    shape = w * season + (1.0 - w)
    series = ar1_noise_batch(count, points, rng, rho=profile.noise_rho,
                             sigma=profile.noise_sigma * 1.3)
    series *= shape[None, :]
    series *= mean_mbps[:, None]
    if erratic is not None and erratic.any():
        series[erratic] *= regime_switching_levels(
            int(erratic.sum()), points, rng)
    spikes = rng.random((count, points)) < SPIKE_PROBABILITY
    n_spikes = int(spikes.sum())
    if n_spikes:
        series[spikes] *= rng.uniform(*SPIKE_SCALE, size=n_spikes)
    return np.maximum(series, 0.0, out=series)


def generate_bw_series(profile: AppProfile, mean_mbps: float,
                       minutes: np.ndarray, rng: np.random.Generator,
                       erratic: bool = False) -> np.ndarray:
    """Generate one VM's public bandwidth series (Mbps).

    One row of :func:`generate_bw_series_batch`; see there for the model.

    Raises:
        ConfigurationError: if ``mean_mbps`` is negative.
    """
    if mean_mbps < 0:
        raise ConfigurationError(
            f"mean bandwidth must be non-negative, got {mean_mbps}"
        )
    return generate_bw_series_batch(
        profile, np.array([mean_mbps]), minutes, rng,
        erratic=np.array([erratic]))[0]


def derive_private_series_batch(public_series: np.ndarray,
                                rng: np.random.Generator) -> np.ndarray:
    """Intra-site traffic rows derived from the public rows."""
    count, points = public_series.shape
    fractions = rng.uniform(*PRIVATE_FRACTION_RANGE, size=count)
    wobble = ar1_noise_batch(count, points, rng, rho=0.8, sigma=0.3)
    wobble *= public_series
    wobble *= fractions[:, None]
    return wobble


def derive_private_series(public_series: np.ndarray,
                          rng: np.random.Generator) -> np.ndarray:
    """Intra-site traffic derived from the public series."""
    return derive_private_series_batch(public_series[None, :], rng)[0]


def peak_to_mean_ratio(series: np.ndarray) -> float:
    """Max over mean of a bandwidth series; the §4.5 variance indicator.

    Returns 0.0 for an all-zero series.
    """
    mean = float(series.mean())
    if mean == 0.0:
        return 0.0
    return float(series.max() / mean)
