"""Seasonal usage-pattern library.

§4.4 attributes the edge's stronger seasonality to "services deployed on
edges follow[ing] end users' daily activities".  Each named pattern maps a
time axis (minutes since trace start, day 0 = Monday) onto a multiplicative
activity level normalised to mean ≈ 1.0.  Generators combine a pattern with
a base level, noise, and bursts to produce a VM's usage series.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import lfilter

from ..errors import ConfigurationError

MINUTES_PER_DAY = 24 * 60
DAYS_PER_WEEK = 7


def time_axis_minutes(days: int, interval_minutes: int) -> np.ndarray:
    """Timestamps (minutes since start) for a trace of ``days`` days."""
    if days <= 0 or interval_minutes <= 0:
        raise ConfigurationError("days and interval must be positive")
    points = days * MINUTES_PER_DAY // interval_minutes
    return np.arange(points, dtype=np.float64) * interval_minutes


def _hour_of_day(minutes: np.ndarray) -> np.ndarray:
    return (minutes % MINUTES_PER_DAY) / 60.0


def _day_of_week(minutes: np.ndarray) -> np.ndarray:
    return (minutes // MINUTES_PER_DAY) % DAYS_PER_WEEK


def _normalise(curve: np.ndarray) -> np.ndarray:
    mean = curve.mean()
    if mean <= 0:
        raise ConfigurationError("pattern collapsed to non-positive mean")
    return curve / mean


def evening_entertainment(minutes: np.ndarray) -> np.ndarray:
    """Video streaming / gaming: low overnight, strong 19:00–23:00 peak."""
    hours = _hour_of_day(minutes)
    base = 0.25 + 0.35 * np.exp(-0.5 * ((hours - 13.0) / 3.2) ** 2)
    evening = 1.9 * np.exp(-0.5 * ((hours - 21.0) / 1.8) ** 2)
    weekend = np.where(_day_of_week(minutes) >= 5, 1.25, 1.0)
    return _normalise((base + evening) * weekend)


def school_hours(minutes: np.ndarray) -> np.ndarray:
    """Online education: sharp 9:00–12:00 peak, weekday-heavy (§4.5)."""
    hours = _hour_of_day(minutes)
    morning = 2.6 * np.exp(-0.5 * ((hours - 10.5) / 1.2) ** 2)
    evening_class = 0.9 * np.exp(-0.5 * ((hours - 19.5) / 1.0) ** 2)
    weekday = np.where(_day_of_week(minutes) < 5, 1.0, 0.45)
    return _normalise((0.08 + morning + evening_class) * weekday)


def business_hours(minutes: np.ndarray) -> np.ndarray:
    """Video/audio communication: 9:00–18:00 plateau, weekday-dominated."""
    hours = _hour_of_day(minutes)
    plateau = np.where((hours >= 9.0) & (hours <= 18.0), 1.0, 0.0)
    ramp = np.exp(-0.5 * ((hours - 13.5) / 5.0) ** 2)
    weekday = np.where(_day_of_week(minutes) < 5, 1.0, 0.35)
    return _normalise((0.15 + plateau * 0.7 + ramp * 0.8) * weekday)


def flat(minutes: np.ndarray) -> np.ndarray:
    """Surveillance-style constant load (cameras stream around the clock)."""
    return np.ones_like(minutes, dtype=np.float64)


def daytime_broad(minutes: np.ndarray) -> np.ndarray:
    """CDN-style broad daytime curve with an evening shoulder."""
    hours = _hour_of_day(minutes)
    curve = 0.35 + np.exp(-0.5 * ((hours - 16.0) / 5.0) ** 2)
    return _normalise(curve)


def cloud_batch(minutes: np.ndarray) -> np.ndarray:
    """Cloud batch/dev workloads: mild business-hours tilt only."""
    hours = _hour_of_day(minutes)
    curve = 0.70 + 0.45 * np.exp(-0.5 * ((hours - 14.0) / 6.0) ** 2)
    weekday = np.where(_day_of_week(minutes) < 5, 1.0, 0.85)
    return _normalise(curve * weekday)


PATTERNS = {
    "evening_entertainment": evening_entertainment,
    "school_hours": school_hours,
    "business_hours": business_hours,
    "flat": flat,
    "daytime_broad": daytime_broad,
    "cloud_batch": cloud_batch,
}


def pattern(name: str):
    """Look up a pattern by name.

    Raises:
        ConfigurationError: for unknown pattern names.
    """
    try:
        return PATTERNS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown pattern {name!r}; available: {sorted(PATTERNS)}"
        ) from None


def regime_switching_levels(count: int, points: int,
                            rng: np.random.Generator,
                            switch_probability: float = 0.004,
                            low: float = 0.2, high: float = 2.5) -> np.ndarray:
    """``count`` independent piecewise-constant multiplier rows at once.

    Models the "dramatic and unpredictable" weekly bandwidth swings of
    Figure 12's VM-1/VM-2: occasionally the level re-draws uniformly in
    [low, high] and holds until the next switch.  Segment boundaries for
    every row come from one Bernoulli matrix; one flat uniform draw then
    supplies the levels of all rows' segments.
    """
    if not 0.0 < switch_probability < 1.0:
        raise ConfigurationError(
            f"switch probability must be in (0, 1), got {switch_probability}"
        )
    if count <= 0 or points <= 0:
        raise ConfigurationError("count and points must be positive")
    switches = rng.random((count, points)) < switch_probability
    switches[:, 0] = True  # segment 0 of each row needs a level too
    segment_ids = np.cumsum(switches, axis=1) - 1
    segments_per_row = segment_ids[:, -1] + 1
    offsets = np.concatenate(([0], np.cumsum(segments_per_row)[:-1]))
    levels = rng.uniform(low, high, size=int(segments_per_row.sum()))
    return levels[segment_ids + offsets[:, None]]


def regime_switching_level(points: int, rng: np.random.Generator,
                           switch_probability: float = 0.004,
                           low: float = 0.2, high: float = 2.5) -> np.ndarray:
    """One row of :func:`regime_switching_levels` (scalar convenience)."""
    return regime_switching_levels(1, points, rng, switch_probability,
                                   low, high)[0]


def ar1_noise_batch(count: int, points: int, rng: np.random.Generator,
                    rho: float = 0.9, sigma: float = 0.15) -> np.ndarray:
    """``count`` independent AR(1) noise rows as one ``(count, points)`` array.

    All innovations come from a single normal draw; the recursion runs as
    one :func:`scipy.signal.lfilter` along axis 1, so cost per row is a
    fraction of the scalar path's.
    """
    if not 0.0 <= rho < 1.0:
        raise ConfigurationError(f"rho must be in [0, 1), got {rho}")
    if count <= 0 or points <= 0:
        raise ConfigurationError("count and points must be positive")
    innovations = rng.standard_normal((count, points))
    innovations *= sigma * np.sqrt(1 - rho * rho)
    noise = lfilter([1.0], [1.0, -rho], innovations, axis=1)
    noise += 1.0
    np.maximum(noise, 0.05, out=noise)
    return noise


def ar1_noise(points: int, rng: np.random.Generator, rho: float = 0.9,
              sigma: float = 0.15) -> np.ndarray:
    """Smooth multiplicative AR(1) noise centred on 1.0, floored at 0.05.

    AR(1) rather than white noise: consecutive usage readings of a real VM
    are strongly autocorrelated, and the §4.4 predictability experiment
    depends on that.
    """
    return ar1_noise_batch(1, points, rng, rho, sigma)[0]
