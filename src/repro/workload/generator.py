"""End-to-end NEP workload generation: platform + apps + trace dataset.

This is the factory behind every §4 analysis: it builds the NEP topology,
creates customers and apps per the §4.1 category mix, places their VMs
with NEP's production policy, and synthesises per-VM CPU and bandwidth
series.  The result bundles the live :class:`~repro.platform.Platform`
(for placement/scheduling experiments) with the immutable
:class:`~repro.trace.TraceDataset` (for the workload analyses).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import Scenario
from ..errors import PlacementError
from ..geo.regions import CHINA_CITIES, provinces
from ..platform.cluster import Platform
from ..platform.entities import App, Customer, VMSpec
from ..platform.nep import build_nep_platform
from ..platform.placement import NepPlacementPolicy, SubscriptionRequest
from ..trace.dataset import TraceDataset
from ..trace.schema import AppRecord, ServerRecord, SiteRecord, VMRecord
from .apps import AppProfile, NEP_PROFILES, sample_profile
from .bandwidth import derive_private_series_batch, generate_bw_series_batch
from .cpu import generate_cpu_series_batch
from .patterns import pattern, time_axis_minutes
from .subscription import sample_nep_disk_gb, sample_nep_spec

#: VMs per batched series-generation chunk.  Bounds the transient float64
#: working set (a chunk is ~CHUNK x points x 8 bytes per component) so
#: paper-scale runs stay well inside memory while small apps still
#: vectorise as a single chunk.
SERIES_CHUNK_VMS = 256


class SeasonCache:
    """Memoises ``pattern(name)(minutes)`` per (pattern, axis).

    Every VM of every app with the same category recomputed the same
    seasonal curve; at paper scale that alone was minutes of work.  The
    cache holds one row per pattern per time axis (cpu and bw).
    """

    def __init__(self) -> None:
        self._cache: dict[tuple[str, int], np.ndarray] = {}

    def get(self, pattern_name: str, minutes: np.ndarray) -> np.ndarray:
        key = (pattern_name, id(minutes))
        curve = self._cache.get(key)
        if curve is None:
            curve = pattern(pattern_name)(minutes)
            self._cache[key] = curve
        return curve


@dataclass
class GeneratedWorkload:
    """A platform with placed VMs plus the trace those VMs produced."""

    platform: Platform
    dataset: TraceDataset


def _province_weights() -> tuple[list[str], np.ndarray]:
    totals: dict[str, float] = {}
    for c in CHINA_CITIES:
        totals[c.province] = totals.get(c.province, 0.0) + c.population_m
    names = list(totals)
    weights = np.array([totals[n] for n in names])
    return names, weights / weights.sum()


def _choose_provinces(profile: AppProfile, vm_count: int,
                      rng: np.random.Generator) -> list[str]:
    """Provinces an app deploys into; big apps spread wider (§4.1)."""
    names, weights = _province_weights()
    if vm_count >= 100:
        spread = min(len(names), int(rng.integers(8, 15)))
    elif vm_count >= 20:
        spread = int(rng.integers(3, 7))
    elif vm_count >= 5:
        spread = int(rng.integers(1, 4))
    else:
        spread = 1
    chosen = rng.choice(len(names), size=spread, replace=False, p=weights)
    return [names[i] for i in chosen]


def _split_counts(total: int, parts: int, rng: np.random.Generator) -> list[int]:
    """Split ``total`` VMs across ``parts`` provinces, each >= 1."""
    if parts >= total:
        return [1] * total
    weights = rng.dirichlet(np.ones(parts) * 2.0)
    counts = np.maximum(1, np.round(weights * total).astype(int))
    # Fix rounding drift while keeping every part >= 1.
    while counts.sum() > total:
        counts[int(np.argmax(counts))] -= 1
    while counts.sum() < total:
        counts[int(np.argmin(counts))] += 1
    return counts.tolist()


def generate_nep_workload(scenario: Scenario) -> GeneratedWorkload:
    """Generate the full NEP platform + 3-month-style trace for a scenario."""
    random = scenario.random
    platform = build_nep_platform(scenario)
    policy = NepPlacementPolicy()
    app_rng = random.stream("nep-apps")
    series_rng_root = random.child("nep-series")

    dataset = TraceDataset(
        platform_name=platform.name,
        trace_days=scenario.trace_days,
        cpu_interval_minutes=scenario.cpu_interval_minutes,
        bw_interval_minutes=scenario.bw_interval_minutes,
    )
    for site in platform.sites:
        dataset.sites[site.site_id] = SiteRecord(
            site_id=site.site_id, name=site.name, city=site.city,
            province=site.province, lat=site.location.lat,
            lon=site.location.lon,
            gateway_bandwidth_mbps=site.gateway_bandwidth_mbps,
        )
        for server in site.servers:
            dataset.servers[server.server_id] = ServerRecord(
                server_id=server.server_id, site_id=site.site_id,
                cpu_cores=int(server.capacity.cpu_cores),
                memory_gb=int(server.capacity.memory_gb),
                disk_gb=int(server.capacity.disk_gb),
            )

    cpu_minutes = time_axis_minutes(scenario.trace_days,
                                    scenario.cpu_interval_minutes)
    bw_minutes = time_axis_minutes(scenario.trace_days,
                                   scenario.bw_interval_minutes)
    seasons = SeasonCache()

    vm_budget = scenario.nep_vm_count
    app_index = 0
    while vm_budget > 0:
        profile = sample_profile(NEP_PROFILES, app_rng)
        vm_count = min(profile.sample_vm_count(app_rng), vm_budget)
        app_id = f"nep-app{app_index:04d}"
        customer = Customer(customer_id=f"nep-c{app_index:04d}",
                            name=f"customer-{app_index}", segment="business")
        app = App(app_id=app_id, customer_id=customer.customer_id,
                  category=profile.category,
                  image_id=f"img-{profile.category}-{app_index:04d}")
        platform.register_customer(customer)
        platform.register_app(app)
        dataset.apps[app_id] = AppRecord(
            app_id=app_id, customer_id=customer.customer_id,
            category=profile.category, image_id=app.image_id,
        )

        spec = sample_nep_spec(app_rng)
        app_provinces = _choose_provinces(profile, vm_count, app_rng)
        counts = _split_counts(vm_count, len(app_provinces), app_rng)
        placed_vms = []
        for province, count in zip(app_provinces, counts):
            # Cores/memory are uniform across an app's fleet (the §2
            # subscription example), but disk follows each VM's data
            # volume — that is what gives the 100 GB median / 650 GB
            # mean storage tail of §4.1.
            vm_specs = [
                VMSpec(
                    cpu_cores=spec.cpu_cores, memory_gb=spec.memory_gb,
                    disk_gb=sample_nep_disk_gb(app_rng),
                    bandwidth_mbps=spec.bandwidth_mbps,
                )
                for _ in range(count)
            ]
            request = SubscriptionRequest(
                customer_id=customer.customer_id, app_id=app_id,
                image_id=app.image_id, spec=vm_specs[0], vm_count=count,
                province=province,
            )
            # A saturated province places fewer VMs (allow_partial) and a
            # province without sites is skipped; the app simply deploys
            # less there, as a real customer would be told.
            try:
                placed_vms.extend(policy.place(platform, request,
                                               specs=vm_specs,
                                               allow_partial=True))
            except PlacementError:
                continue
        if not placed_vms:
            app_index += 1
            continue

        _generate_app_series(
            profile=profile, app_id=app_id, placed_vms=placed_vms,
            platform=platform, dataset=dataset,
            cpu_minutes=cpu_minutes, bw_minutes=bw_minutes,
            rng=series_rng_root.stream(app_id), spec=spec,
            seasons=seasons,
        )
        vm_budget -= len(placed_vms)
        app_index += 1

    dataset.validate()
    platform.validate()
    return GeneratedWorkload(platform=platform, dataset=dataset)


def _generate_app_series(profile: AppProfile, app_id: str, placed_vms: list,
                         platform: Platform, dataset: TraceDataset,
                         cpu_minutes: np.ndarray, bw_minutes: np.ndarray,
                         rng: np.random.Generator, spec: VMSpec,
                         seasons: SeasonCache | None = None) -> None:
    """Create the per-VM series and trace records for one placed app.

    The whole fleet's CPU, bandwidth, and private-traffic series come from
    the batch generators — one RNG/filter pass per component per chunk
    rather than per VM.
    """
    if seasons is None:
        seasons = SeasonCache()
    base_level = profile.cpu_levels.sample(rng)
    base_bw = float(rng.lognormal(np.log(profile.bw_median_mbps),
                                  profile.bw_sigma))
    # The app's own heterogeneity: some apps balance their VMs well,
    # others (Figure 13) leave one VM hot and the rest idle.
    app_sigma = profile.within_app_sigma * float(rng.uniform(0.5, 1.6))
    # mean=-sigma^2/2 keeps the app-level mean at base_level while the
    # spread controls the Figure 13 cross-VM gap.
    multipliers = rng.lognormal(mean=-app_sigma ** 2 / 2, sigma=app_sigma,
                                size=len(placed_vms))
    mean_cpus = np.clip(base_level * multipliers, 0.003, 0.92)
    mean_bws = np.maximum(base_bw * multipliers, 0.05)
    erratic = rng.random(len(placed_vms)) < profile.erratic_probability
    cpu_season = seasons.get(profile.pattern_name, cpu_minutes)
    bw_season = seasons.get(profile.pattern_name, bw_minutes)

    for start in range(0, len(placed_vms), SERIES_CHUNK_VMS):
        stop = min(start + SERIES_CHUNK_VMS, len(placed_vms))
        cpu_rows = generate_cpu_series_batch(
            profile, mean_cpus[start:stop], cpu_minutes, rng,
            season=cpu_season)
        bw_rows = generate_bw_series_batch(
            profile, mean_bws[start:stop], bw_minutes, rng,
            erratic=erratic[start:stop], season=bw_season)
        private_rows = derive_private_series_batch(bw_rows, rng)
        for offset, vm in enumerate(placed_vms[start:stop]):
            site = platform.site(vm.site_id)
            record = VMRecord(
                vm_id=vm.vm_id, app_id=app_id, customer_id=vm.customer_id,
                site_id=vm.site_id, server_id=vm.server_id,
                city=site.city, province=site.province,
                category=profile.category, image_id=vm.image_id,
                os_type=vm.os_type,
                cpu_cores=vm.spec.cpu_cores, memory_gb=vm.spec.memory_gb,
                disk_gb=vm.spec.disk_gb,
                bandwidth_mbps=float(np.ceil(mean_bws[start + offset] * 3.0)),
            )
            dataset.add_vm(record, cpu_rows[offset], bw_rows[offset],
                           private_rows[offset])
