"""End-to-end NEP workload generation: platform + apps + trace dataset.

This is the factory behind every §4 analysis: it builds the NEP topology,
creates customers and apps per the §4.1 category mix, places their VMs
with NEP's production policy, and synthesises per-VM CPU and bandwidth
series.  The result bundles the live :class:`~repro.platform.Platform`
(for placement/scheduling experiments) with the immutable
:class:`~repro.trace.TraceDataset` (for the workload analyses).

Generation runs in two stages.  The *placement* stage is sequential: it
samples the app population and places VMs (both consume shared RNG
streams and mutate the platform).  The *series* stage renders each
app's CPU/bandwidth rows from the app's own RNG substream and is
embarrassingly parallel — ``jobs > 1`` fans the per-app jobs out over
worker processes via :func:`repro.parallel.run_series_jobs` with
bit-identical output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import Scenario
from ..errors import PlacementError
from ..geo.regions import CHINA_CITIES, provinces
from ..perf import PerfRegistry
from ..platform.cluster import Platform
from ..platform.entities import App, Customer, VMSpec
from ..platform.nep import build_nep_platform
from ..platform.placement import NepPlacementPolicy, SubscriptionRequest
from ..trace.dataset import TraceDataset
from ..trace.schema import AppRecord, ServerRecord, SiteRecord, VMRecord
from .apps import AppProfile, NEP_PROFILES, sample_profile
from .series import (  # noqa: F401  (re-exported: historical home)
    NEP_RECIPE,
    SERIES_CHUNK_VMS,
    SeasonCache,
    SeriesJob,
)
from .subscription import sample_nep_disk_gb, sample_nep_spec


@dataclass
class GeneratedWorkload:
    """A platform with placed VMs plus the trace those VMs produced."""

    platform: Platform
    dataset: TraceDataset


def _province_weights() -> tuple[list[str], np.ndarray]:
    totals: dict[str, float] = {}
    for c in CHINA_CITIES:
        totals[c.province] = totals.get(c.province, 0.0) + c.population_m
    names = list(totals)
    weights = np.array([totals[n] for n in names])
    return names, weights / weights.sum()


def _choose_provinces(profile: AppProfile, vm_count: int,
                      rng: np.random.Generator) -> list[str]:
    """Provinces an app deploys into; big apps spread wider (§4.1)."""
    names, weights = _province_weights()
    if vm_count >= 100:
        spread = min(len(names), int(rng.integers(8, 15)))
    elif vm_count >= 20:
        spread = int(rng.integers(3, 7))
    elif vm_count >= 5:
        spread = int(rng.integers(1, 4))
    else:
        spread = 1
    chosen = rng.choice(len(names), size=spread, replace=False, p=weights)
    return [names[i] for i in chosen]


def _split_counts(total: int, parts: int, rng: np.random.Generator) -> list[int]:
    """Split ``total`` VMs across ``parts`` provinces, each >= 1."""
    if parts >= total:
        return [1] * total
    weights = rng.dirichlet(np.ones(parts) * 2.0)
    counts = np.maximum(1, np.round(weights * total).astype(int))
    # Fix rounding drift while keeping every part >= 1.
    while counts.sum() > total:
        counts[int(np.argmax(counts))] -= 1
    while counts.sum() < total:
        counts[int(np.argmin(counts))] += 1
    return counts.tolist()


def register_inventory(platform: Platform, dataset: TraceDataset) -> None:
    """Copy a platform's site/server inventory into the trace tables."""
    for site in platform.sites:
        dataset.sites[site.site_id] = SiteRecord(
            site_id=site.site_id, name=site.name, city=site.city,
            province=site.province, lat=site.location.lat,
            lon=site.location.lon,
            gateway_bandwidth_mbps=site.gateway_bandwidth_mbps,
        )
        for server in site.servers:
            dataset.servers[server.server_id] = ServerRecord(
                server_id=server.server_id, site_id=site.site_id,
                cpu_cores=int(server.capacity.cpu_cores),
                memory_gb=int(server.capacity.memory_gb),
                disk_gb=int(server.capacity.disk_gb),
            )


def generate_nep_workload(scenario: Scenario, jobs: int = 1,
                          perf: PerfRegistry | None = None,
                          sink=None) -> GeneratedWorkload:
    """Generate the full NEP platform + 3-month-style trace for a scenario.

    ``jobs`` is the worker-process count for the series stage (``1`` =
    in-process, ``0`` = all CPU cores); output is bit-identical for any
    value.  ``perf`` receives the series-stage spans (including, merged,
    those recorded inside worker processes).  ``sink`` (a
    :class:`~repro.workload.streaming.WorkloadSink`) streams the rendered
    rows to sharded disk storage instead of holding them in memory —
    same bytes, bounded RSS.
    """
    from ..parallel import run_series_jobs

    random = scenario.random
    platform = build_nep_platform(scenario)
    policy = NepPlacementPolicy()
    app_rng = random.stream("nep-apps")

    dataset = TraceDataset(
        platform_name=platform.name,
        trace_days=scenario.trace_days,
        cpu_interval_minutes=scenario.cpu_interval_minutes,
        bw_interval_minutes=scenario.bw_interval_minutes,
    )
    register_inventory(platform, dataset)

    # ---- placement stage (sequential) --------------------------------
    pending: list[tuple[SeriesJob, list]] = []
    vm_budget = scenario.nep_vm_count
    app_index = 0
    while vm_budget > 0:
        profile = sample_profile(NEP_PROFILES, app_rng)
        vm_count = min(profile.sample_vm_count(app_rng), vm_budget)
        app_id = f"nep-app{app_index:04d}"
        customer = Customer(customer_id=f"nep-c{app_index:04d}",
                            name=f"customer-{app_index}", segment="business")
        app = App(app_id=app_id, customer_id=customer.customer_id,
                  category=profile.category,
                  image_id=f"img-{profile.category}-{app_index:04d}")
        platform.register_customer(customer)
        platform.register_app(app)
        dataset.apps[app_id] = AppRecord(
            app_id=app_id, customer_id=customer.customer_id,
            category=profile.category, image_id=app.image_id,
        )

        spec = sample_nep_spec(app_rng)
        app_provinces = _choose_provinces(profile, vm_count, app_rng)
        counts = _split_counts(vm_count, len(app_provinces), app_rng)
        placed_vms = []
        for province, count in zip(app_provinces, counts):
            # Cores/memory are uniform across an app's fleet (the §2
            # subscription example), but disk follows each VM's data
            # volume — that is what gives the 100 GB median / 650 GB
            # mean storage tail of §4.1.
            vm_specs = [
                VMSpec(
                    cpu_cores=spec.cpu_cores, memory_gb=spec.memory_gb,
                    disk_gb=sample_nep_disk_gb(app_rng),
                    bandwidth_mbps=spec.bandwidth_mbps,
                )
                for _ in range(count)
            ]
            request = SubscriptionRequest(
                customer_id=customer.customer_id, app_id=app_id,
                image_id=app.image_id, spec=vm_specs[0], vm_count=count,
                province=province,
            )
            # A saturated province places fewer VMs (allow_partial) and a
            # province without sites is skipped; the app simply deploys
            # less there, as a real customer would be told.
            try:
                placed_vms.extend(policy.place(platform, request,
                                               specs=vm_specs,
                                               allow_partial=True))
            except PlacementError:
                continue
        if not placed_vms:
            app_index += 1
            continue

        pending.append((SeriesJob(app_id=app_id, profile=profile,
                                  vm_count=len(placed_vms)), placed_vms))
        vm_budget -= len(placed_vms)
        app_index += 1

    # ---- series stage (parallel across apps) -------------------------
    blocks = run_series_jobs([job for job, _ in pending], scenario,
                             NEP_RECIPE, n_jobs=jobs, perf=perf)
    if sink is not None:
        sink.begin(dataset.cpu_points, dataset.bw_points, NEP_RECIPE.private)
    try:
        for (job, placed_vms), block in zip(pending, blocks):
            vm_ids = []
            for offset, vm in enumerate(placed_vms):
                site = platform.site(vm.site_id)
                record = VMRecord(
                    vm_id=vm.vm_id, app_id=job.app_id,
                    customer_id=vm.customer_id,
                    site_id=vm.site_id, server_id=vm.server_id,
                    city=site.city, province=site.province,
                    category=job.profile.category, image_id=vm.image_id,
                    os_type=vm.os_type,
                    cpu_cores=vm.spec.cpu_cores, memory_gb=vm.spec.memory_gb,
                    disk_gb=vm.spec.disk_gb,
                    bandwidth_mbps=float(
                        np.ceil(block.mean_bws[offset] * 3.0)),
                )
                if sink is None:
                    dataset.add_vm(record, block.cpu_rows[offset],
                                   block.bw_rows[offset],
                                   block.private_rows[offset])
                else:
                    dataset.add_vm_record(record)
                    vm_ids.append(vm.vm_id)
            if sink is not None:
                sink.consume(vm_ids, block)
        if sink is not None:
            sink.finalize(platform, dataset)
    except BaseException:
        if sink is not None:
            sink.abort()
        raise

    dataset.validate()
    platform.validate()
    return GeneratedWorkload(platform=platform, dataset=dataset)
