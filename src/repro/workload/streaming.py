"""Streaming workload sinks: series blocks to sharded storage, not RAM.

The in-core generation path accumulates every rendered row in
:class:`~repro.trace.dataset.TraceDataset` dictionaries — fine up to
paper scale, impossible at the city tier (~1M VMs would be hundreds of
gigabytes).  A :class:`WorkloadSink` gives the generators a third
destination: each :class:`~repro.workload.series.SeriesBlock` is
validated and appended to per-kind :class:`~repro.shards.ShardWriter`
streams, so the parent process only ever holds one shard buffer per
kind plus the block in flight.

Two backings share one class:

* ``WorkloadSink.for_cache(...)`` writes shards directly into an
  :class:`~repro.cache.ArtifactCache` staging directory; ``finalize``
  seals the entry with the usual meta-last + atomic-rename protocol, so
  a streamed run *is* its own cache population pass.
* ``WorkloadSink.spill(...)`` targets a temporary spill directory for
  cache-less runs (cleaned up at process exit).

``finalize`` then attaches lazy :class:`~repro.shards.ShardedSeriesMap`
views to the dataset, so every downstream analysis sees the familiar
``Mapping[vm_id, row]`` interface over the on-disk shards.

Streaming is an *execution* knob, like ``--jobs``: it changes where
bytes live, never what they are.  The golden-digest equivalence tests
pin that streamed output is bit-identical to the in-core path.
"""

from __future__ import annotations

import atexit
import shutil
import tempfile
from pathlib import Path

import numpy as np

from ..config import Scenario
from ..errors import ConfigurationError, TraceError
from ..shards import (
    DEFAULT_SHARD_ROWS,
    ShardWriter,
    load_sharded_series,
    write_shard_index,
)
from .series import SeriesBlock

#: ``--streaming auto`` switches the sink on at or above this VM count.
STREAMING_THRESHOLD_VMS = 100_000

#: Accepted ``--streaming`` modes.
STREAMING_MODES = ("auto", "on", "off")


def resolve_streaming(mode: str, scenario: Scenario) -> bool:
    """Whether a study at ``scenario`` should stream its workloads.

    ``"on"``/``"off"`` force the path; ``"auto"`` enables it when either
    platform's VM count reaches :data:`STREAMING_THRESHOLD_VMS` (the
    point where in-core matrices stop fitting in commodity RAM).

    Raises:
        ConfigurationError: on an unknown mode.
    """
    if mode not in STREAMING_MODES:
        raise ConfigurationError(
            f"unknown streaming mode {mode!r}, expected one of "
            f"{STREAMING_MODES}")
    if mode != "auto":
        return mode == "on"
    return max(scenario.nep_vm_count,
               scenario.azure_vm_count) >= STREAMING_THRESHOLD_VMS


def _cleanup_spill(path: Path) -> None:
    shutil.rmtree(path, ignore_errors=True)


class WorkloadSink:
    """Routes one workload's rendered series blocks to sharded disk.

    Single-use: one sink serves exactly one generator call.  The
    generator drives the protocol — :meth:`begin` once, :meth:`consume`
    per block, then :meth:`finalize` (or :meth:`abort` on failure).
    """

    def __init__(self, root: Path, *, entry_writer=None, journal=None,
                 shard_rows: int = DEFAULT_SHARD_ROWS) -> None:
        self.root = Path(root)
        #: Cache staging handle (``ArtifactCache.workload_writer``), or
        #: ``None`` for a plain spill directory.
        self._entry_writer = entry_writer
        self.journal = journal
        self.shard_rows = shard_rows
        self._writers: dict[str, ShardWriter] = {}
        self._order: list[str] = []
        self._seen: set[str] = set()
        self._began = False
        self._done = False
        self._aborted = False

    # ---- constructors ----------------------------------------------------

    @classmethod
    def for_cache(cls, cache, artifact: str, scenario: Scenario,
                  journal=None,
                  shard_rows: int = DEFAULT_SHARD_ROWS) -> "WorkloadSink":
        """A sink writing straight into a new cache entry's staging dir."""
        writer = cache.workload_writer(artifact, scenario)
        return cls(writer.staging, entry_writer=writer,
                   journal=journal if journal is not None else cache.journal,
                   shard_rows=shard_rows)

    @classmethod
    def spill(cls, directory: Path | str | None = None, journal=None,
              shard_rows: int = DEFAULT_SHARD_ROWS) -> "WorkloadSink":
        """A sink backed by a temporary spill directory (no cache).

        A created temp dir is removed at interpreter exit; an explicit
        ``directory`` is the caller's to manage.
        """
        if directory is None:
            directory = Path(tempfile.mkdtemp(prefix="repro-spill-"))
            atexit.register(_cleanup_spill, directory)
        return cls(Path(directory), journal=journal, shard_rows=shard_rows)

    # ---- streaming protocol ----------------------------------------------

    def begin(self, cpu_points: int, bw_points: int, private: bool) -> None:
        """Open the per-kind shard writers for this workload's shape."""
        if self._began:
            raise TraceError("workload sink already began")
        self._began = True
        kinds = [("cpu", cpu_points), ("bw", bw_points)]
        if private:
            kinds.append(("private", bw_points))
        for kind, points in kinds:
            self._writers[kind] = ShardWriter(
                self.root, kind, points, shard_rows=self.shard_rows,
                on_flush=self._flush_hook(kind),
                on_retry=self._retry_hook(kind))

    def _flush_hook(self, kind: str):
        def hook(shard: int, rows: int, nbytes: int) -> None:
            if self.journal is not None:
                self.journal.emit("chunk_spill", kind=kind, shard=shard,
                                  rows=rows, bytes=nbytes)
        return hook

    def _retry_hook(self, kind: str):
        def hook(shard: int, attempt: int, delay_s: float,
                 exc: BaseException) -> None:
            if self.journal is not None:
                self.journal.emit("io_retry", kind=kind, shard=shard,
                                  attempt=attempt,
                                  delay_s=round(delay_s, 6),
                                  error=f"{type(exc).__name__}: {exc}")
        return hook

    def consume(self, vm_ids: list[str], block: SeriesBlock) -> None:
        """Validate and append one rendered block's rows.

        Mirrors :meth:`TraceDataset.add_vm` semantics (duplicate ids,
        CPU range, non-negative bandwidth) vectorised over the block.
        """
        if not self._began or self._done:
            raise TraceError("workload sink is not accepting blocks")
        if len(vm_ids) != block.cpu_rows.shape[0]:
            raise TraceError(
                f"block {block.app_id!r}: {block.cpu_rows.shape[0]} rows "
                f"for {len(vm_ids)} VM ids")
        for vm_id in vm_ids:
            if vm_id in self._seen:
                raise TraceError(f"duplicate VM id {vm_id!r}")
            self._seen.add(vm_id)
        cpu, bw = block.cpu_rows, block.bw_rows
        if np.any(cpu < 0) or np.any(cpu > 1.0 + 1e-6):
            raise TraceError(
                f"block {block.app_id!r}: CPU utilisation outside [0, 1]")
        if np.any(bw < 0):
            raise TraceError(f"block {block.app_id!r}: negative bandwidth")
        self._writers["cpu"].append(cpu.astype(np.float32, copy=False))
        self._writers["bw"].append(bw.astype(np.float32, copy=False))
        if "private" in self._writers:
            if block.private_rows is None:
                raise TraceError(
                    f"block {block.app_id!r}: missing private rows")
            self._writers["private"].append(
                block.private_rows.astype(np.float32, copy=False))
        self._order.extend(vm_ids)

    def finalize(self, platform, dataset) -> None:
        """Seal the store and attach lazy series maps to ``dataset``.

        For a cache-backed sink this writes the entry tables and commits
        via the atomic-rename protocol; either way the dataset's series
        become :class:`~repro.shards.ShardedSeriesMap` views over the
        final on-disk location.
        """
        if not self._began or self._done:
            raise TraceError("workload sink cannot finalize")
        self._done = True
        if list(dataset.vms) != self._order:
            raise TraceError(
                "sink row order does not match the dataset VM table")
        layouts = [writer.finalize() for writer in self._writers.values()]
        write_shard_index(self.root, layouts)
        shard_count = sum(layout.n_shards for layout in layouts)
        if self._entry_writer is not None:
            from ..cache import workload_tables

            tables = workload_tables(dataset)
            # Private rows are not attached to the dataset yet; their
            # order is the sink's row order whenever the kind exists.
            tables["private_ids"] = (list(self._order)
                                     if "private" in self._writers else [])
            final_root = self._entry_writer.commit(platform, tables,
                                                   shards=shard_count)
        else:
            final_root = self.root
        orders = {kind: self._order for kind in self._writers}
        maps = load_sharded_series(final_root, orders)
        dataset.attach_series(maps["cpu"], maps["bw"], maps.get("private"))

    def abort(self) -> None:
        """Discard all partial output (failed generation).

        Idempotent: the generator aborts on a mid-stream failure and the
        study aborts again when the exception reaches it (covering
        failures *before* the generator's own try block, e.g. during
        placement) — the second call must not touch the already-removed
        directory.  Same ENOSPC hygiene as the cache's staging dirs: a
        failed spill never waits for interpreter exit to free its disk.
        """
        if self._aborted:
            return
        self._aborted = True
        self._done = True
        if self._entry_writer is not None:
            self._entry_writer.abort()
        else:
            shutil.rmtree(self.root, ignore_errors=True)
