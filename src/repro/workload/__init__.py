"""Workload substrate: app profiles, series generators, dataset factories."""

from .apps import (
    AZURE_PROFILES,
    AppProfile,
    CpuLevelMixture,
    NEP_PROFILES,
    profiles_by_category,
    sample_profile,
)
from .azure import generate_azure_workload
from .bandwidth import (
    derive_private_series,
    derive_private_series_batch,
    generate_bw_series,
    generate_bw_series_batch,
    peak_to_mean_ratio,
)
from .cpu import generate_cpu_series, generate_cpu_series_batch
from .generator import GeneratedWorkload, generate_nep_workload
from .series import (
    AZURE_RECIPE,
    NEP_RECIPE,
    SERIES_CHUNK_VMS,
    SeasonCache,
    SeriesJob,
    SeriesRecipe,
    render_series_job,
)
from .patterns import (
    PATTERNS,
    ar1_noise,
    ar1_noise_batch,
    pattern,
    regime_switching_level,
    regime_switching_levels,
    time_axis_minutes,
)
from .subscription import (
    AZURE_SIZE_OPTIONS,
    NEP_SIZE_OPTIONS,
    SizeOption,
    sample_azure_spec,
    sample_nep_spec,
)

__all__ = [
    "AZURE_PROFILES",
    "AZURE_RECIPE",
    "AZURE_SIZE_OPTIONS",
    "AppProfile",
    "CpuLevelMixture",
    "GeneratedWorkload",
    "NEP_PROFILES",
    "NEP_RECIPE",
    "NEP_SIZE_OPTIONS",
    "PATTERNS",
    "SERIES_CHUNK_VMS",
    "SizeOption",
    "SeasonCache",
    "SeriesJob",
    "SeriesRecipe",
    "render_series_job",
    "ar1_noise",
    "ar1_noise_batch",
    "derive_private_series",
    "derive_private_series_batch",
    "generate_azure_workload",
    "generate_bw_series",
    "generate_bw_series_batch",
    "generate_cpu_series",
    "generate_cpu_series_batch",
    "generate_nep_workload",
    "pattern",
    "peak_to_mean_ratio",
    "profiles_by_category",
    "regime_switching_level",
    "regime_switching_levels",
    "sample_azure_spec",
    "sample_nep_spec",
    "sample_profile",
    "time_axis_minutes",
]
