"""App-category catalog with per-category workload profiles.

§4.1 lists NEP's dominant customers: video live streaming, online
education, content delivery, video/audio communication, video
surveillance, and cloud gaming — all network-intensive and delay-critical.
Azure's mix (per the Resource Central characterisation the paper compares
against) skews to small interactive/web VMs, batch jobs, and individuals.

Each :class:`AppProfile` bundles everything the generators need: the
seasonal pattern, CPU level mixture, bandwidth intensity, within-app
heterogeneity, and the VM-count distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class CpuLevelMixture:
    """Mixture over per-VM mean CPU levels: (weight, low, high) triples."""

    components: tuple[tuple[float, float, float], ...]

    def __post_init__(self) -> None:
        total = sum(w for w, _, _ in self.components)
        if abs(total - 1.0) > 1e-6:
            raise ConfigurationError(
                f"mixture weights must sum to 1, got {total}"
            )
        for w, low, high in self.components:
            if not (0 <= low < high <= 1.0) or w < 0:
                raise ConfigurationError(
                    f"bad mixture component ({w}, {low}, {high})"
                )

    def sample(self, rng: np.random.Generator) -> float:
        weights = np.array([w for w, _, _ in self.components])
        idx = int(rng.choice(len(self.components), p=weights))
        _, low, high = self.components[idx]
        return float(rng.uniform(low, high))


@dataclass(frozen=True)
class AppProfile:
    """Workload profile of one app category."""

    category: str
    pattern_name: str
    #: Distribution of per-VM mean CPU utilisation.
    cpu_levels: CpuLevelMixture
    #: Strength of the seasonal component (0 = pure noise, 1 = pure season).
    seasonal_weight: float
    #: AR(1) noise sigma for the residual component.
    noise_sigma: float
    #: AR(1) autocorrelation of the residual: interactive edge traffic is
    #: smooth (high rho); cloud batch jobs start and stop abruptly.
    noise_rho: float
    #: Per-interval probability of a short CPU burst.
    burst_probability: float
    #: Per-VM mean public bandwidth in Mbps (lognormal median and sigma).
    bw_median_mbps: float
    bw_sigma: float
    #: Lognormal sigma of the per-VM multiplier *within one app* — drives
    #: the Figure 13 cross-VM imbalance.  Sampled per app around this value.
    within_app_sigma: float
    #: VM-count distribution per app: lognormal (median, sigma), clipped.
    vm_count_median: float
    vm_count_sigma: float
    vm_count_max: int
    #: Probability that a VM's bandwidth follows a regime-switching level
    #: (Figure 12's "unpredictable" VMs).
    erratic_probability: float
    #: Weight of this category in the platform's app population.
    popularity: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.seasonal_weight <= 1.0:
            raise ConfigurationError(
                f"{self.category}: seasonal_weight out of [0,1]"
            )
        if self.vm_count_max <= 0 or self.vm_count_median <= 0:
            raise ConfigurationError(f"{self.category}: bad VM count params")
        if not 0.0 <= self.erratic_probability <= 1.0:
            raise ConfigurationError(
                f"{self.category}: erratic_probability out of [0,1]"
            )

    def sample_vm_count(self, rng: np.random.Generator) -> int:
        draw = rng.lognormal(mean=np.log(self.vm_count_median),
                             sigma=self.vm_count_sigma)
        return int(np.clip(round(draw), 1, self.vm_count_max))


def _mix(*components: tuple[float, float, float]) -> CpuLevelMixture:
    return CpuLevelMixture(components=components)


#: NEP's app categories (§4.1).  CPU mixtures put ~74% of VMs under 10%
#: mean utilisation (Figure 10(a)); bandwidth medians make video apps
#: dominate traffic (§4.5); within-app sigma puts ~16% of apps past a 50x
#: cross-VM gap (Figure 13(a)).
NEP_PROFILES: tuple[AppProfile, ...] = (
    AppProfile(
        category="live_streaming", pattern_name="evening_entertainment",
        cpu_levels=_mix((0.70, 0.01, 0.10), (0.22, 0.10, 0.32), (0.08, 0.32, 0.75)),
        seasonal_weight=0.39, noise_sigma=0.37,
        noise_rho=0.95, burst_probability=0.002,
        bw_median_mbps=90.0, bw_sigma=1.1,
        within_app_sigma=1.15,
        vm_count_median=9.0, vm_count_sigma=1.45, vm_count_max=600,
        erratic_probability=0.30, popularity=0.30,
    ),
    AppProfile(
        category="online_education", pattern_name="school_hours",
        cpu_levels=_mix((0.72, 0.01, 0.10), (0.20, 0.10, 0.30), (0.08, 0.30, 0.70)),
        seasonal_weight=0.21, noise_sigma=0.37,
        noise_rho=0.95, burst_probability=0.002,
        bw_median_mbps=60.0, bw_sigma=1.0,
        within_app_sigma=1.00,
        vm_count_median=6.0, vm_count_sigma=1.3, vm_count_max=220,
        erratic_probability=0.15, popularity=0.16,
    ),
    AppProfile(
        category="cdn", pattern_name="daytime_broad",
        cpu_levels=_mix((0.78, 0.01, 0.09), (0.16, 0.09, 0.28), (0.06, 0.28, 0.65)),
        seasonal_weight=0.75, noise_sigma=0.37,
        noise_rho=0.95, burst_probability=0.002,
        bw_median_mbps=160.0, bw_sigma=1.2,
        within_app_sigma=1.35,
        vm_count_median=26.0, vm_count_sigma=1.5, vm_count_max=1000,
        erratic_probability=0.35, popularity=0.14,
    ),
    AppProfile(
        category="video_communication", pattern_name="business_hours",
        cpu_levels=_mix((0.70, 0.01, 0.11), (0.22, 0.11, 0.33), (0.08, 0.33, 0.72)),
        seasonal_weight=0.37, noise_sigma=0.37,
        noise_rho=0.95, burst_probability=0.002,
        bw_median_mbps=45.0, bw_sigma=0.9,
        within_app_sigma=1.05,
        vm_count_median=7.0, vm_count_sigma=1.0, vm_count_max=200,
        erratic_probability=0.20, popularity=0.16,
    ),
    AppProfile(
        category="video_surveillance", pattern_name="flat",
        cpu_levels=_mix((0.80, 0.01, 0.09), (0.15, 0.09, 0.25), (0.05, 0.25, 0.55)),
        seasonal_weight=0.30, noise_sigma=0.15,
        noise_rho=0.95, burst_probability=0.002,
        bw_median_mbps=35.0, bw_sigma=0.8,
        within_app_sigma=0.70,
        vm_count_median=5.0, vm_count_sigma=0.9, vm_count_max=120,
        erratic_probability=0.10, popularity=0.12,
    ),
    AppProfile(
        category="cloud_gaming", pattern_name="evening_entertainment",
        cpu_levels=_mix((0.58, 0.02, 0.12), (0.28, 0.12, 0.40), (0.14, 0.40, 0.85)),
        seasonal_weight=0.39, noise_sigma=0.37,
        noise_rho=0.95, burst_probability=0.002,
        bw_median_mbps=55.0, bw_sigma=1.0,
        within_app_sigma=1.10,
        vm_count_median=8.0, vm_count_sigma=1.1, vm_count_max=300,
        erratic_probability=0.20, popularity=0.12,
    ),
)

#: Azure-like cloud categories.  Higher steady utilisation (only ~47% of
#: VMs under 10%), weaker seasonality (CV median 0.24, seasonality 0.26),
#: small VM counts, near-zero within-app heterogeneity (Figure 13(a)).
AZURE_PROFILES: tuple[AppProfile, ...] = (
    AppProfile(
        category="web_service", pattern_name="cloud_batch",
        cpu_levels=_mix((0.55, 0.02, 0.10), (0.30, 0.10, 0.35), (0.15, 0.35, 0.85)),
        seasonal_weight=0.90, noise_sigma=0.15,
        noise_rho=0.75, burst_probability=0.005,
        bw_median_mbps=6.0, bw_sigma=0.9,
        within_app_sigma=0.22,
        vm_count_median=3.0, vm_count_sigma=1.7, vm_count_max=400,
        erratic_probability=0.05, popularity=0.34,
    ),
    AppProfile(
        category="batch_compute", pattern_name="cloud_batch",
        cpu_levels=_mix((0.45, 0.02, 0.10), (0.30, 0.10, 0.40), (0.25, 0.40, 0.95)),
        seasonal_weight=0.80, noise_sigma=0.20,
        noise_rho=0.70, burst_probability=0.008,
        bw_median_mbps=3.0, bw_sigma=0.8,
        within_app_sigma=0.28,
        vm_count_median=5.0, vm_count_sigma=1.7, vm_count_max=500,
        erratic_probability=0.08, popularity=0.22,
    ),
    AppProfile(
        category="database", pattern_name="cloud_batch",
        cpu_levels=_mix((0.50, 0.03, 0.12), (0.35, 0.12, 0.40), (0.15, 0.40, 0.85)),
        seasonal_weight=0.90, noise_sigma=0.13,
        noise_rho=0.80, burst_probability=0.004,
        bw_median_mbps=4.0, bw_sigma=0.7,
        within_app_sigma=0.20,
        vm_count_median=2.0, vm_count_sigma=0.8, vm_count_max=60,
        erratic_probability=0.04, popularity=0.18,
    ),
    AppProfile(
        category="dev_test", pattern_name="business_hours",
        cpu_levels=_mix((0.62, 0.01, 0.10), (0.26, 0.10, 0.30), (0.12, 0.30, 0.75)),
        seasonal_weight=0.15, noise_sigma=0.17,
        noise_rho=0.72, burst_probability=0.006,
        bw_median_mbps=1.5, bw_sigma=0.8,
        within_app_sigma=0.25,
        vm_count_median=2.0, vm_count_sigma=0.9, vm_count_max=50,
        erratic_probability=0.06, popularity=0.16,
    ),
    AppProfile(
        category="individual_misc", pattern_name="cloud_batch",
        cpu_levels=_mix((0.68, 0.01, 0.10), (0.24, 0.10, 0.30), (0.08, 0.30, 0.80)),
        seasonal_weight=0.85, noise_sigma=0.17,
        noise_rho=0.72, burst_probability=0.006,
        bw_median_mbps=0.8, bw_sigma=0.9,
        within_app_sigma=0.18,
        vm_count_median=1.0, vm_count_sigma=0.6, vm_count_max=8,
        erratic_probability=0.05, popularity=0.10,
    ),
)


def profiles_by_category(profiles: tuple[AppProfile, ...]) -> dict[str, AppProfile]:
    return {p.category: p for p in profiles}


def sample_profile(profiles: tuple[AppProfile, ...],
                   rng: np.random.Generator) -> AppProfile:
    """Draw an app category weighted by popularity."""
    weights = np.array([p.popularity for p in profiles], dtype=float)
    weights /= weights.sum()
    return profiles[int(rng.choice(len(profiles), p=weights))]
