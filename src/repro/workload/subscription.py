"""VM-size subscription distributions (Figure 8).

NEP customers subscribe big VMs: median 8 cores / 32 GB, with half of all
VMs above 8 cores and 16 GB.  Azure's population is dominated by small
VMs: median 1 core / 4 GB, 90% at <=4 vCPUs, ~70% at <=4 GB.  Storage on
NEP has median 100 GB but mean 650 GB (a long tail of CDN-style VMs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..platform.entities import VMSpec


@dataclass(frozen=True)
class SizeOption:
    """One subscribable (cores, memory) shape with a sampling weight."""

    cpu_cores: int
    memory_gb: int
    weight: float


#: NEP shapes: calibrated to Figure 8's CDFs (median 8C/32G; ~50% of VMs
#: above 8C & 16G; a tail of 32C monsters for transcoding farms).
NEP_SIZE_OPTIONS: tuple[SizeOption, ...] = (
    SizeOption(2, 4, 0.06),
    SizeOption(4, 8, 0.13),
    SizeOption(4, 16, 0.10),
    SizeOption(8, 16, 0.13),
    SizeOption(8, 32, 0.28),
    SizeOption(16, 32, 0.12),
    SizeOption(16, 64, 0.10),
    SizeOption(32, 64, 0.05),
    SizeOption(32, 128, 0.03),
)

#: Azure shapes: the small-VM-dominated population of the public dataset.
AZURE_SIZE_OPTIONS: tuple[SizeOption, ...] = (
    SizeOption(1, 1, 0.12),
    SizeOption(1, 2, 0.20),
    SizeOption(1, 4, 0.22),
    SizeOption(2, 4, 0.18),
    SizeOption(2, 8, 0.10),
    SizeOption(4, 8, 0.08),
    SizeOption(4, 16, 0.04),
    SizeOption(8, 32, 0.03),
    SizeOption(16, 64, 0.02),
    SizeOption(24, 64, 0.01),
)


def sample_size(options: tuple[SizeOption, ...],
                rng: np.random.Generator) -> SizeOption:
    """Draw one size option according to the weights."""
    weights = np.array([o.weight for o in options], dtype=float)
    weights /= weights.sum()
    return options[int(rng.choice(len(options), p=weights))]


def sample_nep_disk_gb(rng: np.random.Generator) -> int:
    """NEP disk sizes: lognormal with median 100 GB and mean ~650 GB.

    mean/median = exp(sigma^2/2) = 6.5 gives sigma ~= 1.93.
    """
    sigma = 1.93
    draw = rng.lognormal(mean=np.log(100.0), sigma=sigma)
    return max(20, int(round(draw)))


def sample_azure_disk_gb(rng: np.random.Generator) -> int:
    """Cloud disks are modest; the Azure dataset omits storage entirely."""
    draw = rng.lognormal(mean=np.log(64.0), sigma=0.8)
    return max(10, int(round(draw)))


def sample_nep_spec(rng: np.random.Generator,
                    bandwidth_mbps: float = 0.0) -> VMSpec:
    """One NEP VM spec (size + disk + subscribed bandwidth)."""
    size = sample_size(NEP_SIZE_OPTIONS, rng)
    return VMSpec(cpu_cores=size.cpu_cores, memory_gb=size.memory_gb,
                  disk_gb=sample_nep_disk_gb(rng),
                  bandwidth_mbps=bandwidth_mbps)


def sample_azure_spec(rng: np.random.Generator) -> VMSpec:
    """One Azure-like VM spec."""
    size = sample_size(AZURE_SIZE_OPTIONS, rng)
    return VMSpec(cpu_cores=size.cpu_cores, memory_gb=size.memory_gb,
                  disk_gb=sample_azure_disk_gb(rng))
