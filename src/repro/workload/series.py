"""Per-app series rendering: the unit of parallel workload generation.

Workload generation splits into two stages.  The *placement* stage walks
the platform's app population sequentially (profile sampling, VM specs,
placement all consume the platform-level RNG streams and mutate the
platform, so they cannot reorder).  The *series* stage — the expensive
one at paper scale — renders each placed app's CPU/bandwidth rows, and
every app draws from its own named substream
(``RandomState(seed).child(recipe.stream_name).stream(app_id)``), so
app blocks are mutually independent and can render in any process, in
any order, with bit-identical output.

:func:`render_series_job` is that per-app unit.  Inside one app the
``SERIES_CHUNK_VMS`` chunks still execute in order (they share the app's
generator state, which is what keeps the output identical to the
original serial engine); across apps, :mod:`repro.parallel` fans the
jobs out over worker processes.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from ..config import RandomState
from ..perf import PerfRegistry
from ..resilience import failpoint
from .apps import AppProfile
from .bandwidth import derive_private_series_batch, generate_bw_series_batch
from .cpu import generate_cpu_series_batch
from .patterns import pattern

#: VMs per batched series-generation chunk.  Bounds the transient float64
#: working set (a chunk is ~CHUNK x points x 8 bytes per component) so
#: paper-scale runs stay well inside memory while small apps still
#: vectorise as a single chunk.
SERIES_CHUNK_VMS = 256


class SeasonCache:
    """Memoises ``pattern(name)(minutes)`` per (pattern, axis).

    Every VM of every app with the same category recomputed the same
    seasonal curve; at paper scale that alone was minutes of work.  The
    cache holds one row per pattern per time axis (cpu and bw).

    The axis is identified by a stable value token — length plus first
    and last minute — rather than ``id(minutes)``: object ids are
    recycled after garbage collection, so an id-keyed cache could serve
    a curve computed for a *different* (freed) axis, and conversely
    never hits when equal axes are rebuilt per call.
    """

    def __init__(self) -> None:
        self._cache: dict[tuple[str, int, float, float], np.ndarray] = {}

    @staticmethod
    def axis_token(minutes: np.ndarray) -> tuple[int, float, float]:
        """A stable identity for one time axis (length, first, last)."""
        return (minutes.shape[0], float(minutes[0]), float(minutes[-1]))

    def get(self, pattern_name: str, minutes: np.ndarray) -> np.ndarray:
        key = (pattern_name, *self.axis_token(minutes))
        curve = self._cache.get(key)
        if curve is None:
            curve = pattern(pattern_name)(minutes)
            self._cache[key] = curve
        return curve


@dataclass(frozen=True)
class SeriesRecipe:
    """Platform-family knobs of the per-app series draw sequence.

    NEP and the Azure-like cloud share one draw-order template; only the
    calibration constants (and whether private intra-site traffic is
    logged) differ.  Keeping them in a frozen, picklable recipe lets one
    worker function serve both platforms.
    """

    #: Name of the per-platform series stream family (the ``RandomState``
    #: child every app substream hangs off).
    stream_name: str
    #: Range of the per-app heterogeneity multiplier on ``within_app_sigma``.
    sigma_range: tuple[float, float]
    #: Clip bounds for per-VM mean CPU levels.
    cpu_clip: tuple[float, float]
    #: Floor for per-VM mean public bandwidth (Mbps).
    bw_floor_mbps: float
    #: Whether to derive private (intra-site) traffic rows.
    private: bool


#: NEP's recipe (§4.1 calibration; private traffic is logged, §2.1.2).
NEP_RECIPE = SeriesRecipe(stream_name="nep-series", sigma_range=(0.5, 1.6),
                          cpu_clip=(0.003, 0.92), bw_floor_mbps=0.05,
                          private=True)

#: The Azure-like cloud's recipe: tighter within-app spread, no private
#: traffic collector.
AZURE_RECIPE = SeriesRecipe(stream_name="azure-series",
                            sigma_range=(0.6, 1.4), cpu_clip=(0.005, 0.95),
                            bw_floor_mbps=0.01, private=False)


@dataclass(frozen=True)
class SeriesJob:
    """One app's series workload: everything a worker needs to render it.

    Deliberately tiny — the worker recreates the app's RNG substream from
    (seed, recipe, app_id) and the time axes from the scenario knobs, so
    dispatching a job ships a profile and two scalars, not arrays.
    """

    app_id: str
    profile: AppProfile
    vm_count: int


@dataclass
class SeriesBlock:
    """The rendered series of one app, rows aligned with its placed VMs."""

    app_id: str
    #: Per-VM mean public bandwidth (drives the subscribed-bandwidth field).
    mean_bws: np.ndarray
    #: ``(vm_count, cpu_points)`` float32 utilisation rows.
    cpu_rows: np.ndarray
    #: ``(vm_count, bw_points)`` float32 public-bandwidth rows.
    bw_rows: np.ndarray
    #: Private-traffic rows, or ``None`` when the recipe doesn't log them.
    private_rows: np.ndarray | None
    #: Spans/counters recorded while rendering in a worker process;
    #: ``None`` on the in-process path (which records into the parent
    #: registry directly).
    perf: PerfRegistry | None = None


def job_rng(seed: int, recipe: SeriesRecipe, app_id: str) -> np.random.Generator:
    """The app's series substream, identical in any process.

    This is the independence guarantee behind parallel generation: the
    substream depends only on (scenario seed, stream family, app id), so
    a worker recreating it draws exactly what the serial engine drew.
    """
    return RandomState(seed).child(recipe.stream_name).stream(app_id)


def render_series_job(job: SeriesJob, recipe: SeriesRecipe,
                      cpu_minutes: np.ndarray, bw_minutes: np.ndarray,
                      rng: np.random.Generator,
                      seasons: SeasonCache | None = None,
                      perf: PerfRegistry | None = None) -> SeriesBlock:
    """Render one app's CPU/bandwidth/private rows.

    The draw sequence (app-level draws, then per-chunk batch draws in
    chunk order) is exactly the original serial engine's, so output is
    bit-identical for a given ``rng`` state.  Rows are stored float32 —
    the dtype :meth:`repro.trace.dataset.TraceDataset.add_vm` keeps —
    chunk by chunk, so the float64 transients stay bounded.
    """
    if seasons is None:
        seasons = SeasonCache()
    # Chaos site: fires *before* any draw is consumed, so a retried
    # render replays the substream from scratch and stays bit-identical.
    failpoint("series.render", job.app_id)
    profile, n_vms = job.profile, job.vm_count
    span = (perf.span("series_render") if perf is not None
            else nullcontext())
    with span:
        base_level = profile.cpu_levels.sample(rng)
        base_bw = float(rng.lognormal(np.log(profile.bw_median_mbps),
                                      profile.bw_sigma))
        # The app's own heterogeneity: some apps balance their VMs well,
        # others (Figure 13) leave one VM hot and the rest idle.
        app_sigma = profile.within_app_sigma * float(
            rng.uniform(*recipe.sigma_range))
        # mean=-sigma^2/2 keeps the app-level mean at base_level while the
        # spread controls the Figure 13 cross-VM gap.
        multipliers = rng.lognormal(mean=-app_sigma ** 2 / 2,
                                    sigma=app_sigma, size=n_vms)
        mean_cpus = np.clip(base_level * multipliers, *recipe.cpu_clip)
        mean_bws = np.maximum(base_bw * multipliers, recipe.bw_floor_mbps)
        erratic = rng.random(n_vms) < profile.erratic_probability
        cpu_season = seasons.get(profile.pattern_name, cpu_minutes)
        bw_season = seasons.get(profile.pattern_name, bw_minutes)

        cpu_rows = np.empty((n_vms, cpu_minutes.size), dtype=np.float32)
        bw_rows = np.empty((n_vms, bw_minutes.size), dtype=np.float32)
        private_rows = (np.empty((n_vms, bw_minutes.size), dtype=np.float32)
                        if recipe.private else None)
        for start in range(0, n_vms, SERIES_CHUNK_VMS):
            stop = min(start + SERIES_CHUNK_VMS, n_vms)
            cpu_rows[start:stop] = generate_cpu_series_batch(
                profile, mean_cpus[start:stop], cpu_minutes, rng,
                season=cpu_season)
            bw_chunk = generate_bw_series_batch(
                profile, mean_bws[start:stop], bw_minutes, rng,
                erratic=erratic[start:stop], season=bw_season)
            bw_rows[start:stop] = bw_chunk
            if private_rows is not None:
                private_rows[start:stop] = derive_private_series_batch(
                    bw_chunk, rng)
    if perf is not None:
        perf.count("series_vms", n_vms)
    return SeriesBlock(app_id=job.app_id, mean_bws=mean_bws,
                       cpu_rows=cpu_rows, bw_rows=bw_rows,
                       private_rows=private_rows)
