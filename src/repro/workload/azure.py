"""Synthetic Azure-2019-like cloud workload dataset.

The paper compares NEP against the public Azure dataset [36] (2019
version, the entire VM population).  The real dataset is ~2.7M VMs of CPU
readings; this generator reproduces its *distributional shape* at scenario
scale: small VM sizes, higher and steadier utilisation, small per-app VM
counts, and near-balanced within-app usage.

Like the NEP generator, it runs placement sequentially and renders the
per-app series blocks through :func:`repro.parallel.run_series_jobs`, so
``jobs > 1`` parallelises generation with bit-identical output.
"""

from __future__ import annotations

import numpy as np

from ..config import Scenario
from ..perf import PerfRegistry
from ..platform.cloud import build_cloud_platform
from ..platform.entities import App, Customer
from ..platform.placement import RandomPolicy, SubscriptionRequest
from ..trace.dataset import TraceDataset
from ..trace.schema import AppRecord, VMRecord
from .apps import AZURE_PROFILES, sample_profile
from .generator import GeneratedWorkload, register_inventory
from .series import AZURE_RECIPE, SeriesJob
from .subscription import sample_azure_spec

#: Azure serves individuals too (researchers, educators — §4.1); they run
#: tiny VM counts.
INDIVIDUAL_FRACTION = 0.35


def generate_azure_workload(scenario: Scenario, name: str = "Azure",
                            jobs: int = 1,
                            perf: PerfRegistry | None = None,
                            sink=None) -> GeneratedWorkload:
    """Generate the Azure-like comparison dataset for a scenario.

    ``jobs``/``perf``/``sink`` behave as in
    :func:`repro.workload.generator.generate_nep_workload`.
    """
    from ..parallel import run_series_jobs

    random = scenario.random
    # The fixed 300-server regions fit every historical scale (<= 20k
    # VMs, so scenarios up to paper scale keep their golden digests);
    # the city tier needs the fleet to grow with the VM budget.
    servers_per_region = max(300, scenario.azure_vm_count // 200)
    platform = build_cloud_platform(scenario, name=name, region_count=8,
                                    servers_per_region=servers_per_region)
    policy = RandomPolicy(random.stream("azure-placement"))
    app_rng = random.stream("azure-apps")

    dataset = TraceDataset(
        platform_name=name,
        trace_days=scenario.trace_days,
        cpu_interval_minutes=scenario.cpu_interval_minutes,
        bw_interval_minutes=scenario.bw_interval_minutes,
    )
    register_inventory(platform, dataset)

    # ---- placement stage (sequential) --------------------------------
    pending: list[tuple[SeriesJob, list, object]] = []
    vm_budget = scenario.azure_vm_count
    app_index = 0
    while vm_budget > 0:
        profile = sample_profile(AZURE_PROFILES, app_rng)
        individual = app_rng.random() < INDIVIDUAL_FRACTION
        vm_count = profile.sample_vm_count(app_rng)
        if individual:
            vm_count = min(vm_count, int(app_rng.integers(1, 4)))
        vm_count = min(vm_count, vm_budget)

        app_id = f"az-app{app_index:04d}"
        customer = Customer(
            customer_id=f"az-c{app_index:04d}",
            name=f"tenant-{app_index}",
            segment="individual" if individual else "business",
        )
        app = App(app_id=app_id, customer_id=customer.customer_id,
                  category=profile.category,
                  image_id=f"img-{profile.category}-{app_index:04d}")
        platform.register_customer(customer)
        platform.register_app(app)
        dataset.apps[app_id] = AppRecord(
            app_id=app_id, customer_id=customer.customer_id,
            category=profile.category, image_id=app.image_id,
        )

        # Azure VMs within one deployment vary in size more than NEP's
        # uniform fleets, so sample a spec per placement request chunk.
        spec = sample_azure_spec(app_rng)
        request = SubscriptionRequest(
            customer_id=customer.customer_id, app_id=app_id,
            image_id=app.image_id, spec=spec, vm_count=vm_count,
        )
        placed_vms = policy.place(platform, request)

        pending.append((SeriesJob(app_id=app_id, profile=profile,
                                  vm_count=len(placed_vms)),
                        placed_vms, spec))
        vm_budget -= len(placed_vms)
        app_index += 1

    # ---- series stage (parallel across apps) -------------------------
    blocks = run_series_jobs([job for job, _, _ in pending], scenario,
                             AZURE_RECIPE, n_jobs=jobs, perf=perf)
    if sink is not None:
        sink.begin(dataset.cpu_points, dataset.bw_points,
                   AZURE_RECIPE.private)
    try:
        for (job, placed_vms, spec), block in zip(pending, blocks):
            vm_ids = []
            for offset, vm in enumerate(placed_vms):
                site = platform.site(vm.site_id)
                record = VMRecord(
                    vm_id=vm.vm_id, app_id=job.app_id,
                    customer_id=vm.customer_id,
                    site_id=vm.site_id, server_id=vm.server_id,
                    city=site.city, province=site.province,
                    category=job.profile.category, image_id=vm.image_id,
                    os_type=vm.os_type,
                    cpu_cores=spec.cpu_cores, memory_gb=spec.memory_gb,
                    disk_gb=spec.disk_gb,
                    bandwidth_mbps=float(
                        np.ceil(block.mean_bws[offset] * 3.0)),
                )
                if sink is None:
                    dataset.add_vm(record, block.cpu_rows[offset],
                                   block.bw_rows[offset])
                else:
                    dataset.add_vm_record(record)
                    vm_ids.append(vm.vm_id)
            if sink is not None:
                sink.consume(vm_ids, block)
        if sink is not None:
            sink.finalize(platform, dataset)
    except BaseException:
        if sink is not None:
            sink.abort()
        raise

    dataset.validate()
    platform.validate()
    return GeneratedWorkload(platform=platform, dataset=dataset)
