"""Synthetic Azure-2019-like cloud workload dataset.

The paper compares NEP against the public Azure dataset [36] (2019
version, the entire VM population).  The real dataset is ~2.7M VMs of CPU
readings; this generator reproduces its *distributional shape* at scenario
scale: small VM sizes, higher and steadier utilisation, small per-app VM
counts, and near-balanced within-app usage.
"""

from __future__ import annotations

import numpy as np

from ..config import Scenario
from ..platform.cloud import build_cloud_platform
from ..platform.cluster import Platform
from ..platform.entities import App, Customer
from ..platform.placement import RandomPolicy, SubscriptionRequest
from ..trace.dataset import TraceDataset
from ..trace.schema import AppRecord, ServerRecord, SiteRecord, VMRecord
from .apps import AZURE_PROFILES, sample_profile
from .bandwidth import generate_bw_series_batch
from .cpu import generate_cpu_series_batch
from .generator import GeneratedWorkload, SERIES_CHUNK_VMS, SeasonCache
from .patterns import time_axis_minutes
from .subscription import sample_azure_spec

#: Azure serves individuals too (researchers, educators — §4.1); they run
#: tiny VM counts.
INDIVIDUAL_FRACTION = 0.35


def generate_azure_workload(scenario: Scenario,
                            name: str = "Azure") -> GeneratedWorkload:
    """Generate the Azure-like comparison dataset for a scenario."""
    random = scenario.random
    platform = build_cloud_platform(scenario, name=name, region_count=8,
                                    servers_per_region=300)
    policy = RandomPolicy(random.stream("azure-placement"))
    app_rng = random.stream("azure-apps")
    series_rng_root = random.child("azure-series")

    dataset = TraceDataset(
        platform_name=name,
        trace_days=scenario.trace_days,
        cpu_interval_minutes=scenario.cpu_interval_minutes,
        bw_interval_minutes=scenario.bw_interval_minutes,
    )
    for site in platform.sites:
        dataset.sites[site.site_id] = SiteRecord(
            site_id=site.site_id, name=site.name, city=site.city,
            province=site.province, lat=site.location.lat,
            lon=site.location.lon,
            gateway_bandwidth_mbps=site.gateway_bandwidth_mbps,
        )
        for server in site.servers:
            dataset.servers[server.server_id] = ServerRecord(
                server_id=server.server_id, site_id=site.site_id,
                cpu_cores=int(server.capacity.cpu_cores),
                memory_gb=int(server.capacity.memory_gb),
                disk_gb=int(server.capacity.disk_gb),
            )

    cpu_minutes = time_axis_minutes(scenario.trace_days,
                                    scenario.cpu_interval_minutes)
    bw_minutes = time_axis_minutes(scenario.trace_days,
                                   scenario.bw_interval_minutes)
    seasons = SeasonCache()

    vm_budget = scenario.azure_vm_count
    app_index = 0
    while vm_budget > 0:
        profile = sample_profile(AZURE_PROFILES, app_rng)
        individual = app_rng.random() < INDIVIDUAL_FRACTION
        vm_count = profile.sample_vm_count(app_rng)
        if individual:
            vm_count = min(vm_count, int(app_rng.integers(1, 4)))
        vm_count = min(vm_count, vm_budget)

        app_id = f"az-app{app_index:04d}"
        customer = Customer(
            customer_id=f"az-c{app_index:04d}",
            name=f"tenant-{app_index}",
            segment="individual" if individual else "business",
        )
        app = App(app_id=app_id, customer_id=customer.customer_id,
                  category=profile.category,
                  image_id=f"img-{profile.category}-{app_index:04d}")
        platform.register_customer(customer)
        platform.register_app(app)
        dataset.apps[app_id] = AppRecord(
            app_id=app_id, customer_id=customer.customer_id,
            category=profile.category, image_id=app.image_id,
        )

        # Azure VMs within one deployment vary in size more than NEP's
        # uniform fleets, so sample a spec per placement request chunk.
        spec = sample_azure_spec(app_rng)
        request = SubscriptionRequest(
            customer_id=customer.customer_id, app_id=app_id,
            image_id=app.image_id, spec=spec, vm_count=vm_count,
        )
        placed_vms = policy.place(platform, request)

        rng = series_rng_root.stream(app_id)
        base_level = profile.cpu_levels.sample(rng)
        base_bw = float(rng.lognormal(np.log(profile.bw_median_mbps),
                                      profile.bw_sigma))
        app_sigma = profile.within_app_sigma * float(rng.uniform(0.6, 1.4))
        multipliers = rng.lognormal(-app_sigma ** 2 / 2, app_sigma,
                                    size=len(placed_vms))
        mean_cpus = np.clip(base_level * multipliers, 0.005, 0.95)
        mean_bws = np.maximum(base_bw * multipliers, 0.01)
        erratic = rng.random(len(placed_vms)) < profile.erratic_probability
        cpu_season = seasons.get(profile.pattern_name, cpu_minutes)
        bw_season = seasons.get(profile.pattern_name, bw_minutes)
        for start in range(0, len(placed_vms), SERIES_CHUNK_VMS):
            stop = min(start + SERIES_CHUNK_VMS, len(placed_vms))
            cpu_rows = generate_cpu_series_batch(
                profile, mean_cpus[start:stop], cpu_minutes, rng,
                season=cpu_season)
            bw_rows = generate_bw_series_batch(
                profile, mean_bws[start:stop], bw_minutes, rng,
                erratic=erratic[start:stop], season=bw_season)
            for offset, vm in enumerate(placed_vms[start:stop]):
                site = platform.site(vm.site_id)
                record = VMRecord(
                    vm_id=vm.vm_id, app_id=app_id,
                    customer_id=vm.customer_id,
                    site_id=vm.site_id, server_id=vm.server_id,
                    city=site.city, province=site.province,
                    category=profile.category, image_id=vm.image_id,
                    os_type=vm.os_type,
                    cpu_cores=spec.cpu_cores, memory_gb=spec.memory_gb,
                    disk_gb=spec.disk_gb,
                    bandwidth_mbps=float(
                        np.ceil(mean_bws[start + offset] * 3.0)),
                )
                dataset.add_vm(record, cpu_rows[offset], bw_rows[offset])
        vm_budget -= len(placed_vms)
        app_index += 1

    dataset.validate()
    platform.validate()
    return GeneratedWorkload(platform=platform, dataset=dataset)
