"""Vectorized ABR session engine with a bit-identical scalar reference.

Design constraints, in order:

1. **Bit identity.**  :func:`simulate_chunk` (NumPy, all sessions per
   tick) and :func:`simulate_reference` (one Python loop per session)
   must produce *the same bytes*.  Every stochastic draw is therefore a
   pure function of ``(seed, stream, session index, tick)`` — a
   splitmix64 counter hash, not a stateful generator — and every
   arithmetic expression appears in the same operand order in both
   engines.  The per-tick math sticks to IEEE-double add/mul/div/min/
   compare, where NumPy float64 and Python floats round identically;
   there are no transcendentals inside the tick loop.
2. **Bounded memory.**  Sessions run in fixed-size chunks; each chunk
   reduces to four metric vectors that fold into per-metric SHA-256
   digests, :class:`~repro.core.chunks.StreamingHistogram` sketches and
   running sums.  Chunks fold in index order no matter which worker
   finishes first, so results are independent of ``--jobs``.
3. **Chunk-size independence.**  Because randomness is counter-based
   on the *absolute* session index and the digest concatenates chunk
   segments in index order, any chunk size yields the same digest.

The per-session model is a compact Sabre-style player: a session pins
a NEP site (its cache hit ratio comes from :class:`repro.cdn.CdnModel`),
draws a downlink capacity, and each tick observes a throughput sample,
picks a bitrate rung (throughput-EWMA or buffer-occupancy policy), and
downloads one segment whose effective rate is damped by the per-request
RTT — a cache hit at edge RTT, a miss via the origin detour, or (in the
cloud arm) the origin directly.  Startup delay, rebuffer time, played
bitrate and rung switches accumulate per session.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..cdn import CdnModel
from ..config import Scenario
from ..core.chunks import StreamingHistogram
from ..errors import ParallelError
from ..netsim.access import AccessType, access_profile
from ..parallel import TaskFarm
from ..resilience.failpoints import failpoint

#: Wall seconds per simulation tick (one segment per tick).
TICK_S = 1.0

#: Seconds of video per downloaded segment.
SEG_S = 1.0

#: The bitrate ladder (Mbps), lowest rung first.
LADDER_MBPS = (0.75, 1.75, 2.5, 5.0)

#: Playback starts once the buffer first holds this much video.
STARTUP_BUFFER_S = 2.0

#: Client buffer capacity (seconds of video).
BUFFER_CAP_S = 30.0

#: Throughput EWMA weight on the previous estimate.
EWMA_ALPHA = 0.8

#: Safety factor applied to the EWMA before picking a rung.
SAFETY = 0.8

#: Buffer-occupancy ABR thresholds: rung = #thresholds at or below the
#: current buffer level (so ``len(LADDER_MBPS) == len(...) + 1``).
BUFFER_THRESHOLDS_S = (4.0, 8.0, 16.0)

#: Per-tick throughput noise band around the session's capacity.
THROUGHPUT_NOISE = (0.7, 1.3)

#: Round trips charged per segment fetch (request, TLS resumption,
#: TCP sawtooth recovery) — the lever that makes edge RTT visible in
#: throughput, as in Figure 7's web-loading gap.
SEGMENT_RTT_ROUNDS = 8.0

#: A viewer's share of the access downlink under household
#: cross-traffic; scales the WiFi profile down to ABR-relevant rates.
SESSION_SHARE = 0.08

#: The four per-session QoE metrics, in digest order.
METRICS = ("startup_s", "rebuffer_ratio", "mean_bitrate_mbps", "switches")

#: The two experiment arms: edge CDN vs cloud-origin-only.
ARMS = ("edge", "cloud")

#: Histogram geometry per metric: ``(lo, hi, bins)``.  Out-of-range
#: values clamp into the edge bins (StreamingHistogram semantics).
HIST_SPECS = {
    "startup_s": (0.0, 30.0, 300),
    "rebuffer_ratio": (0.0, 1.0, 256),
    "mean_bitrate_mbps": (0.0, 6.0, 256),
    "switches": (0.0, 64.0, 64),
}

#: Default sessions per chunk: a dozen float64 state vectors of this
#: length is ~6 MB — far under any RSS gate, big enough to amortize
#: NumPy dispatch.
CHUNK_SESSIONS = 65_536

#: Counter-RNG stream ids (one per independent draw family).
_STREAM_SITE = 1
_STREAM_CAPACITY = 2
_STREAM_THROUGHPUT = 3
_STREAM_HIT = 4

_MASK64 = (1 << 64) - 1


def _mix64(z: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over a uint64 array (wrapping arithmetic)."""
    z = (z + np.uint64(0x9E3779B97F4A7C15))
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D9B3F979EB676D)
    return z ^ (z >> np.uint64(31))


def _mix64_int(z: int) -> int:
    """splitmix64 finalizer on Python ints — bit-equal to :func:`_mix64`."""
    z = (z + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D9B3F979EB676D) & _MASK64
    return z ^ (z >> 31)


def _stream_base(seed: int, stream: int, tick: int) -> int:
    """Pre-mixed scalar offset for one ``(seed, stream, tick)`` triple.

    Hoisting these two splitmix rounds out of the array math leaves one
    finalizer round per draw — the hot-loop cost of a uniform sample —
    while the final round's avalanche still decorrelates neighbouring
    session indexes.
    """
    z = _mix64_int(((seed & _MASK64)
                    + stream * 0xA24BAED4963EE407) & _MASK64)
    return _mix64_int((z + tick) & _MASK64)


def counter_uniform(seed: int, stream: int, index: np.ndarray,
                    tick: int = 0) -> np.ndarray:
    """Uniform float64 in ``[0, 1)``, a pure function of its arguments.

    ``index`` is the *absolute* session index, so any chunking of the
    session range reproduces the same draws.  The top 53 bits of a
    splitmix64 hash become the mantissa.  NumPy warns on (perfectly
    well-defined) wrapping uint64 arithmetic, hence the errstate guard.
    """
    base = _stream_base(seed, stream, tick)
    with np.errstate(over="ignore"):
        z = _mix64(np.asarray(index, dtype=np.uint64) + np.uint64(base))
        return (z >> np.uint64(11)) * 2.0 ** -53


def _counter_uniform_int(seed: int, stream: int, index: int,
                         tick: int = 0) -> float:
    """Scalar twin of :func:`counter_uniform` (exact same bits)."""
    z = _mix64_int((index + _stream_base(seed, stream, tick)) & _MASK64)
    return (z >> 11) * 2.0 ** -53


@dataclass(frozen=True)
class SessionWorkload:
    """Everything a chunk simulation needs, picklable for farm workers."""

    seed: int
    n_sessions: int
    n_ticks: int
    abr: str
    site_hit_ratios: np.ndarray = field(repr=False)
    hit_rtt_ms: float
    miss_rtt_ms: float
    cloud_rtt_ms: float
    downlink_mean_mbps: float
    downlink_spread: float = 0.6


def _session_statics(workload: SessionWorkload, start: int,
                     count: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-session site hit probability and downlink capacity (Mbps)."""
    idx = np.arange(start, start + count, dtype=np.uint64)
    n_sites = workload.site_hit_ratios.size
    u_site = counter_uniform(workload.seed, _STREAM_SITE, idx)
    site = np.minimum((u_site * n_sites).astype(np.int64), n_sites - 1)
    hit_p = workload.site_hit_ratios[site]
    u_cap = counter_uniform(workload.seed, _STREAM_CAPACITY, idx)
    spread = workload.downlink_spread
    capacity = workload.downlink_mean_mbps * (
        1.0 - spread + 2.0 * spread * u_cap)
    return hit_p, capacity


def simulate_chunk(workload: SessionWorkload, start: int, count: int,
                   arm: str) -> dict[str, np.ndarray]:
    """Simulate sessions ``[start, start + count)`` as array ops.

    Returns the four metric vectors (float64, length ``count``).  The
    tick loop below and the session loop of :func:`simulate_reference`
    are **mirrored line by line**: any edit to one must be made to the
    other, in the same operand order, or the golden digests break.
    """
    if arm not in ARMS:
        raise ParallelError(f"unknown session arm {arm!r}")
    idx = np.arange(start, start + count, dtype=np.uint64)
    hit_p, capacity = _session_statics(workload, start, count)
    ladder = np.asarray(LADDER_MBPS, dtype=np.float64)
    thresholds = np.asarray(BUFFER_THRESHOLDS_S, dtype=np.float64)
    noise_lo, noise_hi = THROUGHPUT_NOISE
    noise_span = noise_hi - noise_lo

    buffer = np.zeros(count)
    ewma = np.zeros(count)
    prev_rung = np.zeros(count, dtype=np.int64)
    started = np.zeros(count, dtype=bool)
    startup_s = np.zeros(count)
    rebuffer_s = np.zeros(count)
    played_s = np.zeros(count)
    bitrate_sum = np.zeros(count)
    switches = np.zeros(count)

    for t in range(workload.n_ticks):
        u_thr = counter_uniform(workload.seed, _STREAM_THROUGHPUT, idx, t)
        thr = capacity * (noise_lo + noise_span * u_thr)
        if arm == "edge":
            u_hit = counter_uniform(workload.seed, _STREAM_HIT, idx, t)
            hit = u_hit < hit_p
            rtt_ms = np.where(hit, workload.hit_rtt_ms,
                              workload.miss_rtt_ms)
        else:
            rtt_ms = np.full(count, workload.cloud_rtt_ms)
        penalty = SEG_S / (SEG_S + SEGMENT_RTT_ROUNDS * (rtt_ms / 1000.0))
        observed = thr * penalty
        if t == 0:
            ewma = observed
        else:
            ewma = EWMA_ALPHA * ewma + (1.0 - EWMA_ALPHA) * observed
        if workload.abr == "throughput":
            # searchsorted(side="right") counts rungs at or below the
            # estimate — integer-exact, same result as the reference's
            # explicit comparison count.
            est = SAFETY * ewma
            rung = np.maximum(
                np.searchsorted(ladder, est, side="right") - 1, 0)
        else:
            rung = np.searchsorted(thresholds, buffer, side="right")
        switches += np.where(started & (rung != prev_rung), 1.0, 0.0)
        prev_rung = rung
        video_s = observed * TICK_S / ladder[rung]
        buffer = np.minimum(buffer + video_s, BUFFER_CAP_S)
        playable = np.minimum(buffer, TICK_S)
        play = np.where(started, playable, 0.0)
        played_s += play
        rebuffer_s += np.where(started, TICK_S - playable, 0.0)
        bitrate_sum += np.where(started, ladder[rung] * playable, 0.0)
        buffer = buffer - play
        startup_s += np.where(started, 0.0, TICK_S)
        started = started | (buffer >= STARTUP_BUFFER_S)

    active_s = workload.n_ticks * TICK_S - startup_s
    rebuffer_ratio = np.zeros(count)
    mask = active_s > 0.0
    rebuffer_ratio[mask] = rebuffer_s[mask] / active_s[mask]
    mean_bitrate = np.zeros(count)
    mask = played_s > 0.0
    mean_bitrate[mask] = bitrate_sum[mask] / played_s[mask]
    return {
        "startup_s": startup_s,
        "rebuffer_ratio": rebuffer_ratio,
        "mean_bitrate_mbps": mean_bitrate,
        "switches": switches,
    }


def simulate_reference(workload: SessionWorkload, arm: str,
                       start: int = 0,
                       count: int | None = None) -> dict[str, np.ndarray]:
    """Scalar reference: one Python loop per session, per tick.

    The ground truth the vectorized engine is gated against — slow by
    design and by contract bit-identical to :func:`simulate_chunk`
    (mirrored expressions, Python-int counter RNG twin).
    """
    if arm not in ARMS:
        raise ParallelError(f"unknown session arm {arm!r}")
    if count is None:
        count = workload.n_sessions
    n_sites = workload.site_hit_ratios.size
    noise_lo, noise_hi = THROUGHPUT_NOISE
    noise_span = noise_hi - noise_lo
    out = {metric: np.zeros(count) for metric in METRICS}

    for offset in range(count):
        index = start + offset
        u_site = _counter_uniform_int(workload.seed, _STREAM_SITE, index)
        site = min(int(u_site * n_sites), n_sites - 1)
        hit_p = float(workload.site_hit_ratios[site])
        u_cap = _counter_uniform_int(workload.seed, _STREAM_CAPACITY, index)
        spread = workload.downlink_spread
        capacity = workload.downlink_mean_mbps * (
            1.0 - spread + 2.0 * spread * u_cap)

        buffer = 0.0
        ewma = 0.0
        prev_rung = 0
        started = False
        startup_s = 0.0
        rebuffer_s = 0.0
        played_s = 0.0
        bitrate_sum = 0.0
        switches = 0.0
        for t in range(workload.n_ticks):
            u_thr = _counter_uniform_int(workload.seed,
                                         _STREAM_THROUGHPUT, index, t)
            thr = capacity * (noise_lo + noise_span * u_thr)
            if arm == "edge":
                u_hit = _counter_uniform_int(workload.seed, _STREAM_HIT,
                                             index, t)
                rtt_ms = workload.hit_rtt_ms if u_hit < hit_p \
                    else workload.miss_rtt_ms
            else:
                rtt_ms = workload.cloud_rtt_ms
            penalty = SEG_S / (SEG_S
                               + SEGMENT_RTT_ROUNDS * (rtt_ms / 1000.0))
            observed = thr * penalty
            if t == 0:
                ewma = observed
            else:
                ewma = EWMA_ALPHA * ewma + (1.0 - EWMA_ALPHA) * observed
            if workload.abr == "throughput":
                est = SAFETY * ewma
                rung = max(sum(1 for b in LADDER_MBPS if est >= b) - 1, 0)
            else:
                rung = sum(1 for b in BUFFER_THRESHOLDS_S if buffer >= b)
            if started and rung != prev_rung:
                switches += 1.0
            prev_rung = rung
            video_s = observed * TICK_S / LADDER_MBPS[rung]
            buffer = min(buffer + video_s, BUFFER_CAP_S)
            if started:
                playable = min(buffer, TICK_S)
                played_s += playable
                rebuffer_s += TICK_S - playable
                bitrate_sum += LADDER_MBPS[rung] * playable
                buffer = buffer - playable
            else:
                startup_s += TICK_S
            if buffer >= STARTUP_BUFFER_S:
                started = True

        active_s = workload.n_ticks * TICK_S - startup_s
        out["startup_s"][offset] = startup_s
        out["rebuffer_ratio"][offset] = \
            rebuffer_s / active_s if active_s > 0.0 else 0.0
        out["mean_bitrate_mbps"][offset] = \
            bitrate_sum / played_s if played_s > 0.0 else 0.0
        out["switches"][offset] = switches
    return out


class SessionDigest:
    """Chunk-size-independent SHA-256 over the per-session metrics.

    One running hasher per metric is fed each chunk's float64 bytes in
    session-index order; concatenated segments hash identically to one
    big array, so any chunking (or a single reference pass) yields the
    same final digest.
    """

    def __init__(self) -> None:
        self._hashers = {metric: hashlib.sha256() for metric in METRICS}

    def update(self, chunk: dict[str, np.ndarray]) -> None:
        """Fold one chunk's metric vectors (must arrive in index order)."""
        for metric in METRICS:
            self._hashers[metric].update(
                np.ascontiguousarray(chunk[metric]).tobytes())

    def hexdigest(self) -> str:
        """Digest of the per-metric digests, in :data:`METRICS` order."""
        outer = hashlib.sha256()
        for metric in METRICS:
            outer.update(self._hashers[metric].digest())
        return outer.hexdigest()


@dataclass(frozen=True)
class ArmResult:
    """Aggregated QoE of one arm (edge or cloud) over all sessions."""

    arm: str
    sessions: int
    digest: str
    means: dict[str, float]
    histograms: dict[str, StreamingHistogram] = field(repr=False)

    def quantile(self, metric: str, q: float) -> float:
        """Approximate metric quantile from the streaming sketch."""
        return self.histograms[metric].quantile(q)


def _simulate_chunk_task(arg: tuple) -> dict[str, np.ndarray]:
    """Module-level farm task: simulate one chunk (picklable)."""
    workload, start, count, arm = arg
    failpoint("qoe.chunk", f"{arm}:{start}")
    return simulate_chunk(workload, start, count, arm)


def run_sessions(workload: SessionWorkload, arm: str,
                 chunk_sessions: int = CHUNK_SESSIONS,
                 jobs: int = 1, journal=None,
                 spill_dir: Path | str | None = None) -> ArmResult:
    """Run one arm chunked through a :class:`~repro.parallel.TaskFarm`.

    Chunks are submitted up front and folded strictly in index order as
    they complete, so digests, histograms and means are independent of
    worker scheduling.  With ``spill_dir`` set, the per-session metric
    rows additionally stream to float32 shards (``repro.shards`` layout)
    for offline inspection; the in-memory state stays a handful of
    sketches either way.

    Raises:
        ParallelError: on an unknown arm, a bad chunk size, or a chunk
            whose simulation failed (after the farm's retry budget).
    """
    if arm not in ARMS:
        raise ParallelError(f"unknown session arm {arm!r}")
    if chunk_sessions <= 0:
        raise ParallelError(
            f"chunk_sessions must be positive, got {chunk_sessions}")
    starts = list(range(0, workload.n_sessions, chunk_sessions))
    farm = TaskFarm(n_jobs=jobs, journal=journal)
    for chunk_index, chunk_start in enumerate(starts):
        chunk_count = min(chunk_sessions,
                          workload.n_sessions - chunk_start)
        farm.submit(f"qoe:{arm}:{chunk_index}", _simulate_chunk_task,
                    (workload, chunk_start, chunk_count, arm))

    writer = None
    if spill_dir is not None:
        from ..shards import ShardWriter
        writer = ShardWriter(Path(spill_dir), kind=f"qoe-{arm}",
                             points=len(METRICS))

    digest = SessionDigest()
    histograms = {metric: StreamingHistogram(*HIST_SPECS[metric])
                  for metric in METRICS}
    sums = {metric: 0.0 for metric in METRICS}
    pending: dict[int, dict[str, np.ndarray]] = {}
    next_index = 0
    while farm.outstanding:
        outcome = farm.next_outcome()
        if not outcome.ok:
            raise ParallelError(
                f"session chunk {outcome.task_id} failed: "
                f"{outcome.error}")
        pending[int(outcome.task_id.rsplit(":", 1)[1])] = outcome.value
        while next_index in pending:
            chunk = pending.pop(next_index)
            digest.update(chunk)
            for metric in METRICS:
                histograms[metric].add(chunk[metric])
                sums[metric] += float(chunk[metric].sum())
            if writer is not None:
                writer.append(np.stack(
                    [chunk[metric] for metric in METRICS],
                    axis=1).astype(np.float32))
            if journal is not None:
                journal.emit("session_chunk", arm=arm, chunk=next_index,
                             sessions=int(chunk[METRICS[0]].size))
            next_index += 1
    if writer is not None:
        writer.finalize()
    means = {metric: sums[metric] / workload.n_sessions
             for metric in METRICS}
    return ArmResult(arm=arm, sessions=workload.n_sessions,
                     digest=digest.hexdigest(), means=means,
                     histograms=histograms)


def build_session_workload(scenario: Scenario,
                           model: CdnModel | None = None,
                           ) -> SessionWorkload:
    """Derive the session workload (sites, paths, capacity) from a scenario."""
    if model is None:
        model = CdnModel(scenario)
    latencies = model.latencies
    wifi = access_profile(AccessType.WIFI)
    return SessionWorkload(
        seed=scenario.seed,
        n_sessions=scenario.qoe_session_count,
        n_ticks=scenario.qoe_session_ticks,
        abr=scenario.qoe_abr,
        site_hit_ratios=model.site_hit_ratios,
        hit_rtt_ms=latencies.hit_rtt_ms,
        miss_rtt_ms=latencies.miss_rtt_ms,
        cloud_rtt_ms=latencies.cloud_rtt_ms,
        downlink_mean_mbps=wifi.downlink_mean_mbps * SESSION_SHARE,
    )


@dataclass(frozen=True)
class QoeSessionsResult:
    """Edge-vs-cloud QoE distributions over the full session population."""

    sessions: int
    ticks: int
    abr: str
    cache_mb: int
    cache_eviction: str
    hit_ratio_mean: float
    hit_rtt_ms: float
    miss_rtt_ms: float
    cloud_rtt_ms: float
    arms: dict[str, ArmResult]

    def metrics(self) -> dict[str, float]:
        """Flat metric columns for ``repro sweep report``."""
        edge, cloud = self.arms["edge"], self.arms["cloud"]
        return {
            "qoe_hit_ratio": self.hit_ratio_mean,
            "qoe_edge_startup_p50_s": edge.quantile("startup_s", 0.5),
            "qoe_cloud_startup_p50_s": cloud.quantile("startup_s", 0.5),
            "qoe_edge_rebuffer_p90": edge.quantile("rebuffer_ratio", 0.9),
            "qoe_cloud_rebuffer_p90": cloud.quantile("rebuffer_ratio", 0.9),
            "qoe_edge_bitrate_mbps": edge.means["mean_bitrate_mbps"],
            "qoe_cloud_bitrate_mbps": cloud.means["mean_bitrate_mbps"],
        }

    def format(self) -> str:
        """Human-readable edge-vs-cloud distribution table."""
        lines = [
            f"Session-scale QoE: {self.sessions} sessions x "
            f"{self.ticks} ticks, {self.abr} ABR, "
            f"{self.cache_mb} MB {self.cache_eviction.upper()} cache "
            f"(mean hit ratio {self.hit_ratio_mean:.3f})",
            f"RTT ms: hit {self.hit_rtt_ms:.1f} / "
            f"miss {self.miss_rtt_ms:.1f} / cloud {self.cloud_rtt_ms:.1f}",
            "",
            f"{'metric':<22} {'arm':<6} {'mean':>8} {'p50':>8} "
            f"{'p90':>8} {'p99':>8}",
        ]
        for metric in METRICS:
            for arm in ARMS:
                result = self.arms[arm]
                lines.append(
                    f"{metric:<22} {arm:<6} "
                    f"{result.means[metric]:>8.3f} "
                    f"{result.quantile(metric, 0.5):>8.3f} "
                    f"{result.quantile(metric, 0.9):>8.3f} "
                    f"{result.quantile(metric, 0.99):>8.3f}")
        return "\n".join(lines)


def run_qoe_sessions(scenario: Scenario, jobs: int = 1, journal=None,
                     spill_root: Path | str | None = None,
                     ) -> QoeSessionsResult:
    """The full experiment: both arms over one CDN model and workload."""
    model = CdnModel(scenario)
    workload = build_session_workload(scenario, model=model)
    arms = {}
    for arm in ARMS:
        spill_dir = None if spill_root is None else Path(spill_root)
        arms[arm] = run_sessions(workload, arm, jobs=jobs,
                                 journal=journal, spill_dir=spill_dir)
    return QoeSessionsResult(
        sessions=workload.n_sessions,
        ticks=workload.n_ticks,
        abr=workload.abr,
        cache_mb=scenario.qoe_cache_mb,
        cache_eviction=scenario.qoe_cache_eviction,
        hit_ratio_mean=float(model.site_hit_ratios.mean()),
        hit_rtt_ms=workload.hit_rtt_ms,
        miss_rtt_ms=workload.miss_rtt_ms,
        cloud_rtt_ms=workload.cloud_rtt_ms,
        arms=arms,
    )
