"""Session-scale QoE: a vectorized ABR engine over the CDN model.

The testbed in :mod:`repro.measurement.qoe` reproduces the paper's
Figures 6-7 — a handful of single-session trials per placement.  This
package answers the ROADMAP's "millions of users" question instead: it
advances ``(n_sessions,)`` state arrays one tick at a time, never one
session at a time, and streams the per-session results through
:class:`~repro.core.chunks.StreamingHistogram` sketches so a
million-session edge-vs-cloud comparison runs with bounded peak RSS.
"""

from .sessions import (
    ARMS,
    METRICS,
    ArmResult,
    QoeSessionsResult,
    SessionDigest,
    SessionWorkload,
    build_session_workload,
    counter_uniform,
    run_qoe_sessions,
    run_sessions,
    simulate_chunk,
    simulate_reference,
)

__all__ = [
    "ARMS",
    "METRICS",
    "ArmResult",
    "QoeSessionsResult",
    "SessionDigest",
    "SessionWorkload",
    "build_session_workload",
    "counter_uniform",
    "run_qoe_sessions",
    "run_sessions",
    "simulate_chunk",
    "simulate_reference",
]
