"""A static gazetteer of Chinese provinces and cities.

The crowd-sourced campaign covered 20 provinces and 41 cities (§2.1.1); NEP
deploys >500 sites across China (Table 1).  The gazetteer below lists the
provincial capitals and other major prefecture-level cities with approximate
coordinates and urban populations (millions), which is all the simulation
needs: site placement is population-weighted and distances are great-circle.

The data is embedded rather than loaded from a file so the library has no
runtime data dependencies; coordinates are accurate to ~0.1 degrees, far
below the noise floor of any latency model built on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..errors import GeoError
from .coords import GeoPoint


@dataclass(frozen=True)
class City:
    """One city: name, province, location, urban population in millions."""

    name: str
    province: str
    location: GeoPoint
    population_m: float

    @property
    def key(self) -> str:
        return f"{self.province}/{self.name}"


def _c(name: str, province: str, lat: float, lon: float, pop: float) -> City:
    return City(name=name, province=province, location=GeoPoint(lat, lon),
                population_m=pop)


#: Major cities of mainland China, grouped by province.  Tier-1 metros carry
#: the populations that drive NEP's site density.
CHINA_CITIES: tuple[City, ...] = (
    # Municipalities
    _c("Beijing", "Beijing", 39.90, 116.40, 21.5),
    _c("Shanghai", "Shanghai", 31.23, 121.47, 24.9),
    _c("Tianjin", "Tianjin", 39.13, 117.20, 13.9),
    _c("Chongqing", "Chongqing", 29.56, 106.55, 16.4),
    # Guangdong
    _c("Guangzhou", "Guangdong", 23.13, 113.26, 18.7),
    _c("Shenzhen", "Guangdong", 22.54, 114.06, 17.6),
    _c("Dongguan", "Guangdong", 23.02, 113.75, 10.5),
    _c("Foshan", "Guangdong", 23.02, 113.11, 9.5),
    _c("Zhuhai", "Guangdong", 22.27, 113.58, 2.4),
    _c("Shantou", "Guangdong", 23.35, 116.68, 5.5),
    _c("Zhanjiang", "Guangdong", 21.27, 110.36, 7.0),
    _c("Huizhou", "Guangdong", 23.11, 114.42, 6.0),
    # Jiangsu
    _c("Nanjing", "Jiangsu", 32.06, 118.80, 9.3),
    _c("Suzhou", "Jiangsu", 31.30, 120.58, 12.7),
    _c("Wuxi", "Jiangsu", 31.49, 120.31, 7.5),
    _c("Xuzhou", "Jiangsu", 34.26, 117.18, 9.0),
    _c("Nantong", "Jiangsu", 31.98, 120.89, 7.7),
    _c("Changzhou", "Jiangsu", 31.81, 119.97, 5.3),
    # Zhejiang
    _c("Hangzhou", "Zhejiang", 30.27, 120.15, 12.2),
    _c("Ningbo", "Zhejiang", 29.87, 121.54, 9.4),
    _c("Wenzhou", "Zhejiang", 28.00, 120.67, 9.6),
    _c("Jinhua", "Zhejiang", 29.08, 119.65, 7.1),
    # Shandong
    _c("Jinan", "Shandong", 36.65, 117.12, 9.2),
    _c("Qingdao", "Shandong", 36.07, 120.38, 10.1),
    _c("Yantai", "Shandong", 37.46, 121.44, 7.1),
    _c("Weifang", "Shandong", 36.70, 119.16, 9.4),
    _c("Linyi", "Shandong", 35.10, 118.36, 11.0),
    # Sichuan
    _c("Chengdu", "Sichuan", 30.57, 104.07, 20.9),
    _c("Mianyang", "Sichuan", 31.47, 104.68, 4.9),
    _c("Nanchong", "Sichuan", 30.84, 106.11, 5.6),
    # Hubei
    _c("Wuhan", "Hubei", 30.59, 114.31, 12.3),
    _c("Yichang", "Hubei", 30.69, 111.29, 4.0),
    _c("Xiangyang", "Hubei", 32.01, 112.12, 5.3),
    # Hunan
    _c("Changsha", "Hunan", 28.23, 112.94, 10.0),
    _c("Hengyang", "Hunan", 26.89, 112.57, 6.6),
    _c("Zhuzhou", "Hunan", 27.83, 113.13, 3.9),
    # Henan
    _c("Zhengzhou", "Henan", 34.75, 113.63, 12.6),
    _c("Luoyang", "Henan", 34.62, 112.45, 7.1),
    _c("Nanyang", "Henan", 32.99, 112.53, 9.7),
    _c("Kaifeng", "Henan", 34.80, 114.31, 4.8),
    # Hebei
    _c("Shijiazhuang", "Hebei", 38.04, 114.51, 11.2),
    _c("Tangshan", "Hebei", 39.63, 118.18, 7.7),
    _c("Baoding", "Hebei", 38.87, 115.46, 11.5),
    _c("Handan", "Hebei", 36.61, 114.49, 9.4),
    # Shaanxi
    _c("Xian", "Shaanxi", 34.27, 108.95, 13.0),
    _c("Baoji", "Shaanxi", 34.36, 107.24, 3.3),
    # Liaoning
    _c("Shenyang", "Liaoning", 41.80, 123.43, 9.1),
    _c("Dalian", "Liaoning", 38.91, 121.61, 7.5),
    _c("Anshan", "Liaoning", 41.11, 122.99, 3.3),
    # Jilin
    _c("Changchun", "Jilin", 43.82, 125.32, 9.1),
    _c("Jilin", "Jilin", 43.84, 126.55, 3.6),
    # Heilongjiang
    _c("Harbin", "Heilongjiang", 45.80, 126.53, 10.0),
    _c("Daqing", "Heilongjiang", 46.59, 125.10, 2.8),
    # Anhui
    _c("Hefei", "Anhui", 31.82, 117.23, 9.4),
    _c("Wuhu", "Anhui", 31.33, 118.38, 3.6),
    _c("Fuyang", "Anhui", 32.89, 115.81, 8.2),
    # Fujian
    _c("Fuzhou", "Fujian", 26.07, 119.30, 8.3),
    _c("Xiamen", "Fujian", 24.48, 118.09, 5.2),
    _c("Quanzhou", "Fujian", 24.87, 118.68, 8.8),
    # Jiangxi
    _c("Nanchang", "Jiangxi", 28.68, 115.86, 6.3),
    _c("Ganzhou", "Jiangxi", 25.83, 114.93, 9.0),
    # Shanxi
    _c("Taiyuan", "Shanxi", 37.87, 112.55, 5.3),
    _c("Datong", "Shanxi", 40.08, 113.30, 3.1),
    # Guangxi
    _c("Nanning", "Guangxi", 22.82, 108.32, 8.7),
    _c("Liuzhou", "Guangxi", 24.33, 109.43, 4.2),
    _c("Guilin", "Guangxi", 25.27, 110.29, 4.9),
    # Yunnan
    _c("Kunming", "Yunnan", 24.88, 102.83, 8.5),
    _c("Qujing", "Yunnan", 25.49, 103.80, 5.7),
    # Guizhou
    _c("Guiyang", "Guizhou", 26.65, 106.63, 5.9),
    _c("Zunyi", "Guizhou", 27.73, 106.93, 6.6),
    # Gansu
    _c("Lanzhou", "Gansu", 36.06, 103.83, 4.4),
    _c("Tianshui", "Gansu", 34.58, 105.72, 3.0),
    # Inner Mongolia
    _c("Hohhot", "InnerMongolia", 40.84, 111.75, 3.4),
    _c("Baotou", "InnerMongolia", 40.66, 109.84, 2.7),
    # Xinjiang
    _c("Urumqi", "Xinjiang", 43.83, 87.62, 4.1),
    _c("Kashgar", "Xinjiang", 39.47, 75.99, 0.8),
    # Tibet
    _c("Lhasa", "Tibet", 29.65, 91.14, 0.9),
    # Qinghai
    _c("Xining", "Qinghai", 36.62, 101.78, 2.5),
    # Ningxia
    _c("Yinchuan", "Ningxia", 38.49, 106.23, 2.9),
    # Hainan
    _c("Haikou", "Hainan", 20.04, 110.34, 2.9),
    _c("Sanya", "Hainan", 18.25, 109.51, 1.0),
)


@lru_cache(maxsize=1)
def _city_index() -> dict[str, City]:
    return {city.name: city for city in CHINA_CITIES}


@lru_cache(maxsize=1)
def provinces() -> tuple[str, ...]:
    """All province names in the gazetteer, in first-appearance order."""
    seen: dict[str, None] = {}
    for city in CHINA_CITIES:
        seen.setdefault(city.province, None)
    return tuple(seen)


def city(name: str) -> City:
    """Look up a city by name.

    Raises:
        GeoError: if the city is not in the gazetteer.
    """
    try:
        return _city_index()[name]
    except KeyError:
        raise GeoError(f"unknown city: {name!r}") from None


def cities_in_province(province: str) -> tuple[City, ...]:
    """All gazetteer cities in the given province.

    Raises:
        GeoError: if the province has no cities in the gazetteer.
    """
    found = tuple(c for c in CHINA_CITIES if c.province == province)
    if not found:
        raise GeoError(f"unknown province: {province!r}")
    return found


def total_population_m() -> float:
    """Sum of urban populations (millions) across the gazetteer."""
    return sum(c.population_m for c in CHINA_CITIES)
