"""Site-placement generators for edge and cloud platforms.

NEP places many small sites near where people live, so placement is
population-weighted sampling over the gazetteer with small intra-metro
jitter (a metro can host several sites in different districts / ISP rooms).
Cloud platforms place a handful of large regions in the biggest metros.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .coords import GeoPoint
from .regions import CHINA_CITIES, City


@dataclass(frozen=True)
class PlacedSite:
    """A site location before it is materialised into platform entities."""

    city: City
    location: GeoPoint

    @property
    def province(self) -> str:
        return self.city.province


def _population_weights() -> np.ndarray:
    # Square-root damping: NEP's deployment covers county-level towns, so
    # big metros get more sites but not proportionally more (calibrated to
    # Figure 4's sites-within-10ms count).
    pops = np.sqrt(np.array([c.population_m for c in CHINA_CITIES],
                            dtype=float))
    return pops / pops.sum()


def place_edge_sites(count: int, rng: np.random.Generator,
                     max_jitter_deg: float = 0.75) -> list[PlacedSite]:
    """Place ``count`` edge sites, population-weighted with jitter.

    At full scale (NEP's >500 sites) every gazetteer city receives at
    least one site before the population-weighted remainder is drawn,
    mirroring NEP's country-wide coverage.  At reduced scale (fewer sites
    than cities) the biggest metros are covered first.  The default
    jitter (~+-80 km) spreads a metro's sites into its county belt, which
    is what NEP's ISP-room deployments look like.
    """
    if count <= 0:
        raise ConfigurationError(f"site count must be positive, got {count}")
    weights = _population_weights()
    if count < len(CHINA_CITIES):
        chosen = rng.choice(len(CHINA_CITIES), size=count, replace=False,
                            p=weights)
        assignments = [CHINA_CITIES[i] for i in chosen]
    else:
        assignments = list(CHINA_CITIES)
        extra = count - len(CHINA_CITIES)
        extra_idx = rng.choice(len(CHINA_CITIES), size=extra, p=weights)
        assignments.extend(CHINA_CITIES[i] for i in extra_idx)

    sites = []
    for c in assignments:
        d_lat = float(rng.uniform(-max_jitter_deg, max_jitter_deg))
        d_lon = float(rng.uniform(-max_jitter_deg, max_jitter_deg))
        sites.append(PlacedSite(city=c, location=c.location.jitter(d_lat, d_lon)))
    return sites


def place_cloud_regions(count: int, rng: np.random.Generator) -> list[PlacedSite]:
    """Place ``count`` cloud regions in the most populous distinct metros.

    Cloud providers deliberately pick top metros; a small random tiebreak
    keeps distinct seeds from being byte-identical without changing which
    tier of city gets picked.
    """
    if count <= 0:
        raise ConfigurationError(f"region count must be positive, got {count}")
    if count > len(CHINA_CITIES):
        raise ConfigurationError(
            f"cannot place {count} cloud regions over {len(CHINA_CITIES)} cities"
        )
    noise = rng.uniform(0.0, 0.01, size=len(CHINA_CITIES))
    ranked = sorted(
        zip(CHINA_CITIES, noise),
        key=lambda pair: pair[0].population_m + pair[1],
        reverse=True,
    )
    return [PlacedSite(city=c, location=c.location) for c, _ in ranked[:count]]


def nearest_site(point: GeoPoint, sites: list[PlacedSite]) -> PlacedSite:
    """The placed site geographically nearest to ``point``."""
    if not sites:
        raise ConfigurationError("no sites to choose from")
    return min(sites, key=lambda s: s.location.distance_km(point))
