"""Geographic substrate: coordinates, the China gazetteer, site placement."""

from .coords import (EARTH_RADIUS_KM, GeoPoint, haversine_km,
                     haversine_km_many)
from .regions import (
    CHINA_CITIES,
    City,
    cities_in_province,
    city,
    provinces,
    total_population_m,
)
from .topology import PlacedSite, nearest_site, place_cloud_regions, place_edge_sites

__all__ = [
    "CHINA_CITIES",
    "City",
    "EARTH_RADIUS_KM",
    "GeoPoint",
    "PlacedSite",
    "cities_in_province",
    "city",
    "haversine_km",
    "haversine_km_many",
    "nearest_site",
    "place_cloud_regions",
    "place_edge_sites",
    "provinces",
    "total_population_m",
]
