"""Geographic primitives: points on the globe and great-circle distances."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

EARTH_RADIUS_KM = 6371.0


@dataclass(frozen=True)
class GeoPoint:
    """A latitude/longitude pair in decimal degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometres (haversine)."""
        return haversine_km(self, other)

    def jitter(self, d_lat: float, d_lon: float) -> "GeoPoint":
        """A nearby point offset by the given degree deltas, clamped to range."""
        lat = min(90.0, max(-90.0, self.lat + d_lat))
        lon = self.lon + d_lon
        if lon > 180.0:
            lon -= 360.0
        elif lon < -180.0:
            lon += 360.0
        return GeoPoint(lat, lon)


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points in kilometres."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    d_lat = lat2 - lat1
    d_lon = lon2 - lon1
    h = math.sin(d_lat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(d_lon / 2) ** 2
    return 2 * EARTH_RADIUS_KM * math.asin(math.sqrt(min(1.0, h)))


def haversine_km_many(point: GeoPoint, lats: np.ndarray,
                      lons: np.ndarray) -> np.ndarray:
    """Great-circle distances from one point to arrays of lat/lon degrees.

    The vectorised twin of :func:`haversine_km`, used for nearest-site
    queries over a whole platform at once.
    """
    lat1 = math.radians(point.lat)
    lon1 = math.radians(point.lon)
    lat2 = np.radians(lats)
    lon2 = np.radians(lons)
    h = (np.sin((lat2 - lat1) / 2.0) ** 2
         + math.cos(lat1) * np.cos(lat2) * np.sin((lon2 - lon1) / 2.0) ** 2)
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.minimum(1.0, h)))
