"""The vectorized live-platform engine: one tick = a few array ops.

A *live run* advances the whole NEP fleet tick by tick: VM arrivals and
departures, evacuation off faulted servers, and per-server autoscaling
all happen *online*, with :class:`~repro.faults.schedule.FaultSchedule`
windows replayed as down/up transition events instead of post-hoc
masks.  There are no per-entity objects anywhere in the hot loop — the
fleet is a handful of flat per-server arrays (slots, active VMs, churn
accumulators, EWMA utilization) advanced with numpy element-wise ops,
which is what keeps city-tier fleets (~430k servers) at thousands of
ticks per second.

Determinism contract
--------------------

A live run is a pure function of the scenario.  All randomness is drawn
*before* the loop from the ``"live"`` stream (per-tick Poisson arrival
totals, flash-crowd window placement); everything inside the loop —
churn, admission, evacuation, autoscaling — is deterministic arithmetic
on the state, so the vectorized stepper and the scalar per-server
reference (:func:`repro.live.reference.run_reference_engine`) consume
the identical draw sequence and produce bit-identical series:

* departures use **error-diffusion churn**: a float accumulator per
  server gains ``active * p`` each tick and sheds its integer part, so
  expected churn is exact without any in-loop draws;
* placement uses **largest-remainder allocation** over free-slot
  weights with a stable index tie-break, so arrivals and evacuees land
  on the same servers under both steppers;
* ``jobs`` does not exist here: tick stepping is inherently sequential,
  so a live run is trivially bit-identical across ``--jobs`` settings.

Each tick probes the ``live.tick`` failpoint *before* touching state
and runs under :func:`~repro.resilience.retry.call_with_retry`, so a
``--chaos`` run retries injected faults without corrupting the fleet —
and, because retries only repeat un-started work, canonicalizes
bit-identical to a clean run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..config import Scenario
from ..errors import ConfigurationError, InjectedFault
from ..faults.schedule import FaultSchedule
from ..platform.cluster import Platform
from ..resilience.failpoints import failpoint
from ..resilience.retry import RetryPolicy, call_with_retry

#: EWMA smoothing factor for per-server utilization.
EWMA_ALPHA = 0.3

#: Autoscaling thresholds: grow above HI, shrink back toward the base
#: capacity below LO.  Burst headroom is capped at 2x the base slots.
SCALE_UP_UTIL = 0.85
SCALE_DOWN_UTIL = 0.30

#: The per-tick series a live run records, in digest order.
SERIES = ("active", "capacity", "down_servers", "arrivals", "admitted",
          "rejected", "departures", "evacuated", "displaced")

#: Retry budget for one tick under chaos: injected faults are probed
#: before any state mutation, so repeating a tick is always safe.
TICK_RETRY = RetryPolicy(max_attempts=5, backoff_s=0.001, seed=47)


@dataclass(frozen=True)
class LiveInputs:
    """Everything a live run consumes, precomputed and draw-complete.

    Both steppers advance from one ``LiveInputs``: the per-tick arrival
    totals (Poisson, flash-crowd and diurnal modulated) are already
    drawn, and fault windows are lowered to sorted ``(tick, lo, hi,
    delta)`` transitions, so no randomness and no interval queries
    remain in the loop.
    """

    ticks: int
    tick_minutes: int
    site_of: np.ndarray        # int64 (n_servers,) owning site index
    base_slots: np.ndarray     # int64 (n_servers,) baseline VM slots
    arrivals: np.ndarray       # int64 (ticks,) total VM arrivals per tick
    departure_p: float         # per-tick departure probability
    autoscale: bool
    transitions: tuple[tuple[int, int, int, int], ...]
    site_ids: tuple[str, ...]
    server_ids: tuple[str, ...]

    @property
    def n_servers(self) -> int:
        return int(self.base_slots.size)

    @property
    def n_sites(self) -> int:
        return len(self.site_ids)


def demand_curve(scenario: Scenario) -> np.ndarray:
    """Per-tick arrival-rate multipliers: diurnal wave x flash crowds.

    The diurnal factor is ``1 - amplitude * cos(2*pi * time_of_day)``
    (trough at midnight, peak at noon); each flash crowd multiplies a
    contiguous window of ticks by ``live_flash_magnitude``.  Window
    placement draws from the dedicated ``"live-flash"`` stream so
    changing the flash count never shifts the arrival draws.
    """
    ticks = scenario.live_ticks
    minute = np.arange(ticks, dtype=np.float64) * scenario.live_tick_minutes
    time_of_day = (minute % 1440.0) / 1440.0
    factor = 1.0 - scenario.live_diurnal_amplitude * np.cos(
        2.0 * np.pi * time_of_day)
    if scenario.live_flash_crowds:
        rng = scenario.random.stream("live-flash")
        width = max(3, ticks // 40)
        for _ in range(scenario.live_flash_crowds):
            start = int(rng.integers(0, max(ticks - width, 1)))
            factor[start:start + width] *= scenario.live_flash_magnitude
    return factor


def build_live_inputs(scenario: Scenario, platform: Platform,
                      faults: FaultSchedule | None = None) -> LiveInputs:
    """Lower a scenario (+ optional fault weather) to live-run inputs.

    Raises:
        ConfigurationError: when ``platform`` has no servers.
    """
    site_of, base_slots, site_ids, server_ids = platform.live_inventory()
    if base_slots.size == 0:
        raise ConfigurationError(
            f"platform {platform.name!r} has no servers to run live")
    lam = scenario.live_arrival_rate * demand_curve(scenario)
    arrivals = scenario.random.stream("live").poisson(lam).astype(np.int64)
    transitions: tuple[tuple[int, int, int, int], ...] = ()
    if faults is not None:
        ranges: dict[str, tuple[int, int]] = {}
        for index, site_id in enumerate(site_ids):
            span = np.flatnonzero(site_of == index)
            if span.size:
                ranges[site_id] = (int(span[0]), int(span[-1]) + 1)
        server_index = {sid: j for j, sid in enumerate(server_ids)}
        transitions = tuple(faults.tick_transitions(
            scenario.live_tick_minutes, scenario.live_ticks, ranges,
            server_index))
    return LiveInputs(
        ticks=scenario.live_ticks,
        tick_minutes=scenario.live_tick_minutes,
        site_of=site_of,
        base_slots=base_slots,
        arrivals=arrivals,
        departure_p=1.0 / scenario.live_mean_lifetime_ticks,
        autoscale=scenario.live_autoscale == "on",
        transitions=transitions,
        site_ids=site_ids,
        server_ids=server_ids,
    )


def digest_series(series: dict[str, np.ndarray]) -> str:
    """SHA-256 over the per-tick series, in :data:`SERIES` order."""
    outer = hashlib.sha256()
    for name in SERIES:
        outer.update(name.encode())
        outer.update(np.ascontiguousarray(series[name],
                                          dtype=np.int64).tobytes())
    return outer.hexdigest()


@dataclass(frozen=True)
class LiveResult:
    """One live run: per-tick fleet series plus summary metrics."""

    ticks: int
    tick_minutes: int
    sites: int
    servers: int
    arrival_rate: float
    autoscale: str
    fault_profile: str
    series: dict[str, np.ndarray]
    fault_ticks: tuple[int, ...]
    digest: str

    def metrics(self) -> dict[str, float]:
        """Flat metric columns for ``repro sweep report``."""
        active = self.series["active"]
        capacity = self.series["capacity"]
        utilization = active / np.maximum(capacity, 1)
        return {
            "live_peak_active": float(active.max()),
            "live_mean_active": float(active.mean()),
            "live_mean_utilization": float(utilization.mean()),
            "live_admitted": float(self.series["admitted"].sum()),
            "live_rejected": float(self.series["rejected"].sum()),
            "live_evacuated": float(self.series["evacuated"].sum()),
            "live_displaced": float(self.series["displaced"].sum()),
            "live_down_server_ticks": float(
                self.series["down_servers"].sum()),
            "live_fault_ticks": float(len(self.fault_ticks)),
        }

    def format(self) -> str:
        """Human-readable live-run report."""
        m = self.metrics()
        active = self.series["active"]
        lines = [
            f"Live platform run: {self.ticks} ticks x "
            f"{self.tick_minutes} min, {self.sites} sites / "
            f"{self.servers} servers, arrivals ~{self.arrival_rate:g}/tick, "
            f"autoscale {self.autoscale}, faults {self.fault_profile}",
            f"fleet: peak {int(m['live_peak_active'])} active VMs "
            f"(mean {m['live_mean_active']:.1f}), mean utilization "
            f"{m['live_mean_utilization']:.3f}",
            f"admission: {int(m['live_admitted'])} admitted, "
            f"{int(m['live_rejected'])} rejected",
            f"faults: {len(self.fault_ticks)} fault ticks, "
            f"{int(m['live_evacuated'])} VMs evacuated, "
            f"{int(m['live_displaced'])} displaced, "
            f"{int(m['live_down_server_ticks'])} server-ticks down",
            "",
            f"{'tick window':<14} {'active p50':>11} {'active p95':>11} "
            f"{'active max':>11}",
        ]
        quarters = max(self.ticks // 4, 1)
        for start in range(0, self.ticks, quarters):
            window = active[start:start + quarters]
            lines.append(
                f"[{start:>5}..{min(start + quarters, self.ticks):>5}) "
                f"{int(np.percentile(window, 50)):>11} "
                f"{int(np.percentile(window, 95)):>11} "
                f"{int(window.max()):>11}")
        lines.append("")
        lines.append(f"digest: {self.digest[:16]}")
        return "\n".join(lines)


def _result(inputs: LiveInputs, scenario_fields: dict[str, object],
            series: dict[str, np.ndarray],
            fault_ticks: list[int]) -> LiveResult:
    return LiveResult(
        ticks=inputs.ticks,
        tick_minutes=inputs.tick_minutes,
        sites=inputs.n_sites,
        servers=inputs.n_servers,
        arrival_rate=float(scenario_fields.get("arrival_rate", 0.0)),
        autoscale="on" if inputs.autoscale else "off",
        fault_profile=str(scenario_fields.get("fault_profile", "off")),
        series=series,
        fault_ticks=tuple(fault_ticks),
        digest=digest_series(series),
    )


def run_live_engine(inputs: LiveInputs, journal=None,
                    scenario_fields: dict[str, object] | None = None,
                    ) -> LiveResult:
    """Advance the fleet over every tick with array ops only.

    Per tick, in contract order: (1) fault transitions — newly-down
    servers evacuate, evacuees re-place onto free up-slots by
    largest-remainder weights; (2) error-diffusion departures; (3)
    arrival admission over the remaining free slots; (4) EWMA-driven
    autoscaling within ``[base, 2*base]`` slots.  Each tick probes the
    ``live.tick`` failpoint first and retries injected faults under
    :data:`TICK_RETRY`.

    ``journal`` receives one volatile ``live_tick`` event per tick, a
    canonical ``live_fault`` event per fault tick, and retry telemetry
    as volatile ``live_retry`` events.
    """
    n = inputs.n_servers
    slots = inputs.base_slots.copy()
    base = inputs.base_slots
    max_slots = base * 2
    grow = np.maximum(base // 8, 1)
    active = np.zeros(n, dtype=np.int64)
    acc = np.zeros(n, dtype=np.float64)
    ewma = np.zeros(n, dtype=np.float64)
    down_count = np.zeros(n, dtype=np.int64)
    p = inputs.departure_p

    by_tick: dict[int, list[tuple[int, int, int]]] = {}
    for tick, lo, hi, delta in inputs.transitions:
        by_tick.setdefault(tick, []).append((lo, hi, delta))

    series = {name: np.zeros(inputs.ticks, dtype=np.int64)
              for name in SERIES}
    fault_ticks: list[int] = []

    def allocate(total: int, free: np.ndarray) -> np.ndarray:
        """Largest-remainder split of ``total`` over free-slot weights.

        All-integer arithmetic (``free * placed // capacity`` with exact
        remainders), so the split is bit-identical to the scalar
        reference with no float-rounding hazard; remainder +1s go to
        the largest remainders, lowest server index breaking ties.
        """
        out = np.zeros(n, dtype=np.int64)
        capacity = int(free.sum())
        placed = min(total, capacity)
        if placed <= 0:
            return out
        scaled = free * placed
        np.floor_divide(scaled, capacity, out=out)
        leftover = placed - int(out.sum())
        if leftover > 0:
            remainder = scaled - out * capacity
            order = np.argsort(-remainder, kind="stable")[:leftover]
            out[order] += 1
        return out

    for t in range(inputs.ticks):
        def tick_step(t: int = t) -> None:
            failpoint("live.tick", f"tick {t}")
            evacuated = displaced = 0
            changes = by_tick.get(t)
            if changes:
                was_down = down_count > 0
                for lo, hi, delta in changes:
                    down_count[lo:hi] += delta
                now_down = down_count > 0
                newly_down = now_down & ~was_down
                if newly_down.any():
                    evacuated = int(active[newly_down].sum())
                    active[newly_down] = 0
                    acc[newly_down] = 0.0
                up = ~now_down
                if evacuated:
                    free = np.where(up, slots - active, 0)
                    moved = allocate(evacuated, free)
                    np.add(active, moved, out=active)
                    displaced = evacuated - int(moved.sum())
                fault_ticks.append(t)
                if journal is not None:
                    journal.emit("live_fault", tick=t,
                                 down=int(now_down.sum()),
                                 evacuated=evacuated,
                                 displaced=displaced)
            up = down_count == 0

            np.add(acc, active * p, out=acc)
            departed = np.floor(acc).astype(np.int64)
            np.subtract(acc, departed, out=acc)
            np.subtract(active, departed, out=active)

            n_arrivals = int(inputs.arrivals[t])
            free = np.where(up, slots - active, 0)
            placed = allocate(n_arrivals, free)
            np.add(active, placed, out=active)
            admitted = int(placed.sum())

            util = active / slots
            ewma_next = EWMA_ALPHA * util + (1.0 - EWMA_ALPHA) * ewma
            ewma[:] = ewma_next
            if inputs.autoscale:
                slots[:] = np.where(ewma > SCALE_UP_UTIL,
                                    np.minimum(slots + grow, max_slots),
                                    slots)
                slots[:] = np.where(ewma < SCALE_DOWN_UTIL,
                                    np.maximum(slots - grow, base),
                                    slots)

            series["active"][t] = int(active.sum())
            series["capacity"][t] = int(slots[up].sum())
            series["down_servers"][t] = int((~up).sum())
            series["arrivals"][t] = n_arrivals
            series["admitted"][t] = admitted
            series["rejected"][t] = n_arrivals - admitted
            series["departures"][t] = int(departed.sum())
            series["evacuated"][t] = evacuated
            series["displaced"][t] = displaced
            if journal is not None:
                journal.emit("live_tick", tick=t,
                             active=int(series["active"][t]),
                             down=int(series["down_servers"][t]),
                             admitted=admitted,
                             rejected=int(series["rejected"][t]))

        def on_retry(attempt: int, delay: float, exc: BaseException,
                     t: int = t) -> None:
            if journal is not None:
                journal.emit("live_retry", tick=t, attempt=attempt,
                             error=f"{type(exc).__name__}: {exc}")

        call_with_retry(tick_step, policy=TICK_RETRY,
                        token=f"live.tick:{t}",
                        transient=(InjectedFault,), on_retry=on_retry)

    return _result(inputs, scenario_fields or {}, series, fault_ticks)


def run_live(scenario: Scenario, jobs: int = 1, journal=None) -> LiveResult:
    """The full live study phase: topology, fault weather, tick loop.

    Builds the NEP topology (no VM placement — the live engine owns its
    population), lowers the scenario's fault profile to tick
    transitions, and runs the vectorized stepper.  ``jobs`` is accepted
    for phase-signature symmetry and ignored: tick stepping is
    sequential, so the result is bit-identical for any value.
    """
    from ..faults.schedule import build_fault_schedule
    from ..platform.cloud import build_cloud_platform
    from ..platform.nep import build_nep_platform

    del jobs  # sequential by design; see docstring
    platform = build_nep_platform(scenario)
    faults = None
    if scenario.fault_profile != "off":
        cloud = build_cloud_platform(scenario, name="AliCloud",
                                     servers_per_region=4)
        faults = build_fault_schedule(scenario, platform, cloud)
    inputs = build_live_inputs(scenario, platform, faults)
    result = run_live_engine(
        inputs, journal=journal,
        scenario_fields={"arrival_rate": scenario.live_arrival_rate,
                         "fault_profile": scenario.fault_profile})
    if journal is not None:
        journal.emit("live_summary", ticks=result.ticks,
                     servers=result.servers,
                     fault_ticks=len(result.fault_ticks),
                     rejected=int(result.series["rejected"].sum()),
                     displaced=int(result.series["displaced"].sum()),
                     digest=result.digest)
    return result
