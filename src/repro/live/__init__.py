"""Event-driven live-platform engine (beyond the paper).

The batch pipeline measures the platform as a static snapshot; this
package advances it tick by tick — arrivals, departures, evacuation,
autoscaling — as vectorized array ops with faults interleaved as
events.  See ``docs/live.md`` for the event model and determinism
contract.
"""

from .engine import (LiveInputs, LiveResult, build_live_inputs,
                     demand_curve, digest_series, run_live,
                     run_live_engine)
from .reference import run_reference_engine

__all__ = [
    "LiveInputs",
    "LiveResult",
    "build_live_inputs",
    "demand_curve",
    "digest_series",
    "run_live",
    "run_live_engine",
    "run_reference_engine",
]
