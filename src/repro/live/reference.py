"""Scalar per-server reference stepper for the live engine.

This is the engine the vectorized stepper is benchmarked against and
validated against: plain Python loops over every server, one at a
time, following *exactly* the same per-tick contract and integer
arithmetic as :func:`repro.live.engine.run_live_engine`.  Both steppers
consume the same precomputed :class:`~repro.live.engine.LiveInputs`
(all randomness is drawn before the loop), so their per-tick series —
and therefore their digests — must be bit-identical; the test suite
pins that, and ``scripts/bench_study.py --live-bench`` pins the
vectorized stepper's speedup over this one.

Keep this file boring.  No numpy in the loop, no cleverness: its whole
value is being an obviously-correct spelling of the contract.
"""

from __future__ import annotations

import numpy as np

from .engine import (EWMA_ALPHA, SCALE_DOWN_UTIL, SCALE_UP_UTIL, SERIES,
                     LiveInputs, LiveResult, digest_series)


def _allocate(total: int, free: list[int]) -> list[int]:
    """Scalar twin of the engine's integer largest-remainder split."""
    n = len(free)
    out = [0] * n
    capacity = sum(free)
    placed = min(total, capacity)
    if placed <= 0:
        return out
    remainder = [0] * n
    floored = 0
    for i in range(n):
        scaled = free[i] * placed
        out[i] = scaled // capacity
        remainder[i] = scaled - out[i] * capacity
        floored += out[i]
    leftover = placed - floored
    if leftover > 0:
        order = sorted(range(n), key=lambda i: (-remainder[i], i))
        for i in order[:leftover]:
            out[i] += 1
    return out


def run_reference_engine(inputs: LiveInputs) -> LiveResult:
    """Advance the fleet with per-server Python loops; no array ops.

    Same contract order as the vectorized stepper: fault transitions
    and evacuation, error-diffusion departures, arrival admission,
    EWMA autoscaling.  No journal and no failpoints — this stepper
    exists to validate and benchmark, not to run studies.
    """
    n = inputs.n_servers
    base = [int(b) for b in inputs.base_slots]
    slots = list(base)
    max_slots = [b * 2 for b in base]
    grow = [max(b // 8, 1) for b in base]
    active = [0] * n
    acc = [0.0] * n
    ewma = [0.0] * n
    down_count = [0] * n
    p = inputs.departure_p

    by_tick: dict[int, list[tuple[int, int, int]]] = {}
    for tick, lo, hi, delta in inputs.transitions:
        by_tick.setdefault(tick, []).append((lo, hi, delta))

    series = {name: np.zeros(inputs.ticks, dtype=np.int64)
              for name in SERIES}
    fault_ticks: list[int] = []

    for t in range(inputs.ticks):
        evacuated = displaced = 0
        changes = by_tick.get(t)
        if changes:
            was_down = [c > 0 for c in down_count]
            for lo, hi, delta in changes:
                for i in range(lo, hi):
                    down_count[i] += delta
            for i in range(n):
                if down_count[i] > 0 and not was_down[i]:
                    evacuated += active[i]
                    active[i] = 0
                    acc[i] = 0.0
            if evacuated:
                free = [slots[i] - active[i] if down_count[i] == 0 else 0
                        for i in range(n)]
                moved = _allocate(evacuated, free)
                migrated = 0
                for i in range(n):
                    active[i] += moved[i]
                    migrated += moved[i]
                displaced = evacuated - migrated
            fault_ticks.append(t)

        departed = 0
        for i in range(n):
            acc[i] += active[i] * p
            gone = int(acc[i])
            if gone:
                acc[i] -= gone
                active[i] -= gone
                departed += gone

        n_arrivals = int(inputs.arrivals[t])
        free = [slots[i] - active[i] if down_count[i] == 0 else 0
                for i in range(n)]
        placed = _allocate(n_arrivals, free)
        admitted = 0
        for i in range(n):
            active[i] += placed[i]
            admitted += placed[i]

        for i in range(n):
            util = active[i] / slots[i]
            ewma[i] = EWMA_ALPHA * util + (1.0 - EWMA_ALPHA) * ewma[i]
            if inputs.autoscale:
                if ewma[i] > SCALE_UP_UTIL:
                    slots[i] = min(slots[i] + grow[i], max_slots[i])
                if ewma[i] < SCALE_DOWN_UTIL:
                    slots[i] = max(slots[i] - grow[i], base[i])

        up_capacity = down = total_active = 0
        for i in range(n):
            total_active += active[i]
            if down_count[i] > 0:
                down += 1
            else:
                up_capacity += slots[i]
        series["active"][t] = total_active
        series["capacity"][t] = up_capacity
        series["down_servers"][t] = down
        series["arrivals"][t] = n_arrivals
        series["admitted"][t] = admitted
        series["rejected"][t] = n_arrivals - admitted
        series["departures"][t] = departed
        series["evacuated"][t] = evacuated
        series["displaced"][t] = displaced

    return LiveResult(
        ticks=inputs.ticks,
        tick_minutes=inputs.tick_minutes,
        sites=inputs.n_sites,
        servers=n,
        arrival_rate=0.0,
        autoscale="on" if inputs.autoscale else "off",
        fault_profile="off",
        series=series,
        fault_ticks=tuple(fault_ticks),
        digest=digest_series(series),
    )
