"""Per-site edge CDN cache model (analytic hit ratios + netsim paths).

The paper's platform hosts video-centric apps (§4.1) on >500 small edge
sites; whether the edge actually helps a *viewer* depends on whether
their request hits the site's cache (served at edge RTT) or misses and
detours to the cloud origin.  This package models that boundary
analytically — seeded per-site Zipf popularity, Che-approximation LRU
(or fixed-TTL) hit ratios, hit/miss latency drawn from the existing
:mod:`repro.netsim` edge/cloud paths — so a million-session QoE study
(:mod:`repro.qoe.sessions`) can evaluate it as pure array lookups.
"""

from .model import (
    CdnLatencies,
    CdnModel,
    che_characteristic_time,
    lru_hit_ratio_curve,
    ttl_hit_ratios,
    zipf_weights,
)

__all__ = [
    "CdnLatencies",
    "CdnModel",
    "che_characteristic_time",
    "lru_hit_ratio_curve",
    "ttl_hit_ratios",
    "zipf_weights",
]
