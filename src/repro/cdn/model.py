"""Analytic edge-cache model: Zipf popularity + Che-approximation LRU.

Instead of replaying per-request cache state (hopeless at a million
concurrent sessions), each NEP site gets an *analytic* hit ratio:

* object popularity at a site is Zipf with a per-site skew drawn from a
  seeded scenario substream (sites differ — a campus site and a
  residential site do not watch the same tail);
* an LRU cache of ``C`` objects under Poisson arrivals is solved with
  the Che approximation — find the characteristic time ``T_c`` where
  the expected number of objects referenced within ``T_c`` equals the
  capacity, then each object's hit ratio is ``1 - exp(-lambda_i T_c)``;
* a fixed-TTL cache short-circuits the solve: the characteristic time
  *is* the TTL.

Hit and miss latencies come from the existing :mod:`repro.netsim`
routes — a hit is served at nearest-edge RTT, a miss pays the edge leg
plus the edge-to-origin backbone detour, and the no-CDN baseline talks
to the cloud origin directly — so the CDN model stays endogenous to the
same simulated network as Table 6.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from functools import cached_property

import numpy as np

from ..config import Scenario
from ..errors import ConfigurationError
from ..geo.regions import city
from ..netsim.access import AccessType
from ..netsim.latency import LatencyModel
from ..netsim.path import HopKind
from ..netsim.routing import TargetSiteSpec, UESpec, build_route

#: Origin distance (km): the miss path detours to a far cloud region,
#: matching the testbed's "Cloud-2" placement (§3.3).
ORIGIN_DISTANCE_KM = 1300.0

#: Nearest-edge distance (km), matching the testbed's edge VM.
EDGE_DISTANCE_KM = 25.0

#: Commercial origin traffic rides premium carrier paths — the same
#: inflation discount the QoE testbed applies to its cloud VMs.
PREMIUM_BACKBONE_FACTOR = 0.6

#: Per-site Zipf-skew jitter band: a site's alpha is the scenario's
#: ``qoe_zipf_alpha`` scaled by a uniform draw from this interval.
SITE_ALPHA_JITTER = (0.75, 1.25)

#: Per-site mean request rate (requests/s) behind the TTL model; the
#: realised rate is scaled by a per-site lognormal factor.  Small edge
#: sites see modest per-object demand, which keeps the TTL hit ratio
#: sensitive to the TTL knob instead of saturating at 1.
SITE_REQUEST_RATE_HZ = 2.0

#: One cached object ~ a few seconds of 1080p video (MB).
OBJECT_MB = 4.0

#: Sites solved per vectorised bisection block (bounds the
#: ``(sites, catalog)`` temporary at city-tier site counts).
SOLVER_SITE_BLOCK = 256

#: Bisection iterations: 2^-48 relative interval is far below the hit
#: ratios' meaningful precision.
SOLVER_ITERATIONS = 48


def zipf_weights(catalog: int, alpha: float) -> np.ndarray:
    """Normalised Zipf popularity over a catalog of ``catalog`` objects.

    Raises:
        ConfigurationError: on a non-positive catalog size or skew.
    """
    if catalog <= 0:
        raise ConfigurationError(
            f"catalog size must be positive, got {catalog}")
    if alpha <= 0:
        raise ConfigurationError(f"zipf alpha must be positive, got {alpha}")
    ranks = np.arange(1, catalog + 1, dtype=np.float64)
    weights = ranks ** -alpha
    return weights / weights.sum()


def che_characteristic_time(rates: np.ndarray, capacity: float) -> float:
    """Solve the Che approximation for one cache: find ``T_c``.

    ``T_c`` satisfies ``sum_i(1 - exp(-rate_i * T_c)) == capacity`` —
    the expected number of distinct objects requested within a
    characteristic time equals the cache's object capacity.  The
    left-hand side is monotone in ``T_c``, so bisection converges
    unconditionally.

    Raises:
        ConfigurationError: when the capacity is not positive or not
            smaller than the catalog (a cache that fits everything has
            no characteristic time — the hit ratio is simply 1).
    """
    rates = np.asarray(rates, dtype=np.float64)
    if capacity <= 0:
        raise ConfigurationError(
            f"cache capacity must be positive, got {capacity}")
    if capacity >= rates.size:
        raise ConfigurationError(
            f"capacity {capacity} >= catalog {rates.size}; the Che "
            f"solve needs a cache smaller than the catalog")
    lo, hi = 0.0, 1.0
    while np.sum(1.0 - np.exp(-rates * hi)) < capacity:
        hi *= 2.0
    for _ in range(SOLVER_ITERATIONS):
        mid = 0.5 * (lo + hi)
        if np.sum(1.0 - np.exp(-rates * mid)) < capacity:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def lru_hit_ratio_curve(alphas: np.ndarray, catalog: int,
                        capacity: float) -> np.ndarray:
    """Request-weighted LRU hit ratio per site, one Zipf skew per site.

    The Che fixed point depends on the request rates only through the
    popularity *weights* (scaling every rate scales ``T_c`` inversely),
    so per-site hit ratios are solved over normalised weights directly.
    Sites are processed in :data:`SOLVER_SITE_BLOCK` blocks and each
    block is solved with a vectorised Newton iteration: the occupancy
    ``f(x) = sum_i(1 - exp(-w_i x))`` is concave and increasing, so
    Newton started below the root converges monotonically (no bracket
    or damping needed) and one ``exp`` per iteration serves both the
    value and the derivative — about 5x fewer catalog-wide ``exp``
    sweeps than a fixed-width bisection at a 500-site fleet.

    Returns an array of per-site hit ratios in ``[0, 1)``; a capacity
    at or above the catalog returns all-ones (everything fits).
    """
    alphas = np.asarray(alphas, dtype=np.float64)
    if capacity >= catalog:
        return np.ones_like(alphas)
    ranks = np.arange(1, catalog + 1, dtype=np.float64)
    out = np.empty(alphas.size, dtype=np.float64)
    for start in range(0, alphas.size, SOLVER_SITE_BLOCK):
        block = alphas[start:start + SOLVER_SITE_BLOCK]
        weights = ranks[None, :] ** -block[:, None]
        weights /= weights.sum(axis=1, keepdims=True)
        # f(x) <= x * f'(0) = x (weights sum to 1), so f(C) <= C: the
        # capacity itself is a starting point at or below the root.
        x = np.full(block.size, float(capacity))
        for _ in range(SOLVER_ITERATIONS):
            decay = np.exp(-weights * x[:, None])
            filled = np.sum(1.0 - decay, axis=1)
            slope = np.sum(weights * decay, axis=1)
            step = (capacity - filled) / slope
            x = x + step
            if float(np.max(np.abs(step))) <= 1e-12 * float(np.min(x)):
                break
        hits = 1.0 - np.exp(-weights * x[:, None])
        out[start:start + SOLVER_SITE_BLOCK] = np.sum(weights * hits,
                                                      axis=1)
    return out


def ttl_hit_ratios(rates: np.ndarray, ttl_s: float) -> np.ndarray:
    """Per-object hit ratios of a reset-on-access TTL cache.

    Under Poisson arrivals an object is a hit whenever its inter-request
    gap stays inside the TTL: ``1 - exp(-rate_i * ttl)`` — the Che form
    with the characteristic time pinned to the TTL.

    Raises:
        ConfigurationError: on a non-positive TTL.
    """
    if ttl_s <= 0:
        raise ConfigurationError(f"ttl must be positive, got {ttl_s}")
    rates = np.asarray(rates, dtype=np.float64)
    return 1.0 - np.exp(-rates * ttl_s)


@dataclass(frozen=True)
class CdnLatencies:
    """Mean RTTs (ms) of the three request outcomes the sessions see."""

    hit_rtt_ms: float    # served from the nearest edge site's cache
    miss_rtt_ms: float   # edge leg + edge-to-origin detour
    cloud_rtt_ms: float  # no CDN: straight to the cloud origin


class CdnModel:
    """Per-NEP-site edge-cache hit ratios plus hit/miss path latencies.

    Everything derives from the scenario: the site count and cache
    knobs (``qoe_cache_mb``, ``qoe_catalog_objects``,
    ``qoe_zipf_alpha``, ``qoe_cache_eviction``, ``qoe_cache_ttl_s``)
    shape the hit ratios, and the seeded ``cdn-sites`` / ``cdn-paths``
    substreams make two models of the same scenario identical.
    """

    def __init__(self, scenario: Scenario,
                 experiment_city: str = "Beijing") -> None:
        self.scenario = scenario
        self._origin = city(experiment_city).location
        self._site_rng = scenario.random.stream("cdn-sites")
        self._path_rng = scenario.random.stream("cdn-paths")

    @property
    def capacity_objects(self) -> float:
        """Cache capacity in objects (``qoe_cache_mb`` / object size)."""
        return self.scenario.qoe_cache_mb / OBJECT_MB

    @cached_property
    def site_alphas(self) -> np.ndarray:
        """Per-site Zipf skew: the scenario alpha with seeded jitter."""
        lo, hi = SITE_ALPHA_JITTER
        jitter = self._site_rng.uniform(lo, hi,
                                        self.scenario.nep_site_count)
        return self.scenario.qoe_zipf_alpha * jitter

    @cached_property
    def site_request_rates_hz(self) -> np.ndarray:
        """Per-site total request rate (requests/s), seeded lognormal."""
        spread = self._site_rng.lognormal(
            mean=0.0, sigma=0.6, size=self.scenario.nep_site_count)
        return SITE_REQUEST_RATE_HZ * spread

    @cached_property
    def site_hit_ratios(self) -> np.ndarray:
        """Request-weighted cache hit ratio per NEP site, in ``[0, 1]``."""
        catalog = self.scenario.qoe_catalog_objects
        if self.scenario.qoe_cache_eviction == "lru":
            return lru_hit_ratio_curve(self.site_alphas, catalog,
                                       self.capacity_objects)
        ratios = np.empty(self.scenario.nep_site_count)
        for index, (alpha, rate) in enumerate(
                zip(self.site_alphas, self.site_request_rates_hz)):
            weights = zipf_weights(catalog, float(alpha))
            hits = ttl_hit_ratios(rate * weights,
                                  float(self.scenario.qoe_cache_ttl_s))
            ratios[index] = float(np.sum(weights * hits))
        return ratios

    def _route_rtt_ms(self, distance_km: float, is_edge: bool,
                      label: str, pings: int = 50) -> float:
        """Mean RTT over a freshly built UE -> target route."""
        from ..measurement.qoe.testbed import _displace

        ue = UESpec(label="cdn-ue", location=self._origin,
                    access=AccessType.WIFI)
        target = TargetSiteSpec(
            label=label,
            location=_displace(self._origin, distance_km, 200.0),
            is_edge=is_edge)
        route = build_route(ue, target, self._path_rng)
        if not is_edge:
            hops = tuple(
                h.replace(mean_rtt_ms=h.mean_rtt_ms
                          * PREMIUM_BACKBONE_FACTOR)
                if h.kind is HopKind.BACKBONE else h
                for h in route.hops)
            route = dc_replace(route, hops=hops)
        model = LatencyModel(self._path_rng)
        return float(model.sample_many(route, pings).mean())

    @cached_property
    def latencies(self) -> CdnLatencies:
        """The three request-outcome RTTs, drawn from netsim routes.

        A miss is served *through* the edge site: the viewer still talks
        to the edge front-end, which fetches from the origin over the
        backbone — so the miss RTT is the edge RTT plus the origin
        detour (minus the origin path's own access leg, which the
        detour does not traverse twice).
        """
        edge_rtt = self._route_rtt_ms(EDGE_DISTANCE_KM, True, "cdn-edge")
        cloud_rtt = self._route_rtt_ms(ORIGIN_DISTANCE_KM, False,
                                       "cdn-origin")
        access_rtt = 2.0 * sum(
            h.mean_rtt_ms
            for h in UESpec(label="cdn-ue", location=self._origin,
                            access=AccessType.WIFI).profile.hops)
        detour = max(cloud_rtt - access_rtt, 0.0)
        return CdnLatencies(
            hit_rtt_ms=edge_rtt,
            miss_rtt_ms=edge_rtt + detour,
            cloud_rtt_ms=cloud_rtt,
        )
