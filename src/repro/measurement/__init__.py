"""Measurement substrate: crowd campaign, probes, QoE testbeds."""

from .campaign import (
    ACCESS_SHARES,
    CampaignResults,
    CrowdCampaign,
    LatencyObservation,
    Participant,
    ThroughputObservation,
)
from .io import load_campaign, save_campaign
from .iperf import EDGE_VM_PORT_MBPS, IperfResult, run_iperf_test
from .ping import PingResult, run_ping_test, run_ping_tests

__all__ = [
    "ACCESS_SHARES",
    "CampaignResults",
    "CrowdCampaign",
    "EDGE_VM_PORT_MBPS",
    "IperfResult",
    "LatencyObservation",
    "Participant",
    "PingResult",
    "ThroughputObservation",
    "load_campaign",
    "run_iperf_test",
    "save_campaign",
    "run_ping_test",
    "run_ping_tests",
]
