"""Ping test runner: repeated RTT probes over one route.

Mirrors the speed-testing app of §2.1.1: each (user, target) pair is
probed 30 times; the analysis keeps the mean RTT and its coefficient of
variation, plus one traceroute for the hop-level views.

Summary statistics are computed inside the batch engine, so
:class:`PingResult` no longer has to retain the full 30-sample tuple per
observation — pass ``keep_samples=True`` to get it back.  A campaign of
thousands of observations keeps only two floats each.
"""

from __future__ import annotations

from typing import NamedTuple, Sequence

import numpy as np

from ..errors import MeasurementError
from ..netsim.latency import LatencyModel
from ..netsim.path import Route
from ..netsim.traceroute import TracerouteResult, traceroute_from_row


class PingResult(NamedTuple):
    """Summary of one repeated-ping test."""

    target_label: str
    mean_ms: float
    std_ms: float
    traceroute: TracerouteResult
    #: The raw per-ping RTTs; retained only when requested (memory).
    samples_ms: tuple[float, ...] | None = None

    @property
    def cv(self) -> float:
        if self.mean_ms == 0.0:
            return 0.0
        return self.std_ms / self.mean_ms

    @property
    def hop_count(self) -> int:
        return self.traceroute.hop_count


def _result_from_matrix(route: Route, matrix: np.ndarray,
                        keep_samples: bool) -> PingResult:
    """Fold one ``(repetitions + 1, n_hops)`` draw into a PingResult.

    The final row is the traceroute's per-hop breakdown; the rows before
    it are the repeated pings.
    """
    totals = matrix[:-1].sum(axis=1)
    return PingResult(
        target_label=route.target_label,
        mean_ms=float(totals.mean()),
        std_ms=float(totals.std()),
        traceroute=traceroute_from_row(route, matrix[-1]),
        samples_ms=tuple(float(x) for x in totals) if keep_samples else None,
    )


def run_ping_test(route: Route, repetitions: int, rng: np.random.Generator,
                  keep_samples: bool = False) -> PingResult:
    """Probe ``route`` ``repetitions`` times and traceroute it once.

    Raises:
        MeasurementError: if repetitions is not positive.
    """
    if repetitions <= 0:
        raise MeasurementError(
            f"repetitions must be positive, got {repetitions}"
        )
    model = LatencyModel(rng)
    matrix = model.sample_matrix(route, repetitions + 1)
    return _result_from_matrix(route, matrix, keep_samples)


def run_ping_tests(routes: Sequence[Route], repetitions: int,
                   rng: np.random.Generator,
                   keep_samples: bool = False) -> list[PingResult]:
    """Probe many routes in one vectorised pass (one result per route).

    All routes' pings and traceroutes are drawn by a single
    :meth:`~repro.netsim.latency.LatencyModel.sample_route_batch` call —
    this is the campaign's hot path.

    Raises:
        MeasurementError: if repetitions is not positive.
    """
    if repetitions <= 0:
        raise MeasurementError(
            f"repetitions must be positive, got {repetitions}"
        )
    if not routes:
        return []
    model = LatencyModel(rng)
    block, starts = model.sample_routes_block(routes, repetitions + 1)
    # Per-route RTT sums straight off the undivided block: reduceat gives
    # a (repetitions + 1, n_routes) matrix of end-to-end samples, and the
    # summary statistics of every route fall out of two axis reductions.
    sums = np.add.reduceat(block, starts, axis=1)
    ping_sums = sums[:-1]
    means = ping_sums.mean(axis=0)
    stds = ping_sums.std(axis=0)
    trace_row = block[-1]
    ends = np.concatenate((starts[1:], [block.shape[1]]))
    results = []
    for j, route in enumerate(routes):
        samples = tuple(ping_sums[:, j].tolist()) if keep_samples else None
        results.append(PingResult(
            target_label=route.target_label,
            mean_ms=float(means[j]),
            std_ms=float(stds[j]),
            traceroute=traceroute_from_row(
                route, trace_row[starts[j]:ends[j]]),
            samples_ms=samples,
        ))
    return results
