"""Ping test runner: repeated RTT probes over one route.

Mirrors the speed-testing app of §2.1.1: each (user, target) pair is
probed 30 times; the analysis keeps the mean RTT and its coefficient of
variation, plus one traceroute for the hop-level views.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MeasurementError
from ..netsim.latency import LatencyModel
from ..netsim.path import Route
from ..netsim.traceroute import TracerouteResult, run_traceroute


@dataclass(frozen=True)
class PingResult:
    """Summary of one repeated-ping test."""

    target_label: str
    samples_ms: tuple[float, ...]
    traceroute: TracerouteResult

    @property
    def mean_ms(self) -> float:
        return float(np.mean(self.samples_ms))

    @property
    def std_ms(self) -> float:
        return float(np.std(self.samples_ms))

    @property
    def cv(self) -> float:
        mean = self.mean_ms
        if mean == 0.0:
            return 0.0
        return self.std_ms / mean

    @property
    def hop_count(self) -> int:
        return self.traceroute.hop_count


def run_ping_test(route: Route, repetitions: int,
                  rng: np.random.Generator) -> PingResult:
    """Probe ``route`` ``repetitions`` times and traceroute it once.

    Raises:
        MeasurementError: if repetitions is not positive.
    """
    if repetitions <= 0:
        raise MeasurementError(
            f"repetitions must be positive, got {repetitions}"
        )
    model = LatencyModel(rng)
    samples = tuple(float(x) for x in model.sample_many(route, repetitions))
    trace = run_traceroute(route, rng)
    return PingResult(
        target_label=route.target_label,
        samples_ms=samples,
        traceroute=trace,
    )
