"""Ping test runner: repeated RTT probes over one route.

Mirrors the speed-testing app of §2.1.1: each (user, target) pair is
probed 30 times; the analysis keeps the mean RTT and its coefficient of
variation, plus one traceroute for the hop-level views.

Summary statistics are computed inside the batch engine, so
:class:`PingResult` no longer has to retain the full 30-sample tuple per
observation — pass ``keep_samples=True`` to get it back.  A campaign of
thousands of observations keeps only two floats each.

Fault injection enters here through two optional per-route vectors:
``loss_probability`` drops individual pings (an all-lost route yields a
well-defined *failed* result — zero mean, zero CV — never NaN), and
``extra_latency_ms`` adds a degradation episode's latency penalty to
every surviving ping.  With both left at ``None`` the code path and the
RNG draw sequence are identical to the fault-free engine.
"""

from __future__ import annotations

from typing import NamedTuple, Sequence

import numpy as np

from ..errors import MeasurementError
from ..netsim.latency import LatencyModel
from ..netsim.path import Route
from ..netsim.traceroute import TracerouteResult, traceroute_from_row


class PingResult(NamedTuple):
    """Summary of one repeated-ping test, with loss accounting."""

    target_label: str
    mean_ms: float
    std_ms: float
    traceroute: TracerouteResult
    #: The raw per-ping RTTs; retained only when requested (memory).
    samples_ms: tuple[float, ...] | None = None
    #: Pings issued / pings lost.  A result with every ping lost is a
    #: *failed* probe; its statistics stay well-defined zeros.
    sent: int = 0
    lost: int = 0

    @property
    def cv(self) -> float:
        if self.mean_ms == 0.0:
            return 0.0
        return self.std_ms / self.mean_ms

    @property
    def hop_count(self) -> int:
        return self.traceroute.hop_count

    @property
    def failed(self) -> bool:
        """True when every issued ping was lost (probe timed out)."""
        return self.sent > 0 and self.lost >= self.sent

    @property
    def loss_rate(self) -> float:
        return self.lost / self.sent if self.sent else 0.0


def _result_from_matrix(route: Route, matrix: np.ndarray, repetitions: int,
                        keep_samples: bool) -> PingResult:
    """Fold one ``(repetitions + 1, n_hops)`` draw into a PingResult.

    The final row is the traceroute's per-hop breakdown; the rows before
    it are the repeated pings.
    """
    totals = matrix[:-1].sum(axis=1)
    return PingResult(
        target_label=route.target_label,
        mean_ms=float(totals.mean()),
        std_ms=float(totals.std()),
        traceroute=traceroute_from_row(route, matrix[-1]),
        samples_ms=tuple(float(x) for x in totals) if keep_samples else None,
        sent=repetitions,
        lost=0,
    )


def run_ping_test(route: Route, repetitions: int, rng: np.random.Generator,
                  keep_samples: bool = False) -> PingResult:
    """Probe ``route`` ``repetitions`` times and traceroute it once.

    Raises:
        MeasurementError: if repetitions is not positive.
    """
    if repetitions <= 0:
        raise MeasurementError(
            f"repetitions must be positive, got {repetitions}"
        )
    model = LatencyModel(rng)
    matrix = model.sample_matrix(route, repetitions + 1)
    return _result_from_matrix(route, matrix, repetitions, keep_samples)


def run_ping_tests(routes: Sequence[Route], repetitions: int,
                   rng: np.random.Generator,
                   keep_samples: bool = False,
                   loss_probability: np.ndarray | Sequence[float] | None = None,
                   extra_latency_ms: np.ndarray | Sequence[float] | None = None,
                   loss_rng: np.random.Generator | None = None,
                   ) -> list[PingResult]:
    """Probe many routes in one vectorised pass (one result per route).

    All routes' pings and traceroutes are drawn by a single
    :meth:`~repro.netsim.latency.LatencyModel.sample_route_batch` call —
    this is the campaign's hot path.

    ``loss_probability`` (one value per route) drops individual pings via
    Bernoulli draws from ``loss_rng`` (default: ``rng``); statistics are
    computed over the surviving pings only, and a route whose every ping
    is lost returns a failed result with ``mean_ms = std_ms = 0.0``.
    ``extra_latency_ms`` (one value per route) is added to each surviving
    ping.  Both default to ``None``, which skips every fault-related RNG
    draw — the fault-free path is bit-identical to the historic engine.

    Raises:
        MeasurementError: if repetitions is not positive, or a fault
            vector has the wrong length or an out-of-range probability.
    """
    if repetitions <= 0:
        raise MeasurementError(
            f"repetitions must be positive, got {repetitions}"
        )
    if not routes:
        return []
    model = LatencyModel(rng)
    block, starts = model.sample_routes_block(routes, repetitions + 1)
    # Per-route RTT sums straight off the undivided block: reduceat gives
    # a (repetitions + 1, n_routes) matrix of end-to-end samples, and the
    # summary statistics of every route fall out of two axis reductions.
    sums = np.add.reduceat(block, starts, axis=1)
    ping_sums = sums[:-1]

    if extra_latency_ms is not None:
        extra = np.asarray(extra_latency_ms, dtype=float)
        if extra.shape != (len(routes),):
            raise MeasurementError(
                f"extra_latency_ms needs one value per route, got shape "
                f"{extra.shape} for {len(routes)} routes"
            )
        if np.any(extra < 0):
            raise MeasurementError("extra_latency_ms must be non-negative")
        ping_sums = ping_sums + extra

    if loss_probability is not None:
        lp = np.asarray(loss_probability, dtype=float)
        if lp.shape != (len(routes),):
            raise MeasurementError(
                f"loss_probability needs one value per route, got shape "
                f"{lp.shape} for {len(routes)} routes"
            )
        if np.any((lp < 0.0) | (lp > 1.0)):
            raise MeasurementError("loss probabilities must be in [0, 1]")
        draw_rng = loss_rng if loss_rng is not None else rng
        kept = draw_rng.random(ping_sums.shape) >= lp
        counts = kept.sum(axis=0)
        safe = np.maximum(counts, 1)
        means = np.where(kept, ping_sums, 0.0).sum(axis=0) / safe
        variance = np.where(kept, (ping_sums - means) ** 2,
                            0.0).sum(axis=0) / safe
        stds = np.sqrt(variance)
        means = np.where(counts > 0, means, 0.0)
        stds = np.where(counts > 0, stds, 0.0)
        lost = repetitions - counts
    else:
        kept = None
        means = ping_sums.mean(axis=0)
        stds = ping_sums.std(axis=0)
        lost = np.zeros(len(routes), dtype=np.intp)

    trace_row = block[-1]
    ends = np.concatenate((starts[1:], [block.shape[1]]))
    results = []
    for j, route in enumerate(routes):
        if keep_samples:
            column = ping_sums[:, j]
            if kept is not None:
                column = column[kept[:, j]]
            samples = tuple(column.tolist())
        else:
            samples = None
        results.append(PingResult(
            target_label=route.target_label,
            mean_ms=float(means[j]),
            std_ms=float(stds[j]),
            traceroute=traceroute_from_row(
                route, trace_row[starts[j]:ends[j]]),
            samples_ms=samples,
            sent=repetitions,
            lost=int(lost[j]),
        ))
    return results
