"""Disk round-trip for campaign results (the paper's performance dataset).

The paper's release plan covers two datasets: workloads (handled by
:mod:`repro.trace.io`) and performance — the crowd-sourced latency and
throughput observations.  This module writes the latter as two flat CSVs
(``latency.csv``, ``throughput.csv``) so it can be analysed with any
tool, and reads them back into :class:`CampaignResults`.
"""

from __future__ import annotations

import csv
from pathlib import Path

from ..errors import MeasurementError
from ..netsim.access import AccessType
from .campaign import CampaignResults, LatencyObservation, ThroughputObservation
from .iperf import IperfResult

_LATENCY_FIELDS = [
    "participant_id", "city", "province", "access", "target_id",
    "target_kind", "distance_km", "mean_rtt_ms", "rtt_cv", "hop_count",
    "hop_shares",
]
_THROUGHPUT_FIELDS = [
    "participant_id", "access", "target_label", "distance_km",
    "downlink_mbps", "uplink_mbps", "rtt_ms",
]


#: ICMP-hidden hops serialise as this sentinel (unambiguous even for a
#: single-hop tuple, unlike an empty field).
_HIDDEN = "hidden"


def _encode_shares(shares: tuple[float | None, ...]) -> str:
    """Semicolon-joined shares; hidden hops encode as ``hidden``."""
    return ";".join(_HIDDEN if s is None else f"{s:.6f}" for s in shares)


def _decode_shares(text: str) -> tuple[float | None, ...]:
    if not text:
        return ()
    return tuple(None if field in ("", _HIDDEN) else float(field)
                 for field in text.split(";"))


def save_campaign(results: CampaignResults, directory: str | Path) -> Path:
    """Write the campaign to ``directory`` (created if needed)."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    with (root / "latency.csv").open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_LATENCY_FIELDS)
        writer.writeheader()
        for obs in results.latency:
            writer.writerow({
                "participant_id": obs.participant_id,
                "city": obs.city,
                "province": obs.province,
                "access": obs.access.value,
                "target_id": obs.target_id,
                "target_kind": obs.target_kind,
                "distance_km": f"{obs.distance_km:.3f}",
                "mean_rtt_ms": f"{obs.mean_rtt_ms:.6f}",
                "rtt_cv": f"{obs.rtt_cv:.6f}",
                "hop_count": obs.hop_count,
                "hop_shares": _encode_shares(obs.hop_shares),
            })
    with (root / "throughput.csv").open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_THROUGHPUT_FIELDS)
        writer.writeheader()
        for obs in results.throughput:
            writer.writerow({
                "participant_id": obs.participant_id,
                "access": obs.access.value,
                "target_label": obs.result.target_label,
                "distance_km": f"{obs.result.distance_km:.3f}",
                "downlink_mbps": f"{obs.result.downlink_mbps:.6f}",
                "uplink_mbps": f"{obs.result.uplink_mbps:.6f}",
                "rtt_ms": f"{obs.result.rtt_ms:.6f}",
            })
    return root


def load_campaign(directory: str | Path) -> CampaignResults:
    """Read a campaign previously written by :func:`save_campaign`.

    Raises:
        MeasurementError: if the directory lacks the CSVs or a row is
            malformed.
    """
    root = Path(directory)
    latency_path = root / "latency.csv"
    throughput_path = root / "throughput.csv"
    if not latency_path.exists() or not throughput_path.exists():
        raise MeasurementError(f"not a campaign directory: {root}")
    results = CampaignResults()
    with latency_path.open(newline="") as handle:
        for line_no, row in enumerate(csv.DictReader(handle), start=2):
            try:
                results.latency.append(LatencyObservation(
                    participant_id=row["participant_id"],
                    city=row["city"],
                    province=row["province"],
                    access=AccessType(row["access"]),
                    target_id=row["target_id"],
                    target_kind=row["target_kind"],
                    distance_km=float(row["distance_km"]),
                    mean_rtt_ms=float(row["mean_rtt_ms"]),
                    rtt_cv=float(row["rtt_cv"]),
                    hop_count=int(row["hop_count"]),
                    hop_shares=_decode_shares(row["hop_shares"]),
                ))
            except (KeyError, ValueError) as exc:
                raise MeasurementError(
                    f"{latency_path}:{line_no}: {exc}") from exc
    with throughput_path.open(newline="") as handle:
        for line_no, row in enumerate(csv.DictReader(handle), start=2):
            try:
                results.throughput.append(ThroughputObservation(
                    participant_id=row["participant_id"],
                    access=AccessType(row["access"]),
                    result=IperfResult(
                        target_label=row["target_label"],
                        distance_km=float(row["distance_km"]),
                        downlink_mbps=float(row["downlink_mbps"]),
                        uplink_mbps=float(row["uplink_mbps"]),
                        rtt_ms=float(row["rtt_ms"]),
                    ),
                ))
            except (KeyError, ValueError) as exc:
                raise MeasurementError(
                    f"{throughput_path}:{line_no}: {exc}") from exc
    return results
