"""The crowd-sourced measurement campaign (§2.1.1).

Reproduces the experiment design: participants across Chinese cities run
the speed-testing app on WiFi/LTE/5G (59%/34%/7% of tests), pinging a VM
on each nearby edge site and every cloud region 30 times, recording the
traceroute when visible.  A subset of participants runs 15-second iperf3
tests against 20 edge VMs for the throughput study.

One deliberate reduction: each participant pings the ``edge_targets_per_user``
geographically nearest edge sites instead of all >500 — sites hundreds of
kilometres away can never be the user's nearest or 3rd-nearest edge, so
the analyses of §3.1 are unchanged while the campaign stays laptop-sized.

The paper also notes almost all 5G tests came from Beijing (limited 5G
coverage in 2020) — the recruiter reproduces that bias because it is what
makes Figure 2(a)'s 5G nearest-cloud gap small.

Unlike workload generation, the campaign is *not* dispatched to the
process pool (:mod:`repro.parallel`): the batch engine already probes a
full paper-scale campaign in well under a second, so per-city route
blocks would pay more in worker start-up and result pickling than they
save.  Repeat invocations skip the campaign entirely instead — its
:class:`CampaignResults` are memoised by the persistent artifact cache
(:mod:`repro.cache`) alongside the generated workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

import dataclasses

from ..config import Scenario
from ..errors import MeasurementError
from ..faults.injection import (
    DEFAULT_RETRY_POLICY,
    FailedProbe,
    ProbeStats,
    RetryPolicy,
    degraded_throughput_factor,
)
from ..faults.schedule import FaultSchedule
from ..geo.coords import GeoPoint
from ..geo.regions import CHINA_CITIES, City, city
from ..netsim.access import AccessType, access_profile
from ..netsim.routing import TargetSiteSpec, UESpec, build_route
from ..platform.cluster import Platform
from .iperf import IperfResult, run_iperf_test
from .ping import PingResult, run_ping_tests

#: Access-technology shares of the paper's 385 test sessions.
ACCESS_SHARES = {
    AccessType.WIFI: 0.59,
    AccessType.LTE: 0.34,
    AccessType.FIVE_G: 0.07,
}

#: City where nearly all 2020-era 5G coverage lived.
FIVE_G_CITY = "Beijing"

#: Edge targets probed per participant (nearest-first).
DEFAULT_EDGE_TARGETS_PER_USER = 10


@dataclass(frozen=True)
class Participant:
    """One campaign volunteer."""

    participant_id: str
    city: str
    province: str
    location: GeoPoint
    access: AccessType


class LatencyObservation(NamedTuple):
    """The retained summary of one (participant, target) ping test.

    A NamedTuple: campaigns create thousands of these in the batch hot
    path, and they are pure records.
    """

    participant_id: str
    city: str
    province: str
    access: AccessType
    target_id: str
    target_kind: str            # "edge" or "cloud"
    distance_km: float
    mean_rtt_ms: float
    rtt_cv: float
    hop_count: int
    #: Per-hop share of end-to-end RTT; None entries are ICMP-hidden hops.
    hop_shares: tuple[float | None, ...]


@dataclass(frozen=True)
class ThroughputObservation:
    """One participant's iperf3 result against one edge VM."""

    participant_id: str
    access: AccessType
    result: IperfResult
    #: True when the test ran inside an access-degradation episode.
    degraded: bool = False


@dataclass
class CampaignResults:
    """Everything the §3.1/§3.2 analyses consume.

    Under fault injection the campaign also keeps the probes that never
    produced a usable observation (``failures``) and the campaign-wide
    loss/retry ledger (``probe_stats``); both stay empty/None on the
    fault-free path.
    """

    latency: list[LatencyObservation] = field(default_factory=list)
    throughput: list[ThroughputObservation] = field(default_factory=list)
    failures: list[FailedProbe] = field(default_factory=list)
    probe_stats: ProbeStats | None = None

    def participants(self) -> set[str]:
        return ({obs.participant_id for obs in self.latency}
                | {obs.participant_id for obs in self.throughput})


class CrowdCampaign:
    """Orchestrates the crowd-sourced latency and throughput campaigns."""

    def __init__(self, scenario: Scenario, edge_platform: Platform,
                 cloud_platform: Platform,
                 edge_targets_per_user: int = DEFAULT_EDGE_TARGETS_PER_USER,
                 faults: FaultSchedule | None = None,
                 retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
                 journal=None) -> None:
        if not edge_platform.sites:
            raise MeasurementError("edge platform has no sites")
        if not cloud_platform.sites:
            raise MeasurementError("cloud platform has no sites")
        self._scenario = scenario
        self._edge = edge_platform
        self._cloud = cloud_platform
        self._edge_targets_per_user = edge_targets_per_user
        self._faults = faults
        self._retry = retry_policy
        self._random = scenario.random.child("campaign")
        #: Optional :class:`repro.obs.journal.RunJournal` for probe ledgers.
        self.journal = journal

    # ---- recruitment ----------------------------------------------------

    def recruit(self) -> list[Participant]:
        """Draw the participant panel (cities, access types, locations)."""
        rng = self._random.stream("recruit")
        count = self._scenario.participant_count
        city_pool = self._campaign_cities(rng)
        access_types = list(ACCESS_SHARES)
        access_probs = np.array([ACCESS_SHARES[a] for a in access_types])
        access_probs = access_probs / access_probs.sum()

        participants = []
        for index in range(count):
            access = access_types[int(rng.choice(len(access_types),
                                                 p=access_probs))]
            if access is AccessType.FIVE_G and rng.random() < 0.9:
                home: City = city(FIVE_G_CITY)
            else:
                home = city_pool[int(rng.integers(0, len(city_pool)))]
            location = home.location.jitter(
                float(rng.uniform(-0.15, 0.15)),
                float(rng.uniform(-0.15, 0.15)),
            )
            participants.append(Participant(
                participant_id=f"user-{index:03d}",
                city=home.name,
                province=home.province,
                location=location,
                access=access,
            ))
        if self.journal is not None:
            self.journal.emit("recruited", participants=len(participants),
                              cities=len({p.city for p in participants}))
        return participants

    def _campaign_cities(self, rng: np.random.Generator) -> list[City]:
        pops = np.array([c.population_m for c in CHINA_CITIES])
        probs = pops / pops.sum()
        count = min(self._scenario.city_count, len(CHINA_CITIES))
        idx = rng.choice(len(CHINA_CITIES), size=count, replace=False, p=probs)
        return [CHINA_CITIES[i] for i in idx]

    # ---- latency campaign ------------------------------------------------

    def run_latency(self, participants: list[Participant] | None = None,
                    ) -> CampaignResults:
        """Run the ping/traceroute campaign; returns all observations.

        Every (participant, target) route of the whole campaign is built
        first, then a single vectorised
        :func:`~repro.measurement.ping.run_ping_tests` pass draws all
        pings and traceroutes at once.

        With a :class:`~repro.faults.schedule.FaultSchedule` attached,
        each probe gets a scheduled time on the trace horizon: a probe
        whose target site is down (or whose every ping is lost to a
        degradation episode) times out and is retried with exponential
        backoff; probes that exhaust their retries are recorded in
        ``results.failures`` instead of producing an observation.
        """
        if participants is None:
            participants = self.recruit()
        rng = self._random.stream("latency")
        probe_sets = [(p, *self._participant_routes(p, rng))
                      for p in participants]
        if self._faults is not None:
            return self._run_latency_with_faults(probe_sets, rng)
        all_routes = [route for _, _, routes in probe_sets
                      for route in routes]
        pings = run_ping_tests(all_routes, self._scenario.pings_per_target,
                               rng)
        results = CampaignResults()
        cursor = 0
        for participant, targets, routes in probe_sets:
            chunk = pings[cursor:cursor + len(routes)]
            cursor += len(routes)
            results.latency.extend(
                self._observations(participant, targets, routes, chunk))
        return results

    def _probe_loss_and_extra(self, faults: FaultSchedule,
                              participant: Participant, target_id: str,
                              minute: float) -> tuple[float, float]:
        """Per-attempt (loss probability, extra latency) for one probe."""
        if faults.site_down(target_id, minute):
            return 1.0, 0.0
        episode = faults.degradation_at(participant.city, minute)
        if episode is not None:
            return episode.loss_probability, episode.extra_latency_ms
        return 0.0, 0.0

    def _run_latency_with_faults(self, probe_sets: list, rng) -> CampaignResults:
        """The latency campaign under fault weather, with bounded retries.

        Attempt 0 probes every route in one vectorised pass; each later
        round re-probes only the timed-out routes at their backed-off
        times.  All fault-related randomness (probe times, ping loss)
        comes from the ``"fault-injection"`` stream so the route/latency
        draws stay on the same stream as the fault-free engine.
        """
        faults, policy = self._faults, self._retry
        routes, meta = [], []
        for participant, targets, proutes in probe_sets:
            for (target_id, kind, _), route in zip(targets, proutes):
                routes.append(route)
                meta.append((participant, target_id, kind))
        repetitions = self._scenario.pings_per_target
        frng = self._random.stream("fault-injection")
        base_times = frng.uniform(0.0, faults.horizon_minutes,
                                  size=len(routes))
        stats = ProbeStats(probes=len(routes))
        final: list[PingResult | None] = [None] * len(routes)
        first_failed = [False] * len(routes)
        results = CampaignResults(probe_stats=stats)
        pending = list(range(len(routes)))
        attempt = 0
        while pending and attempt <= policy.max_retries:
            delay = policy.delay_minutes(attempt)
            loss = np.empty(len(pending))
            extra = np.empty(len(pending))
            for j, i in enumerate(pending):
                participant, target_id, _ = meta[i]
                loss[j], extra[j] = self._probe_loss_and_extra(
                    faults, participant, target_id, base_times[i] + delay)
            stats.attempts += len(pending)
            if attempt:
                stats.retries += len(pending)
            chunk = run_ping_tests([routes[i] for i in pending], repetitions,
                                   rng, loss_probability=loss,
                                   extra_latency_ms=extra, loss_rng=frng)
            still_pending = []
            for i, result in zip(pending, chunk):
                stats.pings_sent += result.sent
                stats.pings_lost += result.lost
                if result.failed:
                    if attempt == 0:
                        first_failed[i] = True
                        stats.timed_out += 1
                    still_pending.append(i)
                else:
                    final[i] = result
                    if first_failed[i]:
                        stats.recovered += 1
            pending = still_pending
            attempt += 1
        for i in pending:
            participant, target_id, kind = meta[i]
            stats.unreachable += 1
            results.failures.append(FailedProbe(
                participant_id=participant.participant_id,
                target_id=target_id,
                target_kind=kind,
                probe="ping",
                attempts=policy.max_retries + 1,
                reason="all pings lost after retries",
            ))
        if self.journal is not None:
            self.journal.emit("probe_stats", probe="ping",
                              **dataclasses.asdict(stats))
        cursor = 0
        for participant, targets, proutes in probe_sets:
            chunk = final[cursor:cursor + len(proutes)]
            cursor += len(proutes)
            reachable = [(target, route, ping)
                         for target, route, ping in zip(targets, proutes,
                                                        chunk)
                         if ping is not None]
            if reachable:
                kept_targets, kept_routes, kept_pings = zip(*reachable)
                results.latency.extend(self._observations(
                    participant, list(kept_targets), list(kept_routes),
                    list(kept_pings)))
        return results

    def _participant_routes(self, participant: Participant,
                            rng: np.random.Generator,
                            ) -> tuple[list[tuple[str, str, GeoPoint]],
                                       list]:
        ue = UESpec(label=participant.participant_id,
                    location=participant.location,
                    access=participant.access)
        targets: list[tuple[str, str, GeoPoint]] = []
        for site in self._edge.nearest_sites(participant.location,
                                             self._edge_targets_per_user):
            targets.append((site.site_id, "edge", site.location))
        for site in self._cloud.sites:
            targets.append((site.site_id, "cloud", site.location))
        routes = [
            build_route(
                ue,
                TargetSiteSpec(label=target_id, location=location,
                               is_edge=(kind == "edge")),
                rng,
            )
            for target_id, kind, location in targets
        ]
        return targets, routes

    @staticmethod
    def _observations(participant: Participant,
                      targets: list[tuple[str, str, GeoPoint]],
                      routes: list, pings: list,
                      ) -> list[LatencyObservation]:
        return [
            LatencyObservation(
                participant_id=participant.participant_id,
                city=participant.city,
                province=participant.province,
                access=participant.access,
                target_id=target_id,
                target_kind=kind,
                distance_km=route.distance_km,
                mean_rtt_ms=ping.mean_ms,
                rtt_cv=ping.cv,
                hop_count=ping.hop_count,
                hop_shares=ping.traceroute.shares,
            )
            for (target_id, kind, _), route, ping in zip(targets, routes,
                                                         pings)
        ]

    # ---- throughput campaign ----------------------------------------------

    def run_throughput(self, participants: list[Participant] | None = None,
                       ) -> CampaignResults:
        """Run the iperf3 campaign: a participant subset x 20 edge VMs.

        Wired access joins the mix here (the paper's Figure 5 includes
        wired tests): a third of the throughput volunteers plug in.
        """
        if participants is None:
            participants = self.recruit()
        rng = self._random.stream("throughput")
        testers = self._select_testers(participants)
        # Spread the 20 test VMs across distinct cities, as the paper did.
        vm_sites = self._spread_sites(self._scenario.throughput_edge_vms, rng)

        faults, policy = self._faults, self._retry
        frng = (self._random.stream("fault-injection-iperf")
                if faults is not None else None)
        results = CampaignResults()
        for index, participant in enumerate(testers):
            access = participant.access
            if index % 3 == 0:
                access = AccessType.WIRED
            ue = UESpec(label=participant.participant_id,
                        location=participant.location, access=access)
            profile = access_profile(access)
            for site in vm_sites:
                route = build_route(
                    ue,
                    TargetSiteSpec(label=site.site_id,
                                   location=site.location, is_edge=True),
                    rng,
                )
                degraded = False
                if faults is not None:
                    # Find the first backed-off attempt when the target
                    # site is up; a site that never comes back within the
                    # retry budget aborts the iperf test.
                    test_minute = float(frng.uniform(0.0,
                                                     faults.horizon_minutes))
                    for attempt in range(policy.max_retries + 1):
                        minute = test_minute + policy.delay_minutes(attempt)
                        if not faults.site_down(site.site_id, minute):
                            break
                    else:
                        results.failures.append(FailedProbe(
                            participant_id=participant.participant_id,
                            target_id=site.site_id,
                            target_kind="edge",
                            probe="iperf",
                            attempts=policy.max_retries + 1,
                            reason="target site down through every retry",
                        ))
                        continue
                    episode = faults.degradation_at(participant.city, minute)
                    degraded = episode is not None
                result = run_iperf_test(
                    route, profile,
                    self._scenario.iperf_duration_seconds, rng,
                )
                if degraded:
                    factor = degraded_throughput_factor(
                        episode.loss_probability)
                    result = dataclasses.replace(
                        result,
                        downlink_mbps=result.downlink_mbps * factor,
                        uplink_mbps=result.uplink_mbps * factor,
                        rtt_ms=result.rtt_ms + episode.extra_latency_ms,
                    )
                results.throughput.append(ThroughputObservation(
                    participant_id=participant.participant_id,
                    access=access,
                    result=result,
                    degraded=degraded,
                ))
        if self.journal is not None and faults is not None:
            self.journal.emit(
                "probe_stats", probe="iperf",
                probes=len(testers) * len(vm_sites),
                unreachable=sum(1 for f in results.failures
                                if f.probe == "iperf"),
                degraded=sum(1 for obs in results.throughput if obs.degraded),
            )
        return results

    def _select_testers(self, participants: list[Participant],
                        ) -> list[Participant]:
        """Pick the throughput volunteers, covering every access type.

        5G users are scarce (7% of the panel) but essential to Figure 5's
        high-capacity story, so they are taken first; the rest fill in
        panel order.
        """
        budget = self._scenario.throughput_participants
        five_g = [p for p in participants
                  if p.access is AccessType.FIVE_G][: max(2, budget // 5)]
        others = [p for p in participants if p not in five_g]
        return (five_g + others)[:budget]

    def _spread_sites(self, count: int, rng: np.random.Generator):
        """Pick ``count`` edge sites in distinct cities."""
        seen_cities: set[str] = set()
        chosen = []
        order = rng.permutation(len(self._edge.sites))
        for i in order:
            site = self._edge.sites[int(i)]
            if site.city in seen_cities:
                continue
            seen_cities.add(site.city)
            chosen.append(site)
            if len(chosen) == count:
                break
        if len(chosen) < count:
            raise MeasurementError(
                f"only {len(chosen)} distinct-city sites available, "
                f"need {count}"
            )
        return chosen

    # ---- full campaign -----------------------------------------------------

    def run(self) -> CampaignResults:
        """Recruit once and run both campaigns on the same panel."""
        participants = self.recruit()
        results = self.run_latency(participants)
        throughput = self.run_throughput(participants)
        results.throughput = throughput.throughput
        results.failures.extend(throughput.failures)
        return results
