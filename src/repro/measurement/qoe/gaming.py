"""Cloud-gaming QoE testbed (§3.3.1): a GamingAnywhere-style pipeline.

The *response delay* — the interval between a touch event and the
resulting frame appearing on screen — composes these stages::

    input capture -> uplink (command) -> server game logic + rendering
    -> encode -> downlink (frame) -> decode -> display (vsync wait)

Stage parameters are calibrated to the paper's breakdown: ~70 ms server
side (game logic + render + encode), <10 ms hardware decode, 800x600
frames whose transmission takes <10 ms, so a nearby edge VM lands around
91 ms and a 2000 km cloud VM around 145 ms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import MeasurementError
from ...units import transmission_delay_ms
from .devices import Device


@dataclass(frozen=True)
class Game:
    """One tested game with its server-side execution profile."""

    name: str
    #: Mean server-side delay: game-logic tick + render + encode (ms).
    server_ms: float
    #: Std-dev of the server-side delay (ms) — Pingus's complex logic
    #: shows up as extra jitter in Figure 6(c).
    server_sd_ms: float


#: The three GamingAnywhere-adapted desktop games of the paper.
FLARE = Game(name="Flare", server_ms=63.0, server_sd_ms=5.0)
BATTLE_TANKS = Game(name="Battle Tanks", server_ms=66.0, server_sd_ms=6.0)
PINGUS = Game(name="Pingus", server_ms=73.0, server_sd_ms=10.0)
GAMES: tuple[Game, ...] = (BATTLE_TANKS, PINGUS, FLARE)

#: Encoded 800x600 game frame at GamingAnywhere's default bitrate.
FRAME_BYTES = 18_000.0
#: Upstream command packets are tiny.
COMMAND_BYTES = 200.0

#: Server execution modifiers the paper's breakdown explores.
GPU_RENDER_SAVING_MS = 15.0      # "enabling GPU rendering ... 10ms-20ms"
EXTRA_CORE_SAVING_MS = 0.0       # "increasing CPU cores won't help"


@dataclass(frozen=True)
class GamingTrial:
    """One response-delay measurement with its stage breakdown."""

    response_delay_ms: float
    input_ms: float
    uplink_ms: float
    server_ms: float
    downlink_ms: float
    decode_ms: float
    display_ms: float


@dataclass(frozen=True)
class GamingConfig:
    """A testbed configuration: device, game, server VM, link."""

    device: Device
    game: Game
    rtt_ms: float
    downlink_mbps: float
    uplink_mbps: float
    server_cores: int = 8
    gpu_rendering: bool = False

    def __post_init__(self) -> None:
        if self.rtt_ms <= 0:
            raise MeasurementError(f"RTT must be positive, got {self.rtt_ms}")
        if self.downlink_mbps <= 0 or self.uplink_mbps <= 0:
            raise MeasurementError("link rates must be positive")
        if self.server_cores <= 0:
            raise MeasurementError("server needs at least one core")


class CloudGamingSession:
    """Samples response-delay trials for one configuration."""

    def __init__(self, config: GamingConfig, rng: np.random.Generator) -> None:
        self._config = config
        self._rng = rng

    def _server_delay_ms(self) -> float:
        cfg = self._config
        mean = cfg.game.server_ms
        if cfg.gpu_rendering:
            mean -= GPU_RENDER_SAVING_MS
        # Game logic is effectively single-threaded (§3.3.1: all cores but
        # one idle), so extra cores buy nothing beyond the first.
        mean -= EXTRA_CORE_SAVING_MS * max(0, cfg.server_cores - 1)
        return max(5.0, float(self._rng.normal(mean, cfg.game.server_sd_ms)))

    def sample_trial(self) -> GamingTrial:
        """One touch-to-photon measurement."""
        cfg = self._config
        rng = self._rng
        one_way = cfg.rtt_ms / 2.0

        input_ms = max(0.5, float(rng.normal(cfg.device.input_ms, 1.0)))
        uplink = one_way + transmission_delay_ms(COMMAND_BYTES, cfg.uplink_mbps)
        uplink = max(0.3, float(rng.normal(uplink, 0.08 * uplink)))
        server = self._server_delay_ms()
        downlink = one_way + transmission_delay_ms(FRAME_BYTES, cfg.downlink_mbps)
        downlink = max(0.3, float(rng.normal(downlink, 0.10 * downlink)))
        decode = max(0.5, float(rng.normal(cfg.device.decode_ms,
                                           cfg.device.decode_sd_ms)))
        display = float(rng.uniform(0.0, 2.0 * cfg.device.display_wait_ms))

        total = input_ms + uplink + server + downlink + decode + display
        return GamingTrial(
            response_delay_ms=total,
            input_ms=input_ms,
            uplink_ms=uplink,
            server_ms=server,
            downlink_ms=downlink,
            decode_ms=decode,
            display_ms=display,
        )

    def run(self, trials: int) -> list[GamingTrial]:
        """Collect ``trials`` measurements (the paper records 50).

        Raises:
            MeasurementError: if ``trials`` is not positive.
        """
        if trials <= 0:
            raise MeasurementError(f"trials must be positive, got {trials}")
        return [self.sample_trial() for _ in range(trials)]


def mean_breakdown(trials: list[GamingTrial]) -> dict[str, float]:
    """Average each stage across trials; keys match the trial fields."""
    if not trials:
        raise MeasurementError("cannot break down an empty trial list")
    stages = ("input_ms", "uplink_ms", "server_ms", "downlink_ms",
              "decode_ms", "display_ms", "response_delay_ms")
    return {
        stage: float(np.mean([getattr(t, stage) for t in trials]))
        for stage in stages
    }
