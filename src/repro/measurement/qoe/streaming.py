"""Live-streaming QoE testbed (§3.3.2): an RTMP-style pipeline.

The *streaming delay* — real-world event to display on the receiver —
composes::

    camera capture + ISP -> sender encode -> uplink (RTMP publish)
    -> server relay [-> transcode] -> downlink (RTMP play)
    -> receiver decode -> player render [-> jitter buffer]

Stage parameters follow the paper's breakdown: capture + sender-side
processing ~140 ms, encode 25 ms / decode 10 ms, network ~50 ms for the
nearest edge (RTMP's TCP chunking makes the effective network stage a
multiple of the RTT, which is why edges only shave ~24% off even for the
farthest cloud), MPlayer rendering ~90 ms slower than ffplay, transcoding
+~400 ms, and a 2 MB jitter buffer pushing the total toward 2 s.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ...errors import MeasurementError
from ...units import transmission_delay_ms


class Resolution(enum.Enum):
    """Streamed video resolutions used in Figure 7."""

    P720 = "720p"
    P1080 = "1080p"


#: Encoded bitrates (Mbps): "the encoded streaming bitrate is around 5Mbps"
#: for 1080p.
BITRATE_MBPS = {Resolution.P720: 2.5, Resolution.P1080: 5.0}

#: Receiver-side rendering cost per resolution (player pipeline).
RENDER_MS = {Resolution.P720: 25.0, Resolution.P1080: 45.0}


class Player(enum.Enum):
    """Receiver players: "the software matters" (§3.3.2 breakdown)."""

    MPLAYER = "mplayer"
    FFPLAY = "ffplay"


#: MPlayer buffers ~90 ms more than ffplay before first display.
PLAYER_EXTRA_MS = {Player.MPLAYER: 90.0, Player.FFPLAY: 0.0}

#: Camera capture + image signal processor + Android stack (~140 ms).
CAPTURE_MS = 140.0
CAPTURE_SD_MS = 12.0
#: Sender hardware encode / receiver decode.
ENCODE_MS = 25.0
DECODE_MS = 10.0
#: RTMP server relay (pull + remux + push), excluding transcode.
RELAY_MS = 18.0
#: Server transcode adds both compute and segment-wait time (~400 ms).
TRANSCODE_MS = 390.0
TRANSCODE_SD_MS = 45.0
#: RTMP-over-TCP chunk acknowledgement amplifies the effective network
#: stage beyond one propagation delay.
RTMP_RTT_FACTOR = 3.0
#: RTMP flushes ~0.1 s of frames per chunk burst.
CHUNK_SECONDS = 0.1


@dataclass(frozen=True)
class StreamingConfig:
    """One testbed configuration for the streaming experiment."""

    rtt_ms: float
    uplink_mbps: float
    downlink_mbps: float
    resolution: Resolution = Resolution.P1080
    transcode: bool = False
    player: Player = Player.MPLAYER
    #: Jitter-buffer size in MB at the receiver; 0 disables it.
    jitter_buffer_mb: float = 0.0

    def __post_init__(self) -> None:
        if self.rtt_ms <= 0:
            raise MeasurementError(f"RTT must be positive, got {self.rtt_ms}")
        if self.uplink_mbps <= 0 or self.downlink_mbps <= 0:
            raise MeasurementError("link rates must be positive")
        if self.jitter_buffer_mb < 0:
            raise MeasurementError("jitter buffer size cannot be negative")


@dataclass(frozen=True)
class StreamingTrial:
    """One streaming-delay measurement with its stage breakdown."""

    streaming_delay_ms: float
    capture_ms: float
    encode_ms: float
    network_ms: float
    server_ms: float
    decode_ms: float
    render_ms: float
    buffer_ms: float


class LiveStreamingSession:
    """Samples streaming-delay trials for one configuration."""

    def __init__(self, config: StreamingConfig,
                 rng: np.random.Generator) -> None:
        self._config = config
        self._rng = rng

    def sample_trial(self) -> StreamingTrial:
        """One clock-difference measurement (§3.3.2 methodology)."""
        cfg = self._config
        rng = self._rng
        bitrate = BITRATE_MBPS[cfg.resolution]
        chunk_bytes = bitrate * 1e6 / 8.0 * CHUNK_SECONDS

        capture = max(60.0, float(rng.normal(CAPTURE_MS, CAPTURE_SD_MS)))
        encode = max(5.0, float(rng.normal(ENCODE_MS, 2.5)))
        network = (RTMP_RTT_FACTOR * cfg.rtt_ms
                   + transmission_delay_ms(chunk_bytes, cfg.uplink_mbps)
                   + transmission_delay_ms(chunk_bytes, cfg.downlink_mbps))
        network = max(2.0, float(rng.normal(network, 0.10 * network)))
        server = max(4.0, float(rng.normal(RELAY_MS, 3.0)))
        if cfg.transcode:
            server += max(100.0, float(rng.normal(TRANSCODE_MS,
                                                  TRANSCODE_SD_MS)))
        decode = max(2.0, float(rng.normal(DECODE_MS, 1.5)))
        render = RENDER_MS[cfg.resolution] + PLAYER_EXTRA_MS[cfg.player]
        render = max(5.0, float(rng.normal(render, 0.08 * render)))
        buffer_ms = 0.0
        if cfg.jitter_buffer_mb > 0:
            # The buffer must fill before playback starts; real players
            # begin draining around 60% occupancy.
            fill_seconds = cfg.jitter_buffer_mb * 8.0 / bitrate * 0.6
            buffer_ms = float(rng.normal(fill_seconds * 1000.0,
                                         fill_seconds * 60.0))
            buffer_ms = max(0.0, buffer_ms)

        total = (capture + encode + network + server + decode + render
                 + buffer_ms)
        return StreamingTrial(
            streaming_delay_ms=total,
            capture_ms=capture,
            encode_ms=encode,
            network_ms=network,
            server_ms=server,
            decode_ms=decode,
            render_ms=render,
            buffer_ms=buffer_ms,
        )

    def run(self, trials: int) -> list[StreamingTrial]:
        """Collect ``trials`` measurements (the paper records 50).

        Raises:
            MeasurementError: if ``trials`` is not positive.
        """
        if trials <= 0:
            raise MeasurementError(f"trials must be positive, got {trials}")
        return [self.sample_trial() for _ in range(trials)]


def mean_breakdown(trials: list[StreamingTrial]) -> dict[str, float]:
    """Average each stage across trials; keys match the trial fields."""
    if not trials:
        raise MeasurementError("cannot break down an empty trial list")
    stages = ("capture_ms", "encode_ms", "network_ms", "server_ms",
              "decode_ms", "render_ms", "buffer_ms", "streaming_delay_ms")
    return {
        stage: float(np.mean([getattr(t, stage) for t in trials]))
        for stage in stages
    }
