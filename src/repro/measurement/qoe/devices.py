"""User-equipment device models for the QoE testbeds (§2.1.1).

The paper used one laptop and three smartphones with Qualcomm chipsets
(required by GamingAnywhere's hardware decoder path).  Per-device numbers
follow §3.3.1: hardware-accelerated decode is under 10 ms at the default
800x600 gaming resolution on every tested device, with the high-end
Note 10+ slightly faster; all screens refresh at 60 Hz.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import MeasurementError


@dataclass(frozen=True)
class Device:
    """One UE with its decode/display timing parameters."""

    name: str
    chipset: str
    #: Mean hardware video decode latency at 800x600 (ms).
    decode_ms: float
    #: Std-dev of the decode latency (ms).
    decode_sd_ms: float
    #: Display refresh rate (Hz); a frame waits on average half a period.
    refresh_hz: float
    #: Touch/input sampling latency (ms).
    input_ms: float

    def __post_init__(self) -> None:
        if self.decode_ms <= 0 or self.refresh_hz <= 0 or self.input_ms < 0:
            raise MeasurementError(f"bad device timing parameters: {self}")

    @property
    def display_wait_ms(self) -> float:
        """Mean wait for the next vsync slot."""
        return 0.5 * 1000.0 / self.refresh_hz


SAMSUNG_NOTE10 = Device(
    name="Samsung Note 10+", chipset="Snapdragon 855",
    decode_ms=4.5, decode_sd_ms=0.8, refresh_hz=60.0, input_ms=3.0,
)
REDMI_NOTE8 = Device(
    name="Xiaomi Redmi Note 8", chipset="Snapdragon 665",
    decode_ms=7.0, decode_sd_ms=1.2, refresh_hz=60.0, input_ms=4.0,
)
NEXUS6 = Device(
    name="Nexus 6", chipset="Snapdragon 805",
    decode_ms=8.5, decode_sd_ms=1.5, refresh_hz=60.0, input_ms=5.0,
)
MACBOOK_PRO = Device(
    name="MacBook Pro 16 (2019)", chipset="Intel + AMD GPU",
    decode_ms=4.0, decode_sd_ms=0.6, refresh_hz=60.0, input_ms=2.5,
)

GAMING_DEVICES: tuple[Device, ...] = (SAMSUNG_NOTE10, REDMI_NOTE8, NEXUS6)
ALL_DEVICES: tuple[Device, ...] = GAMING_DEVICES + (MACBOOK_PRO,)


def device_by_name(name: str) -> Device:
    """Look up a testbed device by its display name.

    Raises:
        MeasurementError: for unknown device names.
    """
    for dev in ALL_DEVICES:
        if dev.name == name:
            return dev
    raise MeasurementError(f"unknown device {name!r}")
