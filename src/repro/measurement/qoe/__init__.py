"""QoE testbeds: devices, cloud gaming, live streaming, the 4-VM testbed."""

from .devices import (
    ALL_DEVICES,
    GAMING_DEVICES,
    MACBOOK_PRO,
    NEXUS6,
    REDMI_NOTE8,
    SAMSUNG_NOTE10,
    Device,
    device_by_name,
)
from .gaming import (
    BATTLE_TANKS,
    FLARE,
    GAMES,
    PINGUS,
    CloudGamingSession,
    Game,
    GamingConfig,
    GamingTrial,
)
from .gaming import mean_breakdown as gaming_mean_breakdown
from .streaming import (
    BITRATE_MBPS,
    LiveStreamingSession,
    Player,
    Resolution,
    StreamingConfig,
    StreamingTrial,
)
from .streaming import mean_breakdown as streaming_mean_breakdown
from .testbed import PAPER_TABLE6_RTT_MS, QoETestbed, TestbedVM, VM_PLACEMENTS

__all__ = [
    "ALL_DEVICES",
    "BATTLE_TANKS",
    "BITRATE_MBPS",
    "CloudGamingSession",
    "Device",
    "FLARE",
    "GAMES",
    "GAMING_DEVICES",
    "Game",
    "GamingConfig",
    "GamingTrial",
    "LiveStreamingSession",
    "MACBOOK_PRO",
    "NEXUS6",
    "PAPER_TABLE6_RTT_MS",
    "PINGUS",
    "Player",
    "QoETestbed",
    "REDMI_NOTE8",
    "Resolution",
    "SAMSUNG_NOTE10",
    "StreamingConfig",
    "StreamingTrial",
    "TestbedVM",
    "VM_PLACEMENTS",
    "device_by_name",
    "gaming_mean_breakdown",
    "streaming_mean_breakdown",
]
