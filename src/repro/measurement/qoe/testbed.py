"""The controlled QoE testbed of §3.3: one edge VM, three cloud VMs.

The paper placed the gaming/streaming backend on the nearest edge VM and
on three cloud VMs 670 / 1300 / 2000 km away, then measured from four
spots in one city over WiFi/LTE/5G.  Table 6 records the resulting RTTs.

Here the four VMs are synthesised at the same distances from the
experiment city and their RTTs come out of :mod:`repro.netsim`, so the
QoE results are fully endogenous to the simulation (the Table 6 bench
then compares the simulated RTTs against the paper's).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from ...errors import MeasurementError
from ...geo.coords import GeoPoint
from ...geo.regions import city
from ...netsim.access import AccessType, access_profile
from ...netsim.latency import LatencyModel
from ...netsim.path import HopKind
from ...netsim.routing import TargetSiteSpec, UESpec, build_route

#: The four backend VMs: (label, distance from the UE in km, is_edge).
VM_PLACEMENTS: tuple[tuple[str, float, bool], ...] = (
    ("Edge", 25.0, True),
    ("Cloud-1", 670.0, False),
    ("Cloud-2", 1300.0, False),
    ("Cloud-3", 2000.0, False),
)

#: Paper's Table 6 (ms), for reference/benchmark comparison.
PAPER_TABLE6_RTT_MS = {
    AccessType.WIFI: {"Edge": 11.4, "Cloud-1": 16.6, "Cloud-2": 40.9,
                      "Cloud-3": 55.1},
    AccessType.LTE: {"Edge": 22.2, "Cloud-1": 25.6, "Cloud-2": 54.6,
                     "Cloud-3": 63.2},
    AccessType.FIVE_G: {"Edge": 18.1, "Cloud-1": 22.8, "Cloud-2": 49.5,
                        "Cloud-3": 60.8},
}

EXPERIMENT_CITY = "Beijing"


@dataclass(frozen=True)
class TestbedVM:
    """One backend VM of the QoE experiment."""

    label: str
    distance_km: float
    is_edge: bool
    location: GeoPoint


def _displace(origin: GeoPoint, distance_km: float,
              bearing_deg: float) -> GeoPoint:
    """A point roughly ``distance_km`` from ``origin`` along ``bearing``."""
    km_per_deg_lat = 111.0
    km_per_deg_lon = 111.0 * math.cos(math.radians(origin.lat))
    d_lat = distance_km * math.cos(math.radians(bearing_deg)) / km_per_deg_lat
    d_lon = distance_km * math.sin(math.radians(bearing_deg)) / km_per_deg_lon
    return origin.jitter(d_lat, d_lon)


class QoETestbed:
    """Builds the four-VM testbed and measures RTTs and link capacities."""

    def __init__(self, rng: np.random.Generator,
                 experiment_city: str = EXPERIMENT_CITY) -> None:
        self._rng = rng
        self._origin = city(experiment_city).location
        bearing = 200.0  # south-west, into mainland China
        self.vms: tuple[TestbedVM, ...] = tuple(
            TestbedVM(
                label=label,
                distance_km=distance,
                is_edge=is_edge,
                location=_displace(self._origin, distance, bearing),
            )
            for label, distance, is_edge in VM_PLACEMENTS
        )

    def vm(self, label: str) -> TestbedVM:
        for vm in self.vms:
            if vm.label == label:
                return vm
        raise MeasurementError(f"unknown testbed VM {label!r}")

    #: Commercial cloud VMs ride premium carrier paths with much lower
    #: inflation than the public backbone — without this, Table 6's small
    #: cloud RTTs (16.6 ms at 670 km) are unreachable.
    PREMIUM_BACKBONE_FACTOR = 0.6

    def measure_rtt_ms(self, access: AccessType, vm_label: str,
                       pings: int = 30) -> float:
        """Mean RTT from the experiment spot to one backend VM."""
        vm = self.vm(vm_label)
        ue = UESpec(label="qoe-ue", location=self._origin, access=access)
        route = build_route(
            ue,
            TargetSiteSpec(label=vm.label, location=vm.location,
                           is_edge=vm.is_edge),
            self._rng,
        )
        if not vm.is_edge:
            hops = tuple(
                h.replace(mean_rtt_ms=h.mean_rtt_ms
                          * self.PREMIUM_BACKBONE_FACTOR)
                if h.kind is HopKind.BACKBONE else h
                for h in route.hops
            )
            route = replace(route, hops=hops)
        model = LatencyModel(self._rng)
        return float(model.sample_many(route, pings).mean())

    def rtt_table(self, pings: int = 30) -> dict[AccessType, dict[str, float]]:
        """The full simulated Table 6: access type x backend VM."""
        return {
            access: {vm.label: self.measure_rtt_ms(access, vm.label, pings)
                     for vm in self.vms}
            for access in (AccessType.WIFI, AccessType.LTE, AccessType.FIVE_G)
        }

    def link_capacities_mbps(self, access: AccessType) -> tuple[float, float]:
        """(downlink, uplink) capacities for the experiment location."""
        profile = access_profile(access)
        return (profile.sample_downlink_capacity_mbps(self._rng),
                profile.sample_uplink_capacity_mbps(self._rng))
