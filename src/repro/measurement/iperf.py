"""iperf3-style TCP throughput test runner (§2.1.1, §3.2).

Each test runs 15 seconds in each direction between a participant's UE
and an edge VM with a 1 Gbps port, as in the paper's campaign.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..netsim.access import AccessProfile
from ..netsim.path import Route
from ..netsim.throughput import ThroughputModel

#: The paper provisioned each throughput-test VM with 1 Gbps.
EDGE_VM_PORT_MBPS = 1000.0


@dataclass(frozen=True)
class IperfResult:
    """One bidirectional iperf3 test against one target VM."""

    target_label: str
    distance_km: float
    downlink_mbps: float
    uplink_mbps: float
    rtt_ms: float


def run_iperf_test(route: Route, access: AccessProfile,
                   duration_seconds: int,
                   rng: np.random.Generator,
                   vm_port_mbps: float = EDGE_VM_PORT_MBPS) -> IperfResult:
    """Run downlink + uplink TCP tests over ``route``.

    The effective last-mile capacity is additionally capped by the VM's
    port speed — §3.2 notes that an under-provisioned DC gateway would
    become the bottleneck.
    """
    model = ThroughputModel(rng)
    down_cap = min(access.sample_downlink_capacity_mbps(rng), vm_port_mbps)
    up_cap = min(access.sample_uplink_capacity_mbps(rng), vm_port_mbps)
    down = model.run_test(route, down_cap, duration_seconds)
    up = model.run_test(route, up_cap, duration_seconds)
    return IperfResult(
        target_label=route.target_label,
        distance_km=route.distance_km,
        downlink_mbps=down.mbps,
        uplink_mbps=up.mbps,
        rtt_ms=route.mean_rtt_ms,
    )
