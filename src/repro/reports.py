"""Text reports regenerating each of the paper's tables and figures.

Every function takes an :class:`~repro.study.EdgeStudy` and returns the
measured table/series as formatted text.  The pytest benchmarks own the
paper-vs-measured *checks*; these reports are the figure data itself,
exposed as a library/CLI feature so users can regenerate any figure on
their own scenario.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .core.balance import (
    app_balance_summary,
    find_unbalanced_app,
    machine_imbalance,
    site_imbalance,
)
from .core.cost_analysis import run_cost_study
from .core.deployment import PLATFORM_DEPLOYMENTS, density_of
from .core.latency_analysis import (
    cv_cdfs,
    hop_breakdown,
    hop_count_cdf,
    intersite_summary,
    rtt_cdfs,
)
from .core.prediction_analysis import run_prediction_study
from .core.qoe_analysis import GamingExperiment, StreamingExperiment
from .core.report import format_table, sketch_cdf
from .core.stats import pearson_correlation
from .core.throughput_analysis import all_series
from .core.workload_analysis import (
    app_vm_count_summary,
    category_breakdown,
    cpu_utilization_summary,
    sales_rate_summary,
    vm_size_summary,
)
from .billing.cloud import NetworkModel
from .netsim.access import AccessType
from .study import EdgeStudy

WIRELESS = (AccessType.WIFI, AccessType.LTE, AccessType.FIVE_G)


def table1(study: EdgeStudy) -> str:
    rows = [(r.platform, r.regions, r.coverage, density_of(r))
            for r in PLATFORM_DEPLOYMENTS]
    return format_table(
        ["platform", "regions", "coverage", "density /10^6 mi^2"], rows,
        title="Table 1 — deployment density")


def fig2a(study: EdgeStudy) -> str:
    rows = []
    for access in WIRELESS:
        cdfs = rtt_cdfs(study.per_user, access)
        for name, cdf in cdfs.items():
            rows.append((access.value, name, cdf.median, cdf.mean))
    return format_table(["access", "baseline", "median RTT (ms)",
                         "mean RTT (ms)"], rows,
                        title="Figure 2(a) — mean RTT per baseline")


def fig2b(study: EdgeStudy) -> str:
    rows = []
    for access in WIRELESS:
        cdfs = cv_cdfs(study.per_user, access)
        for name, cdf in cdfs.items():
            rows.append((access.value, name, cdf.median))
    return format_table(["access", "baseline", "median RTT CV"], rows,
                        title="Figure 2(b) — RTT jitter")


def table2(study: EdgeStudy) -> str:
    rows = []
    for access in WIRELESS:
        for target in ("nearest_edge", "nearest_cloud"):
            b = hop_breakdown(study.per_user, access, target)
            rows.append((
                access.value, target,
                "hidden" if b.hop1 is None else f"{b.hop1:.1%}",
                "hidden" if b.hop2 is None else f"{b.hop2:.1%}",
                "hidden" if b.hop3 is None else f"{b.hop3:.1%}",
                f"{b.first3_total:.1%}", f"{b.rest:.1%}",
            ))
    return format_table(["access", "target", "hop1", "hop2", "hop3",
                         "first 3", "rest"], rows,
                        title="Table 2 — per-hop latency shares")


def fig3(study: EdgeStudy) -> str:
    edge = hop_count_cdf(study.per_user, "nearest_edge")
    cloud = hop_count_cdf(study.per_user, "nearest_cloud")
    return "\n".join([
        "Figure 3 — hop counts",
        sketch_cdf(edge, label="nearest edge"),
        sketch_cdf(cloud, label="nearest cloud"),
    ])


def fig4(study: EdgeStudy) -> str:
    summary = intersite_summary(
        study.nep.platform, study.scenario.random.stream("report-fig4"))
    buckets = [(0, 500), (500, 1500), (1500, 2500), (2500, 4000)]
    rows = []
    for low, high in buckets:
        mask = (summary.distances_km >= low) & (summary.distances_km < high)
        if mask.any():
            rows.append((f"{low}-{high} km",
                         float(summary.rtts_ms[mask].mean()),
                         int(mask.sum())))
    rows.append(("sites within 5/10/20 ms",
                 f"{summary.mean_sites_within_5ms:.1f} / "
                 f"{summary.mean_sites_within_10ms:.1f} / "
                 f"{summary.mean_sites_within_20ms:.1f}", ""))
    return format_table(["distance band", "mean RTT (ms)", "pairs"], rows,
                        title="Figure 4 — inter-site RTT vs distance")


def fig5(study: EdgeStudy) -> str:
    rows = [(s.access.value, s.direction, s.mean_mbps, s.correlation,
             "significant" if s.distance_matters else
             "negligible" if s.capacity_limited else "weak")
            for s in all_series(study.throughput_results.throughput)]
    return format_table(["access", "direction", "mean Mbps",
                         "corr(distance)", "class"], rows,
                        title="Figure 5 — throughput vs distance")


def fig6(study: EdgeStudy) -> str:
    experiment = GamingExperiment(
        study.qoe_testbed, study.scenario.random.stream("report-fig6"),
        trials=30)
    rows = [(r.vm_label, r.access.value, r.mean_ms, r.p95_ms)
            for r in experiment.sweep_networks()]
    return format_table(["backend", "network", "mean delay (ms)",
                         "p95 (ms)"], rows,
                        title="Figure 6 — cloud-gaming response delay")


def fig7(study: EdgeStudy) -> str:
    experiment = StreamingExperiment(
        study.qoe_testbed, study.scenario.random.stream("report-fig7"),
        trials=30)
    rows = [(r.vm_label, r.access.value,
             "trans" if r.transcode else "plain", r.mean_ms)
            for r in experiment.sweep_networks()]
    return format_table(["backend", "network", "mode",
                         "streaming delay (ms)"], rows,
                        title="Figure 7 — live-streaming delay")


def fig8(study: EdgeStudy) -> str:
    rows = []
    for dataset in (study.nep.dataset, study.azure.dataset):
        s = vm_size_summary(dataset)
        rows.append((s.platform, s.median_cpu, s.median_memory_gb,
                     s.median_disk_gb, s.mean_disk_gb))
    return format_table(["platform", "median cores", "median mem GB",
                         "median disk GB", "mean disk GB"], rows,
                        title="Figure 8 — VM sizes")


def fig9(study: EdgeStudy) -> str:
    rows = []
    for dataset in (study.nep.dataset, study.azure.dataset):
        s = app_vm_count_summary(dataset)
        rows.append((s.platform, s.counts_cdf.median,
                     s.fraction_at_least_50, s.max_vms))
    return format_table(["platform", "median VMs/app", "share >=50 VMs",
                         "largest app"], rows,
                        title="Figure 9 — per-app VM counts")


def fig10(study: EdgeStudy) -> str:
    rows = []
    for dataset in (study.nep.dataset, study.azure.dataset):
        s = cpu_utilization_summary(dataset)
        rows.append((s.platform, s.fraction_mean_below_10pct,
                     s.median_cv, s.overall_mean_utilization))
    return format_table(["platform", "share <10% mean CPU", "median CV",
                         "overall mean util"], rows,
                        title="Figure 10 — CPU utilisation")


def fig11(study: EdgeStudy) -> str:
    dataset = study.nep.dataset
    by_province: dict[str, set] = {}
    for vm in dataset.vms.values():
        by_province.setdefault(vm.province, set()).add(vm.site_id)
    province = max(by_province, key=lambda p: len(by_province[p]))
    site_id = max(by_province[province],
                  key=lambda s: len(dataset.vms_on_site(s)))
    rng = study.scenario.random.stream("report-fig11")
    rows = []
    for label, view in (
        ("machines/cpu", machine_imbalance(dataset, site_id, "cpu")),
        ("machines/bw", machine_imbalance(dataset, site_id, "bw")),
        ("sites/cpu", site_imbalance(dataset, province, "cpu", rng=rng)),
        ("sites/bw", site_imbalance(dataset, province, "bw", rng=rng)),
    ):
        rows.append((label, len(view.unit_ids), view.max_gap))
    return format_table(["view", "units", "max/min gap"], rows,
                        title=f"Figure 11 — imbalance ({province})")


def fig12(study: EdgeStudy) -> str:
    dataset = study.nep.dataset
    sample = [v for v in dataset.vm_ids()
              if dataset.bw_series[v].mean() > 1.0][:100]
    # The figure needs several periods to show week-over-week swings; on
    # short (smoke) traces fall back to daily averages so the report
    # stays meaningful instead of printing all-zero weekly CVs.
    if dataset.trace_days >= 14:
        period_label, periods = "weekly", dataset.trace_days // 7
        points_per_period = 7 * dataset.bw_points_per_day
    else:
        period_label, periods = "daily", dataset.trace_days
        points_per_period = dataset.bw_points_per_day

    def period_means(vm_id: str) -> np.ndarray:
        series = dataset.bw_series[vm_id][: periods * points_per_period]
        return series.reshape(periods, points_per_period).mean(axis=1)

    def variability(vm_id: str) -> float:
        means = period_means(vm_id)
        return float(means.std() / means.mean()) if means.mean() else 0.0

    ranked = sorted(sample, key=variability, reverse=True)
    rows = []
    for i, vm_id in enumerate(ranked[:2] + ranked[-2:], start=1):
        means = period_means(vm_id)
        rows.append((f"VM-{i}", float(means.min()), float(means.max()),
                     variability(vm_id)))
    return format_table(
        ["VM", f"{period_label} min Mbps", f"{period_label} max Mbps",
         f"{period_label} CV"], rows,
        title=f"Figure 12 — {period_label} bandwidth of 4 VMs")


def fig13(study: EdgeStudy) -> str:
    rows = []
    for dataset in (study.nep.dataset, study.azure.dataset):
        s = app_balance_summary(dataset)
        rows.append((s.platform, s.app_count, s.gaps_cdf.median,
                     s.fraction_above_50x))
    app_id = find_unbalanced_app(study.nep.dataset, min_vms=8)
    return format_table(
        ["platform", "apps", "median gap", "share >50x"], rows,
        title=f"Figure 13 — cross-VM gap (showcase app: {app_id})")


def fig14(study: EdgeStudy) -> str:
    rows = []
    for dataset, stream in ((study.nep.dataset, "report-fig14-e"),
                            (study.azure.dataset, "report-fig14-c")):
        result = run_prediction_study(
            dataset, vm_sample=8,
            rng=study.scenario.random.stream(stream),
            lstm_epochs=10, lstm_sample=2)
        for model in ("holt-winters", "lstm"):
            for target in ("max", "mean"):
                rows.append((result.platform, model, target,
                             result.median_rmse(model, target)))
        rows.append((result.platform, "seasonality", "-",
                     result.mean_seasonality))
    return format_table(["platform", "model", "target",
                         "median RMSE % / strength"], rows,
                        title="Figure 14 — predictability (sampled)")


def table3(study: EdgeStudy) -> str:
    rows = []
    for cloud in (study.vcloud1, study.vcloud2):
        result = run_cost_study(
            study.nep.dataset, cloud, study.vcloud_regions,
            study.nep_billing,
            app_count=min(study.scenario.heaviest_app_count, 20))
        for model in NetworkModel:
            summary = result.summary(model)
            rows.append((cloud.provider, model.value, summary["mean"],
                         summary["median"],
                         f"{summary['min']:.2f}-{summary['max']:.2f}"))
    return format_table(["cloud", "network model", "mean ratio",
                         "median", "range"], rows,
                        title="Table 3 — cost ratios (cloud / NEP)")


def table6(study: EdgeStudy) -> str:
    table = study.qoe_testbed.rtt_table(pings=20)
    rows = [(access.value, *(row[vm.label] for vm in
                             study.qoe_testbed.vms))
            for access, row in table.items()]
    return format_table(["access", "Edge", "Cloud-1", "Cloud-2",
                         "Cloud-3"], rows,
                        title="Table 6 — QoE testbed RTTs (ms)")


def sales(study: EdgeStudy) -> str:
    s = sales_rate_summary(study.nep.platform)
    rows = [
        ("site CPU sales rate p95/p5", s.site_cpu_p95_over_p5),
        ("median site CPU sales rate", s.median_site_cpu_rate),
        ("median site memory sales rate", s.median_site_memory_rate),
        ("CPU / memory saturation", s.cpu_over_memory_ratio),
    ]
    return format_table(["metric", "value"], rows,
                        title="§4.1 — sales rates")


def categories(study: EdgeStudy) -> str:
    """§4.1's application-type table: who NEP's customers are."""
    breakdown = category_breakdown(study.nep.dataset)
    rows = [(cat, apps, vms, f"{share:.1%}")
            for cat, (apps, vms, share) in breakdown.categories.items()]
    rows.append(("video-centric total", "", "",
                 f"{breakdown.video_centric_share:.1%}"))
    return format_table(["category", "apps", "VMs", "traffic share"],
                        rows, title="§4.1 — NEP application types")


def findings(study: EdgeStudy) -> str:
    """The paper's eight §1 findings, each with its measured value."""
    lines = ["The paper's findings, measured on this scenario", ""]

    wifi = rtt_cdfs(study.per_user, AccessType.WIFI)
    lines.append(
        f"(1) Network latency: nearest edge median "
        f"{wifi['nearest_edge'].median:.1f} ms vs nearest cloud "
        f"{wifi['nearest_cloud'].median:.1f} ms (WiFi) — "
        f"{wifi['nearest_cloud'].median / wifi['nearest_edge'].median:.2f}x "
        f"faster on the edge, but still "
        f"{hop_count_cdf(study.per_user, 'nearest_edge').median:.0f} hops "
        f"from users, not the 1-2 hop MEC vision.")

    series = {(s.access, s.direction): s
              for s in all_series(study.throughput_results.throughput)}
    fast = series.get((AccessType.FIVE_G, "downlink")) or series[
        (AccessType.WIRED, "downlink")]
    slow = series[(AccessType.WIFI, "downlink")]
    lines.append(
        f"(2) Throughput: distance only matters on fast last miles "
        f"({fast.access.value} downlink corr {fast.correlation:+.2f} vs "
        f"WiFi {slow.correlation:+.2f}) — not yet a primary edge "
        f"incentive.")

    gaming = GamingExperiment(
        study.qoe_testbed, study.scenario.random.stream("findings-g"),
        trials=20)
    edge_game = gaming.run_config("Edge", AccessType.WIFI)
    far_game = gaming.run_config("Cloud-3", AccessType.WIFI)
    streaming = StreamingExperiment(
        study.qoe_testbed, study.scenario.random.stream("findings-s"),
        trials=20)
    edge_stream = streaming.run_config("Edge", AccessType.WIFI)
    lines.append(
        f"(3) QoE: gaming {edge_game.mean_ms:.0f} ms on the edge vs "
        f"{far_game.mean_ms:.0f} ms on the far cloud; streaming stays "
        f"~{edge_stream.mean_ms:.0f} ms because capture/rendering "
        f"({edge_stream.breakdown['capture_ms']:.0f}/"
        f"{edge_stream.breakdown['render_ms']:.0f} ms) dwarf the "
        f"network ({edge_stream.breakdown['network_ms']:.0f} ms).")

    nep_sizes = vm_size_summary(study.nep.dataset)
    azure_sizes = vm_size_summary(study.azure.dataset)
    nep_util = cpu_utilization_summary(study.nep.dataset)
    azure_util = cpu_utilization_summary(study.azure.dataset)
    lines.append(
        f"(4) Edge VMs: {nep_sizes.median_cpu:.0f}C/"
        f"{nep_sizes.median_memory_gb:.0f}G median vs Azure "
        f"{azure_sizes.median_cpu:.0f}C/"
        f"{azure_sizes.median_memory_gb:.0f}G, yet "
        f"{nep_util.fraction_mean_below_10pct:.0%} idle below 10% CPU "
        f"(Azure: {azure_util.fraction_mean_below_10pct:.0%}) — "
        f"over-provisioning.")

    sales_summary = sales_rate_summary(study.nep.platform)
    lines.append(
        f"(5) Resource usage: site sales rates skew "
        f"{sales_summary.site_cpu_p95_over_p5:.0f}x p95/p5; CPU "
        f"saturates {sales_summary.cpu_over_memory_ratio:.1f}x faster "
        f"than memory.")

    nep_balance = app_balance_summary(study.nep.dataset)
    azure_balance = app_balance_summary(study.azure.dataset)
    lines.append(
        f"(6) Load balance: {nep_balance.fraction_above_50x:.0%} of edge "
        f"apps show a >50x cross-VM usage gap "
        f"(cloud: {azure_balance.fraction_above_50x:.1%}).")

    lines.append(
        "(7) Prediction: run `repro run fig14` — edge VMs' stronger "
        "seasonality makes every model more accurate than on the cloud.")

    result = run_cost_study(
        study.nep.dataset, study.vcloud1, study.vcloud_regions,
        study.nep_billing,
        app_count=min(study.scenario.heaviest_app_count, 20))
    saving = result.mean_saving_by_bandwidth
    share = result.network_share_of_nep_cost()["mean"]
    lines.append(
        f"(8) Cost: moving the heaviest apps to the cloud would cost "
        f"{1 / (1 - saving):.2f}x NEP's bill (so the edge saves "
        f"~{saving:.0%}); bandwidth is {share:.0%} of the edge bill.")
    return "\n".join(lines)


def availability(study: EdgeStudy) -> str:
    """Availability/MTTR study; needs fault injection to be enabled."""
    if study.faults is None:
        return ("Availability study skipped: fault injection is off.\n"
                "Rerun with --faults paper (or harsh) to generate the "
                "fault schedule and availability report.")
    return study.availability.format()


def qoe_sessions(study: EdgeStudy) -> str:
    """Session-scale edge-vs-cloud QoE distributions (beyond Figure 7)."""
    return study.qoe_sessions.format()


def live(study: EdgeStudy) -> str:
    """Event-driven live-platform run: fleet series tick by tick."""
    return study.live.format()


#: CLI registry: experiment id -> report function.
REPORTS: dict[str, Callable[[EdgeStudy], str]] = {
    "table1": table1,
    "fig2a": fig2a,
    "fig2b": fig2b,
    "table2": table2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "table3": table3,
    "table6": table6,
    "sales": sales,
    "categories": categories,
    "findings": findings,
    "availability": availability,
    "qoe-sessions": qoe_sessions,
    "live": live,
}
