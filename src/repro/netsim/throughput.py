"""End-to-end TCP throughput model and iperf3-style test simulation.

§3.2's central finding is structural: end-to-end throughput is

    min( last-mile capacity ,  wide-area TCP limit )

where the wide-area limit follows the Mathis model
``BW = MSS / (RTT * sqrt(p))`` (the paper cites Mathis et al. [62] for the
RTT coupling).  When the access capacity is modest (WiFi, LTE, the
TDD-capped 5G uplink) the min() is taken by the first term and throughput is
uncorrelated with distance; when capacity is high (5G downlink, wired) the
second term binds and throughput visibly decays with distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MeasurementError
from .path import HopKind, Route

TCP_MSS_BYTES = 1460.0

#: Loss-rate model: a base floor plus contributions per hop and per km.
#: Calibrated so a metro path stays capacity-limited above 1 Gbps while a
#: 2000-3000 km path limits TCP to the 100-200 Mbps the paper observes.
BASE_LOSS = 8.0e-8
LOSS_PER_HOP = {
    HopKind.ACCESS: 1.0e-8,
    HopKind.METRO: 3.0e-8,
    HopKind.BACKBONE: 5.0e-8,
    HopKind.DC: 2.0e-8,
}
LOSS_PER_KM = 1.0e-10


def route_loss_rate(route: Route) -> float:
    """Steady-state packet-loss probability of a route."""
    loss = BASE_LOSS + LOSS_PER_KM * route.distance_km
    for hop in route.hops:
        loss += LOSS_PER_HOP[hop.kind]
    return loss


def mathis_throughput_mbps(rtt_ms: float, loss_rate: float,
                           mss_bytes: float = TCP_MSS_BYTES) -> float:
    """Single-flow TCP throughput bound (Mathis et al. 1997), in Mbps."""
    if rtt_ms <= 0:
        raise MeasurementError(f"RTT must be positive, got {rtt_ms}")
    if loss_rate <= 0:
        raise MeasurementError(f"loss rate must be positive, got {loss_rate}")
    rtt_s = rtt_ms / 1000.0
    return (mss_bytes * 8.0 / 1e6) / (rtt_s * np.sqrt(loss_rate))


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of one iperf-style throughput test."""

    mbps: float
    rtt_ms: float
    loss_rate: float
    access_limited: bool

    @property
    def path_limited(self) -> bool:
        return not self.access_limited


class ThroughputModel:
    """Simulates iperf3 TCP throughput tests over a route."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def wide_area_limit_mbps(self, route: Route) -> float:
        """The TCP path limit for the route, before the access cap."""
        return mathis_throughput_mbps(route.mean_rtt_ms, route_loss_rate(route))

    def run_test(self, route: Route, access_capacity_mbps: float,
                 duration_seconds: int = 15) -> ThroughputResult:
        """One TCP throughput test: min(access, path) with measurement noise.

        ``duration_seconds`` controls averaging noise: longer tests smooth
        out congestion-window dynamics (noise shrinks like 1/sqrt(T)).
        """
        if access_capacity_mbps <= 0:
            raise MeasurementError(
                f"access capacity must be positive, got {access_capacity_mbps}"
            )
        if duration_seconds <= 0:
            raise MeasurementError(
                f"duration must be positive, got {duration_seconds}"
            )
        loss = route_loss_rate(route)
        path_limit = mathis_throughput_mbps(route.mean_rtt_ms, loss)
        ideal = min(access_capacity_mbps, path_limit)
        noise_sd = 0.08 * ideal / np.sqrt(duration_seconds / 15.0)
        measured = max(float(self._rng.normal(ideal, noise_sd)), 0.05 * ideal)
        measured = min(measured, access_capacity_mbps)
        return ThroughputResult(
            mbps=measured,
            rtt_ms=route.mean_rtt_ms,
            loss_rate=loss,
            access_limited=access_capacity_mbps <= path_limit,
        )
