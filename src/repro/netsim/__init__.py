"""Network simulator: access networks, routing, latency, throughput."""

from .access import ACCESS_PROFILES, AccessProfile, AccessType, access_profile
from .latency import LatencyModel, RTTSample
from .path import Hop, HopKind, Route
from .routing import (
    BACKBONE_INFLATION,
    SAME_METRO_KM,
    TargetSiteSpec,
    UESpec,
    backbone_hop_count,
    backbone_rtt_ms,
    build_intersite_route,
    build_route,
)
from .throughput import (
    ThroughputModel,
    ThroughputResult,
    mathis_throughput_mbps,
    route_loss_rate,
)
from .traceroute import (TracerouteHop, TracerouteResult, run_traceroute,
                         traceroute_from_row)

__all__ = [
    "ACCESS_PROFILES",
    "AccessProfile",
    "AccessType",
    "BACKBONE_INFLATION",
    "Hop",
    "HopKind",
    "LatencyModel",
    "RTTSample",
    "Route",
    "SAME_METRO_KM",
    "TargetSiteSpec",
    "ThroughputModel",
    "ThroughputResult",
    "TracerouteHop",
    "TracerouteResult",
    "UESpec",
    "access_profile",
    "backbone_hop_count",
    "backbone_rtt_ms",
    "build_intersite_route",
    "build_route",
    "mathis_throughput_mbps",
    "route_loss_rate",
    "run_traceroute",
    "traceroute_from_row",
]
