"""RTT sampling over routes: propagation + queueing jitter + loss spikes.

Each ping sample sums per-hop draws:

* a Gaussian term around each hop's mean (steady-state queueing noise);
* an occasional heavy-tail spike on METRO/BACKBONE/DC hops, modelling
  transient congestion.  Backbone-rich cloud paths accumulate more spike
  probability, which is what pushes their RTT CV to ~5x the nearest edge's
  (Figure 2(b)) and up to ~30x for the farthest sites.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MeasurementError
from .path import Hop, HopKind, Route

#: Per-sample probability that a non-access hop adds a congestion spike.
SPIKE_PROBABILITY = {
    HopKind.ACCESS: 0.002,
    HopKind.METRO: 0.004,
    HopKind.BACKBONE: 0.035,
    HopKind.DC: 0.006,
}

#: Mean of the exponential spike magnitude (ms) per hop kind.
SPIKE_SCALE_MS = {
    HopKind.ACCESS: 1.0,
    HopKind.METRO: 1.5,
    HopKind.BACKBONE: 6.0,
    HopKind.DC: 2.0,
}


@dataclass(frozen=True)
class RTTSample:
    """One ping result with its per-hop breakdown."""

    total_ms: float
    per_hop_ms: tuple[float, ...]


class LatencyModel:
    """Samples end-to-end and per-hop RTTs for a route."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def sample_hop_ms(self, hop: Hop) -> float:
        """One RTT contribution draw for a single hop (never negative)."""
        value = hop.mean_rtt_ms + float(self._rng.normal(0.0, hop.jitter_sd_ms))
        if self._rng.random() < SPIKE_PROBABILITY[hop.kind]:
            value += float(self._rng.exponential(SPIKE_SCALE_MS[hop.kind]))
        return max(value, 0.01)

    def sample(self, route: Route) -> RTTSample:
        """One end-to-end ping with per-hop contributions."""
        per_hop = tuple(self.sample_hop_ms(hop) for hop in route.hops)
        return RTTSample(total_ms=sum(per_hop), per_hop_ms=per_hop)

    def sample_many(self, route: Route, count: int) -> np.ndarray:
        """``count`` end-to-end RTT draws (the 30-ping repetition of §2.1.1)."""
        if count <= 0:
            raise MeasurementError(f"sample count must be positive, got {count}")
        return np.array([self.sample(route).total_ms for _ in range(count)])

    def mean_and_cv(self, route: Route, count: int) -> tuple[float, float]:
        """Mean RTT and coefficient of variation over ``count`` pings."""
        samples = self.sample_many(route, count)
        mean = float(samples.mean())
        if mean == 0.0:
            return 0.0, 0.0
        return mean, float(samples.std() / mean)
