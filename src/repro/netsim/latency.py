"""RTT sampling over routes: propagation + queueing jitter + loss spikes.

Each ping sample sums per-hop draws:

* a Gaussian term around each hop's mean (steady-state queueing noise);
* an occasional heavy-tail spike on METRO/BACKBONE/DC hops, modelling
  transient congestion.  Backbone-rich cloud paths accumulate more spike
  probability, which is what pushes their RTT CV to ~5x the nearest edge's
  (Figure 2(b)) and up to ~30x for the farthest sites.

Sampling is batched: :meth:`LatencyModel.sample_matrix` draws the whole
``(count, n_hops)`` matrix of normals, Bernoulli spike masks, and
exponential magnitudes in three NumPy calls, and
:meth:`LatencyModel.sample_route_batch` extends that to *many* routes in
one pass by concatenating their hop parameter vectors.  A campaign that
previously issued ~1M scalar RNG calls now issues a few thousand array
calls.  The per-cell distributions are unchanged, but the RNG *draw
order* differs from the historical scalar loop — see
``docs/calibration.md`` ("Draw order").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import MeasurementError
from .path import Hop, HopKind, Route

#: Per-sample probability that a non-access hop adds a congestion spike.
SPIKE_PROBABILITY = {
    HopKind.ACCESS: 0.002,
    HopKind.METRO: 0.004,
    HopKind.BACKBONE: 0.035,
    HopKind.DC: 0.006,
}

#: Mean of the exponential spike magnitude (ms) per hop kind.
SPIKE_SCALE_MS = {
    HopKind.ACCESS: 1.0,
    HopKind.METRO: 1.5,
    HopKind.BACKBONE: 6.0,
    HopKind.DC: 2.0,
}

#: Floor applied to every per-hop draw (a hop never "gains time").
MIN_HOP_MS = 0.01

#: Fused (probability, scale) view of the two tables above: one dict
#: lookup per hop instead of two on the batch engine's hot path.
_SPIKE_PARAMS = {
    kind: (SPIKE_PROBABILITY[kind], SPIKE_SCALE_MS[kind])
    for kind in HopKind
}

#: Index-keyed views of the spike tables.  Enum dict lookups go through a
#: Python-level ``__hash__`` per hop; tagging each HopKind member with a
#: dense integer index lets :func:`_hop_params` gather spike parameters
#: with two NumPy fancy-index reads instead of 2N dict probes.
_SPIKE_P_BY_INDEX = np.array([SPIKE_PROBABILITY[k] for k in HopKind])
_SPIKE_SCALE_BY_INDEX = np.array([SPIKE_SCALE_MS[k] for k in HopKind])
for _index, _kind in enumerate(HopKind):
    _kind.spike_index = _index
del _index, _kind


@dataclass(frozen=True)
class RTTSample:
    """One ping result with its per-hop breakdown."""

    total_ms: float
    per_hop_ms: tuple[float, ...]


def _hop_params(hops: Sequence[Hop]) -> tuple[np.ndarray, np.ndarray,
                                              np.ndarray, np.ndarray]:
    """Per-hop (means, jitter SDs, spike probs, spike scales) vectors."""
    # Hop is a NamedTuple: positional reads below are plain tuple indexing
    # (fields 2 = mean_rtt_ms, 3 = jitter_sd_ms, 1 = kind), and fromiter
    # fills each column in one C-level pass.
    n = len(hops)
    means = np.fromiter((hop[2] for hop in hops), np.float64, n)
    sds = np.fromiter((hop[3] for hop in hops), np.float64, n)
    kind_idx = np.fromiter((hop[1].spike_index for hop in hops), np.intp, n)
    return (means, sds,
            _SPIKE_P_BY_INDEX[kind_idx], _SPIKE_SCALE_BY_INDEX[kind_idx])


class LatencyModel:
    """Samples end-to-end and per-hop RTTs for a route."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    # ---- scalar path (kept for per-hop introspection) -------------------

    def sample_hop_ms(self, hop: Hop) -> float:
        """One RTT contribution draw for a single hop (never negative)."""
        value = hop.mean_rtt_ms + float(self._rng.normal(0.0, hop.jitter_sd_ms))
        if self._rng.random() < SPIKE_PROBABILITY[hop.kind]:
            value += float(self._rng.exponential(SPIKE_SCALE_MS[hop.kind]))
        return max(value, MIN_HOP_MS)

    def sample(self, route: Route) -> RTTSample:
        """One end-to-end ping with per-hop contributions."""
        per_hop = tuple(self.sample_hop_ms(hop) for hop in route.hops)
        return RTTSample(total_ms=sum(per_hop), per_hop_ms=per_hop)

    # ---- batch engine ----------------------------------------------------

    def sample_matrix(self, route: Route, count: int) -> np.ndarray:
        """``count`` per-hop RTT draws as a ``(count, n_hops)`` matrix.

        The whole matrix is drawn in three vectorised RNG calls: Gaussian
        jitter, Bernoulli spike masks, and exponential spike magnitudes.
        Row sums are end-to-end pings; a single row is a traceroute's
        per-hop breakdown.

        Raises:
            MeasurementError: if ``count`` is not positive.
        """
        if count <= 0:
            raise MeasurementError(f"sample count must be positive, got {count}")
        means, sds, spike_p, spike_scale = _hop_params(route.hops)
        return self._draw(means, sds, spike_p, spike_scale, count)

    def sample_route_batch(self, routes: Sequence[Route],
                           count: int) -> list[np.ndarray]:
        """Sample every route in one pass; ``(count, n_hops_i)`` per route.

        All routes' hop parameters are concatenated so the normals, spike
        masks, and magnitudes for the whole batch come from single NumPy
        calls, then split back per route.  This is what
        :func:`repro.measurement.ping.run_ping_tests` uses to probe all of
        a participant's targets at once.

        Raises:
            MeasurementError: if ``count`` is not positive.
        """
        block, starts = self.sample_routes_block(routes, count)
        if block.size == 0 and not routes:
            return []
        return np.split(block, starts[1:], axis=1)

    def sample_routes_block(self, routes: Sequence[Route],
                            count: int) -> tuple[np.ndarray, np.ndarray]:
        """The undivided ``(count, total_hops)`` block plus segment starts.

        ``starts[i]`` is the column where route ``i``'s hops begin — the
        exact form :func:`numpy.add.reduceat` wants, so callers can compute
        per-route RTT sums without splitting the block first.

        Raises:
            MeasurementError: if ``count`` is not positive.
        """
        if count <= 0:
            raise MeasurementError(f"sample count must be positive, got {count}")
        if not routes:
            return np.empty((count, 0)), np.empty(0, dtype=np.intp)
        # One flattened parameter pass over every hop of every route —
        # cheaper than per-route extraction plus concatenation.
        flat_hops = [hop for route in routes for hop in route.hops]
        means, sds, spike_p, spike_scale = _hop_params(flat_hops)
        block = self._draw(means, sds, spike_p, spike_scale, count)
        hop_counts = np.array([route.hop_count for route in routes])
        starts = np.concatenate(([0], np.cumsum(hop_counts[:-1])))
        return block, starts

    def _draw(self, means: np.ndarray, sds: np.ndarray, spike_p: np.ndarray,
              spike_scale: np.ndarray, count: int) -> np.ndarray:
        rng = self._rng
        shape = (count, means.size)
        values = rng.standard_normal(shape)
        values *= sds
        values += means
        spikes = rng.exponential(1.0, size=shape)
        spikes *= spike_scale
        spikes *= rng.random(shape) < spike_p
        values += spikes
        return np.maximum(values, MIN_HOP_MS, out=values)

    # ---- aggregates ------------------------------------------------------

    def sample_many(self, route: Route, count: int) -> np.ndarray:
        """``count`` end-to-end RTT draws (the 30-ping repetition of §2.1.1)."""
        return self.sample_matrix(route, count).sum(axis=1)

    def mean_and_cv(self, route: Route, count: int) -> tuple[float, float]:
        """Mean RTT and coefficient of variation over ``count`` pings."""
        samples = self.sample_many(route, count)
        mean = float(samples.mean())
        if mean == 0.0:
            return 0.0, 0.0
        return mean, float(samples.std() / mean)
