"""Route construction between user equipment and edge/cloud sites.

The builder composes four segments, mirroring the structure the paper's
traceroutes reveal (§3.1, Table 2, Figure 3):

1. **access** hops from the :class:`~repro.netsim.access.AccessProfile`
   (1st hop dominates WiFi latency, 2nd hop dominates LTE);
2. **metro** hops through the city's aggregation and ISP core — the part
   the paper notes edge traffic still has to traverse ("the traffic still
   needs to travel through the core network within a city");
3. **backbone** hops for inter-city segments, whose count and latency grow
   with great-circle distance (~one hop per 400 km plus two border routers);
4. **dc** ingress hops — shallow for an edge site, a deeper fabric for a
   cloud region.

Calibration targets: nearest-edge hop counts of 5–12 (median 8) vs
10–16 for clouds, and ~100 ms RTT between sites 3000 km apart (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geo.coords import GeoPoint
from .access import AccessProfile, AccessType, access_profile
from .path import Hop, HopKind, Route

#: One-way path-inflation factor for long-haul fibre.  2.6 reproduces the
#: paper's inter-site RTT curve (≈100 ms at 3000 km) together with the
#: per-hop processing overheads below.
BACKBONE_INFLATION = 2.6
FIBER_KM_PER_MS = 200.0
BACKBONE_KM_PER_HOP = 400.0
BACKBONE_PER_HOP_RTT_MS = 0.5
#: Same-metro routes shorter than this skip the long-haul backbone.
SAME_METRO_KM = 60.0


@dataclass(frozen=True)
class TargetSiteSpec:
    """What the route builder needs to know about the destination."""

    label: str
    location: GeoPoint
    is_edge: bool
    #: Mobile-Edge-Computing deployment: the server sits inside the
    #: access network itself (ISP core / base station), so the route is
    #: just the access hops plus the server — the §3.1/§5 vision NEP has
    #: not reached ("1-2 hops as commonly envisioned").
    colocated_with_access: bool = False


@dataclass(frozen=True)
class UESpec:
    """What the route builder needs to know about the client device."""

    label: str
    location: GeoPoint
    access: AccessType

    @property
    def profile(self) -> AccessProfile:
        return access_profile(self.access)


def backbone_rtt_ms(distance_km: float) -> float:
    """Deterministic backbone RTT contribution for a given distance."""
    if distance_km <= SAME_METRO_KM:
        return 0.0
    hops = backbone_hop_count(distance_km)
    propagation = 2.0 * distance_km * BACKBONE_INFLATION / FIBER_KM_PER_MS
    return propagation + hops * BACKBONE_PER_HOP_RTT_MS


def backbone_hop_count(distance_km: float) -> int:
    """Number of long-haul hops for a given distance (0 if same metro)."""
    if distance_km <= SAME_METRO_KM:
        return 0
    return 2 + int(round(distance_km / BACKBONE_KM_PER_HOP))


#: Access hops depend only on the access technology, and Hop is immutable,
#: so every route of every participant on the same technology shares one
#: tuple — route construction is campaign-hot.
_ACCESS_HOPS_CACHE: dict[AccessType, tuple[Hop, ...]] = {}

#: Trusted fast constructor for the route builders below: skips Hop's
#: validating ``__new__`` where the parameters are drawn from ranges that
#: are non-negative by construction.
_new_hop = tuple.__new__

#: Hops whose parameters never vary between routes — built once and
#: shared (Hop is immutable).
_FIVE_G_METRO_HOPS = (
    Hop("metro-0", HopKind.METRO, mean_rtt_ms=0.2, jitter_sd_ms=0.03),
)
_EDGE_GW_HOPS = (
    Hop("edge-gw", HopKind.DC, mean_rtt_ms=0.3, jitter_sd_ms=0.04),
)
_MEC_GW_HOP = Hop("mec-gw", HopKind.DC, mean_rtt_ms=0.2, jitter_sd_ms=0.03)


def _hop_names(prefix: str, count: int,
               _cache: dict[str, tuple[str, ...]] = {}) -> tuple[str, ...]:
    """Interned ``prefix0, prefix1, ...`` names (formatting is route-hot)."""
    names = _cache.get(prefix)
    if names is None or len(names) < count:
        names = tuple(f"{prefix}{i}" for i in range(max(count, 16)))
        _cache[prefix] = names
    return names


def _access_hops(ue: UESpec) -> tuple[Hop, ...]:
    cached = _ACCESS_HOPS_CACHE.get(ue.access)
    if cached is None:
        cached = tuple(
            Hop(name=h.name, kind=HopKind.ACCESS, mean_rtt_ms=h.mean_rtt_ms,
                jitter_sd_ms=h.jitter_sd_ms, icmp_visible=h.icmp_visible)
            for h in ue.profile.hops
        )
        _ACCESS_HOPS_CACHE[ue.access] = cached
    return cached


def _metro_hops(ue: UESpec,
                rng: np.random.Generator) -> tuple[Hop, ...] | list[Hop]:
    """Intra-city hops between the access exit and the metro core.

    WiFi/wired traffic enters at a residential aggregation router and
    traverses several metro hops; cellular traffic exits its packet core
    much closer to the metro core, so it sees fewer (LTE) or almost no
    (5G) additional metro hops — matching Table 2's "rest" shares.
    """
    if ue.access is AccessType.FIVE_G:
        return _FIVE_G_METRO_HOPS
    if ue.access is AccessType.LTE:
        count = int(rng.integers(1, 4))
        names = _hop_names("metro-", count)
        return [
            _new_hop(Hop, (names[i], HopKind.METRO, mean, 0.06, True))
            for i, mean in enumerate(rng.uniform(0.8, 1.6,
                                                 size=count).tolist())
        ]
    # WiFi / wired residential path: a pricier first aggregation hop then
    # a handful of small metro-core hops.
    hops = [Hop("metro-agg", HopKind.METRO,
                mean_rtt_ms=float(rng.uniform(1.9, 2.9)), jitter_sd_ms=0.08)]
    count = int(rng.integers(3, 8))
    names = _hop_names("metro-", count)
    hops.extend(
        _new_hop(Hop, (names[i], HopKind.METRO, mean, 0.05, True))
        for i, mean in enumerate(rng.uniform(0.5, 1.0, size=count).tolist())
    )
    return hops


def _backbone_hops(distance_km: float,
                   rng: np.random.Generator) -> list[Hop]:
    count = backbone_hop_count(distance_km)
    if count == 0:
        return []
    total_rtt = backbone_rtt_ms(distance_km)
    # Spread the total over the hops with mild randomness; long-haul hops
    # carry the queueing jitter that makes cloud RTT CV ~5x the edge's.
    weights = rng.uniform(0.6, 1.4, size=count)
    weights /= weights.sum()
    weights *= total_rtt
    jitters = rng.uniform(0.4, 0.9, size=count).tolist()
    names = _hop_names("bb-", count)
    return [
        _new_hop(Hop, (names[i], HopKind.BACKBONE, mean, jitters[i], True))
        for i, mean in enumerate(weights.tolist())
    ]


def _dc_hops(target: TargetSiteSpec,
             rng: np.random.Generator) -> tuple[Hop, ...] | list[Hop]:
    if target.is_edge:
        return _EDGE_GW_HOPS
    count = int(rng.integers(3, 5))
    names = _hop_names("dc-", count)
    return [
        _new_hop(Hop, (names[i], HopKind.DC, mean, 0.12, True))
        for i, mean in enumerate(rng.uniform(0.3, 0.7, size=count).tolist())
    ]


def build_route(ue: UESpec, target: TargetSiteSpec,
                rng: np.random.Generator) -> Route:
    """Construct the end-to-end route from a UE to a site VM."""
    distance = ue.location.distance_km(target.location)
    hops: list[Hop] = []
    hops.extend(_access_hops(ue))
    if target.colocated_with_access:
        # MEC: the server hangs off the access network's own exit —
        # no metro core, no backbone, one server-attachment hop.
        hops.append(_MEC_GW_HOP)
        return Route(
            source_label=ue.label,
            target_label=target.label,
            hops=tuple(hops),
            distance_km=distance,
        )
    hops.extend(_metro_hops(ue, rng))
    if not target.is_edge:
        # Centralised cloud DCs sit behind the ISP's core PoPs / IXPs even
        # for same-metro users, which is why the paper never sees a cloud
        # path shorter than ~10 hops (Figure 3).
        hops.extend(
            Hop(f"core-pop-{i}", HopKind.METRO,
                mean_rtt_ms=mean, jitter_sd_ms=0.1)
            for i, mean in enumerate(rng.uniform(0.4, 0.8, size=2).tolist())
        )
    hops.extend(_backbone_hops(distance, rng))
    hops.extend(_dc_hops(target, rng))
    return Route(
        source_label=ue.label,
        target_label=target.label,
        hops=tuple(hops),
        distance_km=distance,
    )


def build_intersite_route(label_a: str, loc_a: GeoPoint, label_b: str,
                          loc_b: GeoPoint, rng: np.random.Generator) -> Route:
    """Route between two datacenter sites (no access segment).

    Used for Figure 4's inter-site RTT matrix: site-to-site traffic goes
    straight from one DC gateway through the backbone to the other.
    """
    distance = loc_a.distance_km(loc_b)
    hops: list[Hop] = [
        Hop("src-gw", HopKind.DC, mean_rtt_ms=0.3, jitter_sd_ms=0.05),
    ]
    if distance <= SAME_METRO_KM:
        # Same metro: a couple of metro-core hops connect the two rooms.
        hops.append(Hop("metro-x", HopKind.METRO,
                        mean_rtt_ms=float(rng.uniform(0.5, 1.5)),
                        jitter_sd_ms=0.06))
    else:
        # DC-to-DC traffic detours via provincial exchange hubs: ISP
        # rooms rarely peer directly (see INTERSITE_DETOUR_KM in
        # repro.core.latency_analysis).
        hops.append(Hop("exchange-hub", HopKind.BACKBONE,
                        mean_rtt_ms=float(2.0 * 480.0 * 2.6 / 200.0),
                        jitter_sd_ms=0.5))
        hops.extend(_backbone_hops(distance, rng))
    hops.append(Hop("dst-gw", HopKind.DC, mean_rtt_ms=0.3, jitter_sd_ms=0.05))
    return Route(source_label=label_a, target_label=label_b,
                 hops=tuple(hops), distance_km=distance)
