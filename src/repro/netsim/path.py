"""Hop and route representations for end-to-end paths.

A :class:`Route` is an ordered list of :class:`Hop`s between a user
equipment (UE) and a datacenter VM.  Each hop carries its own mean RTT
contribution and jitter; sampling an end-to-end RTT sums per-hop draws, and
simulated traceroute reports the cumulative sums at each ICMP-visible hop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import NamedTuple

from ..errors import TopologyError


class HopKind(enum.Enum):
    """Where in the path a hop sits; drives jitter behaviour."""

    ACCESS = "access"        # wireless / last-mile hop
    METRO = "metro"          # intra-city aggregation and ISP metro core
    BACKBONE = "backbone"    # inter-city long-haul
    DC = "dc"                # datacenter ingress / fabric


class _HopFields(NamedTuple):
    name: str
    kind: HopKind
    mean_rtt_ms: float
    jitter_sd_ms: float
    icmp_visible: bool = True


class Hop(_HopFields):
    """One hop of a route with its latency model parameters.

    A NamedTuple rather than a frozen dataclass: route builders create one
    per hop per route on the campaign's hot path, and the latency engine
    extracts whole parameter columns with ``zip(*hops)``.  Use
    :meth:`replace` (not :func:`dataclasses.replace`) for modified copies.
    """

    __slots__ = ()

    def __new__(cls, name: str, kind: HopKind, mean_rtt_ms: float,
                jitter_sd_ms: float, icmp_visible: bool = True) -> "Hop":
        if mean_rtt_ms < 0:
            raise TopologyError(f"hop {name!r}: negative mean RTT")
        if jitter_sd_ms < 0:
            raise TopologyError(f"hop {name!r}: negative jitter")
        return tuple.__new__(cls, (name, kind, mean_rtt_ms, jitter_sd_ms,
                                   icmp_visible))

    def replace(self, **changes) -> "Hop":
        """A copy with the given fields changed (validated like new Hops)."""
        fields = {**self._asdict(), **changes}
        return Hop(**fields)


@dataclass(frozen=True)
class Route:
    """An end-to-end path between a UE and a target VM/site."""

    source_label: str
    target_label: str
    hops: tuple[Hop, ...]
    distance_km: float

    def __post_init__(self) -> None:
        if not self.hops:
            raise TopologyError(
                f"route {self.source_label} -> {self.target_label} has no hops"
            )
        if self.distance_km < 0:
            raise TopologyError("route distance must be non-negative")

    @property
    def hop_count(self) -> int:
        return len(self.hops)

    @property
    def mean_rtt_ms(self) -> float:
        """Deterministic (noise-free) end-to-end RTT."""
        return sum(h.mean_rtt_ms for h in self.hops)

    @property
    def backbone_hop_count(self) -> int:
        return sum(1 for h in self.hops if h.kind is HopKind.BACKBONE)

    def cumulative_mean_rtt_ms(self) -> list[float]:
        """Mean cumulative RTT after each hop (traceroute expectation)."""
        total = 0.0
        out = []
        for hop in self.hops:
            total += hop.mean_rtt_ms
            out.append(total)
        return out
