"""Access-network models for the last mile (WiFi / LTE / 5G / wired).

Calibration comes straight from the paper:

* Table 2 gives the per-hop share of end-to-end RTT.  For WiFi the wireless
  first hop dominates (44.2% of the 16.1 ms median to the nearest edge,
  ~7 ms); for LTE the second hop — the cellular core / PGW — dominates
  (70.1%, ~26 ms); for 5G the first hops are invisible to ICMP but the first
  three together carry ~98% of a 10.4 ms RTT.
* §3.2 gives capacity: WiFi and LTE top out around 100 Mbps, 5G downlink
  averages 497 Mbps while its uplink is capped near 52 Mbps by the TDD slot
  ratio, and wired access averages 480 Mbps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


class AccessType(enum.Enum):
    """The four access technologies exercised by the paper's campaign."""

    WIFI = "wifi"
    LTE = "lte"
    FIVE_G = "5g"
    WIRED = "wired"

    @classmethod
    def wireless(cls) -> tuple["AccessType", ...]:
        return (cls.WIFI, cls.LTE, cls.FIVE_G)


@dataclass(frozen=True)
class AccessHopModel:
    """One access-side hop: mean RTT contribution, jitter, ICMP visibility."""

    name: str
    mean_rtt_ms: float
    jitter_sd_ms: float
    icmp_visible: bool = True

    def __post_init__(self) -> None:
        if self.mean_rtt_ms < 0 or self.jitter_sd_ms < 0:
            raise ConfigurationError(
                f"hop {self.name!r}: negative latency parameters"
            )


@dataclass(frozen=True)
class AccessProfile:
    """Full model of one access technology."""

    access_type: AccessType
    hops: tuple[AccessHopModel, ...]
    downlink_mean_mbps: float
    downlink_sd_mbps: float
    uplink_mean_mbps: float
    uplink_sd_mbps: float
    #: Hard ceiling on throughput regardless of path quality (TDD slot caps,
    #: modulation limits).  ``None`` means no explicit cap beyond the draw.
    downlink_cap_mbps: float | None = None
    uplink_cap_mbps: float | None = None

    @property
    def mean_access_rtt_ms(self) -> float:
        return sum(h.mean_rtt_ms for h in self.hops)

    def sample_downlink_capacity_mbps(self, rng: np.random.Generator) -> float:
        return self._sample_capacity(
            rng, self.downlink_mean_mbps, self.downlink_sd_mbps, self.downlink_cap_mbps
        )

    def sample_uplink_capacity_mbps(self, rng: np.random.Generator) -> float:
        return self._sample_capacity(
            rng, self.uplink_mean_mbps, self.uplink_sd_mbps, self.uplink_cap_mbps
        )

    @staticmethod
    def _sample_capacity(rng: np.random.Generator, mean: float, sd: float,
                         cap: float | None) -> float:
        # Truncated normal keeps the per-user capacity positive while
        # matching the reported means; the cap models hard radio limits.
        draw = float(rng.normal(mean, sd))
        draw = max(draw, mean * 0.15)
        if cap is not None:
            draw = min(draw, cap)
        return draw


#: Calibrated access profiles.  RTT means reproduce Table 2's shares of the
#: paper's median end-to-end RTTs; capacities reproduce §3.2's means.
ACCESS_PROFILES: dict[AccessType, AccessProfile] = {
    AccessType.WIFI: AccessProfile(
        access_type=AccessType.WIFI,
        hops=(
            AccessHopModel("wifi-ap", mean_rtt_ms=7.1, jitter_sd_ms=0.12),
            AccessHopModel("home-gw", mean_rtt_ms=1.7, jitter_sd_ms=0.08),
        ),
        downlink_mean_mbps=75.0, downlink_sd_mbps=15.0,
        uplink_mean_mbps=42.0, uplink_sd_mbps=14.0,
    ),
    AccessType.LTE: AccessProfile(
        access_type=AccessType.LTE,
        hops=(
            AccessHopModel("enb", mean_rtt_ms=3.8, jitter_sd_ms=0.35),
            AccessHopModel("epc-pgw", mean_rtt_ms=26.4, jitter_sd_ms=0.55),
            AccessHopModel("lte-exit", mean_rtt_ms=3.5, jitter_sd_ms=0.2),
        ),
        downlink_mean_mbps=46.0, downlink_sd_mbps=18.0,
        uplink_mean_mbps=22.0, uplink_sd_mbps=9.0,
    ),
    AccessType.FIVE_G: AccessProfile(
        access_type=AccessType.FIVE_G,
        hops=(
            AccessHopModel("gnb", mean_rtt_ms=3.4, jitter_sd_ms=0.035,
                           icmp_visible=False),
            AccessHopModel("upf", mean_rtt_ms=4.6, jitter_sd_ms=0.04,
                           icmp_visible=False),
            AccessHopModel("5g-exit", mean_rtt_ms=2.2, jitter_sd_ms=0.03),
        ),
        downlink_mean_mbps=497.0, downlink_sd_mbps=80.0,
        uplink_mean_mbps=52.0, uplink_sd_mbps=10.0,
        uplink_cap_mbps=70.0,  # Rel-15 TDD slot-ratio cap (§3.2)
    ),
    AccessType.WIRED: AccessProfile(
        access_type=AccessType.WIRED,
        hops=(
            AccessHopModel("cpe", mean_rtt_ms=0.8, jitter_sd_ms=0.03),
            AccessHopModel("olt", mean_rtt_ms=1.4, jitter_sd_ms=0.05),
        ),
        downlink_mean_mbps=480.0, downlink_sd_mbps=80.0,
        uplink_mean_mbps=240.0, uplink_sd_mbps=50.0,
    ),
}


def access_profile(access_type: AccessType) -> AccessProfile:
    """The calibrated profile for an access technology."""
    return ACCESS_PROFILES[access_type]
