"""Traceroute simulation over a route.

Reproduces what the paper's speed-testing app recorded: cumulative RTT at
each intermediate hop "if visible" (§2.1.1).  5G packet-core hops drop ICMP
(the paper notes their trace "doesn't contain the latency of first 2 hops,
possibly because the ICMP service is disabled by the operator"), which the
access profile encodes via ``icmp_visible``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .latency import LatencyModel
from .path import Route


@dataclass(frozen=True)
class TracerouteHop:
    """One traceroute line: hop index, name, cumulative RTT or None."""

    index: int
    name: str
    cumulative_rtt_ms: float | None

    @property
    def visible(self) -> bool:
        return self.cumulative_rtt_ms is not None


@dataclass(frozen=True)
class TracerouteResult:
    """A full traceroute: ordered hops plus the end-to-end RTT."""

    route_label: str
    hops: tuple[TracerouteHop, ...]
    total_rtt_ms: float

    @property
    def hop_count(self) -> int:
        return len(self.hops)

    @property
    def visible_hops(self) -> tuple[TracerouteHop, ...]:
        return tuple(h for h in self.hops if h.visible)

    def hop_latency_shares(self) -> list[float | None]:
        """Per-hop share of the end-to-end RTT (None for hidden hops).

        This is the quantity Table 2 aggregates: the fraction of the total
        RTT attributable to each individual hop.
        """
        shares: list[float | None] = []
        previous_visible = 0.0
        for hop in self.hops:
            if hop.cumulative_rtt_ms is None:
                shares.append(None)
                continue
            shares.append((hop.cumulative_rtt_ms - previous_visible)
                          / self.total_rtt_ms)
            previous_visible = hop.cumulative_rtt_ms
        return shares


def run_traceroute(route: Route, rng: np.random.Generator) -> TracerouteResult:
    """Simulate one traceroute over ``route``."""
    model = LatencyModel(rng)
    cumulative = 0.0
    hops = []
    for index, hop in enumerate(route.hops, start=1):
        cumulative += model.sample_hop_ms(hop)
        hops.append(TracerouteHop(
            index=index,
            name=hop.name,
            cumulative_rtt_ms=cumulative if hop.icmp_visible else None,
        ))
    return TracerouteResult(
        route_label=f"{route.source_label} -> {route.target_label}",
        hops=tuple(hops),
        total_rtt_ms=cumulative,
    )
