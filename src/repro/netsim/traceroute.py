"""Traceroute simulation over a route.

Reproduces what the paper's speed-testing app recorded: cumulative RTT at
each intermediate hop "if visible" (§2.1.1).  5G packet-core hops drop ICMP
(the paper notes their trace "doesn't contain the latency of first 2 hops,
possibly because the ICMP service is disabled by the operator"), which the
access profile encodes via ``icmp_visible``.

:class:`TracerouteResult` is lazy about its hop lines: campaigns only read
the precomputed per-hop shares and the hop count, so the
:class:`TracerouteHop` tuples are materialised on first access to
:attr:`TracerouteResult.hops` rather than once per observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import NamedTuple

import numpy as np

from .latency import LatencyModel
from .path import Hop, Route


class TracerouteHop(NamedTuple):
    """One traceroute line: hop index, name, cumulative RTT or None.

    A NamedTuple rather than a dataclass: campaigns build one per hop per
    observation, and tuple construction is the cheapest thing Python has.
    """

    index: int
    name: str
    cumulative_rtt_ms: float | None

    @property
    def visible(self) -> bool:
        return self.cumulative_rtt_ms is not None


@dataclass(frozen=True)
class TracerouteResult:
    """A full traceroute: ordered hops plus the end-to-end RTT.

    Stores the route's hop descriptors and the cumulative per-hop RTTs;
    the rendered :class:`TracerouteHop` lines are built lazily because the
    campaign analyses only consume :attr:`shares` and :attr:`hop_count`.
    """

    route_label: str
    total_rtt_ms: float
    #: Per-hop RTT shares (None entries are ICMP-hidden hops).
    shares: tuple[float | None, ...]
    #: The route's hop descriptors (shared with the Route, immutable).
    path_hops: tuple[Hop, ...]
    #: Cumulative RTT after each hop, hidden hops included.
    cumulative_ms: tuple[float, ...]

    @cached_property
    def hops(self) -> tuple[TracerouteHop, ...]:
        return tuple(
            TracerouteHop(index, hop.name,
                          cum if hop.icmp_visible else None)
            for index, (hop, cum) in enumerate(
                zip(self.path_hops, self.cumulative_ms), start=1)
        )

    @property
    def hop_count(self) -> int:
        return len(self.path_hops)

    @property
    def visible_hops(self) -> tuple[TracerouteHop, ...]:
        return tuple(h for h in self.hops if h.visible)

    def hop_latency_shares(self) -> list[float | None]:
        """Per-hop share of the end-to-end RTT (None for hidden hops).

        This is the quantity Table 2 aggregates: the fraction of the total
        RTT attributable to each individual hop.
        """
        return list(self.shares)


def traceroute_from_row(route: Route,
                        per_hop_ms: np.ndarray) -> TracerouteResult:
    """Build a traceroute from one already-drawn per-hop RTT row.

    The batch ping engine draws one extra row of its
    :meth:`~repro.netsim.latency.LatencyModel.sample_matrix` for the
    traceroute; this turns that row into the cumulative-RTT view the
    paper's app recorded.
    """
    cumulative = np.cumsum(per_hop_ms).tolist()
    total = cumulative[-1]
    shares: list[float | None] = []
    previous_visible = 0.0
    for hop, cum in zip(route.hops, cumulative):
        if hop.icmp_visible:
            shares.append((cum - previous_visible) / total)
            previous_visible = cum
        else:
            shares.append(None)
    return TracerouteResult(
        route_label=f"{route.source_label} -> {route.target_label}",
        total_rtt_ms=total,
        shares=tuple(shares),
        path_hops=route.hops,
        cumulative_ms=tuple(cumulative),
    )


def run_traceroute(route: Route, rng: np.random.Generator) -> TracerouteResult:
    """Simulate one traceroute over ``route``."""
    model = LatencyModel(rng)
    return traceroute_from_row(route, model.sample_matrix(route, 1)[0])
