"""Probe-side fault policy: retries, backoff, and loss accounting.

The real 158-user campaign lost probes — apps crashed, sites were down,
links dropped packets — and the paper's availability story lives in that
accounting.  This module holds the pure-policy pieces the campaign
threads through its probe loops:

* :class:`RetryPolicy` — bounded retry with exponential backoff, in
  trace minutes (a timed-out probe is retried later, when the outage or
  degradation episode may have passed);
* :class:`ProbeStats` — the campaign-wide loss/timeout/recovery ledger;
* :class:`FailedProbe` — one permanently-failed (participant, target)
  probe, kept next to the successful observations;
* :func:`degraded_throughput_factor` — the crude TCP-under-loss
  multiplier applied to iperf tests run inside a degradation episode.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FaultError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff, measured in trace minutes."""

    max_retries: int = 4
    backoff_base_minutes: float = 15.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise FaultError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_minutes <= 0:
            raise FaultError("backoff_base_minutes must be positive")
        if self.backoff_factor < 1.0:
            raise FaultError("backoff_factor must be >= 1")

    def delay_minutes(self, attempt: int) -> float:
        """Cumulative delay before ``attempt`` (attempt 0 has none)."""
        if attempt < 0:
            raise FaultError(f"attempt must be >= 0, got {attempt}")
        total, step = 0.0, self.backoff_base_minutes
        for _ in range(attempt):
            total += step
            step *= self.backoff_factor
        return total


#: Default campaign policy: up to 4 retries at 15/30/60/120-minute
#: backoff — the cumulative 225-minute window outlasts the mean outage.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass(frozen=True)
class FailedProbe:
    """A probe that exhausted its retries without a usable result."""

    participant_id: str
    target_id: str
    target_kind: str        # "edge" or "cloud"
    probe: str              # "ping" or "iperf"
    attempts: int
    reason: str


@dataclass
class ProbeStats:
    """Campaign-wide probe accounting under fault injection."""

    probes: int = 0         # (participant, target) probe tasks
    attempts: int = 0       # attempts issued, including retries
    retries: int = 0        # attempts beyond each probe's first
    timed_out: int = 0      # probes whose first attempt timed out
    recovered: int = 0      # timed-out probes that later succeeded
    unreachable: int = 0    # probes that never succeeded
    pings_sent: int = 0
    pings_lost: int = 0

    @property
    def timeout_rate(self) -> float:
        """Fraction of probes whose first attempt timed out."""
        return self.timed_out / self.probes if self.probes else 0.0

    @property
    def recovery_rate(self) -> float:
        """Fraction of timed-out probes rescued by the retry policy."""
        return self.recovered / self.timed_out if self.timed_out else 0.0

    @property
    def unreachable_rate(self) -> float:
        """Fraction of probes that never succeeded."""
        return self.unreachable / self.probes if self.probes else 0.0

    @property
    def ping_loss_rate(self) -> float:
        """Fraction of individual pings lost to degradation."""
        return self.pings_lost / self.pings_sent if self.pings_sent else 0.0


def degraded_throughput_factor(loss_probability: float) -> float:
    """Throughput multiplier for a TCP test inside a degradation episode.

    A coarse stand-in for TCP loss response: quadratic in the delivery
    rate with a 5% floor (a badly-degraded link still moves some bytes).

    Raises:
        FaultError: if ``loss_probability`` is outside [0, 1].
    """
    if not 0.0 <= loss_probability <= 1.0:
        raise FaultError(
            f"loss probability must be in [0, 1], got {loss_probability}")
    return max(0.05, (1.0 - loss_probability) ** 2)
