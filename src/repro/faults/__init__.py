"""Deterministic fault injection for the edge-vs-cloud study.

The paper's central contrast is that edge sites are individually far
less reliable than cloud regions: sites churn, last-mile links degrade,
and request scheduling "frequently goes wrong" (Fig. 13).  This package
makes the simulator reproduce that weather deterministically:

* :mod:`repro.faults.schedule` — a seeded :class:`FaultSchedule` of site
  outage windows, server crash/recovery pairs, and access-network
  degradation episodes over the study horizon;
* :mod:`repro.faults.injection` — the probe-side policy: retry with
  exponential backoff, loss/unreachable accounting, degraded-throughput
  scaling;
* :mod:`repro.faults.failover` — the platform-side response: a
  health-aware scheduler wrapper and an evacuation simulator that drains
  crashed servers through the live-migration machinery.

Everything draws from named :class:`repro.config.RandomState` streams,
so two runs with the same seed produce bit-identical fault weather and
byte-identical availability reports.
"""

from .failover import (
    EvacuationRecord,
    FailoverReport,
    HealthAwareScheduler,
    simulate_failover,
)
from .injection import (
    DEFAULT_RETRY_POLICY,
    FailedProbe,
    ProbeStats,
    RetryPolicy,
    degraded_throughput_factor,
)
from .schedule import (
    FAULT_PROFILES,
    DegradationEpisode,
    FaultProfile,
    FaultSchedule,
    OutageWindow,
    ServerCrash,
    build_fault_schedule,
    fault_profile,
)

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "DegradationEpisode",
    "EvacuationRecord",
    "FAULT_PROFILES",
    "FailedProbe",
    "FailoverReport",
    "FaultProfile",
    "FaultSchedule",
    "HealthAwareScheduler",
    "OutageWindow",
    "ProbeStats",
    "RetryPolicy",
    "ServerCrash",
    "build_fault_schedule",
    "degraded_throughput_factor",
    "fault_profile",
    "simulate_failover",
]
