"""The deterministic fault weather of one study run.

A :class:`FaultSchedule` is generated once per scenario from the
``"fault-schedule"`` random stream and then queried read-only by every
layer: the measurement campaign asks whether a target site is down (or a
participant's city degraded) at a probe time, the failover simulator
walks the server crashes chronologically, and the availability analysis
integrates downtime windows into per-site availability.

Three kinds of events are generated over the trace horizon:

* **site outages** — whole-site unreachability windows.  Edge sites fail
  far more often than cloud regions (the paper's churn observation);
* **server crashes** — individual machines dying and recovering, the
  input to the evacuation/failover path;
* **degradation episodes** — noisy last-mile windows per city, carrying
  a packet-loss probability and an extra-latency term.

Event counts are Poisson in the horizon length, starts are uniform, and
durations are exponential; every draw comes from one generator in a
fixed iteration order (edge sites, cloud sites, servers, cities), so the
schedule is a pure function of (seed, profile, topology).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..config import FAULT_PROFILES, Scenario
from ..errors import FaultError
from ..platform.cluster import Platform


@dataclass(frozen=True)
class OutageWindow:
    """One site-wide unreachability window, in trace minutes."""

    site_id: str
    start_min: float
    end_min: float

    @property
    def duration_min(self) -> float:
        """Length of the window in minutes."""
        return self.end_min - self.start_min

    def covers(self, minute: float) -> bool:
        """True when ``minute`` falls inside the window."""
        return self.start_min <= minute < self.end_min


@dataclass(frozen=True)
class ServerCrash:
    """One server dying at ``crash_min`` and recovering at ``recovery_min``."""

    server_id: str
    site_id: str
    crash_min: float
    recovery_min: float

    @property
    def duration_min(self) -> float:
        """Length of the crash-to-recovery window in minutes."""
        return self.recovery_min - self.crash_min

    def covers(self, minute: float) -> bool:
        """True when ``minute`` falls inside the crash window."""
        return self.crash_min <= minute < self.recovery_min


@dataclass(frozen=True)
class DegradationEpisode:
    """A noisy last-mile window for one city: loss plus extra latency."""

    city: str
    start_min: float
    end_min: float
    loss_probability: float
    extra_latency_ms: float

    @property
    def duration_min(self) -> float:
        """Length of the window in minutes."""
        return self.end_min - self.start_min

    def covers(self, minute: float) -> bool:
        """True when ``minute`` falls inside the window."""
        return self.start_min <= minute < self.end_min


@dataclass(frozen=True)
class FaultProfile:
    """Calibration of how hostile the simulated weather is.

    All rates are expected event counts per entity per 30 days, so the
    same profile scales with the scenario's trace horizon.
    """

    name: str
    edge_outages_per_site_30d: float
    cloud_outages_per_region_30d: float
    edge_outage_mean_minutes: float
    cloud_outage_mean_minutes: float
    server_crashes_per_server_30d: float
    crash_recovery_mean_minutes: float
    degradation_episodes_per_city_30d: float
    degradation_mean_minutes: float
    degradation_loss_min: float
    degradation_loss_max: float
    degradation_extra_ms_min: float
    degradation_extra_ms_max: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.degradation_loss_min <= self.degradation_loss_max <= 1.0:
            raise FaultError(
                f"profile {self.name!r}: loss range must satisfy "
                f"0 <= min <= max <= 1"
            )
        for field_name in ("edge_outages_per_site_30d",
                           "cloud_outages_per_region_30d",
                           "server_crashes_per_server_30d",
                           "degradation_episodes_per_city_30d"):
            if getattr(self, field_name) < 0:
                raise FaultError(
                    f"profile {self.name!r}: {field_name} must be >= 0"
                )


#: The two shipped non-trivial profiles.  ``paper`` is calibrated so the
#: edge-vs-cloud availability gap is clearly visible even on a 7-day
#: smoke horizon; ``harsh`` roughly quadruples every rate.
_PROFILES: dict[str, FaultProfile] = {
    "paper": FaultProfile(
        name="paper",
        edge_outages_per_site_30d=4.0,
        cloud_outages_per_region_30d=0.05,
        edge_outage_mean_minutes=180.0,
        cloud_outage_mean_minutes=30.0,
        server_crashes_per_server_30d=0.08,
        crash_recovery_mean_minutes=240.0,
        degradation_episodes_per_city_30d=12.0,
        degradation_mean_minutes=60.0,
        degradation_loss_min=0.10,
        degradation_loss_max=0.85,
        degradation_extra_ms_min=5.0,
        degradation_extra_ms_max=60.0,
    ),
    "harsh": FaultProfile(
        name="harsh",
        edge_outages_per_site_30d=16.0,
        cloud_outages_per_region_30d=0.4,
        edge_outage_mean_minutes=240.0,
        cloud_outage_mean_minutes=45.0,
        server_crashes_per_server_30d=0.35,
        crash_recovery_mean_minutes=360.0,
        degradation_episodes_per_city_30d=40.0,
        degradation_mean_minutes=90.0,
        degradation_loss_min=0.25,
        degradation_loss_max=0.95,
        degradation_extra_ms_min=15.0,
        degradation_extra_ms_max=120.0,
    ),
}


def fault_profile(name: str) -> FaultProfile | None:
    """The shipped profile for ``name``; ``None`` for ``"off"``.

    Raises:
        FaultError: for a name outside :data:`repro.config.FAULT_PROFILES`.
    """
    if name == "off":
        return None
    try:
        return _PROFILES[name]
    except KeyError:
        raise FaultError(
            f"unknown fault profile {name!r}, expected one of {FAULT_PROFILES}"
        ) from None


def _merged_downtime(windows: list[tuple[float, float]],
                     horizon: float) -> float:
    """Total covered minutes of possibly-overlapping windows, clipped."""
    if not windows:
        return 0.0
    total = 0.0
    current_start, current_end = None, None
    for start, end in sorted(windows):
        start, end = max(0.0, start), min(horizon, end)
        if end <= start:
            continue
        if current_end is None or start > current_end:
            if current_end is not None:
                total += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    if current_end is not None:
        total += current_end - current_start
    return total


class FaultSchedule:
    """All fault events of one run, with point-in-time query methods."""

    def __init__(self, profile_name: str, horizon_minutes: float,
                 outages: list[OutageWindow], crashes: list[ServerCrash],
                 episodes: list[DegradationEpisode],
                 edge_site_ids: tuple[str, ...],
                 cloud_site_ids: tuple[str, ...]) -> None:
        if horizon_minutes <= 0:
            raise FaultError(
                f"horizon must be positive, got {horizon_minutes}")
        self.profile_name = profile_name
        self.horizon_minutes = float(horizon_minutes)
        self.outages = list(outages)
        self.server_crashes = list(crashes)
        self.episodes = list(episodes)
        self.edge_site_ids = tuple(edge_site_ids)
        self.cloud_site_ids = tuple(cloud_site_ids)
        self._outages_by_site: dict[str, list[OutageWindow]] = {}
        for outage in self.outages:
            self._outages_by_site.setdefault(outage.site_id, []).append(outage)
        self._crashes_by_server: dict[str, list[ServerCrash]] = {}
        for crash in self.server_crashes:
            self._crashes_by_server.setdefault(crash.server_id,
                                               []).append(crash)
        self._episodes_by_city: dict[str, list[DegradationEpisode]] = {}
        for episode in self.episodes:
            self._episodes_by_city.setdefault(episode.city, []).append(episode)

    # ---- point-in-time queries ------------------------------------------

    def site_down(self, site_id: str, minute: float) -> bool:
        """True when ``site_id`` is inside an outage window at ``minute``."""
        return any(w.covers(minute)
                   for w in self._outages_by_site.get(site_id, ()))

    def server_down(self, server_id: str, minute: float) -> bool:
        """True when ``server_id`` is crashed and not yet recovered."""
        return any(c.covers(minute)
                   for c in self._crashes_by_server.get(server_id, ()))

    def degradation_at(self, city: str,
                       minute: float) -> DegradationEpisode | None:
        """The degradation episode covering ``minute`` in ``city``, if any."""
        for episode in self._episodes_by_city.get(city, ()):
            if episode.covers(minute):
                return episode
        return None

    # ---- live-engine integration ----------------------------------------

    def tick_transitions(self, tick_minutes: int, n_ticks: int,
                         site_ranges: dict[str, tuple[int, int]],
                         server_index: dict[str, int]
                         ) -> list[tuple[int, int, int, int]]:
        """Outages and crashes lowered to per-tick down/up transitions.

        The live engine advances a flat server axis; this turns every
        outage window (all servers of a site) and server crash (one
        server) into ``(tick, lo, hi, delta)`` range events — ``delta``
        +1 when the range goes down at ``tick`` and -1 when it
        recovers.  A server is down at tick ``t`` while the sum of
        deltas applied through ``t`` is positive, which composes
        overlapping site- and server-level windows correctly.  Events
        outside the horizon are clipped; the list is sorted by
        ``(tick, lo, hi, delta)`` so replay order is deterministic.

        ``site_ranges`` maps a site id to its contiguous ``[lo, hi)``
        server-index range and ``server_index`` a server id to its flat
        index (both from :meth:`Platform.live_inventory
        <repro.platform.cluster.Platform.live_inventory>`); sites and
        servers the maps do not know (cloud regions) are skipped.

        Raises:
            FaultError: when ``tick_minutes`` or ``n_ticks`` is not
                positive.
        """
        if tick_minutes <= 0 or n_ticks <= 0:
            raise FaultError(
                f"tick grid must be positive, got {tick_minutes} min x "
                f"{n_ticks} ticks")
        events: list[tuple[int, int, int, int]] = []

        def add(lo: int, hi: int, start_min: float, end_min: float) -> None:
            # covers() is half-open on minutes; tick t samples minute
            # t * tick_minutes, so the covered ticks are exactly
            # ceil(start/tick) <= t < ceil(end/tick).
            start = max(math.ceil(start_min / tick_minutes), 0)
            end = min(math.ceil(end_min / tick_minutes), n_ticks)
            if start >= end or start >= n_ticks:
                return
            events.append((start, lo, hi, 1))
            if end < n_ticks:
                events.append((end, lo, hi, -1))

        for outage in self.outages:
            span = site_ranges.get(outage.site_id)
            if span is not None:
                add(span[0], span[1], outage.start_min, outage.end_min)
        for crash in self.server_crashes:
            index = server_index.get(crash.server_id)
            if index is not None:
                add(index, index + 1, crash.crash_min, crash.recovery_min)
        events.sort()
        return events

    # ---- availability integration ---------------------------------------

    def site_downtime_minutes(self, site_id: str) -> float:
        """Merged (overlap-safe) outage minutes of one site."""
        windows = [(w.start_min, w.end_min)
                   for w in self._outages_by_site.get(site_id, ())]
        return _merged_downtime(windows, self.horizon_minutes)

    def site_availability(self, site_id: str) -> float:
        """Fraction of the horizon the site was up, in [0, 1]."""
        return 1.0 - self.site_downtime_minutes(site_id) / self.horizon_minutes

    def availabilities(self, site_ids: tuple[str, ...]) -> np.ndarray:
        """Per-site availability fractions, in ``site_ids`` order."""
        return np.array([self.site_availability(s) for s in site_ids])

    def mttr_minutes(self) -> float:
        """Mean time-to-recovery over all outages and server crashes."""
        durations = ([w.duration_min for w in self.outages]
                     + [c.duration_min for c in self.server_crashes])
        if not durations:
            return 0.0
        return float(np.mean(durations))

    def summary(self) -> dict[str, object]:
        """JSON-ready event counts for the run journal's
        ``fault_schedule`` event — a deterministic function of
        (seed, profile, topology), like the schedule itself."""
        return {
            "profile": self.profile_name,
            "horizon_minutes": self.horizon_minutes,
            "outages": len(self.outages),
            "server_crashes": len(self.server_crashes),
            "episodes": len(self.episodes),
            "edge_sites": len(self.edge_site_ids),
            "cloud_sites": len(self.cloud_site_ids),
            "mttr_minutes": round(self.mttr_minutes(), 6),
        }

    def mean_degradation_loss(self) -> float:
        """Mean packet-loss probability across degradation episodes."""
        if not self.episodes:
            return 0.0
        return float(np.mean([e.loss_probability for e in self.episodes]))

    def mean_degradation_extra_ms(self) -> float:
        """Mean added latency (ms) across degradation episodes."""
        if not self.episodes:
            return 0.0
        return float(np.mean([e.extra_latency_ms for e in self.episodes]))


def _draw_windows(rng: np.random.Generator, rate_30d: float,
                  mean_minutes: float, horizon: float,
                  days: float) -> list[tuple[float, float]]:
    """Poisson event count, uniform starts, exponential durations."""
    count = int(rng.poisson(rate_30d * days / 30.0))
    windows = []
    for _ in range(count):
        start = float(rng.uniform(0.0, horizon))
        duration = float(rng.exponential(mean_minutes))
        windows.append((start, min(start + duration, horizon)))
    return windows


def build_fault_schedule(scenario: Scenario, edge_platform: Platform,
                         cloud_platform: Platform,
                         profile: FaultProfile | None = None,
                         ) -> FaultSchedule | None:
    """Generate the schedule for a scenario; ``None`` when faults are off.

    The generator iterates entities in platform order (edge sites, cloud
    sites, edge servers, then the sorted union of city names), drawing
    from the scenario's ``"fault-schedule"`` stream, so the result is a
    deterministic function of (seed, profile, topology).
    """
    if profile is None:
        profile = fault_profile(scenario.fault_profile)
    if profile is None:
        return None
    rng = scenario.random.stream("fault-schedule")
    horizon = float(scenario.trace_minutes)
    days = float(scenario.trace_days)

    outages: list[OutageWindow] = []
    for site in edge_platform.sites:
        for start, end in _draw_windows(rng,
                                        profile.edge_outages_per_site_30d,
                                        profile.edge_outage_mean_minutes,
                                        horizon, days):
            outages.append(OutageWindow(site.site_id, start, end))
    for site in cloud_platform.sites:
        for start, end in _draw_windows(
                rng, profile.cloud_outages_per_region_30d,
                profile.cloud_outage_mean_minutes, horizon, days):
            outages.append(OutageWindow(site.site_id, start, end))

    crashes: list[ServerCrash] = []
    for server in edge_platform.iter_servers():
        for start, end in _draw_windows(
                rng, profile.server_crashes_per_server_30d,
                profile.crash_recovery_mean_minutes, horizon, days):
            crashes.append(ServerCrash(server.server_id, server.site_id,
                                       start, end))

    cities = sorted({site.city for site in edge_platform.sites}
                    | {site.city for site in cloud_platform.sites})
    episodes: list[DegradationEpisode] = []
    for city_name in cities:
        for start, end in _draw_windows(
                rng, profile.degradation_episodes_per_city_30d,
                profile.degradation_mean_minutes, horizon, days):
            loss = float(rng.uniform(profile.degradation_loss_min,
                                     profile.degradation_loss_max))
            extra = float(rng.uniform(profile.degradation_extra_ms_min,
                                      profile.degradation_extra_ms_max))
            episodes.append(DegradationEpisode(city_name, start, end,
                                               loss, extra))

    return FaultSchedule(
        profile_name=profile.name,
        horizon_minutes=horizon,
        outages=outages,
        crashes=crashes,
        episodes=episodes,
        edge_site_ids=tuple(s.site_id for s in edge_platform.sites),
        cloud_site_ids=tuple(s.site_id for s in cloud_platform.sites),
    )
