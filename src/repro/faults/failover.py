"""Platform-side failover: health-aware scheduling and crash evacuation.

Two responses to the fault weather:

* :class:`HealthAwareScheduler` wraps any
  :class:`~repro.platform.scheduling.RequestScheduler` and re-routes a
  request whose chosen VM sits on a crashed server or an out-of-service
  site — the GSLB health check NEP's customers would deploy;
* :func:`simulate_failover` replays every server crash of a
  :class:`~repro.faults.schedule.FaultSchedule` chronologically against
  a **copy** of the platform, draining each crashed server through the
  live-migration cost model (:func:`repro.platform.migration.migrate`)
  and recording per-VM downtime.  VMs with no feasible evacuation
  target are *stranded*: they ride out the crash and eat the full
  recovery window as downtime.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..errors import SchedulingError
from ..geo.coords import GeoPoint
from ..platform.cluster import Platform
from ..platform.entities import Server, VM
from ..platform.migration import MigrationCost, migrate
from ..platform.scheduling import RequestScheduler, SchedulingDecision
from .schedule import FaultSchedule, ServerCrash

#: How many nearest sites the evacuator scans after the crash site's own
#: servers are exhausted (keeps evacuation O(sites-nearby), not O(fleet)).
EVACUATION_SITE_SCAN = 8


class HealthAwareScheduler(RequestScheduler):
    """Retry wrapper: falls back to a healthy VM when the pick is dead.

    ``at_minute`` is the request time against the fault schedule; callers
    sweeping a horizon update it between requests.  ``fallbacks`` counts
    how often the inner scheduler's pick had to be overridden.
    """

    name = "health-aware"

    def __init__(self, inner: RequestScheduler, schedule: FaultSchedule,
                 at_minute: float = 0.0) -> None:
        self._inner = inner
        self._schedule = schedule
        self.at_minute = at_minute
        self.decisions = 0
        self.fallbacks = 0

    def _vm_healthy(self, vm: VM) -> bool:
        if vm.server_id is None or vm.site_id is None:
            return False
        return not (self._schedule.server_down(vm.server_id, self.at_minute)
                    or self._schedule.site_down(vm.site_id, self.at_minute))

    def schedule(self, platform: Platform, app_id: str,
                 user_location: GeoPoint) -> SchedulingDecision:
        """Delegate to the inner scheduler, re-routing unhealthy picks."""
        self.decisions += 1
        decision = self._inner.schedule(platform, app_id, user_location)
        if self._vm_healthy(platform.vms[decision.vm_id]):
            return decision
        self.fallbacks += 1
        healthy = [vm for vm in self._placed_vms(platform, app_id)
                   if self._vm_healthy(vm)]
        if not healthy:
            raise SchedulingError(
                f"app {app_id!r} has no healthy VMs at minute "
                f"{self.at_minute:.0f}"
            )
        best = min(
            healthy,
            key=lambda vm: (platform.site(vm.site_id).location
                            .distance_km(user_location), vm.vm_id),
        )
        site = platform.site(best.site_id)
        return SchedulingDecision(
            vm_id=best.vm_id,
            site_id=best.site_id,
            distance_km=site.location.distance_km(user_location),
        )


@dataclass(frozen=True)
class EvacuationRecord:
    """What happened to one VM when its server crashed."""

    vm_id: str
    from_server: str
    to_server: str | None       # None when stranded
    stranded: bool
    downtime_seconds: float
    cost: MigrationCost | None = None


@dataclass
class FailoverReport:
    """Aggregate outcome of replaying every server crash."""

    crashes: int = 0
    crashes_with_vms: int = 0
    evacuated_vms: int = 0
    stranded_vms: int = 0
    total_data_moved_gb: float = 0.0
    total_migration_seconds: float = 0.0
    records: list[EvacuationRecord] = field(default_factory=list)

    @property
    def affected_vms(self) -> int:
        """VMs touched by crashes: evacuated plus stranded."""
        return self.evacuated_vms + self.stranded_vms

    @property
    def mean_vm_downtime_seconds(self) -> float:
        """Average downtime across every evacuation record."""
        if not self.records:
            return 0.0
        return sum(r.downtime_seconds for r in self.records) / len(self.records)


def _evacuation_target(platform: Platform, schedule: FaultSchedule,
                       crash: ServerCrash, vm: VM) -> Server | None:
    """The best healthy server that can host ``vm``, or None (stranded).

    Same-site servers are preferred (no cross-site traffic shift); then
    the :data:`EVACUATION_SITE_SCAN` geographically nearest sites.  Ties
    break on most free CPU, then server id, so the walk is deterministic.
    """
    def healthy(server: Server) -> bool:
        return (server.server_id != crash.server_id
                and not schedule.server_down(server.server_id, crash.crash_min)
                and not schedule.site_down(server.site_id, crash.crash_min)
                and server.can_host(vm.spec))

    def pick(servers: list[Server]) -> Server | None:
        candidates = [s for s in servers if healthy(s)]
        if not candidates:
            return None
        return min(candidates,
                   key=lambda s: (-s.free.cpu_cores, s.server_id))

    crash_site = platform.site(crash.site_id)
    target = pick(crash_site.servers)
    if target is not None:
        return target
    for site in platform.nearest_sites(crash_site.location,
                                       EVACUATION_SITE_SCAN + 1):
        if site.site_id == crash.site_id:
            continue
        target = pick(site.servers)
        if target is not None:
            return target
    return None


def simulate_failover(platform: Platform,
                      schedule: FaultSchedule) -> FailoverReport:
    """Replay all server crashes against a copy of ``platform``.

    The input platform is never mutated: evacuation runs on a deep copy
    so the shared study platform stays valid for every other phase.  The
    copy is validated at the end — a failed evacuation must never leave
    the inventory ledgers inconsistent.
    """
    plat = copy.deepcopy(platform)
    report = FailoverReport(crashes=len(schedule.server_crashes))
    ordered = sorted(schedule.server_crashes,
                     key=lambda c: (c.crash_min, c.server_id))
    for crash in ordered:
        server = plat.server(crash.server_id)
        vm_ids = list(server.vm_ids)
        if vm_ids:
            report.crashes_with_vms += 1
        for vm_id in vm_ids:
            vm = plat.vms[vm_id]
            target = _evacuation_target(plat, schedule, crash, vm)
            if target is None:
                report.stranded_vms += 1
                report.records.append(EvacuationRecord(
                    vm_id=vm_id,
                    from_server=crash.server_id,
                    to_server=None,
                    stranded=True,
                    downtime_seconds=crash.duration_min * 60.0,
                ))
                continue
            cost = migrate(plat, vm, target.server_id)
            report.evacuated_vms += 1
            report.total_data_moved_gb += cost.data_moved_gb
            report.total_migration_seconds += cost.total_seconds
            report.records.append(EvacuationRecord(
                vm_id=vm_id,
                from_server=crash.server_id,
                to_server=target.server_id,
                stranded=False,
                downtime_seconds=cost.downtime_seconds,
                cost=cost,
            ))
    plat.validate()
    return report
