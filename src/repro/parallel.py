"""Process-pool execution of per-app workload series jobs.

At paper scale (20k VMs, 92 days at 1-minute resolution) the study
spends most of its wall time rendering CPU/bandwidth series.  Placement
is inherently sequential (it consumes shared RNG streams and mutates the
platform), but every app's series block draws from its own named
substream — see :mod:`repro.workload.series` — so the blocks are
mutually independent.  :func:`run_series_jobs` fans them out over a
``multiprocessing`` pool and yields rendered blocks **in submission
order**, so the parent inserts results deterministically regardless of
worker count or completion order.

Each worker is told only (seed, recipe, scenario time knobs) once at
pool start; a dispatched job ships an app id, a profile, and a VM count.
The worker recreates the app's RNG substream locally, renders the block
(its ``SERIES_CHUNK_VMS`` chunks in order), and hands the float32 rows
back.  Worker-side spans are recorded into a private
:class:`~repro.perf.PerfRegistry` that the parent merges, so no timing
is lost to process boundaries (merged ``cpu_s`` sums across processes
and can legitimately exceed the parent's wall time).

Shared-memory handoff
---------------------

By default the rows travel through a ring of
:mod:`multiprocessing.shared_memory` slot buffers instead of being
pickled over the result pipe: a worker copies its finished block into a
free slot and returns a tiny :class:`_ShmBlockRef` descriptor; the
parent copies the rows back out and recycles the slot.  The ring holds
``workers + 2`` slots and task submission is windowed to the slot
count, which guarantees the head-of-line job can always obtain a slot
(no deadlock) while out-of-order completions are bounded.  A block too
large for a slot transparently falls back to pickling.  Set
``handoff="pickle"`` (or ``REPRO_NO_SHM=1``) to force the legacy
transport — ``scripts/bench_study.py --handoff-bench`` measures the
difference and records it in ``BENCH_study.json``.

``--jobs 1`` (the default) renders in-process through the *same*
per-app function, which is what makes serial and parallel output
bit-identical by construction.  Worker pools require the ``fork`` start
method (the cheap, no-reimport path); where it is unavailable the
executor falls back to serial rendering with a journal warning, and a
pool that fails to *start* raises :class:`~repro.errors.ParallelError`
instead of a cryptic pickling failure.

Supervision
-----------

The pool is *supervised* (see :mod:`repro.resilience`): workers are
plain forked processes the parent watches rather than a fire-and-forget
``multiprocessing.Pool``.  Every worker carries a heartbeat thread
stamping a shared clock slot; the parent's watchdog detects (a) workers
that exited without reporting (OOM kill, SIGKILL, crash), (b) jobs
whose wall-clock exceeds the per-job timeout, and (c) wedged workers
whose heartbeat goes stale — and in all three cases kills the worker,
respawns a fresh one, and reschedules the job with seeded exponential
backoff.  Transient job *errors* (an :class:`~repro.errors.InjectedFault`
from a chaos failpoint, an OSError from flaky storage) are retried the
same way; a job that keeps failing past its attempt budget raises
:class:`~repro.errors.QuarantineError` with full context — the study
fails loudly instead of hanging or silently dropping an app's series.
Because rendering is a pure function of (seed, recipe, job), a retried
job reproduces the exact bytes of a first-try success, so supervision
changes timings, never results; the retry/restart journal events are
volatile (:data:`repro.obs.VOLATILE_EVENT_TYPES`) and chaos runs
canonicalise bit-identical to clean runs.

A SIGKILLed worker can in principle die mid-write on the shared result
pipe; the parent treats undecodable queue reads as transient and relies
on the watchdog, and injected kills (``pool.kill_worker``) are fired at
dispatch time — before the victim starts writing — so chaos runs do not
exercise that race.

Task farm
---------

:class:`TaskFarm` is the second, coarser executor: whole units of work
(one sweep cell = one full :class:`~repro.study.EdgeStudy`) in
*non-daemonic* forked processes.  ``multiprocessing.Pool`` workers are
daemonic and may not have children, which would forbid a cell from
starting its own series pool; farm workers are plain forked processes,
so nesting works.  A worker that dies without reporting (OOM kill,
SIGKILL) surfaces as a failed :class:`TaskOutcome` instead of hanging
the parent.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

try:
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - non-POSIX minimal builds
    shared_memory = None

from .config import Scenario
from .errors import (
    ConfigurationError,
    InjectedFault,
    ParallelError,
    QuarantineError,
)
from .perf import PerfRegistry
from .resilience import RetryPolicy, SupervisionConfig, failpoint, fire
from .resilience.retry import call_with_retry
from .workload.patterns import time_axis_minutes
from .workload.series import (
    SeasonCache,
    SeriesBlock,
    SeriesJob,
    SeriesRecipe,
    job_rng,
    render_series_job,
)

#: Hard cap on one shared-memory slot; blocks larger than the resolved
#: slot size fall back to pickle transport.  Override (in MiB) with
#: ``REPRO_SHM_SLOT_MB``.
SHM_SLOT_CAP_BYTES = 128 << 20

#: Environment kill-switch: any non-empty value forces pickle handoff.
SHM_DISABLE_ENV = "REPRO_NO_SHM"

#: Accepted ``handoff`` transports for pooled rendering.
HANDOFF_MODES = ("shm", "pickle")


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means all CPU cores.

    Raises:
        ConfigurationError: on negative values.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(
            f"jobs must be >= 0 (0 = all CPU cores), got {jobs}")
    return int(jobs)


@dataclass(frozen=True)
class _WorkerSetup:
    """Everything a worker process needs besides the jobs themselves."""

    seed: int
    recipe: SeriesRecipe
    trace_days: int
    cpu_interval_minutes: int
    bw_interval_minutes: int


@dataclass(frozen=True)
class _ShmBlockRef:
    """A rendered block parked in a shared-memory slot.

    Crosses the result pipe instead of the row payload: the parent
    rebuilds the :class:`SeriesBlock` from the slot and recycles it.
    """

    slot: int
    app_id: str
    vm_count: int
    cpu_points: int
    bw_points: int
    private: bool
    mean_bws: np.ndarray
    perf: PerfRegistry | None


#: Per-worker-process state installed by :func:`_init_worker`.
_WORKER: dict | None = None


def _init_worker(setup: _WorkerSetup, shm_names=None, free_slots=None,
                 slot_bytes: int = 0) -> None:
    """Pool initializer: precompute the time axes and season cache once."""
    global _WORKER
    _WORKER = {
        "setup": setup,
        "cpu_minutes": time_axis_minutes(setup.trace_days,
                                         setup.cpu_interval_minutes),
        "bw_minutes": time_axis_minutes(setup.trace_days,
                                        setup.bw_interval_minutes),
        "seasons": SeasonCache(),
    }
    if shm_names is not None:
        _WORKER["shm"] = {
            "names": shm_names,
            "free": free_slots,
            "slot_bytes": slot_bytes,
            "segments": {},
        }


def _worker_segment(shm_cfg: dict, slot: int):
    """Attach (and memoise) one ring segment inside a worker."""
    segment = shm_cfg["segments"].get(slot)
    if segment is None:
        segment = shared_memory.SharedMemory(name=shm_cfg["names"][slot])
        shm_cfg["segments"][slot] = segment
    return segment


def _render_in_worker(job: SeriesJob) -> SeriesBlock | _ShmBlockRef:
    """Render one job inside a worker, with a private perf registry.

    With a shared-memory ring configured, the finished rows are copied
    into a free slot and only a :class:`_ShmBlockRef` travels back;
    oversized blocks return whole (pickle fallback).
    """
    state = _WORKER
    if state is None:  # pragma: no cover - pool misconfiguration guard
        raise RuntimeError("series worker used before initialisation")
    setup: _WorkerSetup = state["setup"]
    perf = PerfRegistry()
    rng = job_rng(setup.seed, setup.recipe, job.app_id)
    block = render_series_job(job, setup.recipe, state["cpu_minutes"],
                              state["bw_minutes"], rng,
                              seasons=state["seasons"], perf=perf)
    block.perf = perf
    shm_cfg = state.get("shm")
    if shm_cfg is None:
        return block
    parts = [block.cpu_rows, block.bw_rows]
    if block.private_rows is not None:
        parts.append(block.private_rows)
    if sum(part.nbytes for part in parts) > shm_cfg["slot_bytes"]:
        return block
    failpoint("shm.acquire", job.app_id)
    slot = shm_cfg["free"].get()
    intent = state.get("slot_intent")
    if intent is not None:
        # Publish which slot this worker holds *before* using it, so the
        # supervisor can account the slot as leaked if we die mid-job.
        intent[state["worker_index"]] = slot
    view = np.frombuffer(_worker_segment(shm_cfg, slot).buf,
                         dtype=np.float32)
    offset = 0
    for part in parts:
        view[offset:offset + part.size] = part.ravel()
        offset += part.size
    return _ShmBlockRef(
        slot=slot, app_id=block.app_id, vm_count=job.vm_count,
        cpu_points=block.cpu_rows.shape[1],
        bw_points=block.bw_rows.shape[1],
        private=block.private_rows is not None,
        mean_bws=block.mean_bws, perf=perf,
    )


def _block_from_ref(ref: _ShmBlockRef, segments) -> SeriesBlock:
    """Rebuild a block from its shared-memory slot (copies the rows)."""
    view = np.frombuffer(segments[ref.slot].buf, dtype=np.float32)
    offset = 0

    def take(points: int) -> np.ndarray:
        nonlocal offset
        size = ref.vm_count * points
        rows = view[offset:offset + size].reshape(ref.vm_count,
                                                  points).copy()
        offset += size
        return rows

    cpu_rows = take(ref.cpu_points)
    bw_rows = take(ref.bw_points)
    private_rows = take(ref.bw_points) if ref.private else None
    return SeriesBlock(app_id=ref.app_id, mean_bws=ref.mean_bws,
                       cpu_rows=cpu_rows, bw_rows=bw_rows,
                       private_rows=private_rows, perf=ref.perf)


def _pool_context() -> multiprocessing.context.BaseContext | None:
    """The fork context, or ``None`` where fork is unavailable.

    The pool requires fork: workers inherit the initializer arguments
    (including live shared-memory queue handles) without pickling, and
    start cheaply without re-importing the package.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def _slot_bytes_for(jobs_list: Sequence[SeriesJob],
                    setup: _WorkerSetup) -> int:
    """Resolved ring-slot size: the largest block, capped."""
    minutes_per_day = 24 * 60
    cpu_points = setup.trace_days * minutes_per_day \
        // setup.cpu_interval_minutes
    bw_points = setup.trace_days * minutes_per_day \
        // setup.bw_interval_minutes
    per_vm = cpu_points + bw_points * (2 if setup.recipe.private else 1)
    largest = max(job.vm_count for job in jobs_list) * per_vm * 4
    cap = SHM_SLOT_CAP_BYTES
    override = os.environ.get("REPRO_SHM_SLOT_MB")
    if override:
        try:
            cap = max(1, int(override)) << 20
        except ValueError:
            pass
    return max(1, min(largest, cap))


def run_series_jobs(jobs_list: Sequence[SeriesJob], scenario: Scenario,
                    recipe: SeriesRecipe, n_jobs: int = 1,
                    perf: PerfRegistry | None = None,
                    handoff: str = "shm",
                    supervision: SupervisionConfig | None = None,
                    ) -> Iterator[SeriesBlock]:
    """Render series jobs, yielding blocks in submission order.

    ``n_jobs == 1`` (or a single job) renders inline; otherwise a pool
    of ``min(n_jobs, len(jobs_list))`` supervised worker processes
    renders concurrently with windowed submission, so the caller sees
    the same sequence of bit-identical blocks.  ``handoff`` selects the
    pooled result transport (``"shm"`` or ``"pickle"``); it changes
    speed, never bytes.  ``supervision`` bundles the watchdog timeouts
    and retry budget (default: :meth:`SupervisionConfig.from_env`).

    Raises:
        ConfigurationError: on a bad ``n_jobs`` or ``handoff`` value.
        ParallelError: when the worker pool fails to start, or the
            shared-memory ring is exhausted by repeated worker deaths.
        QuarantineError: when one job exhausts its retry budget.
    """
    if handoff not in HANDOFF_MODES:
        raise ConfigurationError(
            f"unknown handoff {handoff!r}, expected one of {HANDOFF_MODES}")
    n_jobs = resolve_jobs(n_jobs)
    if supervision is None:
        supervision = SupervisionConfig.from_env()
    journal = perf.journal if perf is not None else None
    setup = _WorkerSetup(
        seed=scenario.seed, recipe=recipe,
        trace_days=scenario.trace_days,
        cpu_interval_minutes=scenario.cpu_interval_minutes,
        bw_interval_minutes=scenario.bw_interval_minutes,
    )
    serial = n_jobs == 1 or len(jobs_list) <= 1
    ctx = None
    if not serial:
        ctx = _pool_context()
        if ctx is None:
            if journal is not None:
                journal.warn(
                    "fork start method unavailable on this platform; "
                    "rendering series serially", jobs=n_jobs)
            serial = True
    if journal is not None:
        # Dispatch events come first in both modes (submission is eager),
        # so journals are identical across --jobs settings.
        for job in jobs_list:
            journal.emit("job_dispatch", app_id=job.app_id,
                         vm_count=job.vm_count)
    if serial:
        yield from _run_serial(jobs_list, setup, perf, journal,
                               supervision.retry)
        return
    yield from _run_pooled(jobs_list, setup, ctx, min(n_jobs, len(jobs_list)),
                           handoff, perf, journal, supervision)


#: Parent watchdog poll and worker heartbeat stamp intervals (seconds).
_POOL_POLL_S = 0.05
_HEARTBEAT_STAMP_S = 0.2

#: Task-queue sentinel telling a worker to exit cleanly.
_STOP = None


def _supervised_worker(index: int, gen: int, setup: _WorkerSetup, tasks,
                       results, heartbeats, slot_intent, shm_names,
                       free_slots, slot_bytes: int) -> None:
    """Worker main loop: render dispatched jobs until the stop sentinel.

    A daemon thread stamps ``heartbeats[index]`` continuously so the
    parent can tell a busy worker from a wedged one.  Job errors are
    reported as outcomes, never raised: the worker survives a failed
    job and stays available for the next dispatch.  ``gen`` tags every
    result with the spawn generation, so a straggler message from a
    killed predecessor cannot be mistaken for the respawn's work.
    """
    _init_worker(setup, shm_names, free_slots, slot_bytes)
    state = _WORKER
    state["worker_index"] = index
    state["slot_intent"] = slot_intent

    def stamp() -> None:  # pragma: no cover - timing-dependent thread
        while True:
            heartbeats[index] = time.monotonic()
            time.sleep(_HEARTBEAT_STAMP_S)

    threading.Thread(target=stamp, daemon=True).start()
    while True:
        message = tasks.get()
        if message is _STOP:
            return
        job_index, job = message
        try:
            outcome = _render_in_worker(job)
            results.put((index, gen, job_index, True, outcome))
        except BaseException as exc:  # noqa: BLE001 - relayed to parent
            if slot_intent is not None and slot_intent[index] >= 0:
                # Acquired a slot but never shipped a ref for it: hand
                # the slot straight back so it is not stranded.
                free_slots.put(slot_intent[index])
            results.put((index, gen, job_index, False,
                         f"{type(exc).__name__}: {exc}"))
        finally:
            if slot_intent is not None:
                slot_intent[index] = -1


@dataclass
class _JobState:
    """Supervisor-side lifecycle of one series job."""

    job: SeriesJob
    index: int
    attempts: int = 0
    phase: str = "waiting"  # waiting | inflight | retry | done
    ready_at: float = 0.0
    deadline: float | None = None


class _PoolWorker:
    """One supervised worker process plus its private task queue."""

    __slots__ = ("index", "gen", "proc", "tasks", "current")

    def __init__(self, index: int, gen: int, proc, tasks) -> None:
        self.index = index
        self.gen = gen
        self.proc = proc
        self.tasks = tasks
        self.current: int | None = None


def _run_pooled(jobs_list: Sequence[SeriesJob], setup: _WorkerSetup,
                ctx, processes: int, handoff: str,
                perf: PerfRegistry | None, journal,
                supervision: SupervisionConfig) -> Iterator[SeriesBlock]:
    """The supervised pool path: windowed submission, shm transport,
    watchdog-driven retry.

    Submission is windowed to the slot count minus any slots leaked by
    dead workers: in-flight jobs never exceed the free slots, so the
    head-of-line job can always obtain one and in-order consumption
    cannot deadlock.  Results are drained eagerly (rows copied out,
    slot recycled, block buffered) and yielded in submission order, so
    perf accounting and ``job_complete`` events keep the serial order.
    """
    use_shm = (handoff == "shm" and shared_memory is not None
               and not os.environ.get(SHM_DISABLE_ENV))
    n_slots = processes + 2
    policy = supervision.retry
    segments: list = []
    free_slots = None
    shm_names = None
    slot_intent = None
    slot_bytes = 0
    if use_shm:
        slot_bytes = _slot_bytes_for(jobs_list, setup)
        try:
            for _ in range(n_slots):
                segments.append(shared_memory.SharedMemory(
                    create=True, size=slot_bytes))
        except OSError as exc:
            for segment in segments:
                segment.close()
                segment.unlink()
            raise ParallelError(
                f"could not allocate {n_slots} shared-memory slots of "
                f"{slot_bytes} bytes: {exc}") from exc
        shm_names = [segment.name for segment in segments]
        free_slots = ctx.Queue()
        for index in range(n_slots):
            free_slots.put(index)
        slot_intent = ctx.Array("i", processes, lock=False)
        for index in range(processes):
            slot_intent[index] = -1
    heartbeats = ctx.Array("d", processes, lock=False)
    results = ctx.Queue()
    states = [_JobState(job=job, index=index)
              for index, job in enumerate(jobs_list)]
    workers: list[_PoolWorker | None] = [None] * processes
    retrying: set[int] = set()
    buffered: dict[int, SeriesBlock] = {}
    next_new = 0
    next_yield = 0
    started = 0
    leaked = 0
    shm_blocks = pickle_blocks = 0
    shm_bytes = 0

    generations = [0] * processes

    def spawn(index: int) -> None:
        generations[index] += 1
        tasks = ctx.SimpleQueue()
        heartbeats[index] = time.monotonic()
        proc = ctx.Process(
            target=_supervised_worker,
            args=(index, generations[index], setup, tasks, results,
                  heartbeats, slot_intent, shm_names, free_slots,
                  slot_bytes),
            daemon=True)
        try:
            proc.start()
        except OSError as exc:
            raise ParallelError(
                f"could not start series worker {index} of {processes} "
                f"(fork): {exc}") from exc
        workers[index] = _PoolWorker(index, generations[index], proc, tasks)

    def get_result(timeout: float):
        try:
            return results.get(timeout=timeout)
        except queue_mod.Empty:
            return None
        except (EOFError, OSError, ValueError) as exc:
            # A worker killed mid-write can tear the result pipe; the
            # watchdog recovers the job, so drop the fragment.
            if journal is not None:
                journal.warn("undecodable pool result dropped",
                             error=str(exc))
            return None

    def schedule_retry(state: _JobState, reason: str, now: float) -> None:
        if state.attempts >= policy.max_attempts:
            if journal is not None:
                journal.emit("job_quarantined", app_id=state.job.app_id,
                             attempts=state.attempts, error=str(reason))
            raise QuarantineError(
                f"series job {state.job.app_id!r} failed after "
                f"{state.attempts} attempts; last error: {reason}")
        delay = policy.delay(state.job.app_id, state.attempts)
        state.phase = "retry"
        state.ready_at = now + delay
        retrying.add(state.index)
        if journal is not None:
            journal.emit("job_retry", app_id=state.job.app_id,
                         attempt=state.attempts, delay_s=round(delay, 6),
                         error=str(reason))

    def handle(message, now: float) -> None:
        nonlocal shm_blocks, pickle_blocks, shm_bytes
        worker_index, gen, job_index, ok, payload = message
        state = states[job_index]
        worker = workers[worker_index]
        if worker is not None and worker.gen == gen \
                and worker.current == job_index:
            worker.current = None
        if state.phase == "done":
            # Stale duplicate from a worker presumed dead: recycle its
            # slot, drop the copy (its perf was never merged, so the
            # accepted render stays exactly one per job).
            if ok and isinstance(payload, _ShmBlockRef):
                free_slots.put(payload.slot)
            return
        if not ok:
            if state.phase == "inflight":
                schedule_retry(state, str(payload), now)
            return
        retrying.discard(job_index)
        if isinstance(payload, _ShmBlockRef):
            block = _block_from_ref(payload, segments)
            free_slots.put(payload.slot)
            shm_blocks += 1
            shm_bytes += (block.cpu_rows.nbytes + block.bw_rows.nbytes
                          + (block.private_rows.nbytes
                             if block.private_rows is not None else 0))
        else:
            block = payload
            pickle_blocks += 1
        state.phase = "done"
        buffered[job_index] = block

    def handle_death(worker: _PoolWorker, reason: str, now: float) -> None:
        nonlocal leaked
        worker.proc.join()
        # Its final result may have been flushed before death: drain the
        # queue so a completed job is accepted instead of retried.
        while True:
            message = get_result(0)
            if message is None:
                break
            handle(message, now)
        if slot_intent is not None and slot_intent[worker.index] >= 0:
            # The worker held a slot it never shipped: count it leaked
            # and shrink the window.  Never re-free it — the worker may
            # have died between shipping and clearing the intent, and a
            # double-freed slot would corrupt two blocks at once.
            leaked += 1
            slot_intent[worker.index] = -1
            if n_slots - leaked < 1:
                raise ParallelError(
                    "shared-memory ring exhausted by repeated worker "
                    f"deaths ({leaked} of {n_slots} slots leaked)")
        job_index = worker.current
        worker.current = None
        if journal is not None:
            journal.emit(
                "worker_restart", worker=worker.index, reason=reason,
                app_id=(states[job_index].job.app_id
                        if job_index is not None else ""))
        if job_index is not None and states[job_index].phase == "inflight":
            schedule_retry(states[job_index], f"worker died ({reason})",
                           now)
        try:
            worker.tasks.close()
        except (OSError, AttributeError):  # pragma: no cover
            pass
        spawn(worker.index)

    def watchdog(now: float) -> None:
        for worker in workers:
            if worker is None:
                continue
            exitcode = worker.proc.exitcode
            if exitcode is not None:
                handle_death(worker, f"exit code {exitcode}", now)
                continue
            if worker.current is not None:
                deadline = states[worker.current].deadline
                if deadline is not None and now > deadline:
                    worker.proc.kill()
                    handle_death(worker, "job timeout", now)
                    continue
            staleness = supervision.heartbeat_timeout_s
            if staleness is not None \
                    and now - heartbeats[worker.index] > staleness:
                worker.proc.kill()
                handle_death(worker, "heartbeat stale", now)

    def dispatch(worker: _PoolWorker, state: _JobState, now: float) -> None:
        state.attempts += 1
        state.phase = "inflight"
        state.deadline = (now + supervision.job_timeout_s
                          if supervision.job_timeout_s is not None else None)
        worker.current = state.index
        worker.tasks.put((state.index, state.job))
        if fire("pool.kill_worker"):
            # Supervisor-side chaos: kill at dispatch, before the victim
            # can start writing results, so the pipe stays intact.
            worker.proc.kill()

    try:
        for index in range(processes):
            spawn(index)
        last_watchdog = time.monotonic()
        while next_yield < len(states):
            now = time.monotonic()
            for worker in workers:
                if worker is None or worker.current is not None:
                    continue
                ready = [i for i in retrying if states[i].ready_at <= now]
                if ready:
                    state = states[min(ready)]
                    retrying.discard(state.index)
                elif next_new < len(states) \
                        and started - next_yield < n_slots - leaked:
                    state = states[next_new]
                    next_new += 1
                    started += 1
                else:
                    break
                dispatch(worker, state, now)
            message = get_result(_POOL_POLL_S)
            now = time.monotonic()
            if message is not None:
                handle(message, now)
                while True:  # drain without blocking
                    message = get_result(0)
                    if message is None:
                        break
                    handle(message, now)
            # Liveness: a steady result stream from healthy workers must
            # not starve detection of the one that died.
            if message is None or now - last_watchdog > 5 * _POOL_POLL_S:
                watchdog(now)
                last_watchdog = now
            while next_yield in buffered:
                block = buffered.pop(next_yield)
                state = states[next_yield]
                _account_block(state.job, block.perf, perf, journal)
                block.perf = None
                next_yield += 1
                if next_yield == len(states) and journal is not None \
                        and use_shm:
                    # Emitted before the final yield: consumers like the
                    # generators' zip() never advance the iterator past
                    # its last block, so a post-loop emit would be lost.
                    journal.emit("shm_handoff", blocks=shm_blocks,
                                 fallback_blocks=pickle_blocks,
                                 slots=n_slots, slot_bytes=slot_bytes,
                                 bytes=shm_bytes, workers=processes)
                yield block
    finally:
        for worker in workers:
            if worker is None:
                continue
            if worker.proc.exitcode is None:
                try:
                    worker.tasks.put(_STOP)
                except (OSError, ValueError):  # pragma: no cover
                    pass
                worker.proc.join(timeout=1.0)
            if worker.proc.exitcode is None:
                worker.proc.kill()
                worker.proc.join()
        for q in (results, free_slots):
            if q is not None:
                q.close()
                q.cancel_join_thread()
        for segment in segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass


def _account_block(job: SeriesJob, worker_perf: PerfRegistry | None,
                   perf: PerfRegistry | None, journal) -> None:
    """Fold one rendered job's telemetry into the parent's registry.

    Both execution paths route per-job spans through
    :meth:`PerfRegistry.merge` and emit the same ``job_complete`` event,
    which is what keeps serial and pooled journals identical.
    """
    if perf is not None and worker_perf is not None:
        perf.merge(worker_perf)
    if journal is not None:
        wall = (worker_perf.wall_s("series_render")
                if worker_perf is not None else 0.0)
        journal.emit("job_complete", app_id=job.app_id,
                     vms=job.vm_count, wall_s=round(wall, 6))


# ---- coarse-grained task farm (sweep cells) ------------------------------


@dataclass(frozen=True)
class TaskOutcome:
    """The result of one farmed task: a value or a one-line error."""

    task_id: str
    ok: bool
    value: object = None
    error: str | None = None


def _farm_task(fn: Callable, task_id: str, arg: object, results) -> None:
    """Worker entry: run one task, report exactly one outcome tuple."""
    try:
        value = fn(arg)
    except BaseException as exc:  # noqa: BLE001 - relayed to the parent
        results.put((task_id, False, f"{type(exc).__name__}: {exc}"))
        raise SystemExit(1)
    results.put((task_id, True, value))


class TaskFarm:
    """Run independent heavyweight tasks in non-daemon forked workers.

    Tasks are submitted as ``(task_id, fn, arg)`` and collected with
    :meth:`next_outcome` in completion order, which lets a scheduler
    unlock dependent work (a sweep group's followers) the moment its
    prerequisite finishes.  At ``n_jobs == 1`` — or where fork is
    unavailable — submission queues the task and :meth:`next_outcome`
    runs it inline, so scheduling semantics are identical either way.

    Unlike :func:`run_series_jobs`'s pool, workers are **not** daemonic:
    a farmed task may start its own series pool (nested parallelism),
    which ``multiprocessing.Pool`` forbids its daemon workers.

    Supervision: a worker that dies silently (OOM kill, SIGKILL, the
    ``farm.kill_worker`` chaos site) is retried under ``retry`` before
    surfacing as a failed outcome, and a task failing with an
    :class:`~repro.errors.InjectedFault` (the ``sweep.cell`` chaos
    site) is resubmitted the same way.  Genuine task exceptions are
    never retried — a sweep cell owns its internal I/O retries, so a
    failure that reaches the farm is diagnostic, not transient.
    """

    #: Seconds to wait for an in-flight result before re-checking
    #: worker liveness (and, after a dead worker is seen, the grace
    #: period for its possibly-buffered final result).
    _POLL_S = 0.25

    def __init__(self, n_jobs: int = 1, journal=None,
                 retry: RetryPolicy | None = None) -> None:
        self.n_jobs = resolve_jobs(n_jobs)
        self.journal = journal
        self.retry = retry if retry is not None \
            else RetryPolicy(max_attempts=2)
        ctx = _pool_context() if self.n_jobs > 1 else None
        if self.n_jobs > 1 and ctx is None:
            if journal is not None:
                journal.warn("fork start method unavailable; running "
                             "farmed tasks serially", jobs=self.n_jobs)
        self._ctx = ctx
        self._serial = ctx is None or self.n_jobs == 1
        self._results = ctx.Queue() if not self._serial else None
        self._procs: dict[str, multiprocessing.process.BaseProcess] = {}
        self._waiting: deque = deque()
        self._attempts: dict[str, int] = {}
        self._specs: dict[str, tuple[Callable, object]] = {}
        self._outstanding = 0

    @property
    def outstanding(self) -> int:
        """Tasks submitted but not yet returned by :meth:`next_outcome`."""
        return self._outstanding

    def submit(self, task_id: str, fn: Callable, arg: object) -> None:
        """Enqueue one task; starts immediately if a worker slot is free."""
        if any(task_id == queued[0] for queued in self._waiting) \
                or task_id in self._procs:
            raise ConfigurationError(
                f"task id {task_id!r} is already outstanding")
        self._waiting.append((task_id, fn, arg))
        self._specs[task_id] = (fn, arg)
        self._outstanding += 1
        self._fill()

    def _fill(self) -> None:
        if self._serial:
            return
        while self._waiting and len(self._procs) < self.n_jobs:
            task_id, fn, arg = self._waiting.popleft()
            self._attempts[task_id] = self._attempts.get(task_id, 0) + 1
            proc = self._ctx.Process(
                target=_farm_task, args=(fn, task_id, arg, self._results),
                daemon=False)
            try:
                proc.start()
            except OSError as exc:
                raise ParallelError(
                    f"could not fork worker for task {task_id!r}: "
                    f"{exc}") from exc
            if fire("farm.kill_worker"):
                # Supervisor-side chaos: kill the fresh worker before it
                # reports, exercising the silent-death retry path.
                proc.kill()
            self._procs[task_id] = proc

    def _retry_task(self, task_id: str, event: str, **fields) -> None:
        """Resubmit a task after a retryable failure (with backoff)."""
        attempt = self._attempts.get(task_id, 1)
        if self.journal is not None:
            self.journal.emit(event, task=task_id, attempt=attempt,
                              **fields)
        time.sleep(self.retry.delay(task_id, attempt))
        fn, arg = self._specs[task_id]
        self._waiting.append((task_id, fn, arg))
        self._fill()

    def _finish(self, task_id: str) -> None:
        """Drop per-task supervision state once an outcome is final."""
        self._attempts.pop(task_id, None)
        self._specs.pop(task_id, None)
        self._outstanding -= 1
        self._fill()

    def next_outcome(self) -> TaskOutcome:
        """Block until any outstanding task finishes; return its outcome.

        Raises:
            ConfigurationError: when no task is outstanding.
        """
        if not self._outstanding:
            raise ConfigurationError("no outstanding tasks to wait for")
        if self._serial:
            return self._serial_outcome()
        while True:
            message = None
            try:
                message = self._results.get(timeout=self._POLL_S)
            except queue_mod.Empty:
                dead = [tid for tid, proc in self._procs.items()
                        if proc.exitcode is not None]
                if dead:
                    # A worker exited: either its final result is still
                    # in the pipe (grace get) or it died silently
                    # (SIGKILL, OOM) and is retried or reported failed.
                    try:
                        message = self._results.get(
                            timeout=self._POLL_S * 4)
                    except queue_mod.Empty:
                        outcome = self._silent_death(dead[0])
                        if outcome is not None:
                            return outcome
                        continue
            if message is None:
                continue
            task_id, ok, payload = message
            proc = self._procs.pop(task_id, None)
            if proc is not None:
                proc.join()
            if not ok and str(payload).startswith("InjectedFault") \
                    and self._attempts.get(task_id, 1) \
                    < self.retry.max_attempts:
                self._retry_task(task_id, "job_retry", error=str(payload))
                continue
            self._finish(task_id)
            if ok:
                return TaskOutcome(task_id, True, value=payload)
            return TaskOutcome(task_id, False, error=str(payload))

    def _silent_death(self, task_id: str) -> TaskOutcome | None:
        """Handle a worker that exited without reporting.

        Returns the failed outcome once the retry budget is spent,
        ``None`` after scheduling a retry.
        """
        proc = self._procs.pop(task_id)
        proc.join()
        if self._attempts.get(task_id, 1) < self.retry.max_attempts:
            self._retry_task(task_id, "worker_restart",
                             reason=f"exit code {proc.exitcode}")
            return None
        self._finish(task_id)
        return TaskOutcome(
            task_id, False,
            error=f"worker died without reporting "
                  f"(exit code {proc.exitcode})")

    def _serial_outcome(self) -> TaskOutcome:
        """The inline path, with the same injected-fault retry policy."""
        task_id, fn, arg = self._waiting.popleft()
        self._specs.pop(task_id, None)
        self._outstanding -= 1
        attempt = 0
        while True:
            attempt += 1
            try:
                value = fn(arg)
            except InjectedFault as exc:
                if attempt < self.retry.max_attempts:
                    if self.journal is not None:
                        self.journal.emit(
                            "job_retry", task=task_id, attempt=attempt,
                            error=f"{type(exc).__name__}: {exc}")
                    time.sleep(self.retry.delay(task_id, attempt))
                    continue
                return TaskOutcome(task_id, False,
                                   error=f"{type(exc).__name__}: {exc}")
            except Exception as exc:  # noqa: BLE001 - mirrored worker path
                return TaskOutcome(task_id, False,
                                   error=f"{type(exc).__name__}: {exc}")
            return TaskOutcome(task_id, True, value=value)

    def close(self) -> None:
        """Terminate any still-running workers and drop queued tasks."""
        self._waiting.clear()
        for proc in self._procs.values():
            if proc.exitcode is None:
                proc.terminate()
            proc.join()
        self._procs.clear()
        self._attempts.clear()
        self._specs.clear()
        self._outstanding = 0
        if self._results is not None:
            self._results.close()
            self._results = None

    def __enter__(self) -> "TaskFarm":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _run_serial(jobs_list: Sequence[SeriesJob], setup: _WorkerSetup,
                perf: PerfRegistry | None, journal=None,
                policy: RetryPolicy | None = None) -> Iterator[SeriesBlock]:
    """The in-process path: same per-app renderer, no pool overhead.

    Each job records into a private registry that is merged into the
    parent's — mirroring what the pool does across the process boundary —
    so telemetry (and any attached journal) cannot tell the paths apart.
    Transient render failures (injected faults, flaky I/O) retry under
    the same policy as the pool: each attempt rebuilds the RNG substream
    and a fresh perf registry, so a retried render is bit-identical to a
    first-try success and counts exactly once.
    """
    if policy is None:
        policy = RetryPolicy()
    cpu_minutes = time_axis_minutes(setup.trace_days,
                                    setup.cpu_interval_minutes)
    bw_minutes = time_axis_minutes(setup.trace_days,
                                   setup.bw_interval_minutes)
    seasons = SeasonCache()
    for job in jobs_list:
        def attempt(job=job):
            rng = job_rng(setup.seed, setup.recipe, job.app_id)
            job_perf = PerfRegistry() if perf is not None else None
            block = render_series_job(job, setup.recipe, cpu_minutes,
                                      bw_minutes, rng, seasons=seasons,
                                      perf=job_perf)
            return block, job_perf

        def on_retry(attempt_no, delay_s, exc, job=job):
            if journal is not None:
                journal.emit("job_retry", app_id=job.app_id,
                             attempt=attempt_no,
                             delay_s=round(delay_s, 6),
                             error=f"{type(exc).__name__}: {exc}")

        try:
            block, job_perf = call_with_retry(
                attempt, policy=policy, token=job.app_id,
                on_retry=on_retry)
        except (InjectedFault, OSError) as exc:
            if journal is not None:
                journal.emit("job_quarantined", app_id=job.app_id,
                             attempts=policy.max_attempts,
                             error=f"{type(exc).__name__}: {exc}")
            raise QuarantineError(
                f"series job {job.app_id!r} failed after "
                f"{policy.max_attempts} attempts; last error: "
                f"{type(exc).__name__}: {exc}") from exc
        _account_block(job, job_perf, perf, journal)
        yield block
