"""Process-pool execution of per-app workload series jobs.

At paper scale (20k VMs, 92 days at 1-minute resolution) the study
spends most of its wall time rendering CPU/bandwidth series.  Placement
is inherently sequential (it consumes shared RNG streams and mutates the
platform), but every app's series block draws from its own named
substream — see :mod:`repro.workload.series` — so the blocks are
mutually independent.  :func:`run_series_jobs` fans them out over a
``multiprocessing`` pool and yields rendered blocks **in submission
order**, so the parent inserts results deterministically regardless of
worker count or completion order.

Each worker is told only (seed, recipe, scenario time knobs) once at
pool start; a dispatched job ships an app id, a profile, and a VM count.
The worker recreates the app's RNG substream locally, renders the block
(its ``SERIES_CHUNK_VMS`` chunks in order), and sends the float32 rows
back.  Worker-side spans are recorded into a private
:class:`~repro.perf.PerfRegistry` that the parent merges, so no timing
is lost to process boundaries (merged ``cpu_s`` sums across processes
and can legitimately exceed the parent's wall time).

``--jobs 1`` (the default) renders in-process through the *same*
per-app function, which is what makes serial and parallel output
bit-identical by construction.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Iterator, Sequence

from .config import Scenario
from .errors import ConfigurationError
from .perf import PerfRegistry
from .workload.patterns import time_axis_minutes
from .workload.series import (
    SeasonCache,
    SeriesBlock,
    SeriesJob,
    SeriesRecipe,
    job_rng,
    render_series_job,
)


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means all CPU cores.

    Raises:
        ConfigurationError: on negative values.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(
            f"jobs must be >= 0 (0 = all CPU cores), got {jobs}")
    return int(jobs)


@dataclass(frozen=True)
class _WorkerSetup:
    """Everything a worker process needs besides the jobs themselves."""

    seed: int
    recipe: SeriesRecipe
    trace_days: int
    cpu_interval_minutes: int
    bw_interval_minutes: int


#: Per-worker-process state installed by :func:`_init_worker`.
_WORKER: dict | None = None


def _init_worker(setup: _WorkerSetup) -> None:
    """Pool initializer: precompute the time axes and season cache once."""
    global _WORKER
    _WORKER = {
        "setup": setup,
        "cpu_minutes": time_axis_minutes(setup.trace_days,
                                         setup.cpu_interval_minutes),
        "bw_minutes": time_axis_minutes(setup.trace_days,
                                        setup.bw_interval_minutes),
        "seasons": SeasonCache(),
    }


def _render_in_worker(job: SeriesJob) -> SeriesBlock:
    """Render one job inside a worker, with a private perf registry."""
    state = _WORKER
    if state is None:  # pragma: no cover - pool misconfiguration guard
        raise RuntimeError("series worker used before initialisation")
    setup: _WorkerSetup = state["setup"]
    perf = PerfRegistry()
    rng = job_rng(setup.seed, setup.recipe, job.app_id)
    block = render_series_job(job, setup.recipe, state["cpu_minutes"],
                              state["bw_minutes"], rng,
                              seasons=state["seasons"], perf=perf)
    block.perf = perf
    return block


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, no re-import) where available, else default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def run_series_jobs(jobs_list: Sequence[SeriesJob], scenario: Scenario,
                    recipe: SeriesRecipe, n_jobs: int = 1,
                    perf: PerfRegistry | None = None,
                    ) -> Iterator[SeriesBlock]:
    """Render series jobs, yielding blocks in submission order.

    ``n_jobs == 1`` (or a single job) renders inline; otherwise a pool of
    ``min(n_jobs, len(jobs_list))`` worker processes renders concurrently
    while ``imap`` preserves ordering.  Either way the caller sees the
    same sequence of bit-identical blocks.
    """
    n_jobs = resolve_jobs(n_jobs)
    journal = perf.journal if perf is not None else None
    setup = _WorkerSetup(
        seed=scenario.seed, recipe=recipe,
        trace_days=scenario.trace_days,
        cpu_interval_minutes=scenario.cpu_interval_minutes,
        bw_interval_minutes=scenario.bw_interval_minutes,
    )
    serial = n_jobs == 1 or len(jobs_list) <= 1
    if journal is not None:
        # Dispatch events come first in both modes (imap submits eagerly),
        # so journals are identical across --jobs settings.
        for job in jobs_list:
            journal.emit("job_dispatch", app_id=job.app_id,
                         vm_count=job.vm_count)
    if serial:
        yield from _run_serial(jobs_list, setup, perf, journal)
        return
    processes = min(n_jobs, len(jobs_list))
    with _pool_context().Pool(processes=processes, initializer=_init_worker,
                              initargs=(setup,)) as pool:
        for job, block in zip(jobs_list,
                              pool.imap(_render_in_worker, jobs_list,
                                        chunksize=1)):
            _account_block(job, block.perf, perf, journal)
            block.perf = None
            yield block


def _account_block(job: SeriesJob, worker_perf: PerfRegistry | None,
                   perf: PerfRegistry | None, journal) -> None:
    """Fold one rendered job's telemetry into the parent's registry.

    Both execution paths route per-job spans through
    :meth:`PerfRegistry.merge` and emit the same ``job_complete`` event,
    which is what keeps serial and pooled journals identical.
    """
    if perf is not None and worker_perf is not None:
        perf.merge(worker_perf)
    if journal is not None:
        wall = (worker_perf.wall_s("series_render")
                if worker_perf is not None else 0.0)
        journal.emit("job_complete", app_id=job.app_id,
                     vms=job.vm_count, wall_s=round(wall, 6))


def _run_serial(jobs_list: Sequence[SeriesJob], setup: _WorkerSetup,
                perf: PerfRegistry | None,
                journal=None) -> Iterator[SeriesBlock]:
    """The in-process path: same per-app renderer, no pool overhead.

    Each job records into a private registry that is merged into the
    parent's — mirroring what the pool does across the process boundary —
    so telemetry (and any attached journal) cannot tell the paths apart.
    """
    cpu_minutes = time_axis_minutes(setup.trace_days,
                                    setup.cpu_interval_minutes)
    bw_minutes = time_axis_minutes(setup.trace_days,
                                   setup.bw_interval_minutes)
    seasons = SeasonCache()
    for job in jobs_list:
        rng = job_rng(setup.seed, setup.recipe, job.app_id)
        job_perf = PerfRegistry() if perf is not None else None
        block = render_series_job(job, setup.recipe, cpu_minutes, bw_minutes,
                                  rng, seasons=seasons, perf=job_perf)
        _account_block(job, job_perf, perf, journal)
        yield block
