"""Process-pool execution of per-app workload series jobs.

At paper scale (20k VMs, 92 days at 1-minute resolution) the study
spends most of its wall time rendering CPU/bandwidth series.  Placement
is inherently sequential (it consumes shared RNG streams and mutates the
platform), but every app's series block draws from its own named
substream — see :mod:`repro.workload.series` — so the blocks are
mutually independent.  :func:`run_series_jobs` fans them out over a
``multiprocessing`` pool and yields rendered blocks **in submission
order**, so the parent inserts results deterministically regardless of
worker count or completion order.

Each worker is told only (seed, recipe, scenario time knobs) once at
pool start; a dispatched job ships an app id, a profile, and a VM count.
The worker recreates the app's RNG substream locally, renders the block
(its ``SERIES_CHUNK_VMS`` chunks in order), and hands the float32 rows
back.  Worker-side spans are recorded into a private
:class:`~repro.perf.PerfRegistry` that the parent merges, so no timing
is lost to process boundaries (merged ``cpu_s`` sums across processes
and can legitimately exceed the parent's wall time).

Shared-memory handoff
---------------------

By default the rows travel through a ring of
:mod:`multiprocessing.shared_memory` slot buffers instead of being
pickled over the result pipe: a worker copies its finished block into a
free slot and returns a tiny :class:`_ShmBlockRef` descriptor; the
parent copies the rows back out and recycles the slot.  The ring holds
``workers + 2`` slots and task submission is windowed to the slot
count, which guarantees the head-of-line job can always obtain a slot
(no deadlock) while out-of-order completions are bounded.  A block too
large for a slot transparently falls back to pickling.  Set
``handoff="pickle"`` (or ``REPRO_NO_SHM=1``) to force the legacy
transport — ``scripts/bench_study.py --handoff-bench`` measures the
difference and records it in ``BENCH_study.json``.

``--jobs 1`` (the default) renders in-process through the *same*
per-app function, which is what makes serial and parallel output
bit-identical by construction.  Worker pools require the ``fork`` start
method (the cheap, no-reimport path); where it is unavailable the
executor falls back to serial rendering with a journal warning, and a
pool that fails to *start* raises :class:`~repro.errors.ParallelError`
instead of a cryptic pickling failure.

Task farm
---------

:class:`TaskFarm` is the second, coarser executor: whole units of work
(one sweep cell = one full :class:`~repro.study.EdgeStudy`) in
*non-daemonic* forked processes.  ``multiprocessing.Pool`` workers are
daemonic and may not have children, which would forbid a cell from
starting its own series pool; farm workers are plain forked processes,
so nesting works.  A worker that dies without reporting (OOM kill,
SIGKILL) surfaces as a failed :class:`TaskOutcome` instead of hanging
the parent.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

try:
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - non-POSIX minimal builds
    shared_memory = None

from .config import Scenario
from .errors import ConfigurationError, ParallelError
from .perf import PerfRegistry
from .workload.patterns import time_axis_minutes
from .workload.series import (
    SeasonCache,
    SeriesBlock,
    SeriesJob,
    SeriesRecipe,
    job_rng,
    render_series_job,
)

#: Hard cap on one shared-memory slot; blocks larger than the resolved
#: slot size fall back to pickle transport.  Override (in MiB) with
#: ``REPRO_SHM_SLOT_MB``.
SHM_SLOT_CAP_BYTES = 128 << 20

#: Environment kill-switch: any non-empty value forces pickle handoff.
SHM_DISABLE_ENV = "REPRO_NO_SHM"

#: Accepted ``handoff`` transports for pooled rendering.
HANDOFF_MODES = ("shm", "pickle")


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means all CPU cores.

    Raises:
        ConfigurationError: on negative values.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(
            f"jobs must be >= 0 (0 = all CPU cores), got {jobs}")
    return int(jobs)


@dataclass(frozen=True)
class _WorkerSetup:
    """Everything a worker process needs besides the jobs themselves."""

    seed: int
    recipe: SeriesRecipe
    trace_days: int
    cpu_interval_minutes: int
    bw_interval_minutes: int


@dataclass(frozen=True)
class _ShmBlockRef:
    """A rendered block parked in a shared-memory slot.

    Crosses the result pipe instead of the row payload: the parent
    rebuilds the :class:`SeriesBlock` from the slot and recycles it.
    """

    slot: int
    app_id: str
    vm_count: int
    cpu_points: int
    bw_points: int
    private: bool
    mean_bws: np.ndarray
    perf: PerfRegistry | None


#: Per-worker-process state installed by :func:`_init_worker`.
_WORKER: dict | None = None


def _init_worker(setup: _WorkerSetup, shm_names=None, free_slots=None,
                 slot_bytes: int = 0) -> None:
    """Pool initializer: precompute the time axes and season cache once."""
    global _WORKER
    _WORKER = {
        "setup": setup,
        "cpu_minutes": time_axis_minutes(setup.trace_days,
                                         setup.cpu_interval_minutes),
        "bw_minutes": time_axis_minutes(setup.trace_days,
                                        setup.bw_interval_minutes),
        "seasons": SeasonCache(),
    }
    if shm_names is not None:
        _WORKER["shm"] = {
            "names": shm_names,
            "free": free_slots,
            "slot_bytes": slot_bytes,
            "segments": {},
        }


def _worker_segment(shm_cfg: dict, slot: int):
    """Attach (and memoise) one ring segment inside a worker."""
    segment = shm_cfg["segments"].get(slot)
    if segment is None:
        segment = shared_memory.SharedMemory(name=shm_cfg["names"][slot])
        shm_cfg["segments"][slot] = segment
    return segment


def _render_in_worker(job: SeriesJob) -> SeriesBlock | _ShmBlockRef:
    """Render one job inside a worker, with a private perf registry.

    With a shared-memory ring configured, the finished rows are copied
    into a free slot and only a :class:`_ShmBlockRef` travels back;
    oversized blocks return whole (pickle fallback).
    """
    state = _WORKER
    if state is None:  # pragma: no cover - pool misconfiguration guard
        raise RuntimeError("series worker used before initialisation")
    setup: _WorkerSetup = state["setup"]
    perf = PerfRegistry()
    rng = job_rng(setup.seed, setup.recipe, job.app_id)
    block = render_series_job(job, setup.recipe, state["cpu_minutes"],
                              state["bw_minutes"], rng,
                              seasons=state["seasons"], perf=perf)
    block.perf = perf
    shm_cfg = state.get("shm")
    if shm_cfg is None:
        return block
    parts = [block.cpu_rows, block.bw_rows]
    if block.private_rows is not None:
        parts.append(block.private_rows)
    if sum(part.nbytes for part in parts) > shm_cfg["slot_bytes"]:
        return block
    slot = shm_cfg["free"].get()
    view = np.frombuffer(_worker_segment(shm_cfg, slot).buf,
                         dtype=np.float32)
    offset = 0
    for part in parts:
        view[offset:offset + part.size] = part.ravel()
        offset += part.size
    return _ShmBlockRef(
        slot=slot, app_id=block.app_id, vm_count=job.vm_count,
        cpu_points=block.cpu_rows.shape[1],
        bw_points=block.bw_rows.shape[1],
        private=block.private_rows is not None,
        mean_bws=block.mean_bws, perf=perf,
    )


def _block_from_ref(ref: _ShmBlockRef, segments) -> SeriesBlock:
    """Rebuild a block from its shared-memory slot (copies the rows)."""
    view = np.frombuffer(segments[ref.slot].buf, dtype=np.float32)
    offset = 0

    def take(points: int) -> np.ndarray:
        nonlocal offset
        size = ref.vm_count * points
        rows = view[offset:offset + size].reshape(ref.vm_count,
                                                  points).copy()
        offset += size
        return rows

    cpu_rows = take(ref.cpu_points)
    bw_rows = take(ref.bw_points)
    private_rows = take(ref.bw_points) if ref.private else None
    return SeriesBlock(app_id=ref.app_id, mean_bws=ref.mean_bws,
                       cpu_rows=cpu_rows, bw_rows=bw_rows,
                       private_rows=private_rows, perf=ref.perf)


def _pool_context() -> multiprocessing.context.BaseContext | None:
    """The fork context, or ``None`` where fork is unavailable.

    The pool requires fork: workers inherit the initializer arguments
    (including live shared-memory queue handles) without pickling, and
    start cheaply without re-importing the package.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def _slot_bytes_for(jobs_list: Sequence[SeriesJob],
                    setup: _WorkerSetup) -> int:
    """Resolved ring-slot size: the largest block, capped."""
    minutes_per_day = 24 * 60
    cpu_points = setup.trace_days * minutes_per_day \
        // setup.cpu_interval_minutes
    bw_points = setup.trace_days * minutes_per_day \
        // setup.bw_interval_minutes
    per_vm = cpu_points + bw_points * (2 if setup.recipe.private else 1)
    largest = max(job.vm_count for job in jobs_list) * per_vm * 4
    cap = SHM_SLOT_CAP_BYTES
    override = os.environ.get("REPRO_SHM_SLOT_MB")
    if override:
        try:
            cap = max(1, int(override)) << 20
        except ValueError:
            pass
    return max(1, min(largest, cap))


def run_series_jobs(jobs_list: Sequence[SeriesJob], scenario: Scenario,
                    recipe: SeriesRecipe, n_jobs: int = 1,
                    perf: PerfRegistry | None = None,
                    handoff: str = "shm",
                    ) -> Iterator[SeriesBlock]:
    """Render series jobs, yielding blocks in submission order.

    ``n_jobs == 1`` (or a single job) renders inline; otherwise a pool
    of ``min(n_jobs, len(jobs_list))`` worker processes renders
    concurrently with windowed submission, so the caller sees the same
    sequence of bit-identical blocks.  ``handoff`` selects the pooled
    result transport (``"shm"`` or ``"pickle"``); it changes speed,
    never bytes.

    Raises:
        ConfigurationError: on a bad ``n_jobs`` or ``handoff`` value.
        ParallelError: when the worker pool fails to start.
    """
    if handoff not in HANDOFF_MODES:
        raise ConfigurationError(
            f"unknown handoff {handoff!r}, expected one of {HANDOFF_MODES}")
    n_jobs = resolve_jobs(n_jobs)
    journal = perf.journal if perf is not None else None
    setup = _WorkerSetup(
        seed=scenario.seed, recipe=recipe,
        trace_days=scenario.trace_days,
        cpu_interval_minutes=scenario.cpu_interval_minutes,
        bw_interval_minutes=scenario.bw_interval_minutes,
    )
    serial = n_jobs == 1 or len(jobs_list) <= 1
    ctx = None
    if not serial:
        ctx = _pool_context()
        if ctx is None:
            if journal is not None:
                journal.warn(
                    "fork start method unavailable on this platform; "
                    "rendering series serially", jobs=n_jobs)
            serial = True
    if journal is not None:
        # Dispatch events come first in both modes (submission is eager),
        # so journals are identical across --jobs settings.
        for job in jobs_list:
            journal.emit("job_dispatch", app_id=job.app_id,
                         vm_count=job.vm_count)
    if serial:
        yield from _run_serial(jobs_list, setup, perf, journal)
        return
    yield from _run_pooled(jobs_list, setup, ctx, min(n_jobs, len(jobs_list)),
                           handoff, perf, journal)


def _run_pooled(jobs_list: Sequence[SeriesJob], setup: _WorkerSetup,
                ctx, processes: int, handoff: str,
                perf: PerfRegistry | None,
                journal) -> Iterator[SeriesBlock]:
    """The pool path: windowed submission, optional shm transport."""
    use_shm = (handoff == "shm" and shared_memory is not None
               and not os.environ.get(SHM_DISABLE_ENV))
    n_slots = processes + 2
    segments: list = []
    free_slots = None
    initargs: tuple = (setup,)
    slot_bytes = 0
    if use_shm:
        slot_bytes = _slot_bytes_for(jobs_list, setup)
        try:
            for _ in range(n_slots):
                segments.append(shared_memory.SharedMemory(
                    create=True, size=slot_bytes))
        except OSError as exc:
            for segment in segments:
                segment.close()
                segment.unlink()
            raise ParallelError(
                f"could not allocate {n_slots} shared-memory slots of "
                f"{slot_bytes} bytes: {exc}") from exc
        free_slots = ctx.Queue()
        for index in range(n_slots):
            free_slots.put(index)
        initargs = (setup, [segment.name for segment in segments],
                    free_slots, slot_bytes)
    shm_blocks = pickle_blocks = 0
    shm_bytes = 0
    try:
        try:
            pool = ctx.Pool(processes=processes, initializer=_init_worker,
                            initargs=initargs)
        except OSError as exc:
            raise ParallelError(
                f"could not start {processes} series worker processes "
                f"(fork): {exc}") from exc
        with pool:
            # Submission is windowed to the slot count: outstanding
            # results can hold at most n_slots - 1 slots while the
            # head-of-line job still needs one, so a free slot always
            # exists for it and in-order consumption cannot deadlock.
            window = n_slots
            results: deque = deque()
            job_iter = iter(jobs_list)

            def submit_next() -> None:
                job = next(job_iter, None)
                if job is not None:
                    results.append(
                        (job, pool.apply_async(_render_in_worker, (job,))))

            for _ in range(window):
                submit_next()
            while results:
                job, async_result = results.popleft()
                outcome = async_result.get()
                submit_next()
                if isinstance(outcome, _ShmBlockRef):
                    block = _block_from_ref(outcome, segments)
                    free_slots.put(outcome.slot)
                    shm_blocks += 1
                    shm_bytes += (block.cpu_rows.nbytes
                                  + block.bw_rows.nbytes
                                  + (block.private_rows.nbytes
                                     if block.private_rows is not None
                                     else 0))
                else:
                    block = outcome
                    pickle_blocks += 1
                _account_block(job, block.perf, perf, journal)
                block.perf = None
                if not results and journal is not None and use_shm:
                    # Emitted before the final yield: consumers like the
                    # generators' zip() never advance the iterator past
                    # its last block, so a post-loop emit would be lost.
                    journal.emit("shm_handoff", blocks=shm_blocks,
                                 fallback_blocks=pickle_blocks,
                                 slots=n_slots, slot_bytes=slot_bytes,
                                 bytes=shm_bytes, workers=processes)
                yield block
    finally:
        for segment in segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass


def _account_block(job: SeriesJob, worker_perf: PerfRegistry | None,
                   perf: PerfRegistry | None, journal) -> None:
    """Fold one rendered job's telemetry into the parent's registry.

    Both execution paths route per-job spans through
    :meth:`PerfRegistry.merge` and emit the same ``job_complete`` event,
    which is what keeps serial and pooled journals identical.
    """
    if perf is not None and worker_perf is not None:
        perf.merge(worker_perf)
    if journal is not None:
        wall = (worker_perf.wall_s("series_render")
                if worker_perf is not None else 0.0)
        journal.emit("job_complete", app_id=job.app_id,
                     vms=job.vm_count, wall_s=round(wall, 6))


# ---- coarse-grained task farm (sweep cells) ------------------------------


@dataclass(frozen=True)
class TaskOutcome:
    """The result of one farmed task: a value or a one-line error."""

    task_id: str
    ok: bool
    value: object = None
    error: str | None = None


def _farm_task(fn: Callable, task_id: str, arg: object, results) -> None:
    """Worker entry: run one task, report exactly one outcome tuple."""
    try:
        value = fn(arg)
    except BaseException as exc:  # noqa: BLE001 - relayed to the parent
        results.put((task_id, False, f"{type(exc).__name__}: {exc}"))
        raise SystemExit(1)
    results.put((task_id, True, value))


class TaskFarm:
    """Run independent heavyweight tasks in non-daemon forked workers.

    Tasks are submitted as ``(task_id, fn, arg)`` and collected with
    :meth:`next_outcome` in completion order, which lets a scheduler
    unlock dependent work (a sweep group's followers) the moment its
    prerequisite finishes.  At ``n_jobs == 1`` — or where fork is
    unavailable — submission queues the task and :meth:`next_outcome`
    runs it inline, so scheduling semantics are identical either way.

    Unlike :func:`run_series_jobs`'s pool, workers are **not** daemonic:
    a farmed task may start its own series pool (nested parallelism),
    which ``multiprocessing.Pool`` forbids its daemon workers.
    """

    #: Seconds to wait for an in-flight result before re-checking
    #: worker liveness (and, after a dead worker is seen, the grace
    #: period for its possibly-buffered final result).
    _POLL_S = 0.25

    def __init__(self, n_jobs: int = 1, journal=None) -> None:
        self.n_jobs = resolve_jobs(n_jobs)
        self.journal = journal
        ctx = _pool_context() if self.n_jobs > 1 else None
        if self.n_jobs > 1 and ctx is None:
            if journal is not None:
                journal.warn("fork start method unavailable; running "
                             "farmed tasks serially", jobs=self.n_jobs)
        self._ctx = ctx
        self._serial = ctx is None or self.n_jobs == 1
        self._results = ctx.Queue() if not self._serial else None
        self._procs: dict[str, multiprocessing.process.BaseProcess] = {}
        self._waiting: deque = deque()
        self._outstanding = 0

    @property
    def outstanding(self) -> int:
        """Tasks submitted but not yet returned by :meth:`next_outcome`."""
        return self._outstanding

    def submit(self, task_id: str, fn: Callable, arg: object) -> None:
        """Enqueue one task; starts immediately if a worker slot is free."""
        if any(task_id == queued[0] for queued in self._waiting) \
                or task_id in self._procs:
            raise ConfigurationError(
                f"task id {task_id!r} is already outstanding")
        self._waiting.append((task_id, fn, arg))
        self._outstanding += 1
        self._fill()

    def _fill(self) -> None:
        if self._serial:
            return
        while self._waiting and len(self._procs) < self.n_jobs:
            task_id, fn, arg = self._waiting.popleft()
            proc = self._ctx.Process(
                target=_farm_task, args=(fn, task_id, arg, self._results),
                daemon=False)
            try:
                proc.start()
            except OSError as exc:
                raise ParallelError(
                    f"could not fork worker for task {task_id!r}: "
                    f"{exc}") from exc
            self._procs[task_id] = proc

    def next_outcome(self) -> TaskOutcome:
        """Block until any outstanding task finishes; return its outcome.

        Raises:
            ConfigurationError: when no task is outstanding.
        """
        if not self._outstanding:
            raise ConfigurationError("no outstanding tasks to wait for")
        if self._serial:
            task_id, fn, arg = self._waiting.popleft()
            self._outstanding -= 1
            try:
                value = fn(arg)
            except Exception as exc:  # noqa: BLE001 - mirrored worker path
                return TaskOutcome(task_id, False,
                                   error=f"{type(exc).__name__}: {exc}")
            return TaskOutcome(task_id, True, value=value)
        while True:
            try:
                task_id, ok, payload = self._results.get(
                    timeout=self._POLL_S)
                break
            except queue_mod.Empty:
                dead = [tid for tid, proc in self._procs.items()
                        if proc.exitcode is not None]
                if not dead:
                    continue
                # A worker exited: either its final result is still in
                # the pipe (grace get below) or it died silently
                # (SIGKILL, OOM) and must be reported as failed.
                try:
                    task_id, ok, payload = self._results.get(
                        timeout=self._POLL_S * 4)
                    break
                except queue_mod.Empty:
                    failed = dead[0]
                    proc = self._procs.pop(failed)
                    proc.join()
                    self._outstanding -= 1
                    self._fill()
                    return TaskOutcome(
                        failed, False,
                        error=f"worker died without reporting "
                              f"(exit code {proc.exitcode})")
        proc = self._procs.pop(task_id, None)
        if proc is not None:
            proc.join()
        self._outstanding -= 1
        self._fill()
        if ok:
            return TaskOutcome(task_id, True, value=payload)
        return TaskOutcome(task_id, False, error=str(payload))

    def close(self) -> None:
        """Terminate any still-running workers and drop queued tasks."""
        self._waiting.clear()
        for proc in self._procs.values():
            if proc.exitcode is None:
                proc.terminate()
            proc.join()
        self._procs.clear()
        self._outstanding = 0
        if self._results is not None:
            self._results.close()
            self._results = None

    def __enter__(self) -> "TaskFarm":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _run_serial(jobs_list: Sequence[SeriesJob], setup: _WorkerSetup,
                perf: PerfRegistry | None,
                journal=None) -> Iterator[SeriesBlock]:
    """The in-process path: same per-app renderer, no pool overhead.

    Each job records into a private registry that is merged into the
    parent's — mirroring what the pool does across the process boundary —
    so telemetry (and any attached journal) cannot tell the paths apart.
    """
    cpu_minutes = time_axis_minutes(setup.trace_days,
                                    setup.cpu_interval_minutes)
    bw_minutes = time_axis_minutes(setup.trace_days,
                                   setup.bw_interval_minutes)
    seasons = SeasonCache()
    for job in jobs_list:
        rng = job_rng(setup.seed, setup.recipe, job.app_id)
        job_perf = PerfRegistry() if perf is not None else None
        block = render_series_job(job, setup.recipe, cpu_minutes, bw_minutes,
                                  rng, seasons=seasons, perf=job_perf)
        _account_block(job, job_perf, perf, journal)
        yield block
