"""High-level facade: one object that runs the whole study lazily.

:class:`EdgeStudy` wires the substrates together the way the paper's
authors did — build NEP and the clouds, recruit the panel, run the
campaigns, generate the workload traces — and caches each piece so
examples and benchmarks can share one simulation instead of regenerating
it per figure.

Every expensive phase is tracked twice: a :class:`~repro.perf.PerfRegistry`
span for timings and a :class:`~repro.phases.PhaseLedger` entry for the
outcome.  A phase that raises is recorded as failed in the ledger and the
exception propagates; :meth:`EdgeStudy.try_phase` gives callers the
graceful-degradation variant (``None`` on failure, other phases still
runnable).
"""

from __future__ import annotations

import tempfile
from functools import cached_property, lru_cache

from .billing.cloud import alicloud_billing, huawei_billing
from .billing.nep import CityPriceBook, NepBilling
from .cache import ArtifactCache
from .config import DEFAULT_SCENARIO, FAULT_PROFILES, Scenario
from .core.availability_analysis import (
    AvailabilityReport,
    run_availability_study,
)
from .core.cost_analysis import cloud_regions_from_platform
from .core.latency_analysis import PerUserLatency, per_user_latency
from .errors import ConfigurationError, ReproError
from .faults.failover import FailoverReport, simulate_failover
from .faults.schedule import FaultSchedule, build_fault_schedule
from .live import LiveResult, run_live
from .measurement.campaign import CampaignResults, CrowdCampaign, Participant
from .measurement.qoe.testbed import QoETestbed
from .obs import RunJournal
from .parallel import resolve_jobs
from .perf import PerfRegistry
from .phases import PhaseLedger
from .platform.cloud import build_cloud_platform
from .platform.cluster import Platform
from .qoe import QoeSessionsResult, run_qoe_sessions
from .workload.azure import generate_azure_workload
from .workload.generator import GeneratedWorkload, generate_nep_workload
from .workload.streaming import WorkloadSink, resolve_streaming


#: Phases whose results land in the artifact cache and can therefore be
#: skipped by a resumed run.  Order matches the natural execution order.
RESUMABLE_PHASES = ("workload_nep", "workload_azure",
                    "campaign_latency", "campaign_throughput",
                    "qoe_sessions", "live")


class EdgeStudy:
    """Lazily-computed bundle of every dataset the paper's figures need.

    Each expensive phase runs inside a :class:`~repro.perf.PerfRegistry`
    span, so ``study.perf.report()`` (or the CLI's ``--perf`` flag) shows
    where a run spent its time; ``study.phases.report()`` shows which
    phases ran and whether they failed.

    ``resume=True`` declares that this run continues an earlier (killed
    or crashed) run of the same scenario: it requires an artifact cache
    — the medium resume works through, since every committed phase is a
    cache entry published atomically — and journals a ``resume`` event
    listing which phases will replay from cache and which still have to
    run.  Resume never changes results; cached phases are bit-identical
    to regenerated ones, so a resumed journal canonicalizes equal to a
    clean one.
    """

    def __init__(self, scenario: Scenario = DEFAULT_SCENARIO,
                 jobs: int = 1, cache: ArtifactCache | None = None,
                 journal: RunJournal | None = None,
                 streaming: str = "auto", resume: bool = False) -> None:
        self.scenario = scenario
        #: Worker processes for workload generation (0 was "all cores").
        self.jobs = resolve_jobs(jobs)
        #: Optional persistent artifact cache; ``None`` = always generate.
        self.cache = cache
        #: Optional run journal; every layer below reports through it.
        self.journal = journal
        #: Whether workload series stream to sharded disk storage instead
        #: of living in-process.  ``"auto"`` switches on at city-tier VM
        #: counts; an execution knob only — results are bit-identical.
        self.streaming = resolve_streaming(streaming, scenario)
        #: Whether this run continues an interrupted one via the cache.
        self.resume = resume
        if resume and cache is None:
            raise ConfigurationError(
                "resume needs an artifact cache (committed phases are "
                "cache entries); drop --no-cache or pass cache_dir")
        self.perf = PerfRegistry(journal=journal)
        self.phases = PhaseLedger(journal=journal)
        if journal is not None:
            if cache is not None:
                cache.journal = journal
            journal.run_start(scenario, jobs=self.jobs,
                              cache=cache is not None)
            if resume:
                status = self.resume_status()
                journal.emit("resume", cached=status["cached"],
                             pending=status["pending"])

    def resume_status(self) -> dict[str, list[str]]:
        """Which resumable phases are already committed in the cache.

        Returns ``{"cached": [...], "pending": [...]}`` over
        :data:`RESUMABLE_PHASES` — a pure peek at entry metadata, with
        no loading, no events, and no side effects on the cache.

        Raises:
            ConfigurationError: when the study has no artifact cache.
        """
        if self.cache is None:
            raise ConfigurationError(
                "resume status needs an artifact cache")
        cached = [name for name in RESUMABLE_PHASES
                  if self.cache.has(name, self.scenario)]
        pending = [name for name in RESUMABLE_PHASES if name not in cached]
        return {"cached": cached, "pending": pending}

    # ---- artifact cache plumbing ----------------------------------------

    def _cached_workload(self, name: str, builder):
        """Load a generated workload from the cache, or build and store it.

        A hit bumps the ``cache_hit:<name>`` counter and skips
        generation entirely (the returned series are memory-mapped from
        the cache entry); a miss builds with this study's ``jobs``
        setting and stores the result for the next invocation.

        With :attr:`streaming` on, rendered series rows flow through a
        :class:`~repro.workload.streaming.WorkloadSink` into sharded
        on-disk storage as they are produced — directly into the cache
        entry when a cache is configured (no separate store step), or
        into a self-cleaning spill directory otherwise.  Either way the
        returned dataset serves its series from memory maps and the
        parent's working set stays bounded.
        """
        if self.cache is not None:
            cached = self.cache.get_workload(name, self.scenario)
            if cached is not None:
                self.perf.count(f"cache_hit:{name}")
                return cached
        sink = None
        if self.streaming:
            if self.cache is not None:
                sink = WorkloadSink.for_cache(self.cache, name,
                                              self.scenario)
            else:
                sink = WorkloadSink.spill(journal=self.journal)
        try:
            workload = builder(self.scenario, jobs=self.jobs,
                               perf=self.perf, sink=sink)
        except BaseException:
            # The generators abort the sink on mid-stream failures, but
            # an exception *before* the series stage (platform build,
            # placement) would otherwise leave the spill/staging dir
            # behind until interpreter exit.  abort() is idempotent.
            if sink is not None:
                sink.abort()
            raise
        if self.cache is not None and sink is None:
            with self.perf.span(f"cache_store:{name}"):
                self.cache.put_workload(name, self.scenario, workload)
        return workload

    def _campaign_cache_peek(self, name: str):
        """A cached phase object (campaign results, session QoE), or ``None``.

        Peeked *before* touching the phase's dependencies so a warm run
        never builds the platforms just to replay recorded results.
        """
        if self.cache is None:
            return None
        cached = self.cache.get_object(name, self.scenario)
        if cached is not None:
            self.perf.count(f"cache_hit:{name}")
        return cached

    def _campaign_cache_store(self, name: str, results: object) -> None:
        if self.cache is not None:
            with self.perf.span(f"cache_store:{name}"):
                self.cache.put_object(name, self.scenario, results)

    def try_phase(self, name: str):
        """Compute phase ``name``, degrading gracefully on failure.

        Returns the phase value, or ``None`` when it raised a
        :class:`~repro.errors.ReproError` — in which case the failure
        (type and message) is recorded in :attr:`phases` and every other
        phase remains computable.
        """
        try:
            return getattr(self, name)
        except ReproError:
            return None

    # ---- platforms and workloads -----------------------------------------

    @cached_property
    def nep(self) -> GeneratedWorkload:
        """The NEP platform with placed VMs and its 3-month-style trace."""
        with self.perf.span("workload_nep"), self.phases.track("workload_nep"):
            workload = self._cached_workload("workload_nep",
                                             generate_nep_workload)
        self.perf.count("nep_vms", len(workload.platform.vms))
        return workload

    @cached_property
    def azure(self) -> GeneratedWorkload:
        """The Azure-like cloud comparison dataset."""
        with self.perf.span("workload_azure"), \
                self.phases.track("workload_azure"):
            workload = self._cached_workload("workload_azure",
                                             generate_azure_workload)
        self.perf.count("azure_vms", len(workload.platform.vms))
        return workload

    @cached_property
    def alicloud(self) -> Platform:
        """The AliCloud-like platform used as the performance baseline.

        Only its region locations matter for the campaign, so the server
        fleet is kept minimal.
        """
        with self.perf.span("platform_alicloud"), \
                self.phases.track("platform_alicloud"):
            return build_cloud_platform(self.scenario, name="AliCloud",
                                        servers_per_region=4)

    # ---- fault injection ---------------------------------------------------

    @cached_property
    def faults(self) -> FaultSchedule | None:
        """The run's deterministic fault weather; ``None`` when off."""
        if self.scenario.fault_profile == "off":
            return None
        with self.perf.span("fault_schedule"), \
                self.phases.track("fault_schedule"):
            schedule = build_fault_schedule(self.scenario, self.nep.platform,
                                            self.alicloud)
        if self.journal is not None and schedule is not None:
            self.journal.emit("fault_schedule", **schedule.summary())
        return schedule

    @cached_property
    def failover(self) -> FailoverReport:
        """Server crashes replayed through evacuation/live migration.

        Raises:
            ConfigurationError: when fault injection is off.
        """
        with self.perf.span("failover"), self.phases.track("failover"):
            if self.faults is None:
                raise ConfigurationError(
                    "fault injection is off; rerun with --faults paper or "
                    "harsh (Scenario.fault_profile)"
                )
            return simulate_failover(self.nep.platform, self.faults)

    @cached_property
    def availability(self) -> AvailabilityReport:
        """The availability/SLO analysis of this run's fault weather.

        Raises:
            ConfigurationError: when fault injection is off.
        """
        with self.perf.span("availability"), self.phases.track("availability"):
            if self.faults is None:
                raise ConfigurationError(
                    "fault injection is off; rerun with --faults paper or "
                    "harsh (Scenario.fault_profile)"
                )
            return run_availability_study(
                self.faults, self.latency_results, self.throughput_results,
                self.failover)

    # ---- campaigns ---------------------------------------------------------

    @cached_property
    def campaign(self) -> CrowdCampaign:
        return CrowdCampaign(self.scenario, self.nep.platform, self.alicloud,
                             faults=self.faults, journal=self.journal)

    @cached_property
    def participants(self) -> list[Participant]:
        return self.campaign.recruit()

    @cached_property
    def latency_results(self) -> CampaignResults:
        cached = self._campaign_cache_peek("campaign_latency")
        if cached is None:
            campaign, participants = self.campaign, self.participants
        with self.perf.span("campaign_latency"), \
                self.phases.track("campaign_latency"):
            if cached is not None:
                results = cached
            else:
                results = campaign.run_latency(participants)
                self._campaign_cache_store("campaign_latency", results)
        self.perf.count("latency_observations", len(results.latency))
        return results

    @cached_property
    def throughput_results(self) -> CampaignResults:
        cached = self._campaign_cache_peek("campaign_throughput")
        if cached is None:
            campaign, participants = self.campaign, self.participants
        with self.perf.span("campaign_throughput"), \
                self.phases.track("campaign_throughput"):
            if cached is not None:
                results = cached
            else:
                results = campaign.run_throughput(participants)
                self._campaign_cache_store("campaign_throughput", results)
        self.perf.count("throughput_observations", len(results.throughput))
        return results

    @cached_property
    def per_user(self) -> list[PerUserLatency]:
        """Per-user latency aggregates feeding Figures 2/3 and Table 2."""
        return per_user_latency(self.latency_results.latency)

    # ---- QoE testbed ---------------------------------------------------------

    @cached_property
    def qoe_testbed(self) -> QoETestbed:
        return QoETestbed(self.scenario.random.stream("qoe-testbed"))

    @cached_property
    def qoe_sessions(self) -> QoeSessionsResult:
        """Edge-vs-cloud session QoE distributions (beyond Figure 7).

        Runs the vectorized ABR engine over the analytic CDN model for
        both arms, chunked through a task farm and folded into streaming
        sketches.  With :attr:`streaming` on, per-session metric rows
        additionally spill to shard files in a throwaway directory
        (deleted once aggregated) so even the inspection copy never
        accumulates in RSS.
        """
        cached = self._campaign_cache_peek("qoe_sessions")
        with self.perf.span("qoe_sessions"), \
                self.phases.track("qoe_sessions"):
            if cached is not None:
                result = cached
            else:
                if self.streaming:
                    with tempfile.TemporaryDirectory(
                            prefix="repro-qoe-spill-") as spill:
                        result = run_qoe_sessions(
                            self.scenario, jobs=self.jobs,
                            journal=self.journal, spill_root=spill)
                else:
                    result = run_qoe_sessions(
                        self.scenario, jobs=self.jobs,
                        journal=self.journal)
                self._campaign_cache_store("qoe_sessions", result)
        self.perf.count("qoe_sessions_simulated",
                        result.sessions * len(result.arms))
        return result

    # ---- live platform engine --------------------------------------------------

    @cached_property
    def live(self) -> LiveResult:
        """Event-driven live-platform run (beyond the paper; repro.live).

        Advances the whole NEP fleet tick by tick — VM arrivals,
        departures, evacuation off faulted servers, autoscaling — as
        vectorized array ops, with the scenario's fault profile
        interleaved as down/up events.  Sequential by construction, so
        the result ignores ``jobs`` and is bit-identical across any
        ``--jobs`` setting.
        """
        cached = self._campaign_cache_peek("live")
        with self.perf.span("live"), self.phases.track("live"):
            if cached is not None:
                result = cached
            else:
                result = run_live(self.scenario, jobs=self.jobs,
                                  journal=self.journal)
                self._campaign_cache_store("live", result)
        self.perf.count("live_ticks", result.ticks)
        return result

    # ---- billing ---------------------------------------------------------------

    @cached_property
    def nep_billing(self) -> NepBilling:
        book = CityPriceBook(self.scenario.random.stream("city-prices"))
        return NepBilling(book)

    @cached_property
    def vcloud1(self):
        """AliCloud-priced virtual baseline (billing engine)."""
        return alicloud_billing()

    @cached_property
    def vcloud2(self):
        """Huawei-priced virtual baseline (billing engine)."""
        return huawei_billing()

    @cached_property
    def vcloud_regions(self):
        """Billing regions of the virtual clouds (AliCloud's geography)."""
        return cloud_regions_from_platform(self.alicloud)


#: Scale names accepted by :func:`study_for` and the CLI's ``--scale``.
SCALES = ("smoke", "default", "paper", "city")


def scenario_for(scale: str, seed: int | None = None,
                 faults: str | None = None,
                 overrides: dict[str, object] | None = None) -> Scenario:
    """The scenario behind a named scale (see :data:`SCALES`).

    ``faults`` overrides the fault-injection profile (``"off"``,
    ``"paper"``, ``"harsh"``); ``None`` keeps the scale's default.
    ``overrides`` replaces arbitrary scenario fields on top of the
    scale's values — the hook sweep cells use for per-cell knobs.
    """
    if seed is None:
        seed = DEFAULT_SCENARIO.seed
    if scale == "default":
        scenario = Scenario(seed=seed)
    elif scale == "smoke":
        scenario = Scenario.smoke_scale().with_overrides(seed=seed)
    elif scale == "paper":
        scenario = Scenario.paper_scale().with_overrides(seed=seed)
    elif scale == "city":
        scenario = Scenario.city_scale().with_overrides(seed=seed)
    else:
        raise ConfigurationError(
            f"unknown scale {scale!r}, expected one of {SCALES}")
    if faults is not None:
        scenario = scenario.with_overrides(fault_profile=faults)
    if overrides:
        try:
            scenario = scenario.with_overrides(**overrides)
        except TypeError as exc:
            raise ConfigurationError(
                f"unknown scenario override: {exc}") from exc
    return scenario


@lru_cache(maxsize=8)
def _study_for(scale: str, seed: int, faults: str, jobs: int,
               cache_dir: str | None, streaming: str) -> EdgeStudy:
    cache = ArtifactCache(cache_dir) if cache_dir is not None else None
    return EdgeStudy(scenario_for(scale, seed, faults), jobs=jobs,
                     cache=cache, streaming=streaming)


def study_for(scale: str, seed: int | None = None,
              faults: str | None = None, jobs: int = 1,
              cache_dir: str | None = None,
              streaming: str = "auto") -> EdgeStudy:
    """The shared study for a named scale, cached per argument tuple.

    ``jobs`` is the worker-process count for workload generation,
    ``cache_dir`` the root of the persistent artifact cache (``None``
    disables caching), and ``streaming`` the out-of-core workload mode
    (``"auto"``/``"on"``/``"off"``) — all execution knobs, so two calls
    differing only there still share scenario *results* bit-for-bit.
    """
    if scale not in SCALES:
        raise ConfigurationError(
            f"unknown scale {scale!r}, expected one of {SCALES}")
    resolved_faults = "off" if faults is None else faults
    if resolved_faults not in FAULT_PROFILES:
        raise ConfigurationError(
            f"unknown fault profile {resolved_faults!r}, expected one of "
            f"{FAULT_PROFILES}")
    return _study_for(scale,
                      seed if seed is not None else DEFAULT_SCENARIO.seed,
                      resolved_faults, resolve_jobs(jobs), cache_dir,
                      streaming)


def default_study(seed: int | None = None) -> EdgeStudy:
    """The shared full-scale study (cached per seed)."""
    return study_for("default", seed)


def smoke_study(seed: int | None = None) -> EdgeStudy:
    """The shared reduced-scale study for tests (cached per seed)."""
    return study_for("smoke", seed)
