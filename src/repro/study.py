"""High-level facade: one object that runs the whole study lazily.

:class:`EdgeStudy` wires the substrates together the way the paper's
authors did — build NEP and the clouds, recruit the panel, run the
campaigns, generate the workload traces — and caches each piece so
examples and benchmarks can share one simulation instead of regenerating
it per figure.
"""

from __future__ import annotations

from functools import cached_property, lru_cache

from .billing.cloud import alicloud_billing, huawei_billing
from .billing.nep import CityPriceBook, NepBilling
from .config import DEFAULT_SCENARIO, Scenario
from .core.cost_analysis import cloud_regions_from_platform
from .core.latency_analysis import PerUserLatency, per_user_latency
from .errors import ConfigurationError
from .measurement.campaign import CampaignResults, CrowdCampaign, Participant
from .measurement.qoe.testbed import QoETestbed
from .perf import PerfRegistry
from .platform.cloud import build_cloud_platform
from .platform.cluster import Platform
from .workload.azure import generate_azure_workload
from .workload.generator import GeneratedWorkload, generate_nep_workload


class EdgeStudy:
    """Lazily-computed bundle of every dataset the paper's figures need.

    Each expensive phase runs inside a :class:`~repro.perf.PerfRegistry`
    span, so ``study.perf.report()`` (or the CLI's ``--perf`` flag) shows
    where a run spent its time.
    """

    def __init__(self, scenario: Scenario = DEFAULT_SCENARIO) -> None:
        self.scenario = scenario
        self.perf = PerfRegistry()

    # ---- platforms and workloads -----------------------------------------

    @cached_property
    def nep(self) -> GeneratedWorkload:
        """The NEP platform with placed VMs and its 3-month-style trace."""
        with self.perf.span("workload_nep"):
            workload = generate_nep_workload(self.scenario)
        self.perf.count("nep_vms", len(workload.platform.vms))
        return workload

    @cached_property
    def azure(self) -> GeneratedWorkload:
        """The Azure-like cloud comparison dataset."""
        with self.perf.span("workload_azure"):
            workload = generate_azure_workload(self.scenario)
        self.perf.count("azure_vms", len(workload.platform.vms))
        return workload

    @cached_property
    def alicloud(self) -> Platform:
        """The AliCloud-like platform used as the performance baseline.

        Only its region locations matter for the campaign, so the server
        fleet is kept minimal.
        """
        with self.perf.span("platform_alicloud"):
            return build_cloud_platform(self.scenario, name="AliCloud",
                                        servers_per_region=4)

    # ---- campaigns ---------------------------------------------------------

    @cached_property
    def campaign(self) -> CrowdCampaign:
        return CrowdCampaign(self.scenario, self.nep.platform, self.alicloud)

    @cached_property
    def participants(self) -> list[Participant]:
        return self.campaign.recruit()

    @cached_property
    def latency_results(self) -> CampaignResults:
        campaign, participants = self.campaign, self.participants
        with self.perf.span("campaign_latency"):
            results = campaign.run_latency(participants)
        self.perf.count("latency_observations", len(results.latency))
        return results

    @cached_property
    def throughput_results(self) -> CampaignResults:
        campaign, participants = self.campaign, self.participants
        with self.perf.span("campaign_throughput"):
            results = campaign.run_throughput(participants)
        self.perf.count("throughput_observations", len(results.throughput))
        return results

    @cached_property
    def per_user(self) -> list[PerUserLatency]:
        """Per-user latency aggregates feeding Figures 2/3 and Table 2."""
        return per_user_latency(self.latency_results.latency)

    # ---- QoE testbed ---------------------------------------------------------

    @cached_property
    def qoe_testbed(self) -> QoETestbed:
        return QoETestbed(self.scenario.random.stream("qoe-testbed"))

    # ---- billing ---------------------------------------------------------------

    @cached_property
    def nep_billing(self) -> NepBilling:
        book = CityPriceBook(self.scenario.random.stream("city-prices"))
        return NepBilling(book)

    @cached_property
    def vcloud1(self):
        """AliCloud-priced virtual baseline (billing engine)."""
        return alicloud_billing()

    @cached_property
    def vcloud2(self):
        """Huawei-priced virtual baseline (billing engine)."""
        return huawei_billing()

    @cached_property
    def vcloud_regions(self):
        """Billing regions of the virtual clouds (AliCloud's geography)."""
        return cloud_regions_from_platform(self.alicloud)


#: Scale names accepted by :func:`study_for` and the CLI's ``--scale``.
SCALES = ("smoke", "default", "paper")


def scenario_for(scale: str, seed: int | None = None) -> Scenario:
    """The scenario behind a named scale (see :data:`SCALES`)."""
    if seed is None:
        seed = DEFAULT_SCENARIO.seed
    if scale == "default":
        return Scenario(seed=seed)
    if scale == "smoke":
        return Scenario.smoke_scale().with_overrides(seed=seed)
    if scale == "paper":
        return Scenario.paper_scale().with_overrides(seed=seed)
    raise ConfigurationError(
        f"unknown scale {scale!r}, expected one of {SCALES}")


@lru_cache(maxsize=4)
def _study_for(scale: str, seed: int) -> EdgeStudy:
    return EdgeStudy(scenario_for(scale, seed))


def study_for(scale: str, seed: int | None = None) -> EdgeStudy:
    """The shared study for a named scale (cached per (scale, seed))."""
    if scale not in SCALES:
        raise ConfigurationError(
            f"unknown scale {scale!r}, expected one of {SCALES}")
    return _study_for(scale, seed if seed is not None
                      else DEFAULT_SCENARIO.seed)


def default_study(seed: int | None = None) -> EdgeStudy:
    """The shared full-scale study (cached per seed)."""
    return study_for("default", seed)


def smoke_study(seed: int | None = None) -> EdgeStudy:
    """The shared reduced-scale study for tests (cached per seed)."""
    return study_for("smoke", seed)
