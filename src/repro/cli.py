"""Command-line interface: regenerate any paper figure from a terminal.

Usage::

    python -m repro list                     # available experiments
    python -m repro info [--scale smoke]     # scenario + platform summary
    python -m repro run fig2a table3         # regenerate figures
    python -m repro run all --scale smoke --seed 7
    python -m repro run all --log-json run.jsonl   # + structured journal
    python -m repro trace summary run.jsonl  # render a journal
    python -m repro export ./datasets        # the paper's two datasets
    python -m repro sweep run grid.toml --jobs 2   # scenario sweep
    python -m repro sweep report sweep-grid  # cross-cell comparison
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .cache import ArtifactCache, default_cache_dir
from .config import ABR_POLICIES, AUTOSCALE_MODES, FAULT_PROFILES
from .errors import ReproError
from .obs import RunJournal, canonical_events, diff_journals, \
    read_journal, render_show, render_summary
from .reports import REPORTS
from .resilience import CHAOS_PROFILES, chaos_spec, install
from .study import SCALES, EdgeStudy, scenario_for, study_for
from .workload.streaming import STREAMING_MODES

#: Human-readable one-liners for `repro list`.
DESCRIPTIONS = {
    "table1": "deployment density of clouds vs NEP",
    "fig2a": "mean RTT CDFs per access network and baseline",
    "fig2b": "RTT jitter (coefficient of variation)",
    "table2": "per-hop latency shares",
    "fig3": "hop counts to edge vs cloud",
    "fig4": "inter-site RTT vs distance",
    "fig5": "throughput vs distance per access type",
    "fig6": "cloud-gaming response delay",
    "fig7": "live-streaming delay",
    "fig8": "VM sizes, NEP vs Azure",
    "fig9": "VMs per app",
    "fig10": "CPU utilisation distributions",
    "fig11": "load imbalance across machines/sites",
    "fig12": "weekly bandwidth of sample VMs",
    "fig13": "per-app cross-VM usage gap",
    "fig14": "CPU usage predictability (Holt-Winters + LSTM)",
    "table3": "monetary cost, NEP vs virtual clouds",
    "table6": "QoE testbed RTTs",
    "sales": "sales-rate skew (§4.1 prose)",
    "categories": "application types and traffic shares (§4.1)",
    "findings": "the paper's eight findings with measured values",
    "availability": "site availability, probe failures, MTTR (needs "
                    "--faults)",
    "qoe-sessions": "session-scale edge CDN vs cloud QoE distributions",
    "live": "event-driven live-platform run (arrivals, faults, "
            "autoscaling per tick)",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures of 'From Cloud to Edge' (IMC'21)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    info = sub.add_parser("info", help="show the scenario and platforms")
    _add_scenario_args(info)

    run = sub.add_parser("run", help="regenerate one or more experiments")
    run.add_argument("experiments", nargs="+",
                     help="experiment ids (see 'list'), or 'all'")
    run.add_argument("--resume", action="store_true",
                     help="continue an interrupted run: phases already "
                          "committed to the artifact cache are replayed "
                          "instead of regenerated (needs the cache; "
                          "results are bit-identical either way)")
    run.add_argument("--sessions", type=int, default=None, metavar="N",
                     help="qoe-sessions: viewer-session count (default: "
                          "the scale's qoe_session_count)")
    run.add_argument("--cache-mb", type=int, default=None, metavar="MB",
                     help="qoe-sessions: per-site edge cache size")
    run.add_argument("--abr", choices=ABR_POLICIES, default=None,
                     help="qoe-sessions: bitrate adaptation policy "
                          "(default: throughput)")
    run.add_argument("--ticks", type=int, default=None, metavar="N",
                     help="live: tick count (default: the scale's "
                          "live_ticks)")
    run.add_argument("--arrival", type=float, default=None, metavar="RATE",
                     help="live: mean VM arrivals per tick before "
                          "diurnal/flash-crowd modulation")
    run.add_argument("--autoscale", choices=AUTOSCALE_MODES, default=None,
                     help="live: per-server slot autoscaling (default: on)")
    _add_scenario_args(run)

    export = sub.add_parser(
        "export",
        help="write the performance + workload datasets to a directory")
    export.add_argument("directory", help="output directory")
    _add_scenario_args(export)

    cache = sub.add_parser(
        "cache", help="inspect, verify, or clear the artifact cache")
    cache.add_argument("action", choices=("ls", "info", "clear", "verify"),
                       help="ls: list entries; info: totals; clear: "
                            "remove everything (or --older-than); verify: "
                            "integrity-check every entry")
    cache.add_argument("--cache-dir", type=Path, default=None,
                       help="cache root (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro)")
    cache.add_argument("--older-than", type=int, default=None,
                       metavar="DAYS",
                       help="clear only: remove entries created more "
                            "than DAYS days ago, keeping warm ones")
    cache.add_argument("--dry-run", action="store_true",
                       help="clear only: report what would be removed "
                            "without touching the cache")
    cache.add_argument("--repair", action="store_true",
                       help="verify only: evict damaged entries and sweep "
                            "stale staging dirs so the next run "
                            "regenerates them")
    cache.add_argument("--shallow", action="store_true",
                       help="verify only: skip payload checksums (sizes, "
                            "presence, and shard headers only)")

    sweep = sub.add_parser(
        "sweep", help="run, inspect, or report a scenario sweep")
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)
    sweep_run = sweep_sub.add_parser(
        "run", help="run (or resume) a sweep config")
    sweep_run.add_argument("config", type=Path,
                           help="sweep spec (.toml or .json; see "
                                "docs/sweep.md)")
    sweep_run.add_argument("--out", type=Path, default=None, metavar="DIR",
                           help="output directory (default: "
                                "sweep-<name> in the CWD); rerunning "
                                "into it resumes")
    sweep_run.add_argument("--jobs", type=int, default=1, metavar="N",
                           help="concurrent cells (default: 1; 0 = all "
                                "CPU cores)")
    sweep_run.add_argument("--streaming", choices=STREAMING_MODES,
                           default="auto",
                           help="per-cell workload streaming mode "
                                "(default: auto)")
    sweep_run.add_argument("--cache-dir", type=Path, default=None,
                           help="shared artifact cache enabling "
                                "cross-cell dedup (default: "
                                "$REPRO_CACHE_DIR or ~/.cache/repro)")
    sweep_run.add_argument("--no-cache", action="store_true",
                           help="disable the shared cache (and with it "
                                "cross-cell dedup)")
    sweep_run.add_argument("--chaos", choices=sorted(CHAOS_PROFILES),
                           default=None, metavar="PROFILE",
                           help="install a deterministic failpoint "
                                "profile for the sweep (inherited by "
                                "cell workers)")
    sweep_run.add_argument("-v", "--verbose", action="store_true",
                           help="echo sweep journal events to stderr")
    sweep_cells = sweep_sub.add_parser(
        "cells", help="expand a config and list its cells (dry run)")
    sweep_cells.add_argument("config", type=Path,
                             help="sweep spec (.toml or .json)")
    sweep_report = sweep_sub.add_parser(
        "report", help="cross-cell comparison report of a sweep run")
    sweep_report.add_argument("out", type=Path,
                              help="sweep output directory")
    sweep_report.add_argument("--baseline", default=None, metavar="CELL",
                              help="cell to diff the others against "
                                   "(default: the first cell)")
    sweep_sub.add_parser("analyses",
                         help="list the analysis ids cells can select")

    trace = sub.add_parser(
        "trace", help="render or compare run journals (see --log-json)")
    trace.add_argument("action", choices=("show", "summary", "diff"),
                       help="show: one line per event; summary: phase/"
                            "cache/pool rollup; diff: compare two runs")
    trace.add_argument("journals", nargs="+", metavar="JOURNAL", type=Path,
                       help="journal.jsonl path(s); diff takes exactly two")
    trace.add_argument("--limit", type=int, default=None, metavar="N",
                       help="show at most N events (show action only)")
    trace.add_argument("--raw", action="store_true",
                       help="diff only: compare raw event streams instead "
                            "of the canonical view (volatile telemetry "
                            "like retries and per-tick events included)")
    return parser


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", choices=SCALES,
                        default="smoke",
                        help="simulation scale (default: smoke; 'paper' is "
                             "the full-fidelity 92-day/20k-VM run, 'city' "
                             "the out-of-core ~1M-VM tier)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the scenario seed")
    parser.add_argument("--faults", choices=FAULT_PROFILES, default="off",
                        help="fault-injection profile (default: off; "
                             "'paper' calibrates to reported edge churn)")
    parser.add_argument("--perf", action="store_true",
                        help="print per-phase wall/CPU timings afterwards")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for workload generation "
                             "(default: 1; 0 = all CPU cores)")
    parser.add_argument("--streaming", choices=STREAMING_MODES,
                        default="auto",
                        help="stream workload series to sharded on-disk "
                             "storage (default: auto = on at city-tier VM "
                             "counts); results are bit-identical either way")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="artifact cache root (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--no-cache", action="store_true",
                        help="always regenerate; do not read or write the "
                             "artifact cache")
    parser.add_argument("--log-json", type=Path, default=None, metavar="PATH",
                        help="write a structured run journal (JSON-Lines) "
                             "to PATH; render it with 'repro trace'")
    parser.add_argument("--chaos", choices=sorted(CHAOS_PROFILES),
                        default=None, metavar="PROFILE",
                        help="install a deterministic failpoint profile "
                             "(fault injection into the *harness*, not the "
                             "simulation); results stay bit-identical — "
                             "see docs/resilience.md")
    volume = parser.add_mutually_exclusive_group()
    volume.add_argument("-v", "--verbose", action="store_true",
                        help="echo journal events to stderr as they happen")
    volume.add_argument("-q", "--quiet", action="store_true",
                        help="suppress non-essential stderr output")


def _cache_dir_for(args: argparse.Namespace) -> str | None:
    """The artifact-cache root selected by the args (None = disabled)."""
    if getattr(args, "no_cache", False):
        return None
    explicit = getattr(args, "cache_dir", None)
    return str(explicit if explicit is not None else default_cache_dir())


def _echo_event(event: dict) -> None:
    """Render one journal event as a terse stderr line (``-v`` mode)."""
    skip = {"seq", "t", "type", "scenario"}
    parts = [f"{key}={value}" for key, value in event.items()
             if key not in skip and not isinstance(value, (dict, list))]
    print(f"[{event['seq']:>4}] {event['type']} {' '.join(parts)}".rstrip(),
          file=sys.stderr)


def _open_journal(args: argparse.Namespace) -> RunJournal | None:
    """A journal when ``--log-json``/``-v`` asks for one, else ``None``."""
    path = getattr(args, "log_json", None)
    verbose = getattr(args, "verbose", False)
    if path is None and not verbose:
        return None
    return RunJournal(path, echo=_echo_event if verbose else None)


def _close_journal(journal: RunJournal | None, study: EdgeStudy,
                   status: str = "ok", error: str | None = None) -> None:
    """Seal the journal (if any) with the study's final perf counters."""
    if journal is not None:
        journal.close(status=status, error=error,
                      counters=study.perf.counters or None)


def _qoe_overrides(args: argparse.Namespace) -> dict[str, object]:
    """Scenario overrides from the qoe-sessions knobs (empty if unused)."""
    overrides: dict[str, object] = {}
    if getattr(args, "sessions", None) is not None:
        overrides["qoe_session_count"] = args.sessions
    if getattr(args, "cache_mb", None) is not None:
        overrides["qoe_cache_mb"] = args.cache_mb
    if getattr(args, "abr", None) is not None:
        overrides["qoe_abr"] = args.abr
    return overrides


def _live_overrides(args: argparse.Namespace) -> dict[str, object]:
    """Scenario overrides from the live-engine knobs (empty if unused)."""
    overrides: dict[str, object] = {}
    if getattr(args, "ticks", None) is not None:
        overrides["live_ticks"] = args.ticks
    if getattr(args, "arrival", None) is not None:
        overrides["live_arrival_rate"] = args.arrival
    if getattr(args, "autoscale", None) is not None:
        overrides["live_autoscale"] = args.autoscale
    return overrides


def _study(args: argparse.Namespace,
           journal: RunJournal | None = None) -> EdgeStudy:
    """The study for the CLI args, sharing the module-level cache.

    A journaled run builds its :class:`EdgeStudy` directly (bypassing the
    ``study_for`` memo) so the journal observes every phase instead of
    attaching to a study another command already materialised.  A
    ``--resume`` run does the same: the resume header must describe
    *this* invocation's cache state, not a memoised study's.  Scenario
    overrides (``--sessions``/``--cache-mb``/``--abr``) also bypass the
    memo — it is keyed on the named scale alone.
    """
    resume = getattr(args, "resume", False)
    overrides = {**_qoe_overrides(args), **_live_overrides(args)}
    if journal is None and not resume and not overrides:
        return study_for(args.scale, args.seed, getattr(args, "faults", None),
                         jobs=getattr(args, "jobs", 1),
                         cache_dir=_cache_dir_for(args),
                         streaming=getattr(args, "streaming", "auto"))
    scenario = scenario_for(args.scale, args.seed, getattr(args, "faults",
                                                           None),
                            overrides=overrides or None)
    cache_dir = _cache_dir_for(args)
    cache = (ArtifactCache(cache_dir, journal=journal)
             if cache_dir is not None else None)
    return EdgeStudy(scenario, jobs=getattr(args, "jobs", 1), cache=cache,
                     journal=journal,
                     streaming=getattr(args, "streaming", "auto"),
                     resume=resume)


def _maybe_report_perf(args: argparse.Namespace, study: EdgeStudy) -> None:
    if getattr(args, "perf", False) and not getattr(args, "quiet", False):
        print(file=sys.stderr)
        print(study.perf.report(), file=sys.stderr)


def _command_list() -> int:
    width = max(len(name) for name in REPORTS)
    for name in REPORTS:
        print(f"{name.ljust(width)}  {DESCRIPTIONS.get(name, '')}")
    return 0


def _command_info(args: argparse.Namespace,
                  journal: RunJournal | None = None) -> int:
    study = _study(args, journal)
    scenario = study.scenario
    print(f"scenario: scale={args.scale} seed={scenario.seed}")
    print(f"  NEP: {scenario.nep_site_count} sites, "
          f"{scenario.nep_vm_count} VMs, {scenario.trace_days} trace days "
          f"at {scenario.cpu_interval_minutes}-min CPU resolution")
    print(f"  campaign: {scenario.participant_count} participants, "
          f"{scenario.pings_per_target} pings per target")
    platform = study.nep.platform
    print(f"built NEP: {len(platform.sites)} sites / "
          f"{platform.server_count} servers / {len(platform.vms)} VMs, "
          f"{len(platform.apps)} apps")
    _maybe_report_perf(args, study)
    _close_journal(journal, study)
    return 0


def _command_run(args: argparse.Namespace,
                 journal: RunJournal | None = None) -> int:
    names = list(REPORTS) if "all" in args.experiments else args.experiments
    unknown = [n for n in names if n not in REPORTS]
    if unknown:
        if journal is not None:
            journal.close(status="failed",
                          error=f"unknown experiments: {', '.join(unknown)}")
        print(f"unknown experiments: {', '.join(unknown)} "
              f"(see 'repro list')", file=sys.stderr)
        return 2
    study = _study(args, journal)
    failed = []
    for index, name in enumerate(names):
        if index:
            print()
        # Graceful degradation: one failing report must not take down the
        # rest of an `all` run — record it, keep going, exit non-zero.
        try:
            print(REPORTS[name](study))
        except ReproError as exc:
            failed.append(name)
            if journal is not None:
                journal.warn(f"experiment {name} failed: {exc}",
                             experiment=name)
            print(f"[failed] {name}: {exc}", file=sys.stderr)
    _maybe_report_perf(args, study)
    if failed:
        _close_journal(journal, study, status="failed",
                       error=f"{len(failed)} experiment(s) failed: "
                             f"{', '.join(failed)}")
        print(f"{len(failed)} experiment(s) failed: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    _close_journal(journal, study)
    return 0


def _human_bytes(count: int) -> str:
    size = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024
    return f"{size:.1f} GiB"


def _command_cache(args: argparse.Namespace) -> int:
    root = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    cache = ArtifactCache(root)
    if args.action == "clear":
        removed = cache.clear(older_than_days=args.older_than,
                              dry_run=args.dry_run)
        scope = (f" older than {args.older_than} day"
                 f"{'' if args.older_than == 1 else 's'}"
                 if args.older_than is not None else "")
        verb = "would remove" if args.dry_run else "removed"
        print(f"{verb} {removed} cache entr"
              f"{'y' if removed == 1 else 'ies'}{scope} from {cache.root}")
        return 0
    if args.action == "verify":
        report = cache.verify(repair=args.repair, deep=not args.shallow)
        print(f"verified {report['checked']} entr"
              f"{'y' if report['checked'] == 1 else 'ies'} at "
              f"{report['root']}: {report['ok']} ok, "
              f"{len(report['problems'])} damaged, "
              f"{report['stale_staging']} stale staging dir"
              f"{'' if report['stale_staging'] == 1 else 's'}")
        for problem in report["problems"]:
            issues = "; ".join(problem["issues"])
            print(f"  {problem['artifact']:<22} {problem['key'][:16]}  "
                  f"{issues}")
        if report["repaired"]:
            print(f"repaired: evicted/swept {report['repaired']} "
                  f"(next run regenerates them)")
        elif report["problems"] or report["stale_staging"]:
            print("rerun with --repair to evict damaged entries")
        return 1 if report["problems"] and not args.repair else 0
    if args.older_than is not None or args.dry_run:
        print("--older-than/--dry-run only apply to 'cache clear'",
              file=sys.stderr)
        return 2
    if args.repair or args.shallow:
        print("--repair/--shallow only apply to 'cache verify'",
              file=sys.stderr)
        return 2
    if args.action == "info":
        info = cache.info()
        print(f"root:         {info['root']}")
        print(f"entries:      {info['entries']}")
        print(f"total size:   {_human_bytes(int(info['bytes']))}")
        print(f"sharded:      {info['sharded_entries']} entr"
              f"{'y' if info['sharded_entries'] == 1 else 'ies'}, "
              f"{info['shard_files']} shard file"
              f"{'' if info['shard_files'] == 1 else 's'}")
        print(f"code version: {info['code_version']}")
        return 0
    entries = cache.entries()
    if not entries:
        print(f"cache at {cache.root} is empty")
        return 0
    print(f"{'created (UTC)':<21}{'artifact':<22}{'kind':<16}"
          f"{'shards':>7}{'size':>11}  key")
    for entry in entries:
        shards = str(entry.shards) if entry.shards else "-"
        # Always MiB — matching docs/performance.md — so sharded and
        # monolithic entries line up in one sortable unit.
        size = f"{entry.bytes / 1048576:.1f} MiB"
        print(f"{entry.created_at:<21}{entry.artifact:<22}{entry.kind:<16}"
              f"{shards:>7}{size:>11}  {entry.key[:16]}")
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    from .sweep import (ANALYSES, load_sweep_spec, render_sweep_report,
                        run_sweep, workload_group_token)

    if args.sweep_command == "analyses":
        for name in ANALYSES:
            print(name)
        return 0
    if args.sweep_command == "report":
        print(render_sweep_report(args.out, baseline=args.baseline))
        return 0
    spec = load_sweep_spec(args.config)
    if args.sweep_command == "cells":
        print(f"sweep {spec.name!r}: {len(spec.cells)} cells")
        for cell in spec.cells:
            overrides = " ".join(f"{k}={v}" for k, v in cell.overrides)
            print(f"  {cell.name:<28} scale={cell.scale} "
                  f"seed={cell.seed if cell.seed is not None else 'default'} "
                  f"faults={cell.faults} jobs={cell.jobs} "
                  f"group={workload_group_token(cell)} "
                  f"analyses={','.join(cell.analyses)}"
                  + (f" {overrides}" if overrides else ""))
        return 0
    out = args.out if args.out is not None else Path(f"sweep-{spec.name}")
    result = run_sweep(
        spec, out, cache_dir=_cache_dir_for(args), jobs=args.jobs,
        streaming=args.streaming,
        echo=_echo_event if args.verbose else None)
    print(f"sweep {result.name!r}: {len(result.cells)} cells in "
          f"{result.wall_s:.2f}s"
          + (f" ({result.resumed} resumed)" if result.resumed else "")
          + f" -> {result.out_dir}")
    for cell in result.cells:
        line = f"  {cell.name:<28} {cell.status:<8} {cell.wall_s:8.2f}s"
        if cell.checks_total:
            line += f"  {cell.checks_ok}/{cell.checks_total} checks"
        if cell.error:
            line += f"  {cell.error}"
        print(line)
    if not result.ok:
        print(f"{len(result.failed)} cell(s) failed: "
              f"{', '.join(result.failed)}", file=sys.stderr)
        return 1
    return 0


def _command_export(args: argparse.Namespace,
                    journal: RunJournal | None = None) -> int:
    from .measurement.campaign import CampaignResults
    from .measurement.io import save_campaign
    from .trace.io import save_dataset

    study = _study(args, journal)
    root = Path(args.directory)
    # Fresh container: never mutate the study's cached results.
    results = CampaignResults(
        latency=list(study.latency_results.latency),
        throughput=list(study.throughput_results.throughput),
    )
    campaign_dir = save_campaign(results, root / "campaign")
    nep_dir = save_dataset(study.nep.dataset, root / "nep-trace")
    azure_dir = save_dataset(study.azure.dataset, root / "azure-trace")
    print(f"performance dataset: {campaign_dir}")
    print(f"NEP workload trace:  {nep_dir}")
    print(f"cloud workload trace: {azure_dir}")
    _maybe_report_perf(args, study)
    _close_journal(journal, study)
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    expected = 2 if args.action == "diff" else 1
    if len(args.journals) != expected:
        print(f"trace {args.action} takes exactly {expected} journal "
              f"path(s), got {len(args.journals)}", file=sys.stderr)
        return 2
    try:
        loaded = [read_journal(path) for path in args.journals]
    except OSError as exc:
        print(f"error: cannot read journal: {exc}", file=sys.stderr)
        return 2
    for path, (_, warnings) in zip(args.journals, loaded):
        for warning in warnings:
            print(f"warning: {path}: {warning}", file=sys.stderr)
    if args.action == "diff":
        (events_a, _), (events_b, _) = loaded
        if not args.raw:
            # Behavioural compare: volatile telemetry (retries, tick
            # events, spills) differs between equivalent runs by design.
            events_a = canonical_events(events_a)
            events_b = canonical_events(events_b)
        print(diff_journals(events_a, events_b,
                            str(args.journals[0]), str(args.journals[1])))
        return 0
    events, warnings = loaded[0]
    if args.action == "show":
        print(render_show(events, limit=args.limit))
    else:
        print(render_summary(events, warnings))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    journal = (_open_journal(args)
               if args.command in ("info", "run", "export") else None)
    try:
        if getattr(args, "chaos", None):
            # Exported to the env, so forked workers (series pools,
            # sweep cells) inherit the same deterministic failpoints.
            install(chaos_spec(args.chaos), export=True)
        if args.command == "list":
            return _command_list()
        if args.command == "info":
            return _command_info(args, journal)
        if args.command == "export":
            return _command_export(args, journal)
        if args.command == "cache":
            return _command_cache(args)
        if args.command == "sweep":
            return _command_sweep(args)
        if args.command == "trace":
            return _command_trace(args)
        return _command_run(args, journal)
    except ReproError as exc:
        # A library-level failure (bad config, infeasible scenario, ...)
        # is an expected error class: one clean line, no traceback.
        if journal is not None:
            journal.close(status="failed", error=str(exc))
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe: the POSIX
        # convention is to exit quietly, not to traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
