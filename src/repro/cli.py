"""Command-line interface: regenerate any paper figure from a terminal.

Usage::

    python -m repro list                     # available experiments
    python -m repro info [--scale smoke]     # scenario + platform summary
    python -m repro run fig2a table3         # regenerate figures
    python -m repro run all --scale smoke --seed 7
    python -m repro export ./datasets        # the paper's two datasets
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .cache import ArtifactCache, default_cache_dir
from .config import FAULT_PROFILES
from .errors import ReproError
from .reports import REPORTS
from .study import SCALES, EdgeStudy, study_for

#: Human-readable one-liners for `repro list`.
DESCRIPTIONS = {
    "table1": "deployment density of clouds vs NEP",
    "fig2a": "mean RTT CDFs per access network and baseline",
    "fig2b": "RTT jitter (coefficient of variation)",
    "table2": "per-hop latency shares",
    "fig3": "hop counts to edge vs cloud",
    "fig4": "inter-site RTT vs distance",
    "fig5": "throughput vs distance per access type",
    "fig6": "cloud-gaming response delay",
    "fig7": "live-streaming delay",
    "fig8": "VM sizes, NEP vs Azure",
    "fig9": "VMs per app",
    "fig10": "CPU utilisation distributions",
    "fig11": "load imbalance across machines/sites",
    "fig12": "weekly bandwidth of sample VMs",
    "fig13": "per-app cross-VM usage gap",
    "fig14": "CPU usage predictability (Holt-Winters + LSTM)",
    "table3": "monetary cost, NEP vs virtual clouds",
    "table6": "QoE testbed RTTs",
    "sales": "sales-rate skew (§4.1 prose)",
    "categories": "application types and traffic shares (§4.1)",
    "findings": "the paper's eight findings with measured values",
    "availability": "site availability, probe failures, MTTR (needs "
                    "--faults)",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures of 'From Cloud to Edge' (IMC'21)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    info = sub.add_parser("info", help="show the scenario and platforms")
    _add_scenario_args(info)

    run = sub.add_parser("run", help="regenerate one or more experiments")
    run.add_argument("experiments", nargs="+",
                     help="experiment ids (see 'list'), or 'all'")
    _add_scenario_args(run)

    export = sub.add_parser(
        "export",
        help="write the performance + workload datasets to a directory")
    export.add_argument("directory", help="output directory")
    _add_scenario_args(export)

    cache = sub.add_parser(
        "cache", help="inspect or clear the persistent artifact cache")
    cache.add_argument("action", choices=("ls", "info", "clear"),
                       help="ls: list entries; info: totals; clear: "
                            "remove everything")
    cache.add_argument("--cache-dir", type=Path, default=None,
                       help="cache root (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro)")
    return parser


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", choices=SCALES,
                        default="smoke",
                        help="simulation scale (default: smoke; 'paper' is "
                             "the full-fidelity 92-day/20k-VM run)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the scenario seed")
    parser.add_argument("--faults", choices=FAULT_PROFILES, default="off",
                        help="fault-injection profile (default: off; "
                             "'paper' calibrates to reported edge churn)")
    parser.add_argument("--perf", action="store_true",
                        help="print per-phase wall/CPU timings afterwards")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for workload generation "
                             "(default: 1; 0 = all CPU cores)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="artifact cache root (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--no-cache", action="store_true",
                        help="always regenerate; do not read or write the "
                             "artifact cache")


def _cache_dir_for(args: argparse.Namespace) -> str | None:
    """The artifact-cache root selected by the args (None = disabled)."""
    if getattr(args, "no_cache", False):
        return None
    explicit = getattr(args, "cache_dir", None)
    return str(explicit if explicit is not None else default_cache_dir())


def _study(args: argparse.Namespace) -> EdgeStudy:
    """The study for the CLI args, sharing the module-level cache."""
    return study_for(args.scale, args.seed, getattr(args, "faults", None),
                     jobs=getattr(args, "jobs", 1),
                     cache_dir=_cache_dir_for(args))


def _maybe_report_perf(args: argparse.Namespace, study: EdgeStudy) -> None:
    if getattr(args, "perf", False):
        print(file=sys.stderr)
        print(study.perf.report(), file=sys.stderr)


def _command_list() -> int:
    width = max(len(name) for name in REPORTS)
    for name in REPORTS:
        print(f"{name.ljust(width)}  {DESCRIPTIONS.get(name, '')}")
    return 0


def _command_info(args: argparse.Namespace) -> int:
    study = _study(args)
    scenario = study.scenario
    print(f"scenario: scale={args.scale} seed={scenario.seed}")
    print(f"  NEP: {scenario.nep_site_count} sites, "
          f"{scenario.nep_vm_count} VMs, {scenario.trace_days} trace days "
          f"at {scenario.cpu_interval_minutes}-min CPU resolution")
    print(f"  campaign: {scenario.participant_count} participants, "
          f"{scenario.pings_per_target} pings per target")
    platform = study.nep.platform
    print(f"built NEP: {len(platform.sites)} sites / "
          f"{platform.server_count} servers / {len(platform.vms)} VMs, "
          f"{len(platform.apps)} apps")
    _maybe_report_perf(args, study)
    return 0


def _command_run(args: argparse.Namespace) -> int:
    names = list(REPORTS) if "all" in args.experiments else args.experiments
    unknown = [n for n in names if n not in REPORTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)} "
              f"(see 'repro list')", file=sys.stderr)
        return 2
    study = _study(args)
    failed = []
    for index, name in enumerate(names):
        if index:
            print()
        # Graceful degradation: one failing report must not take down the
        # rest of an `all` run — record it, keep going, exit non-zero.
        try:
            print(REPORTS[name](study))
        except ReproError as exc:
            failed.append(name)
            print(f"[failed] {name}: {exc}", file=sys.stderr)
    _maybe_report_perf(args, study)
    if failed:
        print(f"{len(failed)} experiment(s) failed: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    return 0


def _human_bytes(count: int) -> str:
    size = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024
    return f"{size:.1f} GiB"


def _command_cache(args: argparse.Namespace) -> int:
    root = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    cache = ArtifactCache(root)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cache entr"
              f"{'y' if removed == 1 else 'ies'} from {cache.root}")
        return 0
    if args.action == "info":
        info = cache.info()
        print(f"root:         {info['root']}")
        print(f"entries:      {info['entries']}")
        print(f"total size:   {_human_bytes(int(info['bytes']))}")
        print(f"code version: {info['code_version']}")
        return 0
    entries = cache.entries()
    if not entries:
        print(f"cache at {cache.root} is empty")
        return 0
    print(f"{'created (UTC)':<21}{'artifact':<22}{'kind':<10}"
          f"{'size':>10}  key")
    for entry in entries:
        print(f"{entry.created_at:<21}{entry.artifact:<22}{entry.kind:<10}"
              f"{_human_bytes(entry.bytes):>10}  {entry.key[:16]}")
    return 0


def _command_export(args: argparse.Namespace) -> int:
    from .measurement.campaign import CampaignResults
    from .measurement.io import save_campaign
    from .trace.io import save_dataset

    study = _study(args)
    root = Path(args.directory)
    # Fresh container: never mutate the study's cached results.
    results = CampaignResults(
        latency=list(study.latency_results.latency),
        throughput=list(study.throughput_results.throughput),
    )
    campaign_dir = save_campaign(results, root / "campaign")
    nep_dir = save_dataset(study.nep.dataset, root / "nep-trace")
    azure_dir = save_dataset(study.azure.dataset, root / "azure-trace")
    print(f"performance dataset: {campaign_dir}")
    print(f"NEP workload trace:  {nep_dir}")
    print(f"cloud workload trace: {azure_dir}")
    _maybe_report_perf(args, study)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _command_list()
        if args.command == "info":
            return _command_info(args)
        if args.command == "export":
            return _command_export(args)
        if args.command == "cache":
            return _command_cache(args)
        return _command_run(args)
    except ReproError as exc:
        # A library-level failure (bad config, infeasible scenario, ...)
        # is an expected error class: one clean line, no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe: the POSIX
        # convention is to exit quietly, not to traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
