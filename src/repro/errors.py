"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by the library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while still letting programming errors (``TypeError``,
``KeyError`` from internal bugs, ...) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A scenario or component was configured with invalid parameters."""


class GeoError(ReproError):
    """A geographic lookup failed (unknown city, province, or region)."""


class TopologyError(ReproError):
    """A network or platform topology is malformed or incomplete."""


class CapacityError(ReproError):
    """A placement or allocation exceeded the capacity of a resource."""


class PlacementError(CapacityError):
    """No feasible server could be found for a VM subscription request."""


class SchedulingError(ReproError):
    """An end-user request could not be routed to any serving VM."""


class TraceError(ReproError):
    """A trace dataset is malformed, inconsistent, or missing records."""


class MeasurementError(ReproError):
    """A measurement campaign or individual probe was mis-specified."""


class FaultError(ReproError):
    """A fault schedule, retry policy, or failover step was mis-specified."""


class PredictionError(ReproError):
    """A forecasting model received unusable input or failed to converge."""


class BillingError(ReproError):
    """A billing computation received unusable usage data or prices."""


class ParallelError(ReproError):
    """The worker pool or its shared-memory transport failed to start."""


class InjectedFault(ReproError):
    """A deterministic failpoint fired (see :mod:`repro.resilience`).

    Raised only by the failpoint registry at an instrumented site; the
    supervised layers (cache commit, shard flush, pool jobs, farm
    tasks) treat it as a transient infrastructure failure and retry
    with seeded backoff, which is exactly how chaos runs exercise the
    recovery paths without changing results.
    """


class QuarantineError(ParallelError):
    """A job kept failing past its retry budget and was quarantined.

    Carries the job identity, the attempt count, and the last error so
    a study fails loudly with context instead of hanging or silently
    dropping work.
    """
