"""Phase bookkeeping: which study phases ran, failed, or were skipped.

The study facade computes many expensive phases lazily; before this
ledger existed, one failing phase took the whole run down with a raw
traceback.  :class:`PhaseLedger` records the outcome of every tracked
phase so callers (the CLI, notebooks, CI) can degrade gracefully: a
failed phase is reported with its error while every other phase still
runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class PhaseStatus:
    """Outcome of one tracked phase run."""

    name: str
    state: str              # "ok" or "failed"
    wall_s: float
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True when the phase completed without error."""
        return self.state == "ok"


class PhaseLedger:
    """Ordered record of phase outcomes for one study instance.

    With a :class:`~repro.obs.journal.RunJournal` attached
    (``journal=``), every tracked phase also emits ``phase_begin`` /
    ``phase_end`` events — the journal annotates the latter with memory
    samples, which is how per-phase RSS lands in ``repro trace summary``.
    """

    def __init__(self, journal=None) -> None:
        self._statuses: dict[str, PhaseStatus] = {}
        #: Optional :class:`repro.obs.journal.RunJournal` to bridge into.
        self.journal = journal

    @contextmanager
    def track(self, name: str) -> Iterator[None]:
        """Record the wrapped block as ``ok`` or ``failed`` (re-raising)."""
        if self.journal is not None:
            self.journal.emit("phase_begin", phase=name)
        start = time.perf_counter()
        try:
            yield
        except Exception as exc:
            status = PhaseStatus(
                name=name, state="failed",
                wall_s=time.perf_counter() - start,
                error=f"{type(exc).__name__}: {exc}",
            )
            self._statuses[name] = status
            if self.journal is not None:
                self.journal.emit("phase_end", phase=name, status="failed",
                                  error=status.error,
                                  wall_s=round(status.wall_s, 6))
            raise
        else:
            status = PhaseStatus(
                name=name, state="ok",
                wall_s=time.perf_counter() - start,
            )
            self._statuses[name] = status
            if self.journal is not None:
                self.journal.emit("phase_end", phase=name, status="ok",
                                  wall_s=round(status.wall_s, 6))

    def status(self, name: str) -> PhaseStatus | None:
        """The recorded status of phase ``name``, if it ran."""
        return self._statuses.get(name)

    def statuses(self) -> list[PhaseStatus]:
        """Every recorded phase status, in execution order."""
        return list(self._statuses.values())

    def failed(self) -> list[PhaseStatus]:
        """The phases that raised, in execution order."""
        return [s for s in self._statuses.values() if not s.ok]

    def __len__(self) -> int:
        return len(self._statuses)

    def report(self) -> str:
        """One line per tracked phase, in execution order."""
        if not self._statuses:
            return "no phases tracked"
        lines = []
        for status in self._statuses.values():
            line = f"{status.name:<22} {status.state:<7} {status.wall_s:8.3f}s"
            if status.error:
                line += f"  {status.error}"
            lines.append(line)
        return "\n".join(lines)
