"""Phase bookkeeping: which study phases ran, failed, or were skipped.

The study facade computes many expensive phases lazily; before this
ledger existed, one failing phase took the whole run down with a raw
traceback.  :class:`PhaseLedger` records the outcome of every tracked
phase so callers (the CLI, notebooks, CI) can degrade gracefully: a
failed phase is reported with its error while every other phase still
runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class PhaseStatus:
    """Outcome of one tracked phase run."""

    name: str
    state: str              # "ok" or "failed"
    wall_s: float
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.state == "ok"


class PhaseLedger:
    """Ordered record of phase outcomes for one study instance."""

    def __init__(self) -> None:
        self._statuses: dict[str, PhaseStatus] = {}

    @contextmanager
    def track(self, name: str) -> Iterator[None]:
        """Record the wrapped block as ``ok`` or ``failed`` (re-raising)."""
        start = time.perf_counter()
        try:
            yield
        except Exception as exc:
            self._statuses[name] = PhaseStatus(
                name=name, state="failed",
                wall_s=time.perf_counter() - start,
                error=f"{type(exc).__name__}: {exc}",
            )
            raise
        else:
            self._statuses[name] = PhaseStatus(
                name=name, state="ok",
                wall_s=time.perf_counter() - start,
            )

    def status(self, name: str) -> PhaseStatus | None:
        return self._statuses.get(name)

    def statuses(self) -> list[PhaseStatus]:
        return list(self._statuses.values())

    def failed(self) -> list[PhaseStatus]:
        return [s for s in self._statuses.values() if not s.ok]

    def __len__(self) -> int:
        return len(self._statuses)

    def report(self) -> str:
        """One line per tracked phase, in execution order."""
        if not self._statuses:
            return "no phases tracked"
        lines = []
        for status in self._statuses.values():
            line = f"{status.name:<22} {status.state:<7} {status.wall_s:8.3f}s"
            if status.error:
                line += f"  {status.error}"
            lines.append(line)
        return "\n".join(lines)
