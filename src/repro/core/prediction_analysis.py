"""§4.4 analysis: head-to-head VM usage predictability, edge vs cloud.

Runs the paper's protocol over sampled VMs of two datasets (Holt-Winters
and LSTM, max and mean CPU targets, 3-week train / 1-week test) and
collects per-platform RMSE distributions plus the seasonality strengths
that explain them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PredictionError
from ..prediction.evaluate import (
    ExperimentSpec,
    PredictionOutcome,
    evaluate_holt_winters,
    evaluate_lstm,
    evaluate_seasonal_ar,
)
from ..prediction.seasonality import seasonality_strength
from ..trace.dataset import TraceDataset
from .stats import ECDF


@dataclass
class PredictionStudyResult:
    """All outcomes of one platform's prediction study."""

    platform: str
    outcomes: list[PredictionOutcome] = field(default_factory=list)
    seasonality: list[float] = field(default_factory=list)

    def rmse_cdf(self, model: str, target: str) -> ECDF:
        values = [o.rmse_percent for o in self.outcomes
                  if o.model == model and o.target == target]
        if not values:
            raise PredictionError(
                f"no outcomes for model={model!r} target={target!r}"
            )
        return ECDF.from_samples(values)

    def median_rmse(self, model: str, target: str) -> float:
        return self.rmse_cdf(model, target).median

    @property
    def mean_seasonality(self) -> float:
        if not self.seasonality:
            raise PredictionError("no seasonality measurements")
        return float(np.mean(self.seasonality))


def _sample_vm_ids(dataset: TraceDataset, count: int,
                   rng: np.random.Generator) -> list[str]:
    """Sample prediction subjects, preferring VMs with non-trivial load."""
    vm_ids = dataset.vm_ids()
    active = [v for v in vm_ids if dataset.mean_cpu(v) > 0.01]
    pool = active if len(active) >= count else vm_ids
    if len(pool) <= count:
        return list(pool)
    idx = rng.choice(len(pool), size=count, replace=False)
    return [pool[int(i)] for i in idx]


def run_prediction_study(dataset: TraceDataset, vm_sample: int,
                         rng: np.random.Generator,
                         spec: ExperimentSpec | None = None,
                         lstm_epochs: int = 25,
                         lstm_sample: int | None = None,
                         include_seasonal_ar: bool = False,
                         ) -> PredictionStudyResult:
    """Run the full §4.4 study over one dataset.

    ``lstm_sample`` caps how many of the sampled VMs get LSTM models
    (LSTM training dominates run time); Holt-Winters runs on all.
    ``include_seasonal_ar`` adds the ARIMA-family baseline the paper's
    related work uses.

    Raises:
        PredictionError: if the trace is shorter than train+test days.
    """
    if spec is None:
        spec = ExperimentSpec(
            cpu_interval_minutes=dataset.cpu_interval_minutes)
    if dataset.trace_days < spec.train_days + spec.test_days:
        raise PredictionError(
            f"trace of {dataset.trace_days} days too short for "
            f"{spec.train_days}+{spec.test_days} day split"
        )
    result = PredictionStudyResult(platform=dataset.platform_name)
    vm_ids = _sample_vm_ids(dataset, vm_sample, rng)
    lstm_ids = set(vm_ids[:lstm_sample]) if lstm_sample is not None \
        else set(vm_ids)

    period = dataset.cpu_points_per_day
    for index, vm_id in enumerate(vm_ids):
        series = dataset.cpu_series[vm_id].astype(float)
        result.seasonality.append(seasonality_strength(series, period))
        for target in ("max", "mean"):
            result.outcomes.append(
                evaluate_holt_winters(vm_id, series, target, spec))
            if include_seasonal_ar:
                result.outcomes.append(
                    evaluate_seasonal_ar(vm_id, series, target, spec))
            if vm_id in lstm_ids:
                result.outcomes.append(
                    evaluate_lstm(vm_id, series, target, spec,
                                  epochs=lstm_epochs, seed=index))
    return result


@dataclass(frozen=True)
class PredictionComparison:
    """Figure 14: edge-vs-cloud RMSE medians per model and target."""

    edge: PredictionStudyResult
    cloud: PredictionStudyResult

    def median_table(self) -> dict[tuple[str, str], tuple[float, float]]:
        """(model, target) -> (edge median RMSE %, cloud median RMSE %)."""
        table = {}
        for model in ("holt-winters", "lstm", "seasonal-ar"):
            for target in ("max", "mean"):
                try:
                    table[(model, target)] = (
                        self.edge.median_rmse(model, target),
                        self.cloud.median_rmse(model, target),
                    )
                except PredictionError:
                    continue
        return table

    @property
    def edge_easier_to_predict(self) -> bool:
        """The paper's headline: every (model, target) favours the edge."""
        table = self.median_table()
        return all(edge <= cloud for edge, cloud in table.values())
