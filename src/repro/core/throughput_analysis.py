"""§3.2 analysis: throughput vs distance and the capacity bottleneck.

Figure 5 plots each 15-second iperf result against the UE-VM distance and
reports the Pearson correlation per access technology and direction.  The
paper's reading: |corr| < 0.2 is negligible (capacity-limited last mile),
|corr| > 0.7 is significant (Internet-path-limited).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MeasurementError
from ..measurement.campaign import ThroughputObservation
from ..netsim.access import AccessType
from .stats import pearson_correlation

#: The paper's correlation-reading thresholds.
NEGLIGIBLE_CORRELATION = 0.2
SIGNIFICANT_CORRELATION = 0.7


@dataclass(frozen=True)
class ThroughputSeries:
    """One Figure 5 panel: scatter points plus the correlation."""

    access: AccessType
    direction: str            # "downlink" or "uplink"
    distances_km: np.ndarray
    throughputs_mbps: np.ndarray
    correlation: float

    @property
    def mean_mbps(self) -> float:
        return float(self.throughputs_mbps.mean())

    @property
    def distance_matters(self) -> bool:
        """True when the paper would call the correlation significant."""
        return abs(self.correlation) >= SIGNIFICANT_CORRELATION

    @property
    def capacity_limited(self) -> bool:
        """True when the correlation is negligible (last-mile bound)."""
        return abs(self.correlation) <= NEGLIGIBLE_CORRELATION


def throughput_series(observations: list[ThroughputObservation],
                      access: AccessType,
                      direction: str) -> ThroughputSeries:
    """Build one Figure 5 panel from raw campaign observations.

    Raises:
        MeasurementError: on an unknown direction or empty subset.
    """
    if direction not in ("downlink", "uplink"):
        raise MeasurementError(f"unknown direction {direction!r}")
    subset = [o for o in observations if o.access is access]
    if len(subset) < 3:
        raise MeasurementError(
            f"need >=3 observations for {access}/{direction}, "
            f"got {len(subset)}"
        )
    distances = np.array([o.result.distance_km for o in subset])
    if direction == "downlink":
        values = np.array([o.result.downlink_mbps for o in subset])
    else:
        values = np.array([o.result.uplink_mbps for o in subset])
    return ThroughputSeries(
        access=access,
        direction=direction,
        distances_km=distances,
        throughputs_mbps=values,
        correlation=pearson_correlation(distances, values),
    )


def all_series(observations: list[ThroughputObservation],
               ) -> list[ThroughputSeries]:
    """Every (access, direction) panel present in the campaign."""
    present = {o.access for o in observations}
    out = []
    for access in AccessType:
        if access not in present:
            continue
        for direction in ("downlink", "uplink"):
            out.append(throughput_series(observations, access, direction))
    return out
