"""§4.5 analysis: monetary cost of edge apps, NEP vs virtual clouds.

Builds per-app usage bundles from the NEP trace, bills them on NEP and on
the two virtual cloud baselines under each network billing model, and
summarises the cost ratios of Table 3 plus the hardware/network breakdown
the paper discusses in prose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..billing.baseline import CloudRegion, cluster_usage_to_cloud
from ..billing.cloud import CloudBilling, NetworkModel
from ..billing.models import BillingBreakdown
from ..billing.nep import NepBilling
from ..billing.usage import AppUsage, HardwareSubscription
from ..errors import BillingError
from ..geo.coords import GeoPoint
from ..trace.dataset import TraceDataset
from .chunks import per_vm_totals


def build_app_usage(dataset: TraceDataset, app_id: str) -> AppUsage:
    """Assemble one app's billable usage bundle from the trace.

    Raises:
        BillingError: if the app has no VMs in the trace.
    """
    vms = dataset.vms_of_app(app_id)
    if not vms:
        raise BillingError(f"app {app_id!r} has no VMs")
    usage = AppUsage(
        app_id=app_id,
        trace_days=dataset.trace_days,
        interval_minutes=dataset.bw_interval_minutes,
    )
    for vm in vms:
        usage.hardware.append(HardwareSubscription(
            cpu_cores=vm.cpu_cores, memory_gb=vm.memory_gb,
            disk_gb=vm.disk_gb,
        ))
        usage.add_location_series(
            vm.site_id, vm.city,
            dataset.bw_series[vm.vm_id].astype(np.float64),
        )
    return usage


def heaviest_apps(dataset: TraceDataset, count: int) -> list[str]:
    """The ``count`` apps with the most total public traffic (§4.5).

    Per-VM totals come from one chunked pass over the bandwidth series
    (disk-order friendly on a sharded trace); the per-app sums then run
    in the same VM order as the original row-at-a-time loop, so the
    ranking is bit-identical.
    """
    if count <= 0:
        raise BillingError(f"count must be positive, got {count}")
    vm_totals = per_vm_totals(dataset.bw_series)
    totals = []
    for app_id in dataset.app_ids_with_vms():
        total = sum(vm_totals[vm.vm_id]
                    for vm in dataset.vms_of_app(app_id))
        totals.append((total, app_id))
    totals.sort(reverse=True)
    return [app_id for _, app_id in totals[:count]]


def site_locations(dataset: TraceDataset) -> dict[str, GeoPoint]:
    """Site id -> coordinates, for the virtual-baseline clustering."""
    return {
        site_id: GeoPoint(record.lat, record.lon)
        for site_id, record in dataset.sites.items()
    }


def cloud_regions_from_platform(platform) -> list[CloudRegion]:
    """Adapt a cloud :class:`~repro.platform.Platform` into billing regions."""
    return [
        CloudRegion(region_id=site.site_id, city=site.city,
                    location=site.location)
        for site in platform.sites
    ]


@dataclass(frozen=True)
class AppCostComparison:
    """One app's bills on NEP and one virtual cloud (all network models)."""

    app_id: str
    nep: BillingBreakdown
    cloud_bills: dict[NetworkModel, BillingBreakdown]

    def ratio(self, model: NetworkModel) -> float:
        """Cloud total over NEP total (Table 3's normalisation)."""
        nep_total = self.nep.total_rmb
        if nep_total == 0.0:
            raise BillingError(f"app {self.app_id}: zero NEP bill")
        return self.cloud_bills[model].total_rmb / nep_total

    @property
    def hardware_ratio(self) -> float:
        """NEP hardware over cloud hardware (paper: NEP +3%..20%)."""
        cloud_hw = next(iter(self.cloud_bills.values())).hardware_rmb
        if cloud_hw == 0.0:
            raise BillingError(f"app {self.app_id}: zero cloud hardware bill")
        return self.nep.hardware_rmb / cloud_hw


@dataclass(frozen=True)
class CostStudyResult:
    """Table 3 for one virtual cloud: ratio stats per network model."""

    cloud_name: str
    comparisons: list[AppCostComparison]

    def ratios(self, model: NetworkModel) -> np.ndarray:
        return np.array([c.ratio(model) for c in self.comparisons])

    def summary(self, model: NetworkModel) -> dict[str, float]:
        """Range / mean / median of the cost ratios, as Table 3 reports."""
        ratios = self.ratios(model)
        return {
            "min": float(ratios.min()),
            "max": float(ratios.max()),
            "mean": float(ratios.mean()),
            "median": float(np.median(ratios)),
        }

    @property
    def mean_saving_by_bandwidth(self) -> float:
        """Average saving vs on-demand-by-bandwidth: 1 - 1/mean-ratio."""
        mean_ratio = float(self.ratios(
            NetworkModel.ON_DEMAND_BANDWIDTH).mean())
        return 1.0 - 1.0 / mean_ratio

    def network_share_of_nep_cost(self) -> dict[str, float]:
        """Mean/max network share of NEP bills (paper: 76% avg, 96% max)."""
        shares = np.array([c.nep.network_share for c in self.comparisons])
        return {"mean": float(shares.mean()), "max": float(shares.max())}


def run_cost_study(dataset: TraceDataset, cloud_billing: CloudBilling,
                   regions: list[CloudRegion], nep_billing: NepBilling,
                   app_count: int = 50) -> CostStudyResult:
    """Bill the heaviest apps on NEP and one virtual cloud baseline."""
    locations = site_locations(dataset)
    comparisons = []
    for app_id in heaviest_apps(dataset, app_count):
        usage = build_app_usage(dataset, app_id)
        clustered = cluster_usage_to_cloud(usage, locations, regions)
        comparisons.append(AppCostComparison(
            app_id=app_id,
            nep=nep_billing.bill(usage),
            cloud_bills={
                model: cloud_billing.bill(clustered, model)
                for model in NetworkModel
            },
        ))
    if not comparisons:
        raise BillingError("no apps to compare")
    return CostStudyResult(cloud_name=cloud_billing.provider,
                           comparisons=comparisons)
