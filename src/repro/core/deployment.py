"""Deployment-density comparison across platforms (Table 1).

Table 1 is static context data (region counts as of May 2021 and the land
area they cover); it is embedded here together with the density math so
the Table 1 benchmark regenerates the paper's numbers and can also score
a simulated NEP build against them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..platform.cluster import Platform

#: Land areas in million square miles.
AREA_GLOBAL_M_MI2 = 196.9  # Earth land+sea as used for "global" coverage
AREA_US_M_MI2 = 3.80
AREA_CHINA_M_MI2 = 3.70


@dataclass(frozen=True)
class DeploymentRecord:
    """One row of Table 1."""

    platform: str
    regions: int
    coverage: str           # "Global", "U.S.", or "China"
    area_m_mi2: float

    @property
    def density_per_m_mi2(self) -> float:
        """Regions per million square miles."""
        return self.regions / self.area_m_mi2


#: Table 1 of the paper, dated May 26, 2021.
PLATFORM_DEPLOYMENTS: tuple[DeploymentRecord, ...] = (
    DeploymentRecord("AWS EC2 (global)", 24, "Global", 196.9),
    DeploymentRecord("AWS EC2 (US)", 6, "U.S.", AREA_US_M_MI2),
    DeploymentRecord("Google Cloud (global)", 24, "Global", 196.9),
    DeploymentRecord("Google Cloud (US)", 8, "U.S.", AREA_US_M_MI2),
    DeploymentRecord("Azure Edge Zones", 5, "U.S.", AREA_US_M_MI2),
    DeploymentRecord("AWS Wavelength + Local Zones", 14, "U.S.", AREA_US_M_MI2),
    DeploymentRecord("MS Azure (global)", 33, "Global", 196.9),
    DeploymentRecord("MS Azure (US)", 8, "U.S.", AREA_US_M_MI2),
    DeploymentRecord("Alibaba Cloud (global)", 23, "Global", 196.9),
    DeploymentRecord("Alibaba Cloud (China)", 12, "China", AREA_CHINA_M_MI2),
    DeploymentRecord("Huawei Cloud (China)", 5, "China", AREA_CHINA_M_MI2),
    DeploymentRecord("NEP", 500, "China", AREA_CHINA_M_MI2),
)

#: The paper's headline densities (regions per 10^6 mi^2) for checking.
PAPER_DENSITIES = {
    "AWS EC2 (US)": 1.58,
    "Google Cloud (US)": 2.10,
    "MS Azure (US)": 2.11,
    "Alibaba Cloud (China)": 3.23,
    "Azure Edge Zones": 1.32,
    "AWS Wavelength + Local Zones": 3.70,
    "Huawei Cloud (China)": 1.35,
    "NEP": 135.0,
}


def density_of(record: DeploymentRecord) -> float:
    """Density in regions per million square miles."""
    return record.density_per_m_mi2


def simulated_nep_density(platform: Platform,
                          area_m_mi2: float = AREA_CHINA_M_MI2) -> float:
    """Density of a simulated NEP build, same units as Table 1."""
    return len(platform.sites) / area_m_mi2


def density_advantage_over(record_name: str,
                           nep_sites: int = 500) -> float:
    """How many times denser NEP is than a named Table 1 platform."""
    nep_density = nep_sites / AREA_CHINA_M_MI2
    for record in PLATFORM_DEPLOYMENTS:
        if record.platform == record_name:
            return nep_density / record.density_per_m_mi2
    raise KeyError(f"unknown platform {record_name!r}")
